"""Tiered storage: one workload, three placements, one bill.

A Zipf-skewed read workload over a 40-object dataset runs against
(a) everything in RAM, (b) everything on the S3-like object store,
and (c) a :class:`~repro.TieredStore` that starts cold and promotes
the hot keys next to compute.  Every request and every byte-month of
occupancy accrues dollars into a shared :class:`~repro.CostLedger`;
the tiered run lands between the extremes on latency while paying
RAM rent only for the working set — the cost/latency trade the
storage layer exists to navigate.
"""

from repro import (
    CostLedger,
    MemoryStore,
    ObjectStore,
    TieredStore,
    cost_summary,
)
from repro.simulation.kernel import Kernel, current_thread

OBJECTS = 40
OBJECT_BYTES = 256 * 1024
READS = 400


def workload(kernel, store, label):
    """Seed the dataset, run Zipf-skewed reads, return mean latency."""
    rng = kernel.rng.stream(f"example.{label}")
    for i in range(OBJECTS):
        store.seed(f"obj-{i:03d}", b"", nbytes=OBJECT_BYTES)
    latencies = []

    def main():
        if isinstance(store, TieredStore):
            store.start_sweeper()
        thread = current_thread()
        for _ in range(READS):
            # Zipf-ish skew: a few keys take most of the traffic.
            index = min(int(rng.zipf(1.5)) - 1, OBJECTS - 1)
            t0 = kernel.now
            store.get(f"obj-{index:03d}")
            latencies.append(kernel.now - t0)
            thread.sleep(0.05)

    kernel.run_main(main)
    return sum(latencies) / len(latencies)


def main():
    results = {}
    for label in ("all-hot", "all-cold", "tiered"):
        kernel = Kernel(seed=11)
        ledger = CostLedger()
        if label == "all-hot":
            store = MemoryStore(kernel, name="memory", ledger=ledger)
        elif label == "all-cold":
            store = ObjectStore(kernel, name="s3", ledger=ledger)
        else:
            hot = MemoryStore(kernel, name="memory", ledger=ledger)
            cold = ObjectStore(kernel, name="s3", ledger=ledger)
            store = TieredStore(kernel, [hot, cold], ledger=ledger)
        mean = workload(kernel, store, label)
        ledger.settle()
        # Capacity price of where the data ended up resting: the
        # steady-state dollars this placement pays per GB each month.
        if isinstance(store, TieredStore):
            gb_month = store.dollars_per_gb_month()
        else:
            gb_month = store.profile.dollars_per_gb_month
        results[label] = (mean, gb_month)
        print(f"--- {label}: mean read {mean * 1000:7.3f} ms, "
              f"capacity ${gb_month:.3f}/GB-month, "
              f"requests ${ledger.request_dollars:.6f}")
        print(cost_summary(ledger))
        print()

    hot_ms, hot_cost = results["all-hot"]
    cold_ms, cold_cost = results["all-cold"]
    tier_ms, tier_cost = results["tiered"]
    # Tiering dominates all-cold on latency and all-hot on capacity $.
    assert tier_ms < cold_ms
    assert tier_cost < hot_cost
    return results


if __name__ == "__main__":
    main()
