"""PyWren-style map versus Crucial: the same job, two frameworks.

Runs an embarrassingly parallel word-scoring map with (a) the
PyWren execution model — results through object storage, polled — and
(b) Crucial cloud threads aggregating into a shared object.  Both get
the right answer; Crucial's synchronization finishes as soon as the
work does, while PyWren pays storage latency plus poll quantization —
the Section 6.3.1 story at example scale.
"""

from repro import (
    AtomicLong,
    CloudThread,
    CountDownLatch,
    CrucialEnvironment,
    current_environment,
)
from repro.pywren import PyWrenExecutor

INPUTS = list(range(24))


def score(x):
    """The map function (module-level, as PyWren requires)."""
    return x * x % 97


class CrucialScorer:
    def __init__(self, x):
        self.x = x
        self.total = AtomicLong("total")
        self.done = CountDownLatch("done", len(INPUTS))

    def run(self):
        self.total.add_and_get(score(self.x))
        self.done.count_down()


def main():
    expected = sum(score(x) for x in INPUTS)
    with CrucialEnvironment(seed=55, dso_nodes=1) as env:
        def compare():
            env.pre_warm(len(INPUTS))

            # (a) PyWren: map, then poll object storage for results.
            executor = PyWrenExecutor(env.platform, env.object_store,
                                      invoker=env.client_endpoint)
            t0 = env.now
            futures = executor.map(score, INPUTS)
            executor.wait(futures)
            pywren_total = sum(executor.get_result(futures))
            pywren_time = env.now - t0

            # (b) Crucial: aggregate in the DSO layer, await a latch.
            t1 = env.now
            threads = [CloudThread(CrucialScorer(x)) for x in INPUTS]
            for thread in threads:
                thread.start()
            CountDownLatch("done", len(INPUTS)).wait()
            crucial_total = AtomicLong("total").get()
            crucial_time = env.now - t1
            return (pywren_total, pywren_time,
                    crucial_total, crucial_time)

        pywren_total, pywren_time, crucial_total, crucial_time = \
            env.run(compare)

    print(f"inputs: {len(INPUTS)}, expected aggregate: {expected}")
    print(f"  PyWren  : {pywren_total}  in {pywren_time:6.2f} simulated s"
          " (results via S3 + polling)")
    print(f"  Crucial : {crucial_total}  in {crucial_time:6.2f} simulated s"
          " (in-store aggregation + latch)")
    assert pywren_total == crucial_total == expected
    assert crucial_time < pywren_time
    return crucial_time, pywren_time


if __name__ == "__main__":
    main()
