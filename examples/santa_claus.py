"""The Santa Claus problem: one monitor class, three deployments.

Runs the same workshop monitor as (1) an in-process POJO, (2) a
``@Shared`` object in the DSO layer, and (3) with entities as cloud
threads — reproducing the Fig. 7c comparison at example scale.
"""

from repro import CrucialEnvironment
from repro.coordination import SantaClausProblem


def main():
    results = {}
    for variant in ("local", "dso", "cloud"):
        with CrucialEnvironment(seed=12, dso_nodes=1) as env:
            problem = SantaClausProblem(deliveries=15, seed=12)
            results[variant] = env.run(
                lambda v=variant: problem.run(v))

    local = results["local"].elapsed
    print("Santa Claus problem - 10 elves, 9 reindeer, 15 deliveries")
    for variant, result in results.items():
        overhead = result.elapsed / local - 1.0
        print(f"  {variant:6s}: {result.elapsed:6.3f} simulated s "
              f"({overhead:+6.1%} vs local) - "
              f"{result.deliveries} deliveries, {result.helps} "
              "elf groups helped")
    assert all(r.deliveries == 15 for r in results.values())
    return results


if __name__ == "__main__":
    main()
