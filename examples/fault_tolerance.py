"""Fault tolerance: replicated state and function retries.

Demonstrates the two halves of Section 4.4:

1. storage — a persistent (rf=2) shared object survives the crash of
   its primary replica, while an ephemeral one is lost;
2. compute — cloud threads are re-invoked with the exact same input
   under injected failures, and an idempotent application (keyed by a
   shared iteration counter) still produces the right answer.
"""

from repro import (
    RUNNER_FUNCTION,
    AtomicLong,
    CloudThread,
    CrucialEnvironment,
    RetryPolicy,
    SharedMap,
)
from repro.errors import ObjectLostError


class IdempotentIncrement:
    """Records its work under a unique key: re-execution is harmless."""

    def __init__(self, worker_id: int):
        self.worker_id = worker_id
        self.ledger = SharedMap("ledger")

    def run(self):
        # put() is idempotent per key, unlike add_and_get().
        self.ledger.put(f"worker-{self.worker_id}", 1)


def main():
    with CrucialEnvironment(seed=21, dso_nodes=3) as env:
        def scenario():
            # --- storage-side fault tolerance --------------------------------
            durable = AtomicLong("durable", 0, persistent=True)
            volatile = AtomicLong("volatile", 0)
            durable.add_and_get(41)
            volatile.add_and_get(1)
            primary = env.dso.placement_of(durable.ref)[0]
            print(f"crashing DSO node {primary!r} "
                  f"(holds the durable object's primary replica)")
            env.dso.crash_node(primary)
            value = durable.add_and_get(1)  # rides out failover
            print(f"durable counter after crash : {value} (rf=2)")
            try:
                volatile.get()
                lost = False
            except ObjectLostError:
                lost = True
            print(f"ephemeral object lost        : {lost}")

            # --- compute-side fault tolerance ----------------------------------
            env.platform.inject_failures(RUNNER_FUNCTION, rate=0.4)
            threads = [
                CloudThread(IdempotentIncrement(i),
                            retry_policy=RetryPolicy(max_retries=10,
                                                     backoff=0.2))
                for i in range(8)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            attempts = sum(t.attempts for t in threads)
            completed = SharedMap("ledger").size()
            print(f"workers completed            : {completed}/8 "
                  f"using {attempts} invocations (failures retried)")
            return value, lost, completed

        value, lost, completed = env.run(scenario)
    assert value == 42 and lost and completed == 8
    return value


if __name__ == "__main__":
    main()
