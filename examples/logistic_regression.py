"""Serverless logistic regression with in-store gradient aggregation.

At every iteration each cloud thread pulls the current weights from
the DSO layer, pushes its sub-gradient into the shared object (which
aggregates in place — no reduce phase), and synchronizes on a barrier.
"""

from repro import CrucialEnvironment
from repro.ml import MLDataset
from repro.ml.logreg import CrucialLogisticRegression

WORKERS = 8
ITERATIONS = 20


def main():
    dataset = MLDataset("logreg", partitions=WORKERS,
                        materialized_points=8000, seed=7,
                        nominal_points=556_000, nominal_bytes=10 ** 9)
    with CrucialEnvironment(seed=7, dso_nodes=1) as env:
        job = CrucialLogisticRegression(dataset, iterations=ITERATIONS,
                                        workers=WORKERS,
                                        run_id="example")
        result = env.run(job.train)

    print(f"trained logistic regression on {WORKERS} cloud threads")
    print(f"  load phase      : {result.load_time:8.2f} simulated s")
    print(f"  iteration phase : {result.iteration_phase_time:8.2f} "
          f"simulated s ({ITERATIONS} iterations)")
    print("  loss curve      :")
    for i in range(0, ITERATIONS, 4):
        bar = "#" * int(result.loss_history[i] * 60)
        print(f"    iter {i:3d}  {result.loss_history[i]:.4f}  {bar}")
    assert result.loss_history[-1] < result.loss_history[0] * 0.8
    return result


if __name__ == "__main__":
    main()
