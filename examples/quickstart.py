"""Quickstart: Listing 1 — Monte Carlo estimation of pi.

A multi-threaded program where the threads are serverless functions
and the shared counter lives in the DSO layer.  Run with::

    python examples/quickstart.py

Pass ``--trace [trace.json]`` to record a distributed trace of the
run: an ASCII span tree plus the critical path are printed, and the
Chrome trace-event JSON (loadable in https://ui.perfetto.dev) is
written to the given path (default ``quickstart_trace.json``).
"""

import math
import sys

import numpy as np

from repro import (
    AtomicLong,
    CloudThread,
    CrucialEnvironment,
    compute,
    critical_path_summary,
    current_environment,
    span_tree,
    write_chrome_trace,
)
from repro.ml.costmodel import montecarlo_cost

N_THREADS = 16
ITERATIONS = 10_000_000


class PiEstimator:
    """The Runnable: draw points, count hits, add to the counter."""

    def __init__(self, seed: int):
        self.seed = seed
        self.counter = AtomicLong("counter")  # @Shared(key="counter")

    def run(self):
        env = current_environment()
        rng = np.random.Generator(np.random.PCG64(self.seed))
        # The simulator draws the hit count from the loop's exact
        # distribution and charges the modelled CPU time of the draws.
        count = int(rng.binomial(ITERATIONS, math.pi / 4.0))
        compute(montecarlo_cost(ITERATIONS, env.config))
        self.counter.add_and_get(count)


def main(trace: bool = False, trace_path: str = "quickstart_trace.json"):
    with CrucialEnvironment(seed=42, dso_nodes=1,
                            trace_enabled=trace) as env:
        def client_application():
            threads = [CloudThread(PiEstimator(i))
                       for i in range(N_THREADS)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            total = AtomicLong("counter").get()
            return 4.0 * total / (N_THREADS * ITERATIONS), env.now

        estimate, elapsed = env.run(client_application)
        if trace:
            tracer = env.kernel.tracer
            print(span_tree(tracer, max_depth=4, min_duration=1e-4))
            print()
            print(critical_path_summary(tracer))
            print()
            print(f"chrome trace written to "
                  f"{write_chrome_trace(trace_path, tracer)}")
            print()
    print(f"pi  ~= {estimate:.6f}   (error {abs(estimate - math.pi):.2e})")
    print(f"ran {N_THREADS} cloud threads x {ITERATIONS:,} draws "
          f"in {elapsed:.2f} simulated seconds")
    return estimate


if __name__ == "__main__":
    args = sys.argv[1:]
    if args and args[0] == "--trace":
        main(trace=True, trace_path=(args[1] if len(args) > 1
                                     else "quickstart_trace.json"))
    else:
        main()
