"""Synchronizing a map phase five ways (the Fig. 6 scenario).

Runs a small Monte-Carlo map phase and aggregates the results using
each strategy — S3 polling (PyWren-style), in-memory grid polling,
SQS, Crucial futures, and DSO auto-reduce — printing the time each
technique spends synchronizing.
"""

import math

from repro import CrucialEnvironment
from repro.coordination import MapSyncExperiment
from repro.coordination.mapsync import STRATEGIES

N_THREADS = 20
DRAWS = 5_000_000


def main():
    print(f"map phase: {N_THREADS} cloud threads x {DRAWS:,} draws")
    results = {}
    for name in ("sqs", "s3-polling", "grid-polling", "future",
                 "auto-reduce"):
        with CrucialEnvironment(seed=33, dso_nodes=1) as env:
            def run_one():
                experiment = MapSyncExperiment(name, n_threads=N_THREADS,
                                               draws=DRAWS)
                return experiment.execute()

            results[name] = env.run(run_one)
    print(f"{'strategy':14s} {'sync time':>10s} {'estimate':>10s}")
    for name, result in sorted(results.items(),
                               key=lambda kv: -kv[1].sync_time):
        estimate = 4.0 * result.aggregate / (N_THREADS * DRAWS)
        print(f"{name:14s} {result.sync_time:9.3f}s {estimate:10.5f}")
        assert abs(estimate - math.pi) < 0.01
    assert set(results) == set(STRATEGIES)
    return results


if __name__ == "__main__":
    main()
