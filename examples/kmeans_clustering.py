"""Serverless k-means (Listing 2), scaled to run in a second.

Trains on a synthetic dataset with the full Crucial machinery: cloud
threads, shared centroid objects aggregated in the DSO layer, a shared
convergence criterion, and a cyclic barrier.  Compares the resulting
clustering cost against the trivial one-centroid baseline to show the
model actually learned something.
"""

import numpy as np

from repro import CrucialEnvironment
from repro.ml import MLDataset
from repro.ml import math as mlmath
from repro.ml.kmeans import CrucialKMeans

WORKERS = 8
K = 5
ITERATIONS = 6


def main():
    dataset = MLDataset("kmeans", partitions=WORKERS,
                        materialized_points=8000, seed=99,
                        nominal_points=556_000, nominal_bytes=10 ** 9)
    with CrucialEnvironment(seed=99, dso_nodes=2) as env:
        job = CrucialKMeans(dataset, k=K, iterations=ITERATIONS,
                            workers=WORKERS, run_id="example")
        result = env.run(job.train)

    print(f"trained k={K} on {WORKERS} cloud threads")
    print(f"  load phase      : {result.load_time:8.2f} simulated s")
    print(f"  iteration phase : {result.iteration_phase_time:8.2f} "
          f"simulated s ({result.iterations} iterations)")
    print(f"  delta history   : "
          + " ".join(f"{d:.1f}" for d in result.delta_history))

    # Quality check on the materialized sample.
    points = np.concatenate([dataset.materialize(i)
                             for i in range(WORKERS)])
    _s, _c, final_cost = mlmath.kmeans_partial(points, result.centroids)
    _s, _c, naive_cost = mlmath.kmeans_partial(
        points, points.mean(axis=0, keepdims=True))
    print(f"  clustering cost : {final_cost:,.0f} "
          f"(single-centroid baseline {naive_cost:,.0f})")
    assert final_cost < naive_cost
    return result


if __name__ == "__main__":
    main()
