"""Every example script runs to completion and self-checks.

The examples double as executable documentation; these tests keep
them from rotting.
"""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"

EXAMPLES = [
    "quickstart",
    "kmeans_clustering",
    "logistic_regression",
    "santa_claus",
    "fault_tolerance",
    "map_reduce_sync",
    "pywren_vs_crucial",
]


def load_example(name: str):
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs(name, capsys):
    module = load_example(name)
    result = module.main()  # each main() asserts its own correctness
    assert result is not None
    out = capsys.readouterr().out
    assert out.strip()  # examples narrate what they did
