"""Integration tests: whole-system scenarios at reduced scale."""

import numpy as np
import pytest

from repro import CrucialEnvironment
from repro.ml import MLDataset
from repro.ml import math as mlmath
from repro.ml.kmeans import CrucialKMeans
from repro.ml.logreg import CrucialLogisticRegression
from repro.ml.redis_kmeans import RedisKMeans
from repro.net import LatencyModel, Network
from repro.simulation.kernel import Kernel
from repro.sparklike import KMeansMLlib, LogisticRegressionWithSGD, SparkCluster
from repro.storage import ObjectStore

WORKERS = 6
SMALL = dict(partitions=WORKERS, materialized_points=3000,
             nominal_points=100_000, nominal_bytes=10 ** 8)


def small_dataset(kind, seed=123):
    return MLDataset(kind, seed=seed, **SMALL)


def test_crucial_kmeans_end_to_end():
    dataset = small_dataset("kmeans")
    with CrucialEnvironment(seed=81, dso_nodes=2) as env:
        job = CrucialKMeans(dataset, k=4, iterations=5, workers=WORKERS,
                            run_id="it-km")
        result = env.run(job.train)
    assert result.iterations == 5
    assert result.centroids.shape == (4, dataset.features)
    assert len(result.per_iteration) == 5
    assert result.total_time > result.iteration_phase_time > 0
    # The clustering criterion shrinks over iterations.
    assert result.delta_history[-1] < result.delta_history[0]


def test_crucial_and_spark_kmeans_converge_identically():
    dataset = small_dataset("kmeans")
    with CrucialEnvironment(seed=82, dso_nodes=1) as env:
        job = CrucialKMeans(dataset, k=4, iterations=4, workers=WORKERS,
                            run_id="it-km2", seed=7)
        crucial = env.run(job.train)
    with Kernel(seed=82) as kernel:
        network = Network(kernel, LatencyModel(2e-4), copy_messages=False)
        cluster = SparkCluster(kernel, network, workers=3)
        algorithm = KMeansMLlib(cluster, k=4, iterations=4, seed=7)
        spark = kernel.run_main(
            lambda: algorithm.train(dataset, ObjectStore(kernel)))
    np.testing.assert_allclose(crucial.centroids, spark.model,
                               rtol=1e-10)


def test_crucial_and_spark_logreg_same_losses():
    dataset = small_dataset("logreg")
    with CrucialEnvironment(seed=83, dso_nodes=1) as env:
        job = CrucialLogisticRegression(dataset, iterations=6,
                                        workers=WORKERS, run_id="it-lr")
        crucial = env.run(job.train)
    with Kernel(seed=83) as kernel:
        network = Network(kernel, LatencyModel(2e-4), copy_messages=False)
        cluster = SparkCluster(kernel, network, workers=3)
        algorithm = LogisticRegressionWithSGD(cluster, iterations=6)
        spark = kernel.run_main(
            lambda: algorithm.train(dataset, ObjectStore(kernel)))
    assert crucial.loss_history == pytest.approx(spark.history)
    assert crucial.loss_history[-1] < crucial.loss_history[0]


def test_redis_kmeans_runs_and_times_coherently():
    """The Redis-backed variant completes; Fig. 5's "always slower"
    ordering is asserted at full scale in the benchmark suite (at toy
    scale the Fig. 2a crossover legitimately favours Redis)."""
    dataset = small_dataset("kmeans")
    with CrucialEnvironment(seed=84, dso_nodes=1) as env:
        redis = env.run(
            RedisKMeans(dataset, k=4, iterations=4, workers=WORKERS,
                        run_id="it-km4").train)
    assert len(redis.per_iteration) == 4
    assert redis.total_time > redis.load_time > 0
    assert redis.iteration_phase_time == pytest.approx(
        sum(redis.per_iteration))


def test_kmeans_with_injected_function_failures():
    """Cloud threads retried with the same input still converge."""
    from repro import RetryPolicy
    from repro.core.runtime import RUNNER_FUNCTION

    dataset = small_dataset("kmeans")
    with CrucialEnvironment(seed=85, dso_nodes=1) as env:
        env.platform.inject_failures(RUNNER_FUNCTION, rate=0.3,
                                     kind="before")
        job = CrucialKMeans(dataset, k=3, iterations=3, workers=4,
                            run_id="it-km5",
                            retry_policy=RetryPolicy(max_retries=25,
                                                     backoff=0.1))
        result = env.run(job.train)
    assert result.iterations == 3


def test_kmeans_quality_beats_baseline():
    dataset = small_dataset("kmeans")
    with CrucialEnvironment(seed=86, dso_nodes=1) as env:
        result = env.run(
            CrucialKMeans(dataset, k=5, iterations=6, workers=WORKERS,
                          run_id="it-km6").train)
    points = np.concatenate([dataset.materialize(i)
                             for i in range(WORKERS)])
    _s, _c, cost = mlmath.kmeans_partial(points, result.centroids)
    _s, _c, naive = mlmath.kmeans_partial(
        points, points.mean(axis=0, keepdims=True))
    assert cost < naive


def test_environment_reuse_isolated_runs():
    """Two jobs in one environment don't interfere (distinct keys)."""
    dataset = small_dataset("kmeans")
    with CrucialEnvironment(seed=87, dso_nodes=1) as env:
        first = env.run(
            CrucialKMeans(dataset, k=3, iterations=2, workers=4,
                          run_id="job-a").train)
        second = env.run(
            CrucialKMeans(dataset, k=3, iterations=2, workers=4,
                          run_id="job-b").train)
    np.testing.assert_allclose(first.centroids, second.centroids)


def test_determinism_of_whole_training_run():
    def once():
        dataset = small_dataset("kmeans")
        with CrucialEnvironment(seed=88, dso_nodes=2) as env:
            result = env.run(
                CrucialKMeans(dataset, k=4, iterations=3,
                              workers=WORKERS, run_id="det").train)
            return result.total_time, result.centroids.sum()

    assert once() == once()
