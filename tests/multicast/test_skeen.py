"""Unit and property tests for Skeen's total-order multicast."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.multicast import SkeenMulticast
from repro.net import LatencyModel, Network
from repro.simulation import Kernel

MEMBERS = ["m0", "m1", "m2"]


def build(kernel, sigma=0.0, members=MEMBERS):
    network = Network(kernel, LatencyModel(0.001, sigma=sigma),
                      copy_messages=False)
    for m in members:
        network.register(m)
    log: dict[str, list] = {m: [] for m in members}
    group = SkeenMulticast(kernel, network, members,
                           deliver=lambda m, p: log[m].append(p))
    return network, group, log


def test_single_message_delivered_to_all():
    with Kernel(seed=1) as kernel:
        _, group, log = build(kernel)
        group.multicast("m0", "hello")
        kernel.run()
        assert all(log[m] == ["hello"] for m in MEMBERS)


def test_empty_group_rejected():
    with Kernel(seed=1) as kernel:
        network = Network(kernel, LatencyModel(0.001))
        with pytest.raises(ValueError):
            SkeenMulticast(kernel, network, [], deliver=lambda m, p: None)


def test_total_order_two_concurrent_senders():
    with Kernel(seed=2) as kernel:
        _, group, log = build(kernel, sigma=0.4)
        for i in range(10):
            group.multicast("m0", ("a", i))
            group.multicast("m1", ("b", i))
        kernel.run()
        sequences = [tuple(log[m]) for m in MEMBERS]
        assert len(sequences[0]) == 20
        assert sequences[0] == sequences[1] == sequences[2]


def test_on_delivered_callback_fires_per_member():
    with Kernel(seed=3) as kernel:
        _, group, _ = build(kernel)
        delivered = []
        group.multicast("m0", "x", on_delivered=delivered.append)
        kernel.run()
        assert sorted(delivered) == MEMBERS


def test_sender_sequence_preserved_fifo():
    """Messages from one sender are delivered in send order."""
    with Kernel(seed=4) as kernel:
        _, group, log = build(kernel, sigma=0.5)
        for i in range(15):
            group.multicast("m2", i)
        kernel.run()
        for m in MEMBERS:
            assert log[m] == sorted(log[m])


def test_delivery_waits_for_commit():
    """Nothing is delivered before the full three-phase exchange."""
    with Kernel(seed=5) as kernel:
        _, group, log = build(kernel)
        group.multicast("m0", "x")
        # one-way latency is 1ms; request+propose+commit needs >= 3ms.
        kernel.run(until=0.0025)
        assert all(not entries for entries in log.values())
        kernel.run()
        assert all(entries == ["x"] for entries in log.values())


def test_message_to_crashed_member_is_dropped():
    with Kernel(seed=6) as kernel:
        network, group, log = build(kernel)
        network.endpoint("m2").crash()
        group.expected.discard("m2")  # what view synchrony would do
        group.multicast("m0", "x")
        kernel.run()
        assert log["m0"] == ["x"]
        assert log["m1"] == ["x"]
        assert log["m2"] == []


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    batches=st.lists(
        st.tuples(st.sampled_from(MEMBERS), st.integers(0, 99)),
        min_size=1, max_size=25),
)
def test_property_total_order_under_random_delays(seed, batches):
    """All members deliver the exact same sequence, whatever the jitter."""
    with Kernel(seed=seed) as kernel:
        _, group, log = build(kernel, sigma=0.8)
        for sender, value in batches:
            group.multicast(sender, (sender, value))
        kernel.run()
        sequences = {m: tuple(log[m]) for m in MEMBERS}
        assert len(sequences["m0"]) == len(batches)
        assert sequences["m0"] == sequences["m1"] == sequences["m2"]
