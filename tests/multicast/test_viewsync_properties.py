"""Property test: view synchrony under randomized crash timing.

Whatever instant a member crashes, the surviving members must deliver
*identical* message sequences — the agreement half of view synchrony —
and the run must terminate (no multicast stalls forever on the dead
member).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import MembershipService, Node
from repro.multicast import ViewSynchronousGroup
from repro.net import LatencyModel, Network
from repro.simulation import Kernel

MEMBERS = ("m0", "m1", "m2", "m3")


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 9999),
    crash_at=st.floats(min_value=0.0, max_value=0.05),
    victim=st.sampled_from(MEMBERS),
    messages=st.lists(st.tuples(st.sampled_from(MEMBERS[:3]),
                                st.integers(0, 99)),
                      min_size=1, max_size=15),
)
def test_survivors_agree_under_random_crash(seed, crash_at, victim,
                                            messages):
    with Kernel(seed=seed) as kernel:
        network = Network(kernel, LatencyModel(0.002, sigma=0.5),
                          copy_messages=False)
        membership = MembershipService(kernel,
                                       failure_detection_delay=0.5)
        nodes = {}
        log: dict[str, list] = {}
        group = ViewSynchronousGroup(
            kernel, network, membership,
            deliver=lambda m, p: log[m].append(p))
        for name in MEMBERS:
            node = Node(kernel, network, name)
            nodes[name] = node
            log[name] = []
            membership.join(node)

        def crash():
            nodes[victim].crash()
            membership.report_crash(victim)

        kernel.call_later(crash_at, crash)
        senders_alive = [s for s, _v in messages if s != victim]
        for sender, value in messages:
            group.multicast(sender, (sender, value))
        kernel.run()

        survivors = [m for m in MEMBERS if m != victim]
        sequences = {m: tuple(log[m]) for m in survivors}
        # Agreement: all survivors delivered the same sequence.
        assert len(set(sequences.values())) == 1
        # Liveness: messages from surviving senders (sent after the
        # crash was flushed) are not lost forever — at minimum, the
        # run terminated, and post-view messages from survivors whose
        # REQUESTs reached the new view got delivered.
        delivered = set(sequences[survivors[0]])
        assert delivered <= {(s, v) for s, v in messages}
