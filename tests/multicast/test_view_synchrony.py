"""Unit tests for view-synchronous multicast."""

import pytest

from repro.cluster import MembershipService, Node
from repro.multicast import ViewSynchronousGroup
from repro.net import LatencyModel, Network
from repro.simulation import Kernel


def build(kernel, names=("n0", "n1", "n2"), detection=1.0):
    network = Network(kernel, LatencyModel(0.001), copy_messages=False)
    membership = MembershipService(kernel, failure_detection_delay=detection)
    nodes = {}
    log: dict[str, list] = {}
    views = []
    group = ViewSynchronousGroup(
        kernel, network, membership,
        deliver=lambda m, p: log[m].append(p),
        on_view=views.append)
    for name in names:
        node = Node(kernel, network, name)
        nodes[name] = node
        log[name] = []
        membership.join(node)
    return network, membership, nodes, group, log, views


def test_views_delivered_in_order():
    with Kernel(seed=1) as kernel:
        _, _, _, group, _, views = build(kernel)
        ids = [v.view_id for v in views]
        assert ids == sorted(ids)
        assert views[-1].members == ("n0", "n1", "n2")


def test_multicast_in_current_view():
    with Kernel(seed=2) as kernel:
        _, _, _, group, log, _ = build(kernel)
        group.multicast("n0", "m")
        kernel.run()
        assert all(log[n] == ["m"] for n in ("n0", "n1", "n2"))


def test_multicast_without_view_rejected():
    with Kernel(seed=3) as kernel:
        network = Network(kernel, LatencyModel(0.001))
        membership = MembershipService(kernel)
        group = ViewSynchronousGroup(kernel, network, membership,
                                     deliver=lambda m, p: None)
        with pytest.raises(RuntimeError):
            group.multicast("x", "y")


def test_crash_mid_multicast_is_flushed():
    """A message stalled on a dead member completes at the new view."""
    with Kernel(seed=4) as kernel:
        network, membership, nodes, group, log, _ = build(kernel)
        # Crash n2 immediately; its REQUEST is dropped, so the message
        # stalls until failure detection installs the new view.
        nodes["n2"].crash()
        membership.report_crash("n2")
        group.multicast("n0", "survivor-message")
        kernel.run()
        assert log["n0"] == ["survivor-message"]
        assert log["n1"] == ["survivor-message"]
        assert log["n2"] == []


def test_messages_after_view_change_use_new_membership():
    with Kernel(seed=5) as kernel:
        network, membership, nodes, group, log, _ = build(kernel)
        kernel.run()
        nodes["n1"].crash()
        membership.report_crash("n1")
        kernel.run(until=2.0)  # detection delay is 1s
        assert group.view.members == ("n0", "n2")
        group.multicast("n0", "post-change")
        kernel.run()
        assert log["n0"] == ["post-change"]
        assert log["n2"] == ["post-change"]
        assert log["n1"] == []


def test_join_mid_stream_total_order_among_common_members():
    with Kernel(seed=6) as kernel:
        network, membership, nodes, group, log, _ = build(
            kernel, names=("n0", "n1"))
        group.multicast("n0", 1)
        kernel.run()
        node = Node(kernel, network, "n2")
        log["n2"] = []
        membership.join(node)
        group.multicast("n1", 2)
        kernel.run()
        assert log["n0"] == [1, 2]
        assert log["n1"] == [1, 2]
        assert log["n2"] == [2]  # joined after message 1
