"""Unit tests for the mini-Spark engine."""

import pytest

from repro.net import LatencyModel, Network
from repro.simulation import Kernel
from repro.simulation.thread import now
from repro.sparklike import RDD, SparkCluster


@pytest.fixture
def kernel():
    with Kernel(seed=53) as k:
        yield k


@pytest.fixture
def cluster(kernel):
    network = Network(kernel, LatencyModel(0.0002), copy_messages=False)
    return SparkCluster(kernel, network, workers=2, cores_per_worker=4)


def test_parallelize_splits_items(cluster):
    rdd = RDD.parallelize(cluster, list(range(10)), num_partitions=4)
    assert rdd.num_partitions == 4
    assert sorted(sum(rdd.partitions, [])) == list(range(10))


def test_parallelize_invalid_partitions(cluster):
    with pytest.raises(ValueError):
        RDD.parallelize(cluster, [1], num_partitions=0)


def test_map_partitions_transforms(kernel, cluster):
    def main():
        rdd = RDD.parallelize(cluster, list(range(8)), num_partitions=4)
        doubled = rdd.map_partitions(lambda part: [x * 2 for x in part])
        return sorted(sum(doubled.collect(), []))

    assert kernel.run_main(main) == [0, 2, 4, 6, 8, 10, 12, 14]


def test_reduce_combines_at_driver(kernel, cluster):
    def main():
        rdd = RDD.parallelize(cluster, list(range(100)), num_partitions=8)
        return rdd.reduce(fn=lambda a, b: a + b, map_fn=sum)

    assert kernel.run_main(main) == sum(range(100))


def test_count(kernel, cluster):
    def main():
        rdd = RDD.parallelize(cluster, list(range(17)), num_partitions=5)
        return rdd.count()

    assert kernel.run_main(main) == 17


def test_tasks_run_in_parallel_across_cores(kernel, cluster):
    # 8 partitions, 8 total cores, 1s each => ~1s + overheads, not 8s.
    def main():
        rdd = RDD.parallelize(cluster, list(range(8)), num_partitions=8)
        t0 = now()
        rdd.map_partitions(lambda part: part, cost_fn=lambda _p: 1.0)
        return now() - t0

    elapsed = kernel.run_main(main)
    assert 1.0 < elapsed < 1.5


def test_tasks_queue_when_cores_exhausted(kernel, cluster):
    # 16 partitions on 8 cores of 1s each => ~2s.
    def main():
        rdd = RDD.parallelize(cluster, list(range(16)), num_partitions=16)
        t0 = now()
        rdd.map_partitions(lambda part: part, cost_fn=lambda _p: 1.0)
        return now() - t0

    elapsed = kernel.run_main(main)
    assert 2.0 < elapsed < 2.6


def test_stage_and_task_counters(kernel, cluster):
    def main():
        rdd = RDD.parallelize(cluster, list(range(8)), num_partitions=4)
        rdd.map_partitions(lambda p: p)
        rdd.reduce(fn=lambda a, b: a + b, map_fn=sum)

    kernel.run_main(main)
    assert cluster.stages_run == 2
    assert cluster.tasks_run == 8


def test_broadcast_charges_per_executor(kernel, cluster):
    def main():
        rdd = RDD.parallelize(cluster, [1], num_partitions=1)
        t0 = now()
        rdd.broadcast(b"x" * 1_100_000)  # ~1 MB at ~1.1 GB/s per link
        return now() - t0

    elapsed = kernel.run_main(main)
    assert elapsed > 1.5e-3  # 2 sequential 1MB pushes + base latency


def test_reduce_charges_partial_transfers(kernel, cluster):
    def main():
        rdd = RDD.parallelize(cluster, list(range(4)), num_partitions=4)
        t0 = now()
        rdd.reduce(fn=lambda a, b: a + b,
                   map_fn=lambda part: b"y" * 550_000)  # 0.5 MB partials
        return now() - t0

    elapsed = kernel.run_main(main)
    # 4 partials of 0.5 MB over ~1.1 GB/s links: >= 1.8 ms of transfer.
    assert elapsed > 1.8e-3
