"""Unit tests for the MLlib-equivalent algorithms."""

import numpy as np
import pytest

from repro.ml import MLDataset
from repro.net import LatencyModel, Network
from repro.simulation import Kernel
from repro.sparklike import KMeansMLlib, LogisticRegressionWithSGD, SparkCluster
from repro.sparklike.mllib import read_dataset
from repro.storage import ObjectStore

SMALL = dict(partitions=4, materialized_points=2000,
             nominal_points=50_000, nominal_bytes=10 ** 7)


def build(seed=55):
    kernel = Kernel(seed=seed)
    network = Network(kernel, LatencyModel(2e-4), copy_messages=False)
    cluster = SparkCluster(kernel, network, workers=2, cores_per_worker=4)
    return kernel, cluster, ObjectStore(kernel)


def test_read_dataset_charges_load_time():
    kernel, cluster, store = build()
    with kernel:
        dataset = MLDataset("kmeans", **SMALL)

        def main():
            t0 = kernel.now
            rdd = read_dataset(cluster, dataset, store)
            return kernel.now - t0, rdd.num_partitions

        elapsed, partitions = kernel.run_main(main)
    assert partitions == 4
    assert elapsed > 0.01  # transfer + parse at nominal scale


def test_kmeans_mllib_converges():
    kernel, cluster, store = build()
    with kernel:
        dataset = MLDataset("kmeans", **SMALL)
        algorithm = KMeansMLlib(cluster, k=4, iterations=5)
        result = kernel.run_main(lambda: algorithm.train(dataset, store))
    assert result.model.shape == (4, dataset.features)
    assert len(result.per_iteration) == 5
    # Within-cluster cost decreases.
    assert result.history[-1] < result.history[0]
    assert result.total_time > result.load_time


def test_logreg_mllib_loss_decreases():
    kernel, cluster, store = build()
    with kernel:
        dataset = MLDataset("logreg", **SMALL)
        algorithm = LogisticRegressionWithSGD(cluster, iterations=6)
        result = kernel.run_main(lambda: algorithm.train(dataset, store))
    assert result.model.shape == (dataset.features,)
    assert result.history[-1] < result.history[0]


def test_iteration_pays_mllib_overhead():
    kernel, cluster, store = build()
    with kernel:
        dataset = MLDataset("kmeans", **SMALL)
        algorithm = KMeansMLlib(cluster, k=2, iterations=2)
        result = kernel.run_main(lambda: algorithm.train(dataset, store))
    overhead = cluster.config.spark.mllib_kmeans_iteration_overhead
    assert min(result.per_iteration) > overhead


def test_spark_compute_inflation_visible():
    from repro.ml.costmodel import kmeans_iteration_cost

    plain = kmeans_iteration_cost(10_000, 10, 4)
    spark = kmeans_iteration_cost(10_000, 10, 4, spark=True)
    assert spark == pytest.approx(
        plain * 1.08, rel=1e-9)


def test_same_seed_same_model():
    def once():
        kernel, cluster, store = build(seed=77)
        with kernel:
            dataset = MLDataset("kmeans", **SMALL)
            algorithm = KMeansMLlib(cluster, k=3, iterations=3, seed=9)
            result = kernel.run_main(
                lambda: algorithm.train(dataset, store))
            return result.model

    np.testing.assert_array_equal(once(), once())
