"""Tests for the shuffle / reduceByKey stage."""

import pytest

from repro.net import LatencyModel, Network
from repro.simulation import Kernel
from repro.sparklike import RDD, SparkCluster
from repro.sparklike.shuffle import reduce_by_key, shuffle


@pytest.fixture
def kernel():
    with Kernel(seed=211) as k:
        yield k


@pytest.fixture
def cluster(kernel):
    network = Network(kernel, LatencyModel(0.0002), copy_messages=False)
    return SparkCluster(kernel, network, workers=3, cores_per_worker=4)


def records(n):
    return [(f"key-{i % 7}", i) for i in range(n)]


def test_shuffle_groups_keys_into_one_partition(kernel, cluster):
    def main():
        rdd = RDD.parallelize(cluster, records(70), num_partitions=5)
        shuffled = shuffle(rdd, num_partitions=4)
        return shuffled.partitions

    partitions = kernel.run_main(main)
    locations: dict = {}
    for index, partition in enumerate(partitions):
        for key, _value in partition:
            locations.setdefault(key, set()).add(index)
    # Every key lands in exactly one output partition.
    assert all(len(spots) == 1 for spots in locations.values())
    total = sum(len(p) for p in partitions)
    assert total == 70


def test_shuffle_preserves_records(kernel, cluster):
    def main():
        rdd = RDD.parallelize(cluster, records(40), num_partitions=4)
        shuffled = shuffle(rdd)
        return sorted(sum(shuffled.partitions, []))

    assert kernel.run_main(main) == sorted(records(40))


def test_reduce_by_key_sums(kernel, cluster):
    def main():
        rdd = RDD.parallelize(cluster, records(70), num_partitions=5)
        reduced = reduce_by_key(rdd, lambda a, b: a + b,
                                num_partitions=3)
        return sorted(sum(reduced.partitions, []))

    result = dict(kernel.run_main(main))
    expected: dict = {}
    for key, value in records(70):
        expected[key] = expected.get(key, 0) + value
    assert result == expected


def test_shuffle_charges_cross_executor_transfers(kernel, cluster):
    def main():
        rdd = RDD.parallelize(cluster, records(60), num_partitions=6)
        before = cluster.network.messages_sent
        shuffle(rdd, num_partitions=6)
        return cluster.network.messages_sent - before

    messages = kernel.run_main(main)
    # P x R minus co-located pairs: with 6x6 on 3 executors, 2/3 of
    # the 36 block transfers cross the network.
    assert messages == pytest.approx(24, abs=6)


def test_shuffle_takes_time(kernel, cluster):
    def main():
        rdd = RDD.parallelize(cluster, records(60), num_partitions=6)
        t0 = kernel.now
        shuffle(rdd)
        return kernel.now - t0

    assert kernel.run_main(main) > 0


def test_empty_partitions_survive_shuffle(kernel, cluster):
    def main():
        rdd = RDD.parallelize(cluster, [("only", 1)], num_partitions=4)
        reduced = reduce_by_key(rdd, lambda a, b: a + b)
        return sorted(sum(reduced.partitions, []))

    assert kernel.run_main(main) == [("only", 1)]
