"""Open-loop generator: arrivals, tenancy, determinism, auditing."""

import pytest

from repro import (
    CrucialEnvironment,
    OpenLoopGenerator,
    RateProfile,
    ServingMetrics,
    TenantSpec,
)
from repro.workload.generator import RequestRecord


# -- RateProfile --------------------------------------------------------------


def test_rate_profile_interpolates_and_clamps():
    profile = RateProfile([(0.0, 10.0), (4.0, 10.0), (8.0, 50.0)])
    assert profile.at(-1.0) == 10.0
    assert profile.at(2.0) == 10.0
    assert profile.at(6.0) == pytest.approx(30.0)
    assert profile.at(100.0) == 50.0
    assert profile.peak == 50.0
    assert RateProfile.constant(7.0).at(3.0) == 7.0


def test_rate_profile_diurnal_shape():
    profile = RateProfile.diurnal(base=10, peak=100, warmup=2,
                                  ramp=4, plateau=6)
    assert profile.at(0.0) == 10
    assert profile.at(2.0) == 10
    assert profile.at(4.0) == pytest.approx(55.0)  # mid-ramp
    assert profile.at(8.0) == 100
    assert profile.at(16.0) == 10


def test_rate_profile_validation():
    with pytest.raises(ValueError):
        RateProfile([])
    with pytest.raises(ValueError):
        RateProfile([(0.0, -1.0)])
    with pytest.raises(ValueError):
        RateProfile([(2.0, 1.0), (1.0, 1.0)])


# -- the generator ------------------------------------------------------------


def run_workload(seed, tenants, profile, duration, audit=False):
    with CrucialEnvironment(seed=seed, dso_nodes=1) as env:
        def main():
            generator = OpenLoopGenerator(env, tenants, profile, duration)
            metrics = generator.run()
            final = generator.final_counts() if audit else {}
            return metrics, final

        return env.run(main)


def test_arrival_rate_tracks_constant_profile():
    metrics, _ = run_workload(3, [TenantSpec(name="t")],
                              RateProfile.constant(80.0), 10.0)
    arrivals = len(metrics.arrivals.events)
    # Poisson(800): +-4 sigma is ~113.
    assert 650 < arrivals < 950
    assert len(metrics.records) == arrivals
    assert metrics.errors == 0


def test_thinning_tracks_time_varying_profile():
    profile = RateProfile([(0.0, 20.0), (5.0, 20.0), (5.0, 120.0),
                           (10.0, 120.0)])
    metrics, _ = run_workload(5, [TenantSpec(name="t")], profile, 10.0)
    quiet = metrics.arrivals.count_between(0.0, 5.0)
    busy = metrics.arrivals.count_between(5.0, 10.0)
    # 100 vs 600 expected; the ratio is the signal.
    assert busy > 3 * quiet


def test_tenant_shares_respected():
    tenants = [TenantSpec(name="big", share=0.75),
               TenantSpec(name="small", share=0.25)]
    metrics, _ = run_workload(11, tenants, RateProfile.constant(60.0),
                              10.0)
    counts = {"big": 0, "small": 0}
    for record in metrics.records:
        counts[record.tenant] += 1
    total = sum(counts.values())
    assert counts["big"] / total == pytest.approx(0.75, abs=0.06)


def test_deterministic_for_fixed_seed():
    tenants = [TenantSpec(name="t", read_fraction=0.5)]
    runs = [run_workload(17, tenants, RateProfile.constant(40.0), 5.0)
            for _ in range(2)]
    histories = [
        [(r.tenant, r.key, r.kind, r.arrived, r.finished)
         for r in metrics.records]
        for metrics, _ in runs
    ]
    assert histories[0] == histories[1]


def test_open_loop_arrivals_ignore_server_speed():
    """The defining property: a slow grid does not throttle offered
    load.  The same seed produces the *identical* arrival process
    whether operations are free or expensive — only latency absorbs
    the overload."""
    profile = RateProfile.constant(30.0)
    fast, _ = run_workload(
        23, [TenantSpec(name="t", cost=0.0)], profile, 6.0)
    slow, _ = run_workload(
        23, [TenantSpec(name="t", cost=0.5)], profile, 6.0)
    assert slow.arrivals.events == fast.arrivals.events
    assert len(slow.records) == len(fast.records)
    # With ~30/s offered against ~16/s of service capacity the queue
    # grows without bound; tails explode instead of arrivals pausing.
    assert slow.tail(99.0) > 10 * max(fast.tail(99.0), 0.001)


def test_acked_writes_match_final_counts():
    tenants = [TenantSpec(name="w", keys=8, read_fraction=0.2)]
    metrics, final = run_workload(29, tenants,
                                  RateProfile.constant(50.0), 6.0,
                                  audit=True)
    assert metrics.errors == 0
    assert metrics.total_acked > 0
    assert sum(final.values()) == metrics.total_acked
    assert final == metrics.acked_writes


def test_faas_entry_path():
    tenants = [TenantSpec(name="api", via="faas", read_fraction=0.5,
                          keys=4)]
    with CrucialEnvironment(seed=31, dso_nodes=1) as env:
        def main():
            generator = OpenLoopGenerator(
                env, tenants, RateProfile.constant(10.0), 5.0)
            metrics = generator.run()
            return metrics, generator.final_counts()

        metrics, final = env.run(main)
        assert len(metrics.faas_arrivals.events) == len(metrics.records)
        assert metrics.errors == 0
        assert sum(final.values()) == metrics.total_acked
        assert env.platform.invocation_count() > 0


def test_generator_validation():
    with CrucialEnvironment(seed=1, dso_nodes=1) as env:
        with pytest.raises(ValueError):
            OpenLoopGenerator(env, [], RateProfile.constant(1.0), 1.0)
        with pytest.raises(ValueError):
            OpenLoopGenerator(env, [TenantSpec(name="t")],
                              RateProfile.constant(0.0), 1.0)


# -- ServingMetrics -----------------------------------------------------------


def _record(finished, latency):
    return RequestRecord(tenant="t", key="k", kind="read",
                         arrived=finished - latency, finished=finished,
                         ok=True)


def test_window_latencies_selects_by_completion_time():
    metrics = ServingMetrics()
    metrics.records.extend(
        [_record(1.0, 0.1), _record(2.5, 0.2), _record(3.5, 0.4)])
    assert metrics.window_latencies(2.0, 3.0) == pytest.approx([0.2])
    assert sorted(metrics.window_latencies(0.0, 10.0)) == \
        pytest.approx([0.1, 0.2, 0.4])
    assert metrics.window_latencies(4.0, 5.0) == []
    assert metrics.tail(50.0) == pytest.approx(0.2)
    assert ServingMetrics().tail(99.0) == 0.0
