"""The shared Zipf sampler: exact bounded pmf, O(1) draws.

Includes the regression the sampler exists for: the tail-clamping
draw it replaced (``min(int(rng.zipf(s)) - 1, n - 1)``) dumped the
unbounded distribution's entire tail mass onto the last key — the
empirical frequency of the coldest rank must instead match its
analytic probability.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import ZipfSampler

SAMPLES = 200_000


@pytest.mark.parametrize("seed", [5, 11, 23])
@pytest.mark.parametrize("n,s", [(64, 1.1), (200, 1.2), (16, 0.8)])
def test_empirical_matches_analytic_pmf(seed, n, s):
    sampler = ZipfSampler(n, s, seed=seed)
    counts = np.bincount(sampler.sample_many(SAMPLES), minlength=n)
    empirical = counts / SAMPLES
    pmf = sampler.pmf()
    # Hot ranks carry enough mass for a tight relative check.
    for rank in range(min(10, n)):
        assert empirical[rank] == pytest.approx(pmf[rank], rel=0.08)
    # Everything else within a loose absolute band.
    assert np.abs(empirical - pmf).max() < 0.01


def test_cold_tail_not_clamped():
    """Regression for the old ``min(int(rng.zipf(s)) - 1, n - 1)``
    draw, which piled tens of percent of mass onto the last rank."""
    n = 64
    sampler = ZipfSampler(n, 1.2, seed=7)
    draws = sampler.sample_many(SAMPLES)
    last = float(np.mean(draws == n - 1))
    pmf_last = sampler.pmf(n - 1)
    assert last < 3 * pmf_last + 1e-3  # the clamped draw gave ~100x
    # And the old buggy recipe really does concentrate on the tail,
    # so this test would fail against it.
    rng = np.random.Generator(np.random.PCG64(7))
    clamped = np.minimum(rng.zipf(1.2, size=SAMPLES) - 1, n - 1)
    assert float(np.mean(clamped == n - 1)) > 10 * pmf_last


def test_deterministic_for_fixed_seed():
    a = ZipfSampler(50, 1.1, seed=42)
    b = ZipfSampler(50, 1.1, seed=42)
    assert [a.sample() for _ in range(100)] == \
        [b.sample() for _ in range(100)]
    assert list(a.sample_many(64)) == list(b.sample_many(64))


def test_accepts_external_generator():
    rng = np.random.Generator(np.random.PCG64(9))
    sampler = ZipfSampler(10, 1.0, rng=rng)
    assert sampler.rng is rng


def test_single_rank():
    sampler = ZipfSampler(1, 1.2, seed=1)
    assert sampler.sample() == 0
    assert sampler.pmf(0) == 1.0


def test_zero_skew_is_uniform():
    sampler = ZipfSampler(8, 0.0, seed=3)
    assert np.allclose(sampler.pmf(), 1 / 8)
    counts = np.bincount(sampler.sample_many(SAMPLES), minlength=8)
    assert counts.min() / SAMPLES > 0.10  # uniform: each ~0.125


def test_validation():
    with pytest.raises(ValueError):
        ZipfSampler(0)
    with pytest.raises(ValueError):
        ZipfSampler(4, s=-0.1)


@settings(max_examples=40, deadline=None)
@given(n=st.integers(min_value=1, max_value=128),
       s=st.floats(min_value=0.0, max_value=2.5),
       seed=st.integers(min_value=0, max_value=2**31))
def test_sampler_invariants(n, s, seed):
    sampler = ZipfSampler(n, s, seed=seed)
    pmf = sampler.pmf()
    assert pmf.sum() == pytest.approx(1.0)
    assert np.all(np.diff(pmf) <= 1e-12)  # monotone: rank 0 hottest
    draws = sampler.sample_many(256)
    assert draws.min() >= 0 and draws.max() < n
    assert 0 <= sampler.sample() < n
