"""Autoscaler control loop: scale out/in, bounds, warm pool, rent."""

import pytest

from repro import (
    Autoscaler,
    AutoscalerPolicy,
    CrucialEnvironment,
    NodeRentMeter,
    OpenLoopGenerator,
    RateProfile,
    ServingMetrics,
    TenantSpec,
)
from repro.core.runtime import RUNNER_FUNCTION
from repro.harness.serving import serving_config
from repro.simulation.thread import sleep

TENANT = TenantSpec(name="web", keys=48, zipf_s=1.1,
                    read_fraction=0.9, cost=0.008)


def scaled_run(seed, profile, duration, policy, nodes=1,
               tenants=(TENANT,)):
    """Run open-loop traffic with an autoscaler; return (metrics,
    scaler, final member-node count)."""
    with CrucialEnvironment(seed=seed, dso_nodes=nodes,
                            config=serving_config()) as env:
        def main():
            generator = OpenLoopGenerator(env, list(tenants), profile,
                                          duration)
            scaler = Autoscaler(env, generator.metrics,
                                policy=policy).start()
            metrics = generator.run()
            scaler.stop()
            return metrics, scaler

        metrics, scaler = env.run(main)
        return metrics, scaler, len(env.dso.member_nodes())


def test_scales_out_under_overload_then_back_in():
    # 30/s trough -> 320/s crest against ~250/s-per-node capacity,
    # then a long trough so the added capacity drains back out.
    profile = RateProfile([(0.0, 30.0), (3.0, 30.0), (6.0, 320.0),
                           (12.0, 320.0), (14.0, 30.0), (26.0, 30.0)])
    policy = AutoscalerPolicy(epoch=1.0, slo_p99=0.100, min_nodes=1,
                              max_nodes=4, cooldown_epochs=2)
    metrics, scaler, nodes_end = scaled_run(7, profile, 26.0, policy)
    actions = [e.action for e in scaler.grid_events()]
    assert "add-node" in actions
    assert "remove-node" in actions
    assert metrics.errors == 0
    assert nodes_end < max(e.nodes_after for e in scaler.grid_events())


def test_respects_node_bounds_and_cooldown():
    profile = RateProfile.constant(500.0)  # hopelessly overloaded
    policy = AutoscalerPolicy(epoch=1.0, slo_p99=0.050, min_nodes=1,
                              max_nodes=2, cooldown_epochs=2)
    _, scaler, nodes_end = scaled_run(13, profile, 10.0, policy)
    events = scaler.grid_events()
    assert events, "overload must trigger at least one scale-out"
    assert all(e.nodes_after <= 2 for e in events)
    assert nodes_end <= 2
    # Consecutive grid decisions are separated by the cooldown: an
    # event at tick T holds ticks T+1..T+cooldown still.
    for before, after in zip(events, events[1:]):
        assert after.time - before.time >= \
            (policy.cooldown_epochs + 1) * policy.epoch - 1e-9


def test_never_scales_below_min_nodes():
    profile = RateProfile.constant(2.0)  # nearly idle 3-node cluster
    policy = AutoscalerPolicy(epoch=1.0, min_nodes=2, max_nodes=4,
                              idle_epochs=2)
    _, scaler, nodes_end = scaled_run(19, profile, 15.0, policy, nodes=3)
    assert nodes_end == 2
    assert all(e.nodes_after >= 2 for e in scaler.grid_events())


def test_scale_events_record_membership_views():
    profile = RateProfile([(0.0, 40.0), (2.0, 400.0), (8.0, 400.0)])
    policy = AutoscalerPolicy(epoch=1.0, slo_p99=0.080, max_nodes=3)
    _, scaler, _ = scaled_run(23, profile, 8.0, policy)
    events = scaler.grid_events()
    assert events
    # Each grid event pins the membership view it installed — the
    # fence in-flight requests retry against.
    views = [e.view_id for e in events]
    assert all(v is not None for v in views)
    assert views == sorted(views)
    assert len(set(views)) == len(views)


def test_warm_pool_grows_with_faas_traffic_and_reclaims():
    api = TenantSpec(name="api", via="faas", keys=8,
                     read_fraction=0.5, cost=0.005)
    policy = AutoscalerPolicy(epoch=1.0, min_warm=1, faas_service=0.05,
                              warm_headroom=2.0)
    with CrucialEnvironment(seed=29, dso_nodes=1,
                            config=serving_config()) as env:
        def main():
            metrics = ServingMetrics()
            scaler = Autoscaler(env, metrics, policy=policy)
            scaler.start()  # pre-warms min_warm at t=0
            warm0 = env.platform.warm_container_count(RUNNER_FUNCTION)
            generator = OpenLoopGenerator(
                env, [api], RateProfile.constant(60.0), 6.0,
                metrics=metrics)
            generator.run()
            warm_peak = env.platform.warm_container_count(RUNNER_FUNCTION)
            sleep(6.0)  # idle epochs: the pool shrinks back
            scaler.stop()
            warm_end = env.platform.warm_container_count(RUNNER_FUNCTION)
            return scaler, warm0, warm_peak, warm_end

        scaler, warm0, warm_peak, warm_end = env.run(main)
    assert warm0 == policy.min_warm
    # 60/s x 50ms x 2.0 headroom -> a ~6-container target.
    assert warm_peak > policy.min_warm
    assert warm_end == policy.min_warm
    actions = [e.action for e in scaler.events]
    assert "pre-warm" in actions
    assert "reclaim" in actions


def test_node_rent_meter_integrates_member_node_seconds():
    with CrucialEnvironment(seed=3, dso_nodes=2) as env:
        rent = NodeRentMeter(env, env.cost_ledger, rate_per_hour=3.6)

        def main():
            sleep(10.0)          # 2 nodes x 10s
            env.dso.add_node()
            sleep(5.0)           # 3 nodes x 5s
            env.cost_ledger.settle()
            return rent.node_seconds

        node_seconds = env.run(main)
        # add_node happens mid-interval without a settle, so the meter
        # bills the whole 15s window at the *final* node count unless
        # settled at the boundary — the autoscaler settles before every
        # scale decision for exactly this reason.  Here we settled only
        # at the end: 3 nodes x 15s.
        assert node_seconds == pytest.approx(45.0)
        assert env.cost_ledger.total_dollars == \
            pytest.approx(45.0 * 3.6 / 3600.0)


def test_node_rent_meter_exact_across_settles():
    with CrucialEnvironment(seed=3, dso_nodes=2) as env:
        rent = NodeRentMeter(env, env.cost_ledger, rate_per_hour=3.6)

        def main():
            sleep(10.0)
            rent.settle()        # close the 2-node interval
            env.dso.add_node()
            sleep(5.0)
            rent.settle()
            return rent.node_seconds

        assert env.run(main) == pytest.approx(2 * 10 + 3 * 5)


def test_member_nodes_excludes_drained_members():
    with CrucialEnvironment(seed=5, dso_nodes=3) as env:
        def main():
            victim = env.dso.member_nodes()[-1].name
            env.dso.remove_node(victim)
            sleep(2.0)  # drain
            return victim

        victim = env.run(main)
        members = [n.name for n in env.dso.member_nodes()]
        assert victim not in members
        assert len(members) == 2
        # The departed node is still *alive* (graceful leave), which
        # is exactly why the autoscaler counts members, not live nodes.
        assert len(env.dso.live_nodes()) == 3


def test_reclaim_idle_keeps_requested_floor():
    with CrucialEnvironment(seed=7, dso_nodes=1) as env:
        def main():
            env.pre_warm(4)
            reclaimed = env.platform.reclaim_idle(RUNNER_FUNCTION, keep=1)
            return reclaimed, env.platform.warm_container_count(
                RUNNER_FUNCTION)

        reclaimed, warm = env.run(main)
        assert reclaimed == 3
        assert warm == 1
