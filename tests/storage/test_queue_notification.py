"""Unit tests for the SQS-like queue and SNS-like notification services."""

import pytest

from repro.errors import NoSuchKeyError
from repro.simulation import Kernel
from repro.simulation.thread import now, sleep, spawn
from repro.storage import NotificationService, QueueService


@pytest.fixture
def kernel():
    with Kernel(seed=23) as k:
        yield k


@pytest.fixture
def sqs(kernel):
    service = QueueService(kernel)
    service.create_queue("q")
    return service


def test_send_receive_round_trip(kernel, sqs):
    def main():
        sqs.send("q", {"job": 1})
        batch = sqs.receive("q", wait=10.0)  # ride out delivery lag
        return [m.body for m in batch]

    assert kernel.run_main(main) == [{"job": 1}]


def test_receive_empty_queue_returns_nothing(kernel, sqs):
    def main():
        return sqs.receive("q")

    assert kernel.run_main(main) == []


def test_long_poll_returns_when_message_arrives(kernel, sqs):
    def producer():
        sleep(0.5)
        sqs.send("q", "late")

    def main():
        spawn(producer)
        batch = sqs.receive("q", wait=10.0)
        return [m.body for m in batch], now()

    bodies, elapsed = kernel.run_main(main)
    assert bodies == ["late"]
    # Returned on arrival + delivery lag, well before the deadline.
    assert 0.5 < elapsed < 5.0


def test_long_poll_times_out(kernel, sqs):
    def main():
        batch = sqs.receive("q", wait=1.0)
        return batch, now()

    batch, elapsed = kernel.run_main(main)
    assert batch == []
    assert elapsed >= 1.0


def test_visibility_timeout_redelivers_unacked(kernel, sqs):
    service = QueueService(kernel, name="sqs2")
    service.create_queue("v", visibility_timeout=1.0)

    def main():
        service.send("v", "m")
        first = service.receive("v", wait=10.0)
        assert first
        # Not deleted: invisible now, redelivered after the timeout.
        assert service.receive("v") == []
        sleep(1.5)
        second = service.receive("v")
        return second[0].receive_count

    assert kernel.run_main(main) == 2


def test_delete_acknowledges(kernel, sqs):
    service = QueueService(kernel, name="sqs3")
    service.create_queue("v", visibility_timeout=0.5)

    def main():
        service.send("v", "m")
        msg = service.receive("v", wait=10.0)[0]
        service.delete("v", msg.receipt)
        sleep(1.0)
        return service.receive("v")

    assert kernel.run_main(main) == []


def test_unknown_queue(kernel, sqs):
    def main():
        sqs.send("ghost", 1)

    with pytest.raises(NoSuchKeyError):
        kernel.run_main(main)


def test_duplicate_queue_rejected(kernel, sqs):
    with pytest.raises(ValueError):
        sqs.create_queue("q")


def test_latency_is_tens_of_milliseconds(kernel, sqs):
    def main():
        t0 = now()
        sqs.send("q", 1)
        send_time = now() - t0
        t1 = now()
        sqs.receive("q")
        receive_time = now() - t1
        return send_time, receive_time

    send_time, receive_time = kernel.run_main(main)
    assert send_time > 0.005
    assert receive_time > 0.003


# -- SNS -------------------------------------------------------------------------


def test_publish_fans_out_to_subscribed_queues(kernel, sqs):
    sns = NotificationService(kernel, sqs)
    sns.create_topic("t")
    sqs.create_queue("sub-a")
    sqs.create_queue("sub-b")
    sns.subscribe("t", "sub-a")
    sns.subscribe("t", "sub-b")

    def main():
        sns.publish("t", "announcement")
        a = sqs.receive("sub-a", wait=5.0)
        b = sqs.receive("sub-b", wait=5.0)
        return [m.body for m in a], [m.body for m in b]

    a, b = kernel.run_main(main)
    assert a == ["announcement"]
    assert b == ["announcement"]


def test_publish_to_unknown_topic(kernel, sqs):
    sns = NotificationService(kernel, sqs)

    def main():
        sns.publish("ghost", 1)

    with pytest.raises(NoSuchKeyError):
        kernel.run_main(main)


def test_subscribe_unknown_topic(kernel, sqs):
    sns = NotificationService(kernel, sqs)
    with pytest.raises(NoSuchKeyError):
        sns.subscribe("ghost", "q")
