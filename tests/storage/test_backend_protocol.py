"""The StorageBackend protocol: every store speaks it, every request
bills into the ledger."""

import pytest

from repro.config import DEFAULT_CONFIG
from repro.metrics.cost import CostLedger
from repro.net import LatencyModel, Network
from repro.simulation import Kernel
from repro.storage import (
    BackendProfile,
    BlockStore,
    DataGrid,
    MemoryStore,
    ObjectStore,
    RedisCluster,
    StorageBackend,
    TieredStore,
)


@pytest.fixture
def kernel():
    with Kernel(seed=31) as k:
        yield k


@pytest.fixture
def network(kernel):
    net = Network(kernel, LatencyModel(0.0001))
    net.ensure_endpoint("client")
    return net


def all_backends(kernel, network, ledger):
    grid = DataGrid(kernel, network, nodes=2)
    redis = RedisCluster(kernel, network, shards=2)
    memory = MemoryStore(kernel, name="mem2", ledger=ledger)
    cold = ObjectStore(kernel, name="s3-2", ledger=ledger)
    return {
        "s3": ObjectStore(kernel, ledger=ledger),
        "gp3": BlockStore(kernel, ledger=ledger),
        "memory": MemoryStore(kernel, ledger=ledger),
        "grid": grid.backend(ledger=ledger),
        "redis": redis.backend(ledger=ledger),
        "tiered": TieredStore(kernel, [memory, cold], ledger=ledger),
    }


def test_every_store_satisfies_the_protocol(kernel, network):
    ledger = CostLedger()
    for label, store in all_backends(kernel, network, ledger).items():
        assert isinstance(store, StorageBackend), label
        store.profile.validate()


def test_profiles_carry_the_hardware_numbers():
    cfg = DEFAULT_CONFIG
    with Kernel(seed=1) as kernel:
        s3 = ObjectStore(kernel).profile
        gp3 = BlockStore(kernel).profile
        memory = MemoryStore(kernel).profile
    # S3: 2019 list prices, >10ms access.
    assert s3.tier == "object"
    assert s3.dollars_per_gb_month == pytest.approx(0.023)
    assert s3.put_request_dollars == pytest.approx(0.005 / 1000)
    assert s3.get_request_dollars == pytest.approx(0.0004 / 1000)
    assert s3.get_latency.base > 0.010
    assert s3.visibility_lag == cfg.storage.s3_visibility_lag
    # gp3: 1-2ms, free requests, 125 MB/s.
    assert gp3.tier == "block"
    assert gp3.dollars_per_gb_month == pytest.approx(0.081)
    assert gp3.get_request_dollars == 0.0
    assert 0.001 <= gp3.get_latency.base <= 0.002
    assert gp3.get_latency.bandwidth == pytest.approx(125e6)
    # Memory: RAM rent dominates; latency matches the Table 2 grid.
    assert memory.tier == "memory"
    assert memory.dollars_per_gb_month == pytest.approx(5.75)
    assert memory.get_latency.base < 0.001


def test_profile_validation_rejects_nonsense():
    good = BackendProfile(name="x", tier="object",
                          get_latency=LatencyModel(0.01),
                          put_latency=LatencyModel(0.01),
                          dollars_per_gb_month=0.02)
    good.validate()
    with pytest.raises(ValueError):
        BackendProfile(name="x", tier="floppy",
                       get_latency=LatencyModel(0.01),
                       put_latency=LatencyModel(0.01),
                       dollars_per_gb_month=0.02).validate()
    with pytest.raises(ValueError):
        BackendProfile(name="x", tier="object",
                       get_latency=LatencyModel(0.01),
                       put_latency=LatencyModel(0.01),
                       dollars_per_gb_month=-1.0).validate()


def test_round_trip_on_every_backend(kernel, network):
    ledger = CostLedger()
    stores = all_backends(kernel, network, ledger)

    lag = DEFAULT_CONFIG.storage.s3_visibility_lag

    def main():
        from repro.simulation.thread import sleep

        for label, store in stores.items():
            store.put(f"{label}/k", {"v": label})
            assert store.get(f"{label}/k") == {"v": label}, label
            sleep(lag + 0.001)  # S3 listings are eventually consistent
            assert store.exists(f"{label}/k") is True, label
            assert f"{label}/k" in store.list_prefix(f"{label}/"), label
            store.delete(f"{label}/k")
            assert f"{label}/k" not in store.list_prefix(f"{label}/"), label

    kernel.run_main(main)


def test_every_request_class_is_counted_and_billed(kernel):
    """Satellite: exists/list_prefix charge request cost and count in
    per-backend stats exactly like get/put."""
    store = ObjectStore(kernel)

    def main():
        store.put("k", 1)
        store.get("k")
        store.list_prefix("")
        store.exists("k")
        store.delete("k")

    kernel.run_main(main)
    assert store.stats.puts == 1
    assert store.stats.gets == 1
    assert store.stats.lists == 1
    assert store.stats.heads == 1
    assert store.stats.deletes == 1
    assert store.stats.requests == 5
    fee = store.profile
    expected = (2 * fee.put_request_dollars   # put + delete
                + 3 * fee.get_request_dollars)  # get + list + head
    assert store.stats.request_dollars == pytest.approx(expected)
    bill = store.ledger.bills[store.name]
    assert bill.requests == 5
    assert bill.request_dollars == pytest.approx(expected)


def test_capacity_rent_accrues_over_virtual_time(kernel):
    from repro.storage.backend import MONTH_SECONDS

    store = ObjectStore(kernel)
    gb = 10**9

    def main():
        from repro.simulation.thread import sleep

        store.seed("big", b"", nbytes=gb)
        sleep(MONTH_SECONDS / 2)

    kernel.run_main(main)
    store.settle()
    bill = store.ledger.bills[store.name]
    # 1 GB for half a month at $0.023/GB-month.
    assert bill.storage_dollars == pytest.approx(0.023 / 2, rel=1e-6)


def test_shared_ledger_splits_by_backend(kernel):
    ledger = CostLedger()
    s3 = ObjectStore(kernel, ledger=ledger)
    gp3 = BlockStore(kernel, ledger=ledger)

    def main():
        s3.put("a", 1)
        gp3.put("b", 2)
        gp3.get("b")

    kernel.run_main(main)
    ledger.settle()
    assert set(ledger.bills) == {"s3", "gp3"}
    assert ledger.bills["s3"].requests == 1
    assert ledger.bills["gp3"].requests == 2
    assert ledger.bills["gp3"].request_dollars == 0.0  # gp3 I/O is free
    assert ledger.total_dollars == pytest.approx(
        ledger.bills["s3"].total_dollars + ledger.bills["gp3"].total_dollars)


def test_block_store_latency_sits_between_memory_and_s3(kernel):
    memory = MemoryStore(kernel)
    gp3 = BlockStore(kernel)
    s3 = ObjectStore(kernel)

    def timed_get(store, key):
        from repro.simulation.thread import now

        t0 = now()
        store.get(key)
        return now() - t0

    def main():
        for store in (memory, gp3, s3):
            store.seed("k", b"x" * 1024)
        return (timed_get(memory, "k"), timed_get(gp3, "k"),
                timed_get(s3, "k"))

    mem_t, gp3_t, s3_t = kernel.run_main(main)
    assert mem_t < gp3_t < s3_t


def test_legacy_object_store_surface_still_works(kernel):
    """Satellite: old constructors/counters keep working; private
    reach-ins warn."""
    store = ObjectStore(kernel, DEFAULT_CONFIG)  # positional config

    def main():
        store.put("k", 1)
        store.get("k")
        store.list_prefix("")

    kernel.run_main(main)
    assert store.put_count == 1
    assert store.get_count == 1
    assert store.list_count == 1
    with pytest.warns(DeprecationWarning):
        assert "k" in store._objects
    with pytest.warns(DeprecationWarning):
        with pytest.raises(TypeError):
            store._objects["x"] = object()  # view is read-only
