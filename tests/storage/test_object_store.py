"""Unit tests for the S3-like object store."""

import pytest

from repro.config import DEFAULT_CONFIG
from repro.errors import NoSuchKeyError
from repro.simulation import Kernel
from repro.simulation.thread import now
from repro.storage import ObjectStore


@pytest.fixture
def kernel():
    with Kernel(seed=21) as k:
        yield k


@pytest.fixture
def store(kernel):
    return ObjectStore(kernel)


def test_put_get_round_trip(kernel, store):
    def main():
        store.put("a/b", {"v": 1})
        return store.get("a/b")

    assert kernel.run_main(main) == {"v": 1}


def test_get_missing_key(kernel, store):
    def main():
        store.get("nope")

    with pytest.raises(NoSuchKeyError):
        kernel.run_main(main)


def test_latencies_are_tens_of_milliseconds(kernel, store):
    def main():
        t0 = now()
        store.put("k", b"x" * 1024)
        put_time = now() - t0
        t1 = now()
        store.get("k")
        get_time = now() - t1
        return put_time, get_time

    put_time, get_time = kernel.run_main(main)
    cfg = DEFAULT_CONFIG.storage
    assert put_time == pytest.approx(cfg.s3_put.base, rel=0.8)
    assert get_time == pytest.approx(cfg.s3_get.base, rel=0.8)
    assert put_time > 0.010  # an order of magnitude above in-memory
    assert get_time > 0.010


def test_values_are_copied(kernel, store):
    payload = {"list": [1, 2]}

    def main():
        store.put("k", payload)
        payload["list"].append(3)  # caller-side mutation after PUT
        return store.get("k")

    assert kernel.run_main(main) == {"list": [1, 2]}


def test_listing_is_eventually_consistent(kernel, store):
    lag = DEFAULT_CONFIG.storage.s3_visibility_lag

    def main():
        store.put("results/1", b"")
        visible_immediately = "results/1" in store.list_prefix("results/")
        from repro.simulation.thread import sleep

        sleep(lag + 0.001)
        visible_later = "results/1" in store.list_prefix("results/")
        return visible_immediately, visible_later

    immediately, later = kernel.run_main(main)
    assert immediately is False
    assert later is True


def test_get_is_read_after_write(kernel, store):
    """Unlike listing, a GET of a fresh key succeeds immediately."""
    def main():
        store.put("fresh", 1)
        return store.get("fresh")

    assert kernel.run_main(main) == 1


def test_nominal_size_drives_transfer_time(kernel, store):
    def main():
        t0 = now()
        store.put("big", b"tiny", nbytes=850_000_000)
        return now() - t0

    elapsed = kernel.run_main(main)
    # 850 MB at 85 MB/s dominates: ~10s
    assert elapsed > 9.0


def test_delete(kernel, store):
    def main():
        store.put("k", 1)
        store.delete("k")
        with pytest.raises(NoSuchKeyError):
            store.get("k")

    kernel.run_main(main)


def test_request_counters(kernel, store):
    def main():
        store.put("k", 1)
        store.get("k")
        store.list_prefix("")

    kernel.run_main(main)
    assert store.put_count == 1
    assert store.get_count == 1
    assert store.list_count == 1
