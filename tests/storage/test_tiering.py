"""TieredStore: placement, heat-driven migration, and the no-lost-
writes guarantee under concurrent puts."""

import dataclasses

import pytest

from repro.config import DEFAULT_CONFIG
from repro.errors import NetworkError, NoSuchKeyError
from repro.metrics.cost import CostLedger
from repro.simulation import Kernel
from repro.simulation.thread import sleep
from repro.storage import MemoryStore, ObjectStore, TieredStore


def config_with(**tiering_overrides):
    return dataclasses.replace(
        DEFAULT_CONFIG,
        tiering=dataclasses.replace(DEFAULT_CONFIG.tiering,
                                    **tiering_overrides))


@pytest.fixture
def kernel():
    with Kernel(seed=41) as k:
        yield k


def make_tiered(kernel, config=DEFAULT_CONFIG, ledger=None):
    ledger = ledger if ledger is not None else CostLedger()
    hot = MemoryStore(kernel, config, name="memory", ledger=ledger)
    cold = ObjectStore(kernel, config, name="s3", ledger=ledger)
    return TieredStore(kernel, [hot, cold], config, ledger=ledger)


def test_put_lands_hot_seed_lands_cold(kernel):
    store = make_tiered(kernel)

    def main():
        store.put("written", 1)
        store.seed("dataset", 2)
        assert store.tier_of("written") == 0
        assert store.tier_of("dataset") == 1
        assert store.get("written") == 1
        assert store.get("dataset") == 2

    kernel.run_main(main)
    assert store.tiers[0].size() == 1
    assert store.tiers[1].size() == 1


def test_idle_keys_demote_and_stay_readable(kernel):
    config = config_with(demote_after=5.0, sweep_period=1.0)
    store = make_tiered(kernel, config)

    def main():
        store.start_sweeper()
        store.put("k", b"x" * 64)
        sleep(10.0)
        assert store.tier_of("k") == 1  # swept down to the cold tier
        assert store.get("k") == b"x" * 64

    kernel.run_main(main)
    assert store.tiering.demotions == 1
    # The hot copy is gone: no double residency, no double rent.
    assert store.tiers[0].size() == 0
    assert store.tiers[1].size() == 1


def test_hot_keys_promote_after_repeated_access(kernel):
    config = config_with(promote_hits=3, heat_window=100.0)
    store = make_tiered(kernel, config)

    def main():
        store.seed("k", "v")
        for _ in range(2):
            store.get("k")
        sleep(1.0)
        assert store.tier_of("k") == 1  # two hits: not hot yet
        store.get("k")  # third hit crosses the threshold
        sleep(1.0)
        assert store.tier_of("k") == 0
        assert store.get("k") == "v"

    kernel.run_main(main)
    assert store.tiering.promotions == 1
    assert store.tiers[1].size() == 0


def test_capacity_eviction_is_lru(kernel):
    config = config_with(hot_capacity_bytes=150, demote_after=3600.0)
    store = make_tiered(kernel, config)

    def main():
        store.put("old", b"x" * 100)
        sleep(1.0)
        store.put("new", b"y" * 100)
        sleep(1.0)
        store.get("old")  # "new" is now the least recently used
        store.sweep()
        sleep(1.0)
        return store.tier_of("old"), store.tier_of("new")

    old_tier, new_tier = kernel.run_main(main)
    assert old_tier == 0
    assert new_tier == 1


def test_concurrent_put_during_demotion_is_not_lost(kernel):
    """The no-lost-writes guard: a put racing the migration's copy
    window wins, and the migration abandons its stale copy."""
    config = config_with(demote_after=1.0)
    store = make_tiered(kernel, config)

    def main():
        store.put("k", "v0")
        sleep(2.0)
        store.demote("k")  # migration copies v0 toward the cold tier
        store.put("k", "v1")  # lands while the copy is in flight
        sleep(5.0)  # let the migration finish/abort
        assert store.get("k") == "v1"
        # And nothing stale serves after another round trip either.
        sleep(5.0)
        assert store.get("k") == "v1"

    kernel.run_main(main)
    assert store.tiering.aborted_migrations == 1
    assert store.tiering.demotions == 0
    # Exactly one resident copy of the surviving value.
    assert store.tiers[0].size() + store.tiers[1].size() == 1


class _FlakyTier:
    """Protocol wrapper whose requests can be made to fail transiently
    (a brief network outage in front of an otherwise healthy tier)."""

    def __init__(self, inner):
        self._inner = inner
        self.fail_gets = 0
        self.fail_puts = 0

    def get(self, key):
        if self.fail_gets > 0:
            self.fail_gets -= 1
            raise NetworkError(f"{self._inner.name}: transient outage")
        return self._inner.get(key)

    def put(self, key, value, nbytes=None):
        if self.fail_puts > 0:
            self.fail_puts -= 1
            raise NetworkError(f"{self._inner.name}: transient outage")
        return self._inner.put(key, value, nbytes=nbytes)

    def __getattr__(self, name):
        return getattr(self._inner, name)


def test_put_racing_migration_eviction_is_never_lost():
    """Schedule sweep over the demotion window: wherever the racing
    put lands relative to the migration's copy and source eviction,
    the acknowledged value must survive with one resident copy."""
    config = config_with(demote_after=1.0)
    for offset_ms in range(0, 80, 4):
        with Kernel(seed=97) as kernel:
            store = make_tiered(kernel, config)

            def main():
                store.put("k", "v0")
                sleep(2.0)
                store.demote("k")
                sleep(offset_ms / 1000.0)
                store.put("k", "v1")
                sleep(5.0)
                assert store.get("k") == "v1", f"offset {offset_ms}ms"
                sleep(5.0)  # any delayed eviction must not eat it either
                assert store.get("k") == "v1", f"offset {offset_ms}ms"

            kernel.run_main(main)
            assert store.tiers[0].size() + store.tiers[1].size() == 1, \
                f"offset {offset_ms}ms: duplicate or missing copy"


def test_put_falling_to_cold_tier_survives_promotion_eviction():
    """Lost-write regression: a put that falls through to the cold
    tier (hot tier briefly refusing writes) while a promotion is
    evicting its cold source copy must not have its freshly installed
    value swept away by that eviction's delayed delete."""
    config = config_with(promote_hits=2, heat_window=100.0)
    for offset_ms in range(0, 60, 5):
        with Kernel(seed=83) as kernel:
            flaky = _FlakyTier(MemoryStore(kernel, config, name="memory"))
            cold = ObjectStore(kernel, config, name="s3",
                               ledger=flaky.ledger)
            store = TieredStore(kernel, [flaky, cold], config)

            def main():
                store.seed("k", "v0")
                store.get("k")
                store.get("k")  # promotion (s3 -> memory) starts
                flaky.fail_puts = 1  # hot tier rejects the racing put
                sleep(offset_ms / 1000.0)
                store.put("k", "v1")  # acknowledged on the cold tier
                sleep(5.0)
                assert store.get("k") == "v1", f"offset {offset_ms}ms"
                sleep(5.0)
                assert store.get("k") == "v1", f"offset {offset_ms}ms"

            kernel.run_main(main)
            assert store.tiers[0].size() + store.tiers[1].size() == 1, \
                f"offset {offset_ms}ms: duplicate or missing copy"


def test_read_racing_promotion_eviction_never_misses():
    """A large-object read in flight on the cold tier when the
    promotion's source eviction lands must follow the key to its new
    home instead of surfacing a spurious NoSuchKeyError (the GET
    outlasts the size-independent DELETE, so the blob can vanish
    mid-read)."""
    config = config_with(promote_hits=2, heat_window=100.0)
    for offset_ms in range(0, 100, 5):
        with Kernel(seed=29) as kernel:
            store = make_tiered(kernel, config)

            def main():
                store.seed("k", "v", nbytes=4_000_000)
                store.get("k")
                store.get("k")  # crosses the threshold: promotion starts
                sleep(offset_ms / 1000.0)
                assert store.get("k") == "v", f"offset {offset_ms}ms"
                sleep(1.0)
                assert store.get("k") == "v", f"offset {offset_ms}ms"

            kernel.run_main(main)


def test_transient_owner_failure_never_adopts_stale_copy():
    """A reader falling back while a superseded migration is settling
    must never turn the migration's stale copy into the authoritative
    value (and the cold tier must not end up holding it)."""
    config = config_with(demote_after=1.0)
    for offset_ms in range(10, 60, 5):
        with Kernel(seed=41) as kernel:
            flaky = _FlakyTier(MemoryStore(kernel, config, name="memory"))
            cold = ObjectStore(kernel, config, name="s3",
                               ledger=flaky.ledger)
            store = TieredStore(kernel, [flaky, cold], config)

            def main():
                store.put("k", "v0")
                sleep(2.0)
                store.demote("k")     # migration snapshots v0
                store.put("k", "v1")  # acknowledged: supersedes it
                sleep(offset_ms / 1000.0)
                flaky.fail_gets = 1   # owner hiccups mid-settling
                try:
                    value = store.get("k")
                except NoSuchKeyError:
                    value = None  # an honest degraded miss is fine...
                assert value != "v0", \
                    f"offset {offset_ms}ms: stale value served"
                sleep(5.0)
                assert store.get("k") == "v1", f"offset {offset_ms}ms"
                assert store.tier_of("k") == 0, f"offset {offset_ms}ms"

            kernel.run_main(main)
            # No stale copy left resident (and leaking rent) on cold.
            assert store.tiers[1].size() == 0, f"offset {offset_ms}ms"


def test_migrations_emit_spans(kernel):
    kernel.enable_tracing()
    config = config_with(demote_after=1.0, promote_hits=2,
                         heat_window=100.0)
    store = make_tiered(kernel, config)

    def main():
        store.put("k", 1)
        sleep(2.0)
        store.demote("k")
        sleep(1.0)
        store.get("k")
        store.get("k")  # second hit promotes
        sleep(1.0)

    kernel.run_main(main)
    names = [span.name for span in kernel.tracer.spans]
    demote = [s for s in kernel.tracer.spans if s.name == "storage.demote"]
    promote = [s for s in kernel.tracer.spans
               if s.name == "storage.promote"]
    assert len(demote) == 1 and len(promote) == 1, names
    assert demote[0].attributes["key"] == "k"
    assert demote[0].attributes["from"] == "memory"
    assert demote[0].attributes["to"] == "s3"
    assert promote[0].attributes["from"] == "s3"
    assert promote[0].attributes["to"] == "memory"


def test_shared_ledger_splits_rent_by_tier(kernel):
    ledger = CostLedger()
    config = config_with(demote_after=5.0, sweep_period=1.0)
    store = make_tiered(kernel, config, ledger=ledger)

    def main():
        store.start_sweeper()
        store.put("k", b"", nbytes=10**6)
        sleep(100.0)

    kernel.run_main(main)
    ledger.settle()
    memory_bill = ledger.bills["memory"]
    s3_bill = ledger.bills["s3"]
    # Rent accrued on both tiers: RAM until the demotion, S3 after.
    assert memory_bill.byte_seconds > 0
    assert s3_bill.byte_seconds > 0
    # The data spent most of the run on the *cheap* tier.
    assert s3_bill.byte_seconds > memory_bill.byte_seconds
    assert memory_bill.storage_dollars > s3_bill.storage_dollars  # RAM is dearer


def test_list_prefix_unions_tiers(kernel):
    store = make_tiered(kernel)

    def main():
        store.put("a/hot", 1)
        store.seed("a/cold", 2)
        sleep(DEFAULT_CONFIG.storage.s3_visibility_lag + 0.1)
        return store.list_prefix("a/")

    assert kernel.run_main(main) == ["a/cold", "a/hot"]


def test_delete_routes_to_owning_tier(kernel):
    store = make_tiered(kernel)

    def main():
        store.put("k", 1)
        store.delete("k")
        with pytest.raises(NoSuchKeyError):
            store.get("k")

    kernel.run_main(main)
    assert store.size() == 0


def test_effective_capacity_price_tracks_placement(kernel):
    config = config_with(demote_after=5.0, sweep_period=1.0)
    store = make_tiered(kernel, config)
    hot_price = store.tiers[0].profile.dollars_per_gb_month
    cold_price = store.tiers[1].profile.dollars_per_gb_month

    def main():
        store.put("k", b"x" * 1000)
        all_hot = store.dollars_per_gb_month()
        store.start_sweeper()
        sleep(20.0)
        return all_hot, store.dollars_per_gb_month()

    all_hot, after_demotion = kernel.run_main(main)
    assert all_hot == pytest.approx(hot_price)
    assert after_demotion == pytest.approx(cold_price)
