"""Edge-case tests for the storage services."""

import pytest

from repro.errors import NoSuchKeyError
from repro.simulation import Kernel
from repro.simulation.thread import sleep, spawn
from repro.storage import ObjectStore, QueueService


@pytest.fixture
def kernel():
    with Kernel(seed=141) as k:
        yield k


# -- object store ---------------------------------------------------------------


def test_overwrite_updates_value_and_resets_visibility(kernel):
    store = ObjectStore(kernel)

    def main():
        store.put("k", 1)
        sleep(1.0)
        assert store.exists("k") is True
        store.put("k", 2)
        # Overwritten key: new value readable, listing lag restarts.
        value = store.get("k")
        listed_now = store.exists("k")
        sleep(1.0)
        return value, listed_now, store.exists("k")

    value, listed_now, listed_later = kernel.run_main(main)
    assert value == 2
    assert listed_now is False
    assert listed_later is True


def test_list_prefix_filters(kernel):
    store = ObjectStore(kernel)

    def main():
        store.put("a/1", 1)
        store.put("a/2", 2)
        store.put("b/1", 3)
        sleep(1.0)
        return store.list_prefix("a/")

    assert kernel.run_main(main) == ["a/1", "a/2"]


def test_delete_missing_key_is_noop(kernel):
    store = ObjectStore(kernel)

    def main():
        store.delete("missing")  # S3 semantics: idempotent delete

    kernel.run_main(main)


def test_concurrent_puts_last_writer_wins(kernel):
    store = ObjectStore(kernel)

    def writer(value, delay):
        sleep(delay)
        store.put("shared", value)

    def main():
        threads = [spawn(writer, v, d)
                   for v, d in ((1, 0.0), (2, 0.5), (3, 1.0))]
        for t in threads:
            t.join()
        return store.get("shared")

    assert kernel.run_main(main) == 3


# -- queue service -----------------------------------------------------------------


def test_delete_batch_chunks_of_ten(kernel):
    service = QueueService(kernel)
    service.create_queue("bulk")

    def main():
        for i in range(25):
            service._deliver("bulk", i)
        sleep(5.0)  # ride out delivery lag
        receipts = []
        while len(receipts) < 25:
            for message in service.receive("bulk", max_messages=10):
                receipts.append(message.receipt)
        t0 = kernel.now
        service.delete_batch("bulk", receipts)
        elapsed = kernel.now - t0
        return elapsed, service.approximate_depth("bulk")

    elapsed, depth = kernel.run_main(main)
    assert depth == 0
    # 25 receipts = 3 batch requests, not 25 singles.
    single = 25 * 0.010
    assert elapsed < single


def test_receive_respects_max_messages(kernel):
    service = QueueService(kernel)
    service.create_queue("cap")

    def main():
        for i in range(7):
            service._deliver("cap", i)
        sleep(5.0)
        return len(service.receive("cap", max_messages=3))

    assert kernel.run_main(main) == 3


def test_approximate_depth_counts_only_visible(kernel):
    service = QueueService(kernel)
    service.create_queue("depth", visibility_timeout=100.0)

    def main():
        service._deliver("depth", "m")
        sleep(5.0)
        before = service.approximate_depth("depth")
        service.receive("depth")
        after = service.receive("depth") or service.approximate_depth(
            "depth")
        return before, service.approximate_depth("depth")

    before, after = kernel.run_main(main)
    assert before == 1
    assert after == 0  # in flight, invisible


def test_messages_preserve_fifo_within_lag(kernel):
    """With deterministic zero lag, order is FIFO."""
    from dataclasses import replace

    from repro.config import Config, StorageLatencies
    from repro.net.latency import LatencyModel

    config = Config(storage=replace(
        StorageLatencies(), sqs_delivery_lag=LatencyModel(0.0)))
    service = QueueService(kernel, config=config)
    service.create_queue("fifo")

    def main():
        for i in range(5):
            service.send("fifo", i)
        batch = service.receive("fifo", max_messages=5)
        return [m.body for m in batch]

    assert kernel.run_main(main) == [0, 1, 2, 3, 4]


def test_unknown_queue_receive(kernel):
    service = QueueService(kernel)

    def main():
        service.receive("ghost")

    with pytest.raises(NoSuchKeyError):
        kernel.run_main(main)
