"""Unit tests for the Redis-like store and the Infinispan-like grid."""

import pytest

from repro.config import DEFAULT_CONFIG
from repro.errors import NoSuchKeyError
from repro.net import LatencyModel, Network
from repro.simulation import Kernel
from repro.simulation.thread import now, spawn
from repro.storage import DataGrid, RedisCluster
from repro.storage.kvstore import Script


@pytest.fixture
def kernel():
    with Kernel(seed=29) as k:
        yield k


@pytest.fixture
def network(kernel):
    net = Network(kernel, LatencyModel(0.0001))
    net.ensure_endpoint("client")
    return net


# -- Redis ---------------------------------------------------------------------


def test_redis_set_get(kernel, network):
    redis = RedisCluster(kernel, network, shards=2)

    def main():
        redis.set("client", "k", "v")
        return redis.get("client", "k")

    assert kernel.run_main(main) == "v"


def test_redis_missing_key(kernel, network):
    redis = RedisCluster(kernel, network)

    def main():
        redis.get("client", "nope")

    with pytest.raises(NoSuchKeyError):
        kernel.run_main(main)


def test_redis_incrby(kernel, network):
    redis = RedisCluster(kernel, network)

    def main():
        assert redis.incrby("client", "c", 5) == 5
        assert redis.incrby("client", "c", 3) == 8
        return redis.get("client", "c")

    assert kernel.run_main(main) == 8


def test_redis_latency_matches_table2(kernel, network):
    redis = RedisCluster(kernel, network)
    ops = 50

    def main():
        redis.set("client", "k", b"x" * 1024)
        t0 = now()
        for _ in range(ops):
            redis.get("client", "k")
        return (now() - t0) / ops

    avg_get = kernel.run_main(main)
    # Table 2: 229 us GET.
    assert avg_get == pytest.approx(229e-6, rel=0.15)


def test_redis_script_runs_server_side(kernel, network):
    redis = RedisCluster(kernel, network)
    redis.register_script("mul", Script(
        fn=lambda data, key, factor: data.__setitem__(
            key, data.get(key, 1) * factor) or data[key],
        cost=lambda factor: 0.0))

    def main():
        redis.set("client", "x", 3)
        return redis.eval_script("client", "mul", "x", 7)

    assert kernel.run_main(main) == 21


def test_redis_scripts_serialize_on_single_thread(kernel, network):
    """Complex scripts on one shard run one-at-a-time (Fig. 2a)."""
    redis = RedisCluster(kernel, network, shards=1)
    redis.register_script("burn", Script(
        fn=lambda data, key: None, cost=lambda: 0.010))

    def worker():
        redis.eval_script("client", "burn", "k")

    def main():
        threads = [spawn(worker) for _ in range(4)]
        for t in threads:
            t.join()
        return now()

    elapsed = kernel.run_main(main)
    assert elapsed >= 0.040  # 4 x 10ms strictly serialized


def test_redis_unknown_script(kernel, network):
    redis = RedisCluster(kernel, network)

    def main():
        redis.eval_script("client", "ghost", "k")

    with pytest.raises(NoSuchKeyError):
        kernel.run_main(main)


def test_redis_sharding_spreads_keys(kernel, network):
    redis = RedisCluster(kernel, network, shards=2)

    def main():
        for i in range(40):
            redis.set("client", f"key-{i}", i)

    kernel.run_main(main)
    sizes = [len(s.data) for s in redis.shards]
    assert sum(sizes) == 40
    assert all(size > 5 for size in sizes)


def test_redis_invalid_shard_count(kernel, network):
    with pytest.raises(ValueError):
        RedisCluster(kernel, network, shards=0)


# -- DataGrid -----------------------------------------------------------------------


def test_grid_put_get(kernel, network):
    grid = DataGrid(kernel, network, nodes=2)

    def main():
        grid.put("client", "k", [1, 2])
        return grid.get("client", "k")

    assert kernel.run_main(main) == [1, 2]


def test_grid_contains_and_remove(kernel, network):
    grid = DataGrid(kernel, network)

    def main():
        grid.put("client", "k", 1)
        assert grid.contains("client", "k") is True
        grid.remove("client", "k")
        return grid.contains("client", "k")

    assert kernel.run_main(main) is False


def test_grid_latency_matches_table2(kernel, network):
    grid = DataGrid(kernel, network)
    ops = 50

    def main():
        grid.put("client", "k", b"x" * 1024)
        t_get0 = now()
        for _ in range(ops):
            grid.get("client", "k")
        get_avg = (now() - t_get0) / ops
        t_put0 = now()
        for _ in range(ops):
            grid.put("client", "k", b"x" * 1024)
        put_avg = (now() - t_put0) / ops
        return get_avg, put_avg

    get_avg, put_avg = kernel.run_main(main)
    # Table 2: Infinispan 207 us GET / 228 us PUT.
    assert get_avg == pytest.approx(207e-6, rel=0.15)
    assert put_avg == pytest.approx(228e-6, rel=0.15)


def test_grid_multithreaded_nodes_allow_parallel_ops(kernel, network):
    grid = DataGrid(kernel, network, nodes=1)
    burn = DEFAULT_CONFIG.grid.put_service

    def worker(i):
        grid.put("client", f"k-{i}", i)

    def main():
        t0 = now()
        threads = [spawn(worker, i) for i in range(8)]
        for t in threads:
            t.join()
        return now() - t0

    elapsed = kernel.run_main(main)
    # 8 workers: service times overlap, so total is far below 8x serial.
    assert elapsed < 8 * (2 * 100e-6 + burn) * 0.8


def test_grid_keys_distribute_across_nodes(kernel, network):
    grid = DataGrid(kernel, network, nodes=3)

    def main():
        for i in range(60):
            grid.put("client", f"key-{i}", i)

    kernel.run_main(main)
    sizes = [len(gn.data) for gn in grid.grid_nodes]
    assert sum(sizes) == 60
    assert all(size > 5 for size in sizes)
