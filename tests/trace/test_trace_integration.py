"""End-to-end tracing across client, FaaS, and DSO layers.

The acceptance properties of the tracing subsystem:

* a traced run nests client dispatch -> FaaS invocation (cold/warm
  annotated) -> container runnable -> DSO RPC -> SMR replication;
* the Chrome export is byte-identical for a fixed seed;
* disabling tracing changes no simulated timestamp;
* trace context survives CloudThread retries and chaos faults —
  a killed container's span carries an error status, and the retry
  attempt appears as a sibling span under the same root.
"""

import json

import pytest

from repro import (
    RUNNER_FUNCTION,
    AtomicLong,
    CloudThread,
    CrucialEnvironment,
    RetryPolicy,
    chrome_trace_json,
    compute,
    trace_enabled,
)
from repro.chaos import ChaosInjector, FaultPlan


class Adder:
    """Module-level (picklable) runnable touching S3 and the DSO."""

    def __init__(self, key="sum", persistent=True):
        self.counter = AtomicLong(key, persistent=persistent)

    def run(self):
        from repro import current_environment

        current_environment().object_store.put("blob", b"x" * 64)
        return self.counter.add_and_get(1)


class SlowWork:
    def run(self):
        compute(2.0)
        return "done"


def _children(tracer, span):
    return tracer.children_of(span)


def _one_child(tracer, span, name_prefix):
    kids = [s for s in _children(tracer, span)
            if s.name.startswith(name_prefix)]
    assert len(kids) == 1, (name_prefix, [s.name for s in kids])
    return kids[0]


def test_trace_nests_client_faas_dso_layers():
    with CrucialEnvironment(seed=3, dso_nodes=2, trace_enabled=True) as env:
        def main():
            assert trace_enabled()
            thread = CloudThread(Adder(), name="t0").start()
            return thread.result()

        assert env.run(main) == 1
        tracer = env.kernel.tracer

        (root,) = [s for s in tracer.roots()
                   if s.name == "cloudthread:t0"]
        assert root.kind == "client"
        assert root.status == "ok"
        attempt = _one_child(tracer, root, "cloudthread.attempt")
        invoke = _one_child(tracer, attempt, "faas.invoke:")
        assert invoke.attributes["cold_start"] is True
        assert invoke.attributes["billed_duration"] > 0
        startup = _one_child(tracer, invoke, "faas.startup")
        assert startup.attributes["cold_start"] is True
        handler = _one_child(tracer, invoke, "faas.handler")
        runnable = _one_child(tracer, handler, "runnable:Adder")
        s3_put = _one_child(tracer, runnable, "s3.put")
        assert s3_put.duration > 0
        dso = _one_child(tracer, runnable, "dso.invoke:_AtomicLong")
        primary = _one_child(tracer, dso, "dso.primary")
        # rf=2 atomics replicate: the SMR round nests under the primary.
        replicate = _one_child(tracer, primary, "dso.replicate")
        _one_child(tracer, replicate, "dso.smr_apply")
        # Durations are consistent: children fit inside their parents.
        for parent, child in ((root, attempt), (attempt, invoke),
                              (invoke, handler), (handler, runnable),
                              (runnable, dso), (dso, primary)):
            assert child.start >= parent.start - 1e-12
            assert child.end <= parent.end + 1e-12


def _traced_run(seed=11):
    with CrucialEnvironment(seed=seed, dso_nodes=1,
                            trace_enabled=True) as env:
        def main():
            threads = [CloudThread(Adder(), name=f"w{i}").start()
                       for i in range(3)]
            return [t.result() for t in threads]

        env.run(main)
        return chrome_trace_json(env.kernel.tracer), env.kernel.now


def test_same_seed_yields_identical_export():
    export_a, _ = _traced_run()
    export_b, _ = _traced_run()
    assert export_a == export_b


def test_disabling_tracing_changes_no_timestamps():
    _, traced_end = _traced_run(seed=12)
    with CrucialEnvironment(seed=12, dso_nodes=1) as env:
        def main():
            threads = [CloudThread(Adder(), name=f"w{i}").start()
                       for i in range(3)]
            return [t.result() for t in threads]

        env.run(main)
        assert env.kernel.tracer.spans == ()
        assert env.kernel.now == traced_end


def test_export_is_valid_json_with_root_spans():
    export, _ = _traced_run(seed=13)
    doc = json.loads(export)
    events = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    roots = [e for e in events if "parent_id" not in e["args"]]
    assert len(roots) >= 1
    assert all(e["ts"] >= 0 and e["dur"] >= 0 for e in events)


def test_retry_attempts_are_sibling_spans_with_error_status():
    with CrucialEnvironment(seed=21, dso_nodes=1,
                            trace_enabled=True) as env:
        env.platform.inject_failures(RUNNER_FUNCTION, rate=1.0,
                                     kind="before")

        def main():
            thread = CloudThread(
                Adder(key="r"), name="retrier",
                retry_policy=RetryPolicy(max_retries=2, backoff=0.05))
            thread.start()
            with pytest.raises(Exception):
                thread.join()

        env.run(main)
        tracer = env.kernel.tracer
        (root,) = [s for s in tracer.roots()
                   if s.name == "cloudthread:retrier"]
        attempts = [s for s in tracer.find("cloudthread.attempt")
                    if s.parent_id == root.span_id]
        assert [s.attributes["attempt"] for s in attempts] == [1, 2, 3]
        assert all(s.status == "error" for s in attempts)
        # Exhausted retries propagate into the root span's status.
        assert root.status == "error"
        assert root.error == "RetriesExhaustedError"


def test_killed_container_span_errors_and_retry_is_sibling():
    """Chaos fault: the in-flight attempt's spans end with an error;
    the (successful) retry shows up as a sibling attempt under the
    same root, each attempt carrying its own FaaS subtree."""
    with CrucialEnvironment(seed=31, dso_nodes=1,
                            trace_enabled=True) as env:
        env.pre_warm(1)
        injector = ChaosInjector(env.kernel, network=env.network,
                                 platform=env.platform)
        injector.schedule(
            FaultPlan().add(1.0, "kill_container", RUNNER_FUNCTION))

        def main():
            thread = CloudThread(
                SlowWork(), name="victim",
                retry_policy=RetryPolicy(max_retries=1, backoff=0.1))
            thread.start()
            return thread.result()

        assert env.run(main) == "done"
        tracer = env.kernel.tracer
        (root,) = [s for s in tracer.roots()
                   if s.name == "cloudthread:victim"]
        attempts = [s for s in tracer.find("cloudthread.attempt")
                    if s.parent_id == root.span_id]
        assert len(attempts) == 2
        first, second = attempts
        assert first.status == "error"
        assert second.status == "ok"
        assert root.status == "ok"  # the retry recovered

        # The killed container's handler span records the fault.
        first_invoke = _one_child(tracer, first, "faas.invoke:")
        handler = _one_child(tracer, first_invoke, "faas.handler")
        assert handler.status == "error"
        assert handler.error == "ContainerKilledError"

        # Trace context propagated across the retry: the second
        # attempt has its own complete FaaS/runnable subtree.
        second_invoke = _one_child(tracer, second, "faas.invoke:")
        second_handler = _one_child(tracer, second_invoke, "faas.handler")
        _one_child(tracer, second_handler, "runnable:SlowWork")


def test_trace_enabled_reflects_environment():
    with CrucialEnvironment(seed=1) as env:
        def main():
            return trace_enabled()

        assert env.run(main) is False
    with CrucialEnvironment(seed=1, trace_enabled=True) as env:
        def main():
            return trace_enabled()

        assert env.run(main) is True
