"""Unit tests for the tracer: span model, propagation, exporters."""

import json

import pytest

from repro.simulation import Kernel
from repro.simulation.thread import sleep, spawn
from repro.trace import (
    NULL_TRACER,
    TraceContext,
    TracedRunnable,
    chrome_trace_json,
    critical_path,
    span_tree,
    to_chrome_trace,
)


@pytest.fixture
def kernel():
    with Kernel(seed=5) as k:
        yield k


def test_kernel_defaults_to_shared_null_tracer():
    with Kernel() as a, Kernel() as b:
        assert a.tracer is NULL_TRACER
        assert b.tracer is NULL_TRACER
        assert not a.tracer.enabled


def test_enable_tracing_is_idempotent(kernel):
    tracer = kernel.enable_tracing()
    assert tracer.enabled
    assert kernel.enable_tracing() is tracer


def test_nested_spans_parent_correctly(kernel):
    tracer = kernel.enable_tracing()

    def main():
        with tracer.span("outer") as outer:
            sleep(1.0)
            with tracer.span("inner") as inner:
                sleep(0.5)
        return outer, inner

    outer, inner = kernel.run_main(main)
    assert inner.parent_id == outer.span_id
    assert outer.parent_id is None
    assert outer.duration == pytest.approx(1.5)
    assert inner.duration == pytest.approx(0.5)
    assert outer.status == "ok"


def test_span_marks_error_on_exception(kernel):
    tracer = kernel.enable_tracing()

    def main():
        with pytest.raises(ValueError):
            with tracer.span("doomed"):
                raise ValueError("boom")

    kernel.run_main(main)
    (doomed,) = tracer.find("doomed")
    assert doomed.status == "error"
    assert doomed.error == "ValueError"


def test_spawned_thread_inherits_active_span(kernel):
    tracer = kernel.enable_tracing()

    def child():
        with tracer.span("child.work"):
            sleep(0.2)

    def main():
        with tracer.span("parent"):
            thread = spawn(child)
            thread.join()

    kernel.run_main(main)
    (parent,) = tracer.find("parent")
    (work,) = tracer.find("child.work")
    assert work.parent_id == parent.span_id
    # Per-thread state is dropped once threads exit.
    assert tracer._threads == {}


def test_attach_installs_remote_parent(kernel):
    """A wire context from another thread becomes the parent."""
    tracer = kernel.enable_tracing()
    remote = tracer.start_span("remote", activate=False)
    context = TraceContext(trace_id=tracer.trace_id,
                           span_id=remote.span_id)

    def main():
        with tracer.attach(context):
            with tracer.span("served"):
                sleep(0.1)
        tracer.end_span(remote)

    kernel.run_main(main)
    (served,) = tracer.find("served")
    assert served.parent_id == remote.span_id


def test_attach_is_noop_when_context_is_ancestor(kernel):
    """The in-process fast path: re-attaching an ancestor keeps the
    deeper (more precise) nesting."""
    tracer = kernel.enable_tracing()

    def main():
        with tracer.span("outer") as outer:
            context = TraceContext(trace_id=tracer.trace_id,
                                   span_id=outer.span_id)
            with tracer.span("middle") as middle:
                with tracer.attach(context):
                    with tracer.span("leaf"):
                        pass
                return middle

    middle = kernel.run_main(main)
    (leaf,) = tracer.find("leaf")
    assert leaf.parent_id == middle.span_id  # not re-parented to outer


def test_wrap_payload_carries_current_context(kernel):
    tracer = kernel.enable_tracing()

    def main():
        with tracer.span("caller") as caller:
            wrapped = tracer.wrap_payload(lambda: 42)
            return caller, wrapped

    caller, wrapped = kernel.run_main(main)
    assert isinstance(wrapped, TracedRunnable)
    assert wrapped.context.span_id == caller.span_id


def test_null_tracer_wrap_payload_passthrough(kernel):
    runnable = object()
    assert kernel.tracer.wrap_payload(runnable) is runnable
    assert kernel.tracer.start_span("x").set("k", "v").open is False


def test_tracing_does_not_change_timestamps():
    """The zero-cost invariant: identical virtual timeline either way."""
    def workload():
        def child():
            sleep(0.25)
        threads = [spawn(child) for _ in range(3)]
        for thread in threads:
            thread.join()
        sleep(0.5)

    ends = []
    for trace in (False, True):
        with Kernel(seed=9) as kernel:
            if trace:
                tracer = kernel.enable_tracing()

                def main():
                    with tracer.span("main"):
                        workload()
            else:
                main = workload
            kernel.run_main(main)
            ends.append(kernel.now)
    assert ends[0] == ends[1]


def test_chrome_trace_structure(kernel):
    tracer = kernel.enable_tracing()

    def main():
        with tracer.span("root", kind="client", endpoint="client"):
            with tracer.span("rpc", kind="server", endpoint="node-1",
                             attributes={"bytes": 128}):
                sleep(0.010)

    kernel.run_main(main)
    doc = to_chrome_trace(tracer)
    spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
    assert len(spans) == 2
    rpc = next(e for e in spans if e["name"] == "rpc")
    assert rpc["cat"] == "server"
    assert rpc["dur"] == pytest.approx(10_000, rel=1e-6)  # microseconds
    assert rpc["args"]["bytes"] == 128
    assert {e["name"] for e in meta} == {"process_name", "thread_name"}
    # Round-trips through JSON.
    assert json.loads(chrome_trace_json(tracer)) == json.loads(
        json.dumps(doc, sort_keys=True))


def test_span_tree_and_critical_path(kernel):
    tracer = kernel.enable_tracing()

    def main():
        with tracer.span("root"):
            with tracer.span("fast"):
                sleep(0.1)
            with tracer.span("slow"):
                sleep(0.9)

    kernel.run_main(main)
    tree = span_tree(tracer)
    assert "root" in tree and "|-- fast" in tree and "`-- slow" in tree
    path = [span.name for span, _self in critical_path(tracer)]
    assert path == ["root", "slow"]


def test_open_spans_export_as_unfinished(kernel):
    tracer = kernel.enable_tracing()
    tracer.start_span("never.ends", activate=False)
    doc = to_chrome_trace(tracer)
    (event,) = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    assert event["args"]["unfinished"] is True
    assert event["dur"] == 0
