"""Kill a grid node mid-scale-out under live open-loop traffic.

The nastiest window elasticity opens: the autoscaler has just added a
node, the rebalancer is migrating objects onto it under per-key write
locks, in-flight requests are being fenced by placement-version bumps
and retried — and a *different* node fail-stops.  With rf=2 counter
cells every acknowledged increment has a surviving replica, sessions
dedup the retries, and the audit must balance exactly: the sum of
final counter values equals the generator's acknowledged-write count
(``final == acked``), with zero client-visible errors.
"""

from repro import (
    Autoscaler,
    AutoscalerPolicy,
    CrucialEnvironment,
    OpenLoopGenerator,
    RateProfile,
    TenantSpec,
)
from repro.harness.serving import serving_config
from repro.simulation.kernel import current_thread
from repro.simulation.thread import spawn

#: Crest past one node's capacity so the autoscaler must grow, then a
#: long trough so retries and rebalances fully drain before the audit.
PROFILE = RateProfile([(0.0, 30.0), (2.0, 30.0), (5.0, 260.0),
                       (10.0, 260.0), (12.0, 20.0), (22.0, 20.0)])
DURATION = 22.0

#: Replicated tenants: every counter survives a single node loss.
TENANTS = [
    TenantSpec(name="web", share=0.85, keys=48, zipf_s=1.1,
               read_fraction=0.8, rf=2, cost=0.008),
    TenantSpec(name="api", share=0.15, keys=12, zipf_s=1.0,
               read_fraction=0.5, rf=2, via="faas", cost=0.005),
]


def test_node_crash_mid_scale_out_preserves_acked_writes(chaos_seed):
    policy = AutoscalerPolicy(epoch=1.0, slo_p99=0.100,
                              min_nodes=2, max_nodes=4,
                              cooldown_epochs=2, min_warm=1)
    with CrucialEnvironment(seed=chaos_seed, dso_nodes=2,
                            config=serving_config()) as env:
        def main():
            originals = [n.name for n in env.dso.member_nodes()]
            generator = OpenLoopGenerator(env, TENANTS, PROFILE,
                                          DURATION)
            scaler = Autoscaler(env, generator.metrics,
                                policy=policy).start()
            crashed = []

            def assassin():
                # Strike inside the scale-out: the moment the first
                # add-node view lands, fail-stop one of the original
                # members while the rebalance toward the newcomer is
                # still in flight.
                thread = current_thread()
                while not scaler.grid_events():
                    thread.sleep(0.1)
                victim = next(
                    name for name in originals
                    if name in env.dso.membership.view.members)
                env.dso.crash_node(victim)
                crashed.append(victim)

            killer = spawn(assassin, name="assassin")
            metrics = generator.run()
            scaler.stop()
            killer.join()
            final = generator.final_counts()
            return metrics, scaler, crashed, final

        metrics, scaler, crashed, final = env.run(main)

    assert crashed, "the scale-out the assassin waits for never came"
    assert [e.action for e in scaler.grid_events()].count("add-node") >= 1
    # Zero client-visible failures: the crash window is covered by
    # session retries riding the expulsion view.
    assert metrics.errors == 0, \
        f"seed {chaos_seed}: {metrics.errors} client errors"
    # The audit: every acknowledged increment is in a surviving
    # replica, and none was applied twice.
    assert sum(final.values()) == metrics.total_acked
    assert final == metrics.acked_writes
