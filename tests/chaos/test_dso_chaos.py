"""Chaos tests for the DSO layer's paper invariants.

The headline property is Section 4.4's: with ``rf = 2`` the layer
tolerates any single storage-node failure without losing acknowledged
state.  The tests drive that with both hand-written plans and the
randomized (but seed-replayable) schedule generator.
"""

import pytest

from repro.chaos import ChaosInjector, ChaosScheduleGenerator, FaultPlan
from repro.config import DEFAULT_CONFIG
from repro.dso import DsoLayer, DsoReference
from repro.errors import NodeCrashedError, ObjectLostError
from repro.metrics import fault_summary
from repro.net import LatencyModel, Network
from repro.simulation import Kernel
from repro.simulation.thread import sleep, spawn


class Counter:
    def __init__(self, value=0):
        self.value = value

    def add(self, delta):
        self.value += delta
        return self.value

    def get(self):
        return self.value


CTOR = (Counter, (), {})


def ref(key, rf=2):
    return DsoReference("Counter", key, persistent=True, rf=rf)


@pytest.fixture
def kernel():
    with Kernel(seed=101) as k:
        yield k


@pytest.fixture
def network(kernel):
    net = Network(kernel, LatencyModel(0.0001))
    net.ensure_endpoint("client")
    return net


def make_layer(kernel, network, nodes):
    layer = DsoLayer(kernel, network)
    for _ in range(nodes):
        layer.add_node()
    return layer


def test_rf2_durability_under_generated_crash_schedule(kernel, network):
    """No acknowledged write is lost under a randomized single-failure
    crash/restart schedule (the generator pairs every crash with a
    restart and keeps at most one node down)."""
    layer = make_layer(kernel, network, nodes=4)
    layer.enable_failure_detector()
    injector = ChaosInjector(kernel, network=network, dso=layer)
    generator = ChaosScheduleGenerator(kernel)
    plan = generator.generate(
        20.0, nodes=list(layer.nodes), kinds=["crash_node"],
        mean_faults=3, recovery=8.0)
    injector.schedule(plan)
    r = ref("durable")

    def main():
        acked = 0
        for _ in range(40):
            layer.invoke("client", r, "add", (1,), ctor=CTOR)
            acked += 1
            sleep(0.5)
        # Quiesce: let any in-flight recovery settle, then audit.
        sleep(DEFAULT_CONFIG.dso.failure_detection + 2.0)
        return acked, layer.invoke("client", r, "get", ctor=CTOR)

    acked, final = kernel.run_main(main)
    assert acked == 40
    # Exactly-once: acknowledged increments can never go missing, and
    # session dedup keeps failover retries from double-applying.
    assert final == acked
    crashes = injector.log.counts("inject").get("crash_node", 0)
    restarts = injector.log.counts("inject").get("restart_node", 0)
    assert crashes >= 1
    assert restarts >= 1


def test_read_any_surfaces_crash_during_read(kernel, network):
    """Regression: ``read_any`` re-checks liveness after its service
    sleep, so a replica that died mid-read cannot return stale state
    as if it were healthy.  With every replica gone, the retry loop
    rides out the transient ``NodeCrashedError``s until failure
    detection marks the object lost — the loss, never a stale value,
    is what surfaces."""
    layer = make_layer(kernel, network, nodes=2)
    injector = ChaosInjector(kernel, network=network, dso=layer)
    r = ref("stale")

    def main():
        layer.invoke("client", r, "add", (5,), ctor=CTOR)
        plan = FaultPlan()
        for name in layer.nodes:
            plan.add(1.0, "crash_node", name)
        injector.schedule(plan)
        outcome = []

        def reader():
            try:
                outcome.append(layer.read_any("client", r, "get", cost=2.0))
            except (NodeCrashedError, ObjectLostError) as exc:
                outcome.append(exc)

        thread = spawn(reader)
        thread.join()
        return outcome

    (outcome,) = kernel.run_main(main)
    assert isinstance(outcome, (NodeCrashedError, ObjectLostError))


def test_partition_blocks_replication_until_it_heals(kernel, network):
    """A partition between the two replicas stalls SMR-backed writes;
    the client retry loop rides it out and succeeds after the heal."""
    layer = make_layer(kernel, network, nodes=2)
    injector = ChaosInjector(kernel, network=network, dso=layer)
    key = "part"

    def main():
        layer.put("client", key, "v0", rf=2)
        primary, backup = layer.placement_of(
            layer._kv_ref(key, 2))
        injector.schedule(FaultPlan().add(
            0.0, "partition", groups=((primary,), (backup,)),
            duration=2.0))
        sleep(0.5)
        layer.put("client", key, "v1", rf=2)
        return layer.get("client", key, rf=2)

    assert kernel.run_main(main) == "v1"
    assert layer.stats.retries >= 1
    assert injector.log.counts("inject") == {"partition": 1}
    assert injector.log.counts("revert") == {"partition": 1}


def test_slow_node_stretches_latency_then_reverts(kernel, network):
    layer = make_layer(kernel, network, nodes=1)
    injector = ChaosInjector(kernel, network=network, dso=layer)
    (name,) = layer.nodes
    injector.schedule(FaultPlan().add(
        0.0, "slow_node", name, factor=10.0, duration=5.0))
    r = DsoReference("Counter", "slow")  # ephemeral, rf=1

    def main():
        sleep(0.1)  # let the fault land
        before = kernel.now
        layer.invoke("client", r, "add", (1,), ctor=CTOR, cost=0.1)
        slowed = kernel.now - before
        sleep(6.0)  # past the fault's end: factor reverted
        before = kernel.now
        layer.invoke("client", r, "add", (1,), ctor=CTOR, cost=0.1)
        return slowed, kernel.now - before

    slowed, normal = kernel.run_main(main)
    assert slowed > 5 * normal
    assert layer.nodes[name].slow_factor == 1.0


def test_message_drops_force_retries_then_converge(kernel, network):
    layer = make_layer(kernel, network, nodes=1)
    injector = ChaosInjector(kernel, network=network, dso=layer)
    (name,) = layer.nodes

    def main():
        layer.put("client", "k", "v0")
        injector.schedule(FaultPlan().add(
            kernel.now, "drop_messages", ("client", name),
            rate=1.0, duration=1.0))
        sleep(0.1)
        layer.put("client", "k", "v1")
        return layer.get("client", "k")

    assert kernel.run_main(main) == "v1"
    assert network.messages_dropped >= 1
    assert layer.stats.retries >= 1
    assert network.drop_rate("client", name) == 0.0


def test_fault_summary_reports_injections_and_retries(kernel, network):
    layer = make_layer(kernel, network, nodes=3)
    layer.enable_failure_detector()
    injector = ChaosInjector(kernel, network=network, dso=layer)
    r = ref("rep")

    def main():
        layer.invoke("client", r, "add", (1,), ctor=CTOR)
        victim = layer.placement_of(r)[0]
        injector.schedule(FaultPlan().add(1.0, "crash_node", victim))
        sleep(1.5)
        layer.invoke("client", r, "add", (1,), ctor=CTOR)
        return layer.invoke("client", r, "get", ctor=CTOR)

    assert kernel.run_main(main) >= 2
    assert layer.stats.retries >= 1
    report = fault_summary(injector.log,
                           retries={"dso": layer.stats.retries})
    assert "crash_node" in report
    assert "dso retries" in report
    assert str(layer.stats.retries) in report
