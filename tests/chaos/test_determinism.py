"""Determinism and consistency of chaotic runs.

The subsystem's core promise: a chaotic run is a pure function of the
kernel seed.  Two runs with the same seed produce byte-identical fault
logs, identical final state and identical retry counts — which makes
failures found under chaos *replayable*.  And linearizability (the
Section 3.1 guarantee) must survive membership changes and slowdowns
injected mid-workload.
"""

from repro import AtomicLong, CrucialEnvironment
from repro.chaos import ChaosInjector, ChaosScheduleGenerator, FaultPlan
from repro.dso import DsoLayer
from repro.linearizability import HistoryRecorder, LinearizabilityChecker
from repro.net import LatencyModel, Network
from repro.simulation import Kernel
from repro.simulation.thread import sleep, spawn


def _chaotic_run(seed):
    """One complete chaotic run; returns everything observable."""
    with Kernel(seed=seed) as kernel:
        network = Network(kernel, LatencyModel(0.0001))
        network.ensure_endpoint("client")
        layer = DsoLayer(kernel, network)
        for _ in range(3):
            layer.add_node()
        layer.enable_failure_detector()
        injector = ChaosInjector(kernel, network=network, dso=layer)
        generator = ChaosScheduleGenerator(kernel)
        nodes = list(layer.nodes)
        links = [("client", name) for name in nodes]
        plan = generator.generate(15.0, nodes=nodes, links=links,
                                  mean_faults=5, recovery=8.0)
        injector.schedule(plan)

        def main():
            for index in range(25):
                layer.put("client", "k", f"v{index}", rf=2)
                sleep(0.5)
            return layer.get("client", "k", rf=2)

        final = kernel.run_main(main)
        return (plan.describe(), injector.log.lines(), final,
                layer.stats.retries, network.messages_dropped)


def test_same_seed_replays_byte_identically():
    first = _chaotic_run(7)
    second = _chaotic_run(7)
    assert first == second
    # The run was actually chaotic, not trivially identical-by-vacuity.
    _, log_lines, final, _, _ = first
    assert len(log_lines) >= 1
    assert final == "v24"


def test_different_seeds_draw_different_schedules():
    assert _chaotic_run(7)[0] != _chaotic_run(8)[0]


class CounterSpec:
    def __init__(self):
        self.value = 0

    def add_and_get(self, delta):
        self.value += delta
        return self.value

    def get(self):
        return self.value


def test_linearizable_across_rebalance_and_slowdown():
    """Histories stay linearizable while the rebalancer re-homes the
    object to a freshly joined node and chaos slows a replica.

    Deliberately no crash faults here: at-least-once retry of a
    non-idempotent ``add_and_get`` whose ack was lost in a crash can
    double-apply, which is the documented Section 4.4 caveat, not a
    linearizability bug.
    """
    with CrucialEnvironment(seed=11, dso_nodes=2) as env:
        recorder = HistoryRecorder(clock=lambda: env.kernel.now)
        injector = ChaosInjector(env.kernel, network=env.network,
                                 dso=env.dso)
        victim = next(iter(env.dso.nodes))
        injector.schedule(FaultPlan().add(
            0.02, "slow_node", victim, factor=5.0, duration=2.0))

        def main():
            counter = AtomicLong("hot", 0, persistent=True, rf=2)
            counter.get()  # force creation before the chaos starts

            def worker(tid):
                for _ in range(4):
                    recorder.record(f"t{tid}", "add_and_get", (1,),
                                    lambda: counter.add_and_get(1))
                    recorder.record(f"t{tid}", "get", (), counter.get)

            threads = [spawn(worker, tid) for tid in range(3)]
            sleep(0.2)
            env.dso.add_node()  # triggers a background rebalance
            for t in threads:
                t.join()
            return counter.get()

        final = env.run(main)
        assert final == 12
        assert injector.log.counts("inject").get("slow_node") == 1
        checker = LinearizabilityChecker(CounterSpec)
        assert checker.check(recorder.operations), \
            checker.explain(recorder.operations)
