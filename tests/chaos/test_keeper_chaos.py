"""Seeded chaos for the keeper: dead leaders, dead holders, dead nodes.

Two fail-stop scenarios per seed:

* the elected leader's and a lock holder's *sessions* are killed
  mid-heartbeat — their ephemerals must vanish exactly once (one
  delete in the zxid log, one ``deleted`` watch event), and the next
  candidate must take over;
* the DSO node hosting the replicated tree's primary crashes under
  live writer traffic — rf=2 SMR plus exactly-once sessions must keep
  every acknowledged write in the zxid log exactly once
  (``final == acked``), with the audit run against the promoted
  backup.
"""

from repro import CrucialEnvironment, KeeperService
from repro.config import DEFAULT_CONFIG
from repro.coordination import LeaderElector
from repro.simulation.thread import sleep, spawn


def audit_final_equals_acked(keeper, sessions):
    """Every acknowledged write appears in the zxid log exactly once,
    and zxids are dense — nothing dropped, nothing double-applied."""
    log = keeper.zxid_log()
    zxids = [zxid for zxid, _, _ in log]
    assert zxids == list(range(1, len(zxids) + 1)), "zxid log not dense"
    logged = {(op, path, zxid) for zxid, op, path in log}
    for session in sessions:
        for op, path, zxid in session.acked:
            assert (op, path, zxid) in logged, \
                f"acked write missing from the log: {(op, path, zxid)}"
    assert len(logged) == len(log), "duplicate zxid log entries"


def test_leader_and_holder_killed_mid_heartbeat(chaos_seed):
    ttl = 2.0
    with CrucialEnvironment(seed=chaos_seed, dso_nodes=3) as env:
        def main():
            keeper = KeeperService(name="chaos-elect", rf=2,
                                   session_ttl=ttl)
            observer = keeper.session(name="observer", ttl=60.0)
            sessions = {m: keeper.session(name=m)
                        for m in ("c0", "c1", "c2")}
            electors = {m: LeaderElector(sessions[m], "/svc", m)
                        for m in sessions}
            for member in ("c0", "c1", "c2"):
                electors[member].volunteer()
            electors["c0"].lead(timeout=30.0)
            holder = keeper.session(name="holder")
            holder.create("/locks")
            holder.create("/locks/h", ephemeral=True)
            leader_node = electors["c0"].candidate_node
            observer.exists("/locks/h", watch=True)
            observer.exists(leader_node, watch=True)

            # Mid-heartbeat: land the kills between two beats.
            sleep(ttl / 6.0)
            fell_at = env.now
            sessions["c0"].kill()
            holder.kill()

            electors["c1"].lead(timeout=60.0)
            convergence = env.now - fell_at
            new_leader = sessions["c2"].get("/svc/leader")[0]
            deleted = [e for e in observer.events(2, timeout=30.0)
                       if e.kind == "deleted"]
            sleep(1.0)  # quiesce before the audit
            log = keeper.zxid_log()
            audit_final_equals_acked(
                keeper, [sessions["c1"], sessions["c2"], holder,
                         observer])
            keeper.stop()
            return (new_leader, convergence, deleted, log,
                    leader_node, holder.state)

        new_leader, convergence, deleted, log, leader_node, \
            holder_state = env.run(main)

    assert new_leader == "c1"
    # Expiry (<= 2x ttl) + one watch hop: comfortably under 4x ttl.
    assert convergence < 4 * ttl
    assert holder_state == "expired"
    # The ephemerals vanished exactly once: one deleted event each at
    # the observer, one delete per path in the zxid log.
    assert sorted(e.path for e in deleted) \
        == sorted(["/locks/h", leader_node])
    for path in ("/locks/h", leader_node):
        assert sum(1 for _, op, p in log
                   if op == "delete" and p == path) == 1


def test_tree_primary_crash_preserves_acked_writes(chaos_seed):
    """Fail-stop the DSO node hosting the tree's primary while a
    writer streams creates and CAS sets; the promoted backup must
    hold every acknowledged write exactly once."""
    keys = 6
    rounds = 8
    with CrucialEnvironment(seed=chaos_seed, dso_nodes=3) as env:
        def main():
            # A TTL far above the failover window: heartbeats stall
            # while the primary is being replaced, and a short lease
            # would spuriously expire mid-crash.
            keeper = KeeperService(name="chaos-tree", rf=2,
                                   session_ttl=60.0)
            primary = env.dso.placement_of(keeper._proxy.ref)[0]
            with keeper.session(name="writer") as writer, \
                    keeper.session(name="observer", ttl=120.0) as obs:
                writer.create("/data")
                for i in range(keys):
                    writer.create(f"/data/k{i}", data=0)
                obs.exists("/data/k0", watch=True)

                def assassin():
                    sleep(0.5)  # land inside the write stream
                    env.dso.crash_node(primary)

                killer = spawn(assassin, name="assassin")
                for round_number in range(1, rounds + 1):
                    for i in range(keys):
                        writer.set(f"/data/k{i}", round_number)
                    sleep(0.2)
                killer.join()
                # Let the failover and any pump retries fully drain.
                sleep(DEFAULT_CONFIG.dso.failure_detection + 4.0)
                first_event = obs.next_event(timeout=30.0)
                dump = keeper.dump()
                audit_final_equals_acked(keeper, [writer])
                acked_sets = len([1 for op, _, _ in writer.acked
                                  if op == "set"])
            keeper.stop()
            return dump, first_event, acked_sets

        dump, first_event, acked_sets = env.run(main)

    # No write was lost to the crash: every key holds the last round
    # at the version the acks imply (rounds sets after the create).
    assert acked_sets == keys * rounds
    for i in range(keys):
        assert dump[f"/data/k{i}"] == (rounds, rounds, None)
    # The watch armed before the crash still fired afterwards.
    assert first_event is not None
    assert (first_event.kind, first_event.path) \
        == ("changed", "/data/k0")
