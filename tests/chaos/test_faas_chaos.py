"""Chaos tests for the FaaS platform's failure paths.

Covers the regressions the fault-injection work flushed out: the
container leak on non-``Exception`` escapes, mid-handler container
kills, and ``ThrottlingError`` leaving the concurrency gauge balanced
— plus the paper's Section 4.4 invariant that retries with identical
payloads converge for idempotent applications.
"""

import pytest

from repro.chaos import ChaosInjector, FaultPlan
from repro.config import Config, FaasLimits
from repro.dso import DsoLayer
from repro.errors import ContainerKilledError, InvocationError, ThrottlingError
from repro.faas import FaasPlatform
from repro.net import LatencyModel, Network
from repro.simulation import Kernel
from repro.simulation.thread import sleep, spawn


@pytest.fixture
def kernel():
    with Kernel(seed=77) as k:
        yield k


@pytest.fixture
def network(kernel):
    net = Network(kernel, LatencyModel(0.0005))
    net.ensure_endpoint("driver")
    return net


@pytest.fixture
def platform(kernel, network):
    return FaasPlatform(kernel, network)


def test_kill_container_mid_handler_platform_recovers(kernel, network,
                                                      platform):
    """A chaos kill mid-handler fails that invocation; the platform's
    warm-container accounting recovers and a retry succeeds."""
    platform.deploy("f", lambda ctx, payload: ctx.compute(2.0) or "ok")
    injector = ChaosInjector(kernel, network=network, platform=platform)
    injector.schedule(FaultPlan().add(1.5, "kill_container", "f"))

    def main():
        with pytest.raises(ContainerKilledError):
            platform.invoke("driver", "f")
        assert platform.busy_containers("f") == []
        # Identical retry: a fresh container serves it.
        return platform.invoke("driver", "f")

    assert kernel.run_main(main) == "ok"
    assert platform.busy_containers("f") == []
    assert platform.warm_container_count("f") == 1
    assert injector.log.counts("inject") == {"kill_container": 1}
    assert [r.error for r in platform.records] == \
        ["ContainerKilledError", None]


def test_base_exception_escape_does_not_strand_container(kernel, platform):
    """Regression: ``_release_container`` now runs in a ``finally``, so
    a ``BaseException`` unwinding through the handler (a simulated
    crash, kernel shutdown) cannot leave the container ``in_use``."""

    class Unwind(BaseException):
        pass

    calls = []

    def handler(ctx, payload):
        calls.append(payload)
        if len(calls) == 1:
            raise Unwind()
        return "recovered"

    platform.deploy("f", handler)

    def main():
        with pytest.raises(Unwind):
            platform.invoke("driver", "f", "x")
        assert platform.busy_containers("f") == []
        assert platform.warm_container_count("f") == 1
        return platform.invoke("driver", "f", "x")

    assert kernel.run_main(main) == "recovered"
    # The aborted invocation is recorded, not silently dropped.
    assert [r.error for r in platform.records] == ["Unwind", None]
    assert platform.records[0].container == platform.records[1].container


def test_throttling_leaves_active_gauge_balanced(kernel, network):
    config = Config(faas_limits=FaasLimits(max_concurrency=1))
    platform = FaasPlatform(kernel, network, config=config)
    platform.deploy("f", lambda ctx, payload: ctx.compute(1.0))
    platform.pre_warm("f", 2)
    throttled = []

    def worker():
        try:
            platform.invoke("driver", "f")
        except ThrottlingError as exc:
            throttled.append(exc)

    def main():
        threads = [spawn(worker) for _ in range(2)]
        for thread in threads:
            thread.join()
        # The gauge drained; the platform accepts new work.
        platform.invoke("driver", "f")

    kernel.run_main(main)
    assert len(throttled) == 1
    assert platform._active == 0


def test_identical_payload_retries_converge_for_idempotent_app(
        kernel, network, platform):
    """Section 4.4: the platform may fail *after* side effects; an
    idempotent handler retried with the identical payload converges."""
    layer = DsoLayer(kernel, network)
    layer.add_node()

    def handler(ctx, payload):
        layer.put(ctx.endpoint, "slot", payload)  # idempotent overwrite
        return payload

    platform.deploy("store", handler)
    platform.inject_failures("store", rate=0.7, kind="after")

    def main():
        attempts = 0
        while True:
            attempts += 1
            try:
                platform.invoke("driver", "store", "v1")
                break
            except InvocationError:
                sleep(0.1)
        return attempts, layer.get("driver", "slot")

    attempts, stored = kernel.run_main(main)
    assert stored == "v1"
    assert attempts >= 1
    # Every failed attempt still executed the handler (failure kind
    # "after"), yet the final state shows exactly the intended value.
    assert platform.invocation_count("store") == attempts
