"""Chaos: transaction commits ride through primary crashes intact.

The dangerous window is the commit protocol itself: prepares are
unreplicated soft state, so a primary that dies between a prepare and
its commit takes the prepared entry with it, and the promoted backup
must *fence* the retried commit (``TxnPrepareLostError``) so the
client re-prepares instead of silently losing the write.  These tests
kill primaries inside that window — across the seeded chaos matrix —
and audit the survivors with the read-atomicity pass: every
acknowledged transaction is fully installed (``final == acked``,
per key, by commit id), and no reader ever observed a fractured
write set.
"""

from repro.chaos import ChaosInjector, FaultPlan
from repro.config import DEFAULT_CONFIG
from repro.dso import DsoLayer
from repro.errors import TxnError
from repro.linearizability import (
    final_state_violations,
    find_fractured_reads,
)
from repro.net import LatencyModel, Network
from repro.simulation import Kernel
from repro.simulation.thread import sleep, spawn

KEYS = ("a", "b")
ROUNDS = 5


def make_layer(kernel, network, nodes=3):
    layer = DsoLayer(kernel, network)
    for _ in range(nodes):
        layer.add_node()
    return layer


def collect_final_cids(layer):
    """Quiescent per-key commit ids (call from inside the sim)."""
    keys = {key for record in layer.txn_log for key in record.writes}
    return {key: layer.invoke("client", layer._txn_ref(key, 2),
                              "latest_cid", ctor=layer._txn_ctor())
            for key in sorted(keys)}


def audit(layer, final_cids):
    """Cross-check the quiescent state against the acknowledged log."""
    assert final_state_violations(layer.txn_log, final_cids) == []
    assert find_fractured_reads(layer.txn_log, layer.txn_reads) == []


def test_kill_primary_mid_commit_installs_exactly_acked(chaos_seed):
    """A crash landing inside one commit's prepare->commit window
    never loses an acknowledged write: the commit retries through the
    failover (fenced re-prepare if the prepare died with the primary)
    and the final state matches the acknowledged log exactly."""
    with Kernel(seed=chaos_seed) as kernel:
        network = Network(kernel, LatencyModel(0.0001))
        network.ensure_endpoint("client")
        layer = make_layer(kernel, network)
        injector = ChaosInjector(kernel, network=network, dso=layer)

        def main():
            with layer.transaction("client", rf=2) as txn:
                for key in KEYS:
                    txn.write(key, 0)
            primary = layer.placement_of(layer._txn_ref("a", 2))[0]
            for round_no in range(1, ROUNDS + 1):
                with layer.transaction("client", rf=2) as txn:
                    for key in KEYS:
                        txn.write(key, round_no)
                    if round_no == 2:
                        # Land the crash inside this commit's window.
                        injector.schedule(FaultPlan().add(
                            kernel.now + 0.0005, "crash_node", primary))
            sleep(DEFAULT_CONFIG.dso.failure_detection + 2.0)
            finals = tuple(
                layer.invoke("client", layer._txn_ref(key, 2),
                             "get", ctor=layer._txn_ctor())
                for key in KEYS)
            return finals, collect_final_cids(layer)

        finals, final_cids = kernel.run_main(main)
        assert injector.log.counts("inject") == {"crash_node": 1}
        # Every acknowledged commit survived the crash in full.
        assert finals == (ROUNDS, ROUNDS)
        assert layer.stats.txns_committed == ROUNDS + 1
        assert layer.stats.retries >= 1  # the kill hit in-flight work
        audit(layer, final_cids)


def test_concurrent_txns_with_reader_audit_under_crash(chaos_seed):
    """Several transactional writers race over a shared keyspace while
    readers take transactional snapshots and a primary dies mid-run:
    no reader ever observes a fractured write set, and quiescent state
    matches the acknowledged log."""
    with Kernel(seed=chaos_seed) as kernel:
        network = Network(kernel, LatencyModel(0.0001))
        network.ensure_endpoint("client")
        layer = make_layer(kernel, network)
        injector = ChaosInjector(kernel, network=network, dso=layer)
        keys = ("x", "y", "z")

        def writer(index):
            for round_no in range(3):
                value = index * 100 + round_no
                try:
                    with layer.transaction("client", rf=2) as txn:
                        for key in keys:
                            txn.write(key, value)
                except TxnError:
                    # Clean abort (or a commit the failover window
                    # outlasted): nothing acked, nothing owed.
                    pass
                sleep(0.002)

        def reader():
            for _ in range(4):
                try:
                    with layer.transaction("client", rf=2) as txn:
                        for key in keys:
                            txn.read(key)
                except TxnError:
                    # The reader aborts rather than ever returning
                    # fractured data — acceptable unavailability.
                    pass
                sleep(0.003)

        def main():
            with layer.transaction("client", rf=2) as txn:
                for key in keys:
                    txn.write(key, -1)
            primary = layer.placement_of(layer._txn_ref("x", 2))[0]
            injector.schedule(FaultPlan().add(
                kernel.now + 0.004, "crash_node", primary))
            threads = [spawn(writer, i, name=f"writer-{i}")
                       for i in range(3)]
            threads.append(spawn(reader, name="reader"))
            for thread in threads:
                thread.join()
            sleep(DEFAULT_CONFIG.dso.failure_detection + 2.0)
            return collect_final_cids(layer)

        final_cids = kernel.run_main(main)
        assert injector.log.counts("inject") == {"crash_node": 1}
        assert layer.stats.txns_committed >= 1
        audit(layer, final_cids)
