"""Chaos schedules against tiered storage migrations.

The dangerous window: a demotion has started copying an object from
the in-memory hot tier toward cold storage when the grid node hosting
the hot copy dies.  Acknowledged writes must stay readable throughout
— served either by the migration's destination copy (written before
the source copy is ever deleted) or by falling through to a surviving
tier — and fresh writes must keep landing even with the hot tier gone.
"""

import dataclasses

import pytest

from repro.config import DEFAULT_CONFIG
from repro.metrics.cost import CostLedger
from repro.net import LatencyModel, Network
from repro.simulation import Kernel
from repro.simulation.thread import sleep
from repro.storage import DataGrid, ObjectStore, TieredStore


def config_with(**tiering_overrides):
    return dataclasses.replace(
        DEFAULT_CONFIG,
        tiering=dataclasses.replace(DEFAULT_CONFIG.tiering,
                                    **tiering_overrides))


@pytest.fixture
def kernel():
    with Kernel(seed=71) as k:
        yield k


@pytest.fixture
def network(kernel):
    net = Network(kernel, LatencyModel(0.0001))
    net.ensure_endpoint("client")
    return net


def make_tiered(kernel, network, config):
    """A single-node DataGrid hot tier over the S3-like cold tier —
    the hot tier actually *loses* data when its node crashes."""
    ledger = CostLedger()
    grid = DataGrid(kernel, network, nodes=1, config=config,
                    name="hotgrid")
    hot = grid.backend(client="client", ledger=ledger)
    cold = ObjectStore(kernel, config, name="s3", ledger=ledger)
    store = TieredStore(kernel, [hot, cold], config, ledger=ledger)
    return store, grid


def test_node_crash_mid_demotion_keeps_writes_readable(kernel, network):
    """Kill the hot node after the demotion copied the value but
    before the client reads again: the destination copy serves."""
    config = config_with(demote_after=1.0)
    store, grid = make_tiered(kernel, network, config)

    def main():
        store.put("k", "acknowledged")
        sleep(2.0)
        store.demote("k")
        # Let the migration's read+copy complete (S3 PUT ~30ms), then
        # kill the node that held the hot copy.
        sleep(1.0)
        grid.grid_nodes[0].node.crash()
        # Read-after-write across the crash: the acknowledged value
        # must still be served, now from the cold tier.
        assert store.get("k") == "acknowledged"

    kernel.run_main(main)
    assert store.tier_of("k") == 1


def test_node_crash_before_copy_falls_back_to_cold_copy(kernel, network):
    """Crash the node *before* the demotion's copy starts: the write
    that previously demoted to the cold tier is still readable there
    even though the owning (hot) tier is gone."""
    config = config_with(demote_after=1.0, sweep_period=1.0)
    store, grid = make_tiered(kernel, network, config)

    def main():
        store.start_sweeper()
        store.put("k", "v-cold")
        sleep(10.0)  # sweeper demotes it to S3
        assert store.tier_of("k") == 1
        store.get("k")
        store.get("k")  # promoted back to the grid
        sleep(1.0)
        assert store.tier_of("k") == 0
        store.put("k", "v-hot")  # acknowledged on the grid
        grid.grid_nodes[0].node.crash()
        # The hot copy died with the node. The *stale* cold copy must
        # not silently serve a value newer-acknowledged writes beat...
        try:
            value = store.get("k")
        except Exception:
            value = None
        # ...fallback may surface the older cold copy (degraded mode),
        # but a fresh write must land and then read back correctly:
        store.put("k", "v-after-crash")
        assert store.get("k") == "v-after-crash"
        return value

    kernel.run_main(main)
    # The post-crash write fell through to the surviving cold tier.
    assert store.tier_of("k") == 1


def test_puts_survive_hot_tier_loss(kernel, network):
    """With the whole hot tier dead, writes fall through to the cold
    tier and read-after-write holds for every acknowledged put."""
    config = config_with()
    store, grid = make_tiered(kernel, network, config)

    def main():
        store.put("before", 1)
        grid.grid_nodes[0].node.crash()
        for i in range(5):
            store.put(f"after-{i}", i)
        for i in range(5):
            assert store.get(f"after-{i}") == i
        assert store.tier_of("after-0") == 1

    kernel.run_main(main)
    assert store.tiering.fallback_reads == 0  # routed, not scavenged
