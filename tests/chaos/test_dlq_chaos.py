"""Dead-letter path under chaos: container kills on async invokes.

Section 2.1 warns that async (Event) invocations are retried by the
platform and that designers must account for where failed events end
up.  Here the chaos layer kills every container the platform spins up
for a window long enough to exhaust all platform retries: each failed
payload must land in the dead-letter queue *exactly once*, carrying
its attempt count, and draining the queue and replaying the payloads
once the chaos stops must succeed.
"""

from repro.chaos import ChaosInjector, FaultPlan
from repro.faas import FaasPlatform
from repro.net import LatencyModel, Network
from repro.simulation import Kernel
from repro.simulation.thread import sleep
from repro.storage import QueueService

JOBS = 3
MAX_RETRIES = 2


def run_workload(seed):
    with Kernel(seed=seed) as kernel:
        network = Network(kernel, LatencyModel(0.0005))
        network.ensure_endpoint("driver")
        platform = FaasPlatform(kernel, network)
        platform.deploy("worker", lambda ctx, x: ctx.compute(1.0) or x * 2)
        sqs = QueueService(kernel)
        sqs.create_queue("dlq")
        injector = ChaosInjector(kernel, network=network,
                                 platform=platform)

        # Kill every busy container for ~14s: long enough to cover the
        # initial attempt plus both platform retries (2s/4s waits) of
        # every job, with margin for startup jitter.
        plan = FaultPlan()
        t = 0.2
        while t < 14.0:
            plan.add(t, "kill_container", "worker")
            t += 0.4
        injector.schedule(plan)

        def main():
            handles = [
                platform.invoke_async("driver", "worker", payload=i,
                                      max_retries=MAX_RETRIES,
                                      dead_letter_queue=(sqs, "dlq"))
                for i in range(JOBS)
            ]
            for handle in handles:
                handle.join()
            sleep(16.0)  # past the kill window

            # Each failed payload is dead-lettered exactly once.
            assert sqs.approximate_depth("dlq") == JOBS
            batch = sqs.receive("dlq", max_messages=JOBS, wait=5.0)
            assert len(batch) == JOBS
            payloads = sorted(message.body["payload"]
                              for message in batch)
            assert payloads == list(range(JOBS))
            for message in batch:
                assert message.body["function"] == "worker"
                assert message.body["attempts"] == MAX_RETRIES + 1
                assert "killed" in message.body["error"]

            # Drained replay: chaos is over, re-running the payloads
            # through the same function succeeds.
            replays = [platform.invoke("driver", message.body["function"],
                                       message.body["payload"])
                       for message in batch]
            for message in batch:
                sqs.delete("dlq", message)
            return sorted(replays), sqs.approximate_depth("dlq")

        replays, depth = kernel.run_main(main)
        kills = injector.log.counts("inject").get("kill_container", 0)
        assert kills >= JOBS  # chaos actually fired
        return replays, depth


def test_killed_async_payloads_dead_letter_once_then_replay(chaos_seed):
    replays, depth = run_workload(chaos_seed)
    assert replays == [i * 2 for i in range(JOBS)]
    assert depth == 0
