"""Chaos schedules against the lease-based read cache.

The dangerous window the protocol must survive: the primary dies while
clients hold unexpired leases.  The promoted backup has an empty lease
table (leases are deliberately not replicated), so correctness hangs
entirely on the placement-version bump fencing every pre-crash lease —
these tests kill primaries inside that window and check no stale read
is ever served after a post-failover write acknowledges.
"""

import dataclasses

import pytest

from repro.chaos import ChaosInjector, FaultPlan
from repro.config import DEFAULT_CONFIG
from repro.dso import DsoLayer
from repro.linearizability import HistoryRecorder, LinearizabilityChecker
from repro.net import LatencyModel, Network
from repro.simulation import Kernel
from repro.simulation.thread import sleep, spawn


def config_with(**dso_overrides):
    return dataclasses.replace(
        DEFAULT_CONFIG,
        dso=dataclasses.replace(DEFAULT_CONFIG.dso, **dso_overrides))


@pytest.fixture
def kernel():
    with Kernel(seed=101) as k:
        yield k


@pytest.fixture
def network(kernel):
    net = Network(kernel, LatencyModel(0.0001))
    net.ensure_endpoint("client")
    return net


def make_layer(kernel, network, nodes, config=DEFAULT_CONFIG):
    layer = DsoLayer(kernel, network, config, read_cache=True)
    for _ in range(nodes):
        layer.add_node()
    return layer


class KvSpec:
    """Sequential spec of one KvSlot for the linearizability checker.

    Starts at 0 — the value of the unrecorded setup ``put`` that
    creates the object before the concurrent history begins.
    """

    def __init__(self):
        self.value = 0

    def get(self):
        return self.value

    def set(self, value):
        self.value = value


def test_kill_primary_while_leases_outstanding(kernel, network):
    """Leases outlive their grantor: the TTL is far longer than
    failure detection, so when the primary dies the client still holds
    a live lease.  A write acknowledged by the promoted backup must
    fence it (version bump), never letting the stale snapshot serve."""
    config = config_with(lease_ttl=300.0)
    layer = make_layer(kernel, network, nodes=3, config=config)
    injector = ChaosInjector(kernel, network=network, dso=layer)
    network.ensure_endpoint("writer")

    def main():
        layer.put("client", "k", "v0", rf=2)
        assert layer.get("client", "k", rf=2) == "v0"  # lease granted
        primary = layer.placement_of(layer._kv_ref("k", 2))[0]
        injector.schedule(FaultPlan().add(1.0, "crash_node", primary))
        sleep(1.0 + DEFAULT_CONFIG.dso.failure_detection + 1.0)
        layer.put("writer", "k", "v1", rf=2)  # acked by the new primary
        return layer.get("client", "k", rf=2)

    assert kernel.run_main(main) == "v1"
    assert injector.log.counts("inject") == {"crash_node": 1}
    # The client's lease was still unexpired — only the version bump
    # could have (and did) fence it.
    assert layer.stats.cache_hits == 0


def test_cached_reads_linearizable_under_kill_primary_schedule(kernel,
                                                               network):
    """Recorded history: concurrent cached readers and writers while a
    chaos plan kills the primary mid-run.  The history must stay
    linearizable and every acknowledged write must survive."""
    config = config_with(lease_ttl=60.0)
    layer = make_layer(kernel, network, nodes=3, config=config)
    injector = ChaosInjector(kernel, network=network, dso=layer)
    recorder = HistoryRecorder(clock=lambda: kernel.now)
    for i in range(3):
        network.ensure_endpoint(f"c{i}")

    def main():
        layer.put("client", "k", 0, rf=2)
        primary = layer.placement_of(layer._kv_ref("k", 2))[0]
        injector.schedule(FaultPlan().add(2.5, "crash_node", primary))

        def worker(wid):
            for step in range(6):
                endpoint = f"c{wid}"
                if (wid + step) % 3 == 0:
                    value = (wid, step)
                    recorder.record(
                        f"t{wid}", "set", (value,),
                        lambda v=value, e=endpoint:
                        layer.put(e, "k", v, rf=2))
                else:
                    recorder.record(
                        f"t{wid}", "get", (),
                        lambda e=endpoint: layer.get(e, "k", rf=2))
                sleep(1.0)

        threads = [spawn(worker, wid) for wid in range(3)]
        for t in threads:
            t.join()

    kernel.run_main(main)
    checker = LinearizabilityChecker(KvSpec)
    assert checker.check(recorder.operations), \
        checker.explain(recorder.operations)
    assert injector.log.counts("inject") == {"crash_node": 1}
    stats = layer.stats
    assert stats.leases_granted >= 1
    assert stats.retries >= 1  # the kill actually hit in-flight work


def test_kill_primary_mid_txn_commit_fences_leases(kernel, network):
    """A transaction commit that rides through a primary crash must
    still fence outstanding read leases: once the commit acknowledges,
    no client may be served its pre-commit cached snapshot — whether
    the fence was an explicit revoke, the dead primary waiting out an
    unreachable holder's TTL, or the failover's version bump.  The
    TTL is kept inside the retry window so the wait-out path completes
    before the commit's retry deadline."""
    config = config_with(lease_ttl=2.0)
    layer = make_layer(kernel, network, nodes=3, config=config)
    injector = ChaosInjector(kernel, network=network, dso=layer)
    network.ensure_endpoint("writer")
    ctor = layer._txn_ctor()
    ref = layer._txn_ref("k", 2)

    def main():
        with layer.transaction("writer", rf=2) as txn:
            txn.write("k", "v0")
            txn.write("j", "v0")
        # The client reads and now holds a long-TTL cached snapshot.
        assert layer.invoke("client", ref, "get", ctor=ctor) == "v0"
        primary = layer.placement_of(ref)[0]
        # Land the crash inside the commit protocol's window.
        injector.schedule(
            FaultPlan().add(kernel.now + 0.0005, "crash_node", primary))
        with layer.transaction("writer", rf=2) as txn:
            txn.write("k", "v1")
            txn.write("j", "v1")
        # Commit acknowledged: the cached "v0" must never serve again.
        after_ack = layer.invoke("client", ref, "get", ctor=ctor)
        sleep(DEFAULT_CONFIG.dso.failure_detection + 2.0)
        settled = layer.invoke("client", ref, "get", ctor=ctor)
        return after_ack, settled

    after_ack, settled = kernel.run_main(main)
    assert injector.log.counts("inject") == {"crash_node": 1}
    assert after_ack == "v1"
    assert settled == "v1"
    assert layer.stats.leases_granted >= 1
