"""Acceptance: exactly-once increments under compound chaos.

The tentpole scenario: N cloud threads each perform one acknowledged
``AtomicInt`` increment while the chaos layer kills function
containers mid-flight *and* crashes the DSO node hosting the counter's
primary replica.  With replicated client sessions the final value is
exactly N — not at-least N — because every retry (CloudThread
re-invocation and DSO failover retransmission alike) deduplicates
against the replicated session tables.

Each seed is also run twice and must produce byte-identical Chrome
traces containing ``dso.dedup_hit`` spans: the whole recovery dance,
dedup included, is deterministic.
"""

from repro import (
    AtomicInt,
    CloudThread,
    CrucialEnvironment,
    RetryPolicy,
    chrome_trace_json,
    compute,
)
from repro.chaos import ChaosInjector, FaultPlan
from repro.config import DEFAULT_CONFIG
from repro.core.runtime import RUNNER_FUNCTION
from repro.simulation.thread import sleep

N = 10
COUNTER_KEY = "exactly-once-counter"


class IncrementJob:
    """Increment the shared counter, then compute — leaving a window
    in which a container kill forces a re-invocation *after* the
    increment was acknowledged server-side."""

    def __init__(self, index):
        self.index = index
        self.counter = AtomicInt(COUNTER_KEY, 0, persistent=True, rf=2)

    def run(self):
        self.counter.increment_and_get()
        compute(1.2)
        return f"done-{self.index}"


def run_workload(seed):
    """One chaotic run; returns (final value, dedup hits, trace json)."""
    with CrucialEnvironment(seed=seed, dso_nodes=3,
                            trace_enabled=True) as env:
        injector = ChaosInjector(env.kernel, network=env.network,
                                 dso=env.dso, platform=env.platform)

        def main():
            env.pre_warm(N)
            counter = AtomicInt(COUNTER_KEY, 0, persistent=True, rf=2)
            counter.get()  # create (and place) before the chaos starts
            primary = env.dso.placement_of(counter.ref)[0]
            plan = FaultPlan()
            for t in (1.0, 2.0, 3.0, 4.0, 5.0):
                plan.add(t, "kill_container", RUNNER_FUNCTION)
            plan.add(2.5, "crash_node", primary)
            plan.add(10.0, "restart_node", primary)
            injector.schedule(plan)

            policy = RetryPolicy(max_retries=8, backoff=0.2,
                                 multiplier=2.0, max_backoff=2.0)
            threads = [
                CloudThread(IncrementJob(i), name=f"inc-{i}",
                            retry_policy=policy,
                            idempotency_key=f"inc-job-{i}")
                for i in range(N)
            ]
            for thread in threads:
                thread.start()
            results = [thread.result() for thread in threads]
            assert results == [f"done-{i}" for i in range(N)]
            # Quiesce: let detection/rebalance settle before auditing.
            sleep(DEFAULT_CONFIG.dso.failure_detection + 2.0)
            return counter.get()

        final = env.run(main)
        kills = injector.log.counts("inject").get("kill_container", 0)
        crashes = injector.log.counts("inject").get("crash_node", 0)
        assert kills >= 1, "chaos must actually kill containers"
        assert crashes == 1, "the primary crash must land"
        return final, env.dso.stats.dedup_hits, \
            chrome_trace_json(env.kernel.tracer)


def test_increments_apply_exactly_once_under_chaos(chaos_seed):
    final, dedup_hits, trace = run_workload(chaos_seed)
    # The headline: exactly N, not >= N.
    assert final == N
    # And the guarantee was exercised, not vacuously true: at least
    # one retry was answered from a session table.
    assert dedup_hits >= 1
    assert '"dso.dedup_hit"' in trace


def test_chaotic_runs_are_byte_identical_per_seed(chaos_seed):
    first = run_workload(chaos_seed)
    second = run_workload(chaos_seed)
    assert first[0] == second[0] == N
    assert first[2] == second[2]
