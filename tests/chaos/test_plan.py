"""Unit tests for fault plans and the randomized schedule generator."""

import pytest

from repro.chaos import ChaosScheduleGenerator, Fault, FaultPlan
from repro.simulation import Kernel


def test_unknown_fault_kind_rejected():
    with pytest.raises(ValueError):
        Fault(1.0, "set_on_fire", "dso-0")


def test_negative_time_rejected():
    with pytest.raises(ValueError):
        Fault(-0.5, "crash_node", "dso-0")


def test_required_params_enforced():
    with pytest.raises(ValueError):
        Fault(1.0, "slow_node", "dso-0")  # factor + duration missing
    with pytest.raises(ValueError):
        Fault(1.0, "partition")  # groups missing
    with pytest.raises(ValueError):
        Fault(1.0, "drop_messages", ("a", "b"))  # rate missing


def test_duration_only_on_timed_kinds():
    with pytest.raises(ValueError):
        Fault(1.0, "crash_node", "dso-0", {"duration": 2.0})


def test_targeted_kinds_need_a_target():
    with pytest.raises(ValueError):
        Fault(1.0, "crash_node")


def test_plan_iterates_in_time_order_stably():
    plan = (FaultPlan()
            .add(5.0, "crash_node", "b")
            .add(1.0, "crash_node", "a")
            .add(5.0, "restart_node", "c"))
    ordered = [(f.at, f.kind, f.target) for f in plan]
    assert ordered == [(1.0, "crash_node", "a"),
                       (5.0, "crash_node", "b"),
                       (5.0, "restart_node", "c")]


def test_plan_merge_and_equality():
    a = FaultPlan().add(1.0, "heal")
    b = FaultPlan().add(2.0, "crash_node", "n0")
    merged = a.merge(b)
    assert len(merged) == 2
    assert merged == (FaultPlan()
                      .add(2.0, "crash_node", "n0")
                      .add(1.0, "heal"))


def test_generator_is_deterministic_per_seed():
    def draw(seed):
        with Kernel(seed=seed) as kernel:
            generator = ChaosScheduleGenerator(kernel)
            return generator.generate(
                30.0,
                nodes=["n0", "n1", "n2"],
                links=[("n0", "n1"), ("n1", "n2")],
                functions=["f"],
                mean_faults=6)

    first, second = draw(42), draw(42)
    assert first == second
    assert first.describe() == second.describe()
    assert len(first) >= 1


def test_generator_pairs_crashes_with_restarts():
    with Kernel(seed=9) as kernel:
        generator = ChaosScheduleGenerator(kernel)
        plan = generator.generate(60.0, nodes=["n0", "n1", "n2"],
                                  kinds=["crash_node"], mean_faults=10)
    crashes = [f for f in plan if f.kind == "crash_node"]
    restarts = [f for f in plan if f.kind == "restart_node"]
    assert len(crashes) == len(restarts) >= 1
    # Single-failure mode: a crash never lands while a node is down.
    down_until = 0.0
    for fault in plan:
        if fault.kind == "crash_node":
            assert fault.at >= down_until
            down_until = fault.at + 8.0


def test_generator_needs_targets():
    with Kernel(seed=3) as kernel:
        generator = ChaosScheduleGenerator(kernel)
        with pytest.raises(ValueError):
            generator.generate(10.0)
        with pytest.raises(ValueError):
            generator.generate(10.0, nodes=["n0"], kinds=["kill_container"])
