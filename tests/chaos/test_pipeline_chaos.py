"""Chaos: a primary crash mid-batch never breaks exactly-once.

A client ships a whole batch of async increments, and the hosting
primary is crashed while the batch is executing.  The batch retry
re-ships the unfinished ops to the promoted backup, whose replicated
session table deduplicates everything the dead primary already
acknowledged — so the counter's final value equals *exactly* the
number of acknowledged futures, never more.
"""

import pytest

from repro import AtomicInt
from repro.chaos import ChaosInjector, FaultPlan
from repro.config import DEFAULT_CONFIG
from repro.core.runtime import CrucialEnvironment
from repro.simulation.thread import sleep

N = 24
KEY = "pipelined-chaos-counter"


def test_primary_crash_mid_batch_keeps_exactly_acked(chaos_seed):
    with CrucialEnvironment(seed=chaos_seed, dso_nodes=3) as env:
        injector = ChaosInjector(env.kernel, network=env.network,
                                 dso=env.dso, platform=env.platform)

        def main():
            counter = AtomicInt(KEY, 0, persistent=True, rf=2)
            counter.get()  # create (and place) before the chaos starts
            primary = env.dso.placement_of(counter.ref)[0]
            futures = [counter.invoke_async("add_and_get", 1)
                       for _ in range(N)]
            # Land the crash a couple of milliseconds into the batch:
            # well after the flush window opens it, well before its
            # ~N * 0.4ms of replicated per-op work completes.
            injector.schedule(
                FaultPlan().add(env.now + 0.002, "crash_node", primary))
            env.dso.flush()
            assert all(f.done for f in futures)
            results = [f.result() for f in futures]
            # Quiesce: let detection/rebalance settle before auditing.
            sleep(DEFAULT_CONFIG.dso.failure_detection + 2.0)
            return results, counter.get()

        results, final = env.run(main)
        crashes = injector.log.counts("inject").get("crash_node", 0)
        assert crashes == 1, "the primary crash must land"
        # The batch actually hit the failure and retried through it.
        assert env.dso.stats.retries >= 1
        acked = len(results)
        # Exactly-once: the final value is exactly the acknowledged
        # count — every retried op deduplicated, none double-applied.
        assert acked == N
        assert final == acked
        # And batching preserved session order through the failover.
        assert results == list(range(1, N + 1))
