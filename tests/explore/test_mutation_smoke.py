"""Mutation smoke test: the fuzzer must catch a real planted bug.

``REPRO_TEST_NO_BACKUP_DEDUP=1`` disables the backup-side session
lookup in ``DsoLayer._replicate`` (see ``_backup_dedup_disabled``),
re-introducing a classic exactly-once bug: when a write half-replicates
(one backup applied, another unreachable), the client's retransmission
dedups at the primary and *re-replicates* — and without the lookup the
already-applied backup applies the increment again.  The double-apply
is latent until that backup is promoted.

The workload plants exactly that minefield — a partition between the
primary and the far backup across a write window, then a primary crash
— and the exploration runner must find the resulting over-count within
a small trial budget.  With the hook off (the shipped code), the same
budget must come back clean: the detector has no false positives.
"""

import random

from repro import (
    AtomicLong,
    ExplorationRunner,
    LinearizabilityChecker,
)
from repro.chaos import ChaosInjector, FaultPlan
from repro.config import DEFAULT_CONFIG
from repro.simulation.thread import sleep

KEY = "mutation-counter"
WRITES = 8
TRIALS = 6  # bounded budget: the bug must surface within these


class CounterSpec:
    """Sequential specification of AtomicLong for the checker."""

    def __init__(self):
        self.value = 0

    def add_and_get(self, delta):
        self.value += delta
        return self.value

    def get(self):
        return self.value


def workload(trial):
    """Eight spaced increments across a primary<->far-backup partition,
    then a primary crash, then a read from the promoted backup."""
    rnd = random.Random(trial.seed)
    part_at = 0.2 + rnd.random() * 0.6
    part_len = 0.8 + rnd.random() * 0.8  # < failure_detection: no view change
    with trial.environment(dso_nodes=3) as env:
        injector = ChaosInjector(env.kernel, network=env.network,
                                 dso=env.dso)

        def main():
            counter = AtomicLong(KEY, 0, persistent=True, rf=3)
            counter.get()  # create and place before the chaos starts
            placement = env.dso.placement_of(counter.ref)
            primary, far_backup = placement[0], placement[2]
            plan = FaultPlan()
            plan.add(part_at, "partition",
                     groups=((primary,), (far_backup,)),
                     duration=part_len)
            plan.add(part_at + part_len + 1.0, "crash_node", primary)
            injector.schedule(plan)
            for _ in range(WRITES):
                trial.recorder.record(
                    "writer", "add_and_get", (1,),
                    lambda: counter.add_and_get(1), key=KEY)
                sleep(0.3)
            # Let detection promote the (possibly poisoned) backup.
            sleep(DEFAULT_CONFIG.dso.failure_detection + 3.0)
            return trial.recorder.record(
                "writer", "get", (), counter.get, key=KEY)

        return env.run(main)


def exact_count(trial, value):
    assert value == WRITES, \
        f"expected exactly {WRITES} increments, read {value}"
    return True


def explore():
    return ExplorationRunner(
        workload, trials=TRIALS, base_seed=42, scheduler="random",
        scheduler_opts={"preempt_prob": 0.05},
        checker=LinearizabilityChecker(CounterSpec),
        invariants=[exact_count], shrink=False).run()


def test_fuzzer_finds_the_planted_double_apply(monkeypatch):
    monkeypatch.setenv("REPRO_TEST_NO_BACKUP_DEDUP", "1")
    report = explore()
    assert report.failures, (
        "planted exactly-once bug not found within "
        f"{TRIALS} trials:\n" + report.summary())
    failure = report.failures[0]
    # The over-count is caught by the invariant...
    assert any("exact_count" in p for p in failure.problems), \
        failure.describe()
    # ...and independently by the linearizability checker.
    assert any("not linearizable" in p for p in failure.problems), \
        failure.describe()
    # Every failure carries its reproduction handle.
    for failing in report.failures:
        assert failing.schedule_id
        assert failing.schedule.decisions


def test_no_false_positives_without_the_mutation(monkeypatch):
    monkeypatch.delenv("REPRO_TEST_NO_BACKUP_DEDUP", raising=False)
    report = explore()
    assert report.ok, report.summary()
