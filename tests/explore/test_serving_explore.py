"""Fuzz elasticity: randomized scale schedules under open-loop load.

Each trial drives a short burst of open-loop, replicated (rf=2)
counter traffic while a seed-derived schedule of ``add_node`` /
``remove_node`` / ``crash_node`` events churns the grid underneath
it.  Whatever interleaving the scheduler finds, the audit must
balance: zero client-visible errors and the sum of final counter
values exactly equal to the generator's acknowledged increments
(``final == acked``) — the same invariant the serving chaos suite
pins, here explored across random scale timings instead of one
scripted assassination.
"""

import random

from repro import (
    ExplorationRunner,
    OpenLoopGenerator,
    RateProfile,
    TenantSpec,
)
from repro.harness.serving import serving_config
from repro.simulation.thread import sleep, spawn

TRIALS = 3  # per seed: the smoke budget, not a soak
DURATION = 8.0

TENANT = TenantSpec(name="web", keys=24, zipf_s=1.1,
                    read_fraction=0.7, rf=2, cost=0.004)


def serving_workload(trial):
    rnd = random.Random(trial.seed)
    with trial.environment(dso_nodes=2,
                           config=serving_config()) as env:
        def churner():
            # Two or three scale events at random times; crashes are
            # allowed but never below two members (rf=2 must survive).
            for _ in range(rnd.randint(2, 3)):
                sleep(0.5 + rnd.random() * 2.5)
                members = env.dso.member_nodes()
                action = rnd.choice(["add", "remove", "crash"])
                if action == "add" and len(members) < 4:
                    env.dso.add_node()
                elif action == "remove" and len(members) > 2:
                    env.dso.remove_node(members[-1].name)
                elif action == "crash" and len(members) > 2:
                    env.dso.crash_node(
                        rnd.choice(members[1:]).name)

        def main():
            generator = OpenLoopGenerator(
                env, [TENANT], RateProfile.constant(40.0), DURATION)
            churn = spawn(churner, name="churner")
            metrics = generator.run()
            churn.join()
            # Let any trailing view change settle before the audit.
            sleep(env.config.dso.failure_detection + 1.0)
            final = generator.final_counts()
            return metrics.errors, metrics.total_acked, \
                sum(final.values())

        return env.run(main)


def test_serving_scale_churn(explore_seed):
    report = ExplorationRunner(
        serving_workload, trials=TRIALS, base_seed=explore_seed,
        scheduler="random", scheduler_opts={"preempt_prob": 0.05},
        invariants=[
            lambda trial, value: value[0] == 0,          # no errors
            lambda trial, value: value[1] == value[2],   # final == acked
        ]).run()
    assert report.ok, report.summary()
    assert len(report.results) == TRIALS
