"""The watch-reorder hunter: fuzzing the keeper's delivery fence.

A seeded exploration workload arms one-shot watches, fires a write
burst through the keeper, and audits the observer's delivered stream
with the watch-order checker
(:mod:`repro.linearizability.watches`): per-session sequence numbers
strictly increasing, zxids non-decreasing, nothing duplicated or
lost.

The mutation pair mirrors ``test_txn_hunter``:
``REPRO_TEST_NO_WATCH_FENCE=1`` makes sessions release events in
*arrival* order, so the SQS model's heavy-tailed delivery lag leaks
through as client-visible reordering — ZooKeeper's ordering guarantee
silently gone.  The hunter must catch it within a bounded trial
budget, and must stay quiet with the fence on.
"""

from repro import (
    ExplorationRunner,
    KeeperService,
    watch_order_invariant,
)
from repro.simulation.thread import sleep, spawn

PATHS = 6
TRIALS = 8       # bounded budget: the planted bug must surface within
CLEAN_TRIALS = 50  # fence on: quiet across at least this many schedules


def workload(trial):
    """One observer with pre-armed watches, one writer bursting
    creates; returns the delivered stream and the tree's assigned
    counts for the order/exactly-once audit."""
    with trial.environment(dso_nodes=1) as env:
        def main():
            keeper = KeeperService(name="hunt", rf=1, session_ttl=30.0,
                                   pump_period=0.05)
            paths = [f"/k{i}" for i in range(PATHS)]
            with keeper.session(name="observer") as observer, \
                    keeper.session(name="writer") as writer:
                for path in paths:
                    observer.exists(path, watch=True)

                def burst():
                    for path in paths:
                        writer.create(path, data=path)
                        sleep(0.002)

                writer_thread = spawn(burst, name="writer-burst")
                events = list(observer.events(PATHS, timeout=60.0))
                writer_thread.join()
                sleep(1.0)  # quiesce the delivery pump
                assigned = keeper.assigned_counts()
                delivered = {"observer": events}
            keeper.stop()
            return delivered, assigned

        return env.run(main)


def explore(trials):
    return ExplorationRunner(
        workload, trials=trials, base_seed=42, scheduler="random",
        scheduler_opts={"preempt_prob": 0.05},
        invariants=[watch_order_invariant], shrink=False).run()


def test_hunter_finds_reordered_watch_without_the_fence(monkeypatch):
    monkeypatch.setenv("REPRO_TEST_NO_WATCH_FENCE", "1")
    report = explore(TRIALS)
    assert report.failures, (
        "planted fence bug not found within "
        f"{TRIALS} trials:\n" + report.summary())
    failure = report.failures[0]
    assert any("watch_order_invariant" in p for p in failure.problems), \
        failure.describe()
    # Every failure carries its reproduction handle.
    for failing in report.failures:
        assert failing.schedule_id
        assert failing.schedule.decisions is not None


def test_hunter_is_quiet_with_the_fence_on(monkeypatch):
    monkeypatch.delenv("REPRO_TEST_NO_WATCH_FENCE", raising=False)
    report = explore(CLEAN_TRIALS)
    assert report.ok, report.summary()
    assert len(report.results) == CLEAN_TRIALS
