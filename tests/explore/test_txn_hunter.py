"""The fractured-read hunter: fuzzing transactions under chaos.

A seeded exploration workload runs multi-key transactions while a
fault plan kills the write set's primary *inside* a commit window,
then audits each trial with the cross-partition atomicity pass
(:mod:`repro.linearizability.atomicity`): no fractured reads, and the
quiescent state must equal the acknowledged commit log per key.

The mutation pair mirrors ``test_mutation_smoke``:
``REPRO_TEST_NO_COMMIT_FENCE=1`` disables the server-side commit
fence, so a commit retried at a promoted backup (whose unreplicated
prepare died with the old primary) silently installs *nothing* while
still acknowledging — the classic lost-update-by-failover bug.  The
hunter must find the resulting half-committed state within a bounded
trial budget, and must stay quiet with the fence on.
"""

import random

from repro import ExplorationRunner
from repro.chaos import ChaosInjector, FaultPlan
from repro.config import DEFAULT_CONFIG
from repro.errors import TxnError
from repro.linearizability import (
    final_state_violations,
    find_fractured_reads,
)
from repro.simulation.thread import sleep

KEYS = ("h-a", "h-b")
ROUNDS = 4
TRIALS = 6  # bounded budget: the planted bug must surface within these


def workload(trial):
    """Sequential multi-key transactions with a primary kill landed
    inside one commit's prepare->commit window (seed-jittered so the
    trials sweep the window), then a transactional read-back and a
    final-state audit snapshot."""
    rnd = random.Random(trial.seed)
    crash_jitter = 0.0002 + rnd.random() * 0.001
    with trial.environment(dso_nodes=3) as env:
        layer = env.dso
        injector = ChaosInjector(env.kernel, network=env.network,
                                 dso=layer)

        def main():
            with env.transaction(rf=2) as txn:
                for key in KEYS:
                    txn.write(key, 0)
            primary = layer.placement_of(layer._txn_ref(KEYS[0], 2))[0]
            for round_no in range(1, ROUNDS + 1):
                with env.transaction(rf=2) as txn:
                    for key in KEYS:
                        txn.write(key, round_no)
                    if round_no == ROUNDS:
                        # The *last* commit straddles the crash, so a
                        # silently dropped write has no later commit
                        # to mask it from the final-state audit.
                        injector.schedule(FaultPlan().add(
                            env.now + crash_jitter, "crash_node",
                            primary))
                sleep(0.001)
            sleep(DEFAULT_CONFIG.dso.failure_detection + 2.0)
            try:
                with env.transaction(rf=2) as txn:
                    for key in KEYS:
                        txn.read(key)
            except TxnError:
                pass  # aborted rather than fractured: fine
            final_cids = {
                key: layer.invoke("client", layer._txn_ref(key, 2),
                                  "latest_cid", ctor=layer._txn_ctor())
                for key in KEYS}
            return (tuple(layer.txn_log), tuple(layer.txn_reads),
                    final_cids)

        return env.run(main)


def read_atomic(trial, value):
    commits, reads, _ = value
    violations = find_fractured_reads(list(commits), list(reads))
    assert not violations, "; ".join(v.describe() for v in violations)
    return True


def final_equals_acked(trial, value):
    commits, _, final_cids = value
    findings = final_state_violations(list(commits), final_cids)
    assert not findings, "; ".join(findings)
    return True


def explore():
    return ExplorationRunner(
        workload, trials=TRIALS, base_seed=42, scheduler="random",
        scheduler_opts={"preempt_prob": 0.05},
        invariants=[read_atomic, final_equals_acked],
        shrink=False).run()


def test_hunter_finds_dropped_commit_without_the_fence(monkeypatch):
    monkeypatch.setenv("REPRO_TEST_NO_COMMIT_FENCE", "1")
    report = explore()
    assert report.failures, (
        "planted fence bug not found within "
        f"{TRIALS} trials:\n" + report.summary())
    failure = report.failures[0]
    # The half-committed state is caught by the final-state audit.
    assert any("final_equals_acked" in p for p in failure.problems), \
        failure.describe()
    # Every failure carries its reproduction handle.
    for failing in report.failures:
        assert failing.schedule_id
        assert failing.schedule.decisions is not None


def test_hunter_is_quiet_with_the_fence_on(monkeypatch):
    monkeypatch.delenv("REPRO_TEST_NO_COMMIT_FENCE", raising=False)
    report = explore()
    assert report.ok, report.summary()
