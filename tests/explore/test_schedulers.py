"""Scheduler strategies: determinism, diversity, replay.

The determinism contract under test: a schedule is a pure function of
``(scheduler kind, exploration seed, workload)`` — same seed, same
decisions, same fingerprint; different seeds, genuinely different
interleavings.
"""

import pytest

from repro.explore import (
    FifoScheduler,
    PctScheduler,
    RandomScheduler,
)
from repro.explore.scheduler import ReplayScheduler, ScheduleTrace
from repro.simulation import Kernel
from repro.simulation.thread import sleep


def _contended_run(scheduler, rounds=4):
    """N threads that repeatedly tie at the same wakeup instants;
    returns the observed event order."""
    order = []
    with Kernel(seed=1, scheduler=scheduler) as kernel:
        def worker(tag):
            for round_no in range(rounds):
                sleep(1.0)
                order.append((tag, round_no))

        for tag in "abcd":
            kernel.spawn(worker, tag, name=f"worker-{tag}")
        kernel.run()
    return order


def test_same_seed_same_decisions():
    runs = []
    for _ in range(2):
        scheduler = RandomScheduler(seed=7, preempt_prob=0.1)
        order = _contended_run(scheduler)
        runs.append((order, scheduler.trace.decisions,
                     scheduler.trace.fingerprint()))
    assert runs[0] == runs[1]


def test_different_seeds_reach_distinct_interleavings():
    orders, fingerprints = set(), set()
    for seed in range(6):
        scheduler = RandomScheduler(seed=seed)
        orders.add(tuple(_contended_run(scheduler)))
        fingerprints.add(scheduler.trace.fingerprint())
    assert len(orders) >= 2
    assert len(fingerprints) >= 2


def test_fifo_fingerprint_is_stable_and_trivial():
    first = FifoScheduler()
    second = FifoScheduler()
    _contended_run(first)
    _contended_run(second)
    assert first.trace.fingerprint() == second.trace.fingerprint()
    # FIFO never reorders or delays anything.
    assert all(d.chosen == 0 and d.delay == 0
               for d in first.trace.decisions)
    # A trace with no decisions at all describes itself as FIFO.
    assert "FIFO" in ScheduleTrace().describe()


def test_replay_reproduces_the_recorded_run():
    original = RandomScheduler(seed=11, preempt_prob=0.2)
    order = _contended_run(original)
    replayer = ReplayScheduler(original.trace)
    assert _contended_run(replayer) == order
    assert replayer.trace.fingerprint() == original.trace.fingerprint()


def test_replay_prefix_falls_back_to_fifo():
    original = RandomScheduler(seed=11, preempt_prob=0.2)
    _contended_run(original)
    prefix = original.trace.decisions[:3]
    replayer = ReplayScheduler(prefix)
    _contended_run(replayer)
    tail = replayer.trace.decisions[3:]
    assert all(d.chosen == 0 and d.delay == 0 for d in tail)


def test_pct_is_deterministic_and_depth_bounded():
    first = PctScheduler(seed=5, depth=3, expected_steps=50)
    second = PctScheduler(seed=5, depth=3, expected_steps=50)
    assert _contended_run(first) == _contended_run(second)
    assert first.trace.fingerprint() == second.trace.fingerprint()
    # depth - 1 change points at most.
    assert len(first._change_steps) <= 2


def test_pct_rejects_zero_depth():
    with pytest.raises(ValueError):
        PctScheduler(seed=0, depth=0)


def test_random_preemptions_are_bounded():
    scheduler = RandomScheduler(seed=2, preempt_prob=1.0,
                                max_preemptions=3)
    _contended_run(scheduler)
    assert scheduler.preemptions == 3
    delayed = [d for d in scheduler.trace.decisions if d.delay > 0]
    assert len(delayed) == 3
