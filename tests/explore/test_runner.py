"""The exploration runner: acceptance-level behaviour.

Covers the determinism acceptance criteria (same exploration seed =>
identical schedule decisions and byte-identical trace exports;
different seeds => >= 2 distinct interleavings on the 2-thread counter
workload), failure reporting with schedule shrinking, chaos
composition, and CI artifact dumping.
"""

import json
import os

from repro import AtomicLong, ExplorationRunner, LinearizabilityChecker
from repro.chaos import ChaosInjector, FaultPlan
from repro.simulation.thread import sleep, spawn

COUNTER = "explore-counter"


class CounterSpec:
    def __init__(self):
        self.value = 0

    def add_and_get(self, delta):
        self.value += delta
        return self.value

    def get(self):
        return self.value


def counter_workload(trial):
    """The 2-thread counter workload of the acceptance criteria."""
    with trial.environment(dso_nodes=2) as env:
        def main():
            counter = AtomicLong(COUNTER)
            counter.get()

            def worker(tid):
                for _ in range(3):
                    trial.recorder.record(
                        f"w{tid}", "add_and_get", (1,),
                        lambda: counter.add_and_get(1), key=COUNTER)

            threads = [spawn(worker, tid, name=f"worker-{tid}")
                       for tid in range(2)]
            for thread in threads:
                thread.join()
            return trial.recorder.record(
                "main", "get", (), counter.get, key=COUNTER)

        return env.run(main)


def racy_workload(trial):
    """A plain lost-update race that only *some* interleavings hit:
    under FIFO the read-modify-write pairs happen to serialize."""
    shared = [0]

    def writer_a():
        sleep(1.0)
        value = shared[0]
        sleep(1.0)
        shared[0] = value + 1

    def writer_b():
        sleep(1.0)
        sleep(1.0)
        value = shared[0]
        sleep(1.0)
        shared[0] = value + 1

    trial.kernel.spawn(writer_a, name="writer-a")
    trial.kernel.spawn(writer_b, name="writer-b")
    trial.kernel.run()
    return shared[0]


def both_updates_applied(trial, value):
    assert value == 2, f"lost update: final={value}"
    return True


def test_two_thread_counter_reaches_distinct_interleavings():
    report = ExplorationRunner(
        counter_workload, trials=6, base_seed=0, scheduler="random",
        checker=LinearizabilityChecker(CounterSpec),
        invariants=[lambda trial, value: value == 6]).run()
    assert report.ok, report.summary()
    assert report.distinct_schedules >= 2
    assert "distinct schedule" in report.summary()


def test_same_seed_gives_byte_identical_traces():
    def explore():
        return ExplorationRunner(
            counter_workload, trials=3, base_seed=5,
            scheduler="random", trace=True).run()

    first, second = explore(), explore()
    for left, right in zip(first.results, second.results):
        assert left.schedule_id == right.schedule_id
        assert left.fingerprint == right.fingerprint
        assert left.schedule.decisions == right.schedule.decisions
        assert left.chrome_trace() == right.chrome_trace()
        # The export is tagged with its schedule identity.
        tags = json.loads(left.chrome_trace())["otherData"]
        assert tags["schedule_id"] == left.schedule_id
        assert tags["fingerprint"] == left.fingerprint
        assert left.span_tree().startswith("schedule ")


def test_runner_finds_race_and_shrinks_schedule():
    report = ExplorationRunner(
        racy_workload, trials=8, base_seed=0, scheduler="random",
        invariants=[both_updates_applied]).run()
    assert report.failures, \
        "the planted lost-update race was never triggered"
    failing = report.failures[0]
    assert any("lost update" in p for p in failing.problems)
    assert failing.schedule.decisions  # replayable evidence
    assert failing.shrunk is not None
    assert failing.shrunk.verified
    assert failing.shrunk.prefix_length <= failing.shrunk.original_length


def test_replay_reproduces_a_failure():
    report = ExplorationRunner(
        racy_workload, trials=8, base_seed=0, scheduler="random",
        invariants=[both_updates_applied], shrink=False).run()
    failing = report.failures[0]
    replayed = ExplorationRunner(
        racy_workload, invariants=[both_updates_applied],
        shrink=False).replay(failing)
    assert not replayed.ok
    assert replayed.fingerprint == failing.fingerprint


def test_pct_scheduler_explores_the_counter_workload():
    report = ExplorationRunner(
        counter_workload, trials=4, base_seed=3, scheduler="pct",
        scheduler_opts={"depth": 2, "expected_steps": 200},
        checker=LinearizabilityChecker(CounterSpec)).run()
    assert report.ok, report.summary()
    assert all(r.schedule_id.startswith("pct:") for r in report.results)


def test_fault_plans_compose_with_schedules():
    def plan_for(trial):
        plan = FaultPlan()
        plan.add(0.5, "slow_node", "dso-1", factor=4.0, duration=1.0)
        return plan

    injected = []

    def workload(trial):
        with trial.environment(dso_nodes=2) as env:
            injector = ChaosInjector(env.kernel, network=env.network,
                                     dso=env.dso)

            def main():
                assert trial.fault_plan is not None
                injector.schedule(trial.fault_plan)
                counter = AtomicLong(COUNTER)
                for _ in range(4):
                    counter.add_and_get(1)
                    sleep(0.4)
                return counter.get()

            value = env.run(main)
            injected.append(injector.log.counts("inject"))
            return value

    report = ExplorationRunner(
        workload, trials=2, base_seed=1, scheduler="random",
        fault_plans=plan_for,
        invariants=[lambda trial, value: value == 4]).run()
    assert report.ok, report.summary()
    assert all(counts.get("slow_node") == 1 for counts in injected)


def test_artifacts_dumped_for_failures(tmp_path):
    artifact_dir = str(tmp_path / "artifacts")
    report = ExplorationRunner(
        racy_workload, trials=8, base_seed=0, scheduler="random",
        invariants=[both_updates_applied],
        artifact_dir=artifact_dir).run()
    assert report.failures
    files = sorted(os.listdir(artifact_dir))
    assert len(files) == len(report.failures)
    with open(os.path.join(artifact_dir, files[0])) as fh:
        doc = json.load(fh)
    assert doc["schedule_id"].startswith("random:")
    assert doc["problems"]
    assert doc["decisions"]
    # Shrunk prefixes ride along for one-command reproduction.
    assert "shrunk_prefix" in doc
