"""The CI ``explore-smoke`` budget: a few seeds, a small trial count,
the paper's two canonical workloads.

Each seed of the matrix fuzzes (a) the Listing-1 counter workload and
(b) a scaled-down Monte Carlo pi estimation through the exploration
runner, checking linearizability of the recorded counter history and
the workload-level invariant.  Failing seeds dump their schedules to
``EXPLORE_ARTIFACT_DIR`` (when set) for the CI upload step.
"""

import math
import os

from repro import AtomicLong, ExplorationRunner, LinearizabilityChecker
from repro.ports.montecarlo_crucial import estimate_pi

TRIALS = 3  # per seed: the smoke budget, not a soak


class CounterSpec:
    def __init__(self):
        self.value = 0

    def add_and_get(self, delta):
        self.value += delta
        return self.value

    def get(self):
        return self.value


def _artifact_dir(suffix):
    base = os.environ.get("EXPLORE_ARTIFACT_DIR")
    return os.path.join(base, suffix) if base else None


def counter_workload(trial):
    from repro.simulation.thread import spawn

    with trial.environment(dso_nodes=2) as env:
        def main():
            counter = AtomicLong("smoke-counter")
            counter.get()

            def worker(tid):
                for _ in range(2):
                    trial.recorder.record(
                        f"w{tid}", "add_and_get", (1,),
                        lambda: counter.add_and_get(1),
                        key="smoke-counter")

            workers = [spawn(worker, tid, name=f"worker-{tid}")
                       for tid in range(2)]
            for worker_thread in workers:
                worker_thread.join()
            return trial.recorder.record(
                "main", "get", (), counter.get, key="smoke-counter")

        return env.run(main)


def montecarlo_workload(trial):
    with trial.environment(dso_nodes=1) as env:
        return env.run(lambda: estimate_pi(4, counter_key="smoke-pi"))


def test_counter_smoke(explore_seed):
    report = ExplorationRunner(
        counter_workload, trials=TRIALS, base_seed=explore_seed,
        scheduler="random", scheduler_opts={"preempt_prob": 0.05},
        checker=LinearizabilityChecker(CounterSpec),
        invariants=[lambda trial, value: value == 4],
        artifact_dir=_artifact_dir(f"counter-seed{explore_seed}")).run()
    assert report.ok, report.summary()
    assert len(report.results) == TRIALS


def test_montecarlo_smoke(explore_seed):
    report = ExplorationRunner(
        montecarlo_workload, trials=TRIALS, base_seed=explore_seed,
        scheduler="random",
        invariants=[lambda trial, value:
                    abs(value - math.pi) < 0.01],
        artifact_dir=_artifact_dir(
            f"montecarlo-seed{explore_seed}")).run()
    assert report.ok, report.summary()
