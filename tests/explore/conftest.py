"""Fixtures for the exploration suite.

``EXPLORE_SEED`` (environment variable, comma-separated) narrows the
exploration base-seed matrix — the CI ``explore-smoke`` job shards
across seeds with it and re-runs a failing seed in isolation.
"""

import os

import pytest

#: Default base seeds for the smoke exploration matrix.
EXPLORE_SEEDS = (0, 13, 31)


def _selected_seeds():
    override = os.environ.get("EXPLORE_SEED")
    if override:
        return tuple(int(s) for s in override.split(","))
    return EXPLORE_SEEDS


@pytest.fixture(params=_selected_seeds(),
                ids=lambda seed: f"seed{seed}")
def explore_seed(request):
    return request.param
