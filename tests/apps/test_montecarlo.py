"""Unit tests for the Monte Carlo application (Listing 1)."""

import math

import pytest

from repro import CrucialEnvironment
from repro.apps import PiEstimator, estimate_pi


def test_estimate_converges_to_pi():
    with CrucialEnvironment(seed=161, dso_nodes=1) as env:
        estimate, elapsed = env.run(
            lambda: estimate_pi(8, iterations_per_thread=5_000_000,
                                counter_key="t1"))
    assert estimate == pytest.approx(math.pi, abs=0.01)
    assert elapsed > 0


def test_estimator_charges_modelled_compute():
    with CrucialEnvironment(seed=162, dso_nodes=1) as env:
        def main():
            start = env.now
            _estimate, _elapsed = estimate_pi(
                1, iterations_per_thread=16_400_000, counter_key="t2")
            return env.now - start

        elapsed = env.run(main)
    # 16.4M draws at ~16.4M draws/s ~ 1 s plus invocation overheads.
    assert 0.9 < elapsed < 1.5


def test_distinct_seeds_distinct_counts():
    with CrucialEnvironment(seed=163, dso_nodes=1) as env:
        def main():
            from repro.core.cloud_thread import run_all

            counts = run_all([PiEstimator(1_000_000, "t3", seed=i)
                              for i in range(4)])
            return counts

        counts = env.run(main)
    assert len(set(counts)) > 1
    expected = 1_000_000 * math.pi / 4
    assert all(abs(c - expected) < 5_000 for c in counts)


def test_speedup_with_more_threads():
    def timed(n):
        with CrucialEnvironment(seed=164, dso_nodes=1) as env:
            _estimate, elapsed = env.run(
                lambda: estimate_pi(n, iterations_per_thread=10_000_000,
                                    counter_key=f"t4-{n}"))
            return elapsed

    t1 = timed(1)
    t8 = timed(8)
    assert t8 < t1 * 1.3  # near-flat: embarrassingly parallel
