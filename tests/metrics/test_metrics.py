"""Unit tests for metrics: recorder, cost model, report tables."""

import pytest

from repro.metrics import (
    CostModel,
    ThroughputTracker,
    TimeSeries,
    comparison_table,
    percentile,
    render_table,
)


# -- recorder -----------------------------------------------------------------


def test_time_series_stats():
    series = TimeSeries("latency")
    for t, v in enumerate([1.0, 3.0, 2.0]):
        series.add(float(t), v)
    assert series.mean() == pytest.approx(2.0)
    assert series.maximum() == 3.0
    assert TimeSeries("empty").mean() == 0.0


def test_throughput_tracker_buckets():
    tracker = ThroughputTracker(bucket_width=1.0)
    for t in (0.1, 0.2, 1.5, 2.9, 2.95):
        tracker.record(t)
    assert tracker.series(0, 3) == [2.0, 1.0, 2.0]
    assert tracker.rate_between(0, 3) == pytest.approx(5 / 3)


def test_throughput_tracker_empty_window():
    tracker = ThroughputTracker()
    assert tracker.rate_between(5, 5) == 0.0


def test_percentile_nearest_rank():
    values = [float(v) for v in range(1, 101)]
    assert percentile(values, 50) == 50.0
    assert percentile(values, 99) == 99.0
    assert percentile(values, 100) == 100.0
    with pytest.raises(ValueError):
        percentile([], 50)
    with pytest.raises(ValueError):
        percentile([1.0], 150)


# -- cost model ------------------------------------------------------------------


def test_crucial_rate_matches_section_623():
    model = CostModel()
    # "0.25 and 0.28 cents per second for 1792MB and 2048MB"
    assert model.crucial_rate_per_second(80, 1792) * 100 == \
        pytest.approx(0.25, abs=0.01)
    assert model.crucial_rate_per_second(80, 2048) * 100 == \
        pytest.approx(0.28, abs=0.01)


def test_spark_rate_matches_section_623():
    model = CostModel()
    # "0.15 cents per second" for the 11-node EMR cluster.
    assert model.spark_rate_per_second() * 100 == pytest.approx(0.15,
                                                                abs=0.01)


def test_crucial_experiment_cost_breakdown():
    model = CostModel()
    cost = model.crucial_experiment("k-means", total_seconds=87,
                                    iteration_seconds=20.4,
                                    functions=80, memory_mb=2048)
    # Table 3: k-means (k=25) Crucial: total $0.244, iterations $0.057.
    assert cost.total_dollars == pytest.approx(0.244, abs=0.02)
    assert cost.iteration_dollars == pytest.approx(0.057, abs=0.005)


def test_spark_experiment_cost_breakdown():
    model = CostModel()
    cost = model.spark_experiment("k-means", total_seconds=168,
                                  iteration_seconds=34)
    # Table 3: k-means (k=25) Spark: total $0.246, iterations $0.050.
    assert cost.total_dollars == pytest.approx(0.246, abs=0.01)
    assert cost.iteration_dollars == pytest.approx(0.050, abs=0.005)


# -- report ------------------------------------------------------------------------


def test_render_table_alignment():
    text = render_table(["name", "value"], [("a", 1.0), ("bbbb", 22.5)],
                        title="demo")
    lines = text.splitlines()
    assert lines[0] == "demo"
    assert "name" in lines[1] and "value" in lines[1]
    assert len(lines) == 5


def test_comparison_table_ratio():
    text = comparison_table("t", [("x", 2.0, 1.0)], unit="s")
    assert "0.50x" in text
    assert "2s" in text
