"""Unit tests for metrics: recorder, cost model, report tables."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import (
    CostModel,
    ThroughputTracker,
    TimeSeries,
    comparison_table,
    percentile,
    render_table,
)


# -- recorder -----------------------------------------------------------------


def test_time_series_stats():
    series = TimeSeries("latency")
    for t, v in enumerate([1.0, 3.0, 2.0]):
        series.add(float(t), v)
    assert series.mean() == pytest.approx(2.0)
    assert series.maximum() == 3.0
    assert TimeSeries("empty").mean() == 0.0


def test_throughput_tracker_buckets():
    tracker = ThroughputTracker(bucket_width=1.0)
    for t in (0.1, 0.2, 1.5, 2.9, 2.95):
        tracker.record(t)
    assert tracker.series(0, 3) == [2.0, 1.0, 2.0]
    assert tracker.rate_between(0, 3) == pytest.approx(5 / 3)


def test_throughput_tracker_empty_window():
    tracker = ThroughputTracker()
    assert tracker.rate_between(5, 5) == 0.0


def test_rate_between_non_aligned_window():
    """Regression: the old implementation averaged whole-bucket rates,
    dropping the trailing partial bucket and dividing by bucket count
    instead of elapsed time."""
    tracker = ThroughputTracker(bucket_width=1.0)
    for t in (0.1, 0.2, 1.5, 2.2, 2.9):
        tracker.record(t)
    # [0, 2.5) holds 4 events over 2.5s — exactly events/elapsed.
    assert tracker.rate_between(0.0, 2.5) == pytest.approx(4 / 2.5)
    # A non-aligned start must not count events before the window.
    assert tracker.rate_between(0.15, 2.5) == pytest.approx(3 / 2.35)


def test_series_partial_edge_buckets():
    tracker = ThroughputTracker(bucket_width=1.0)
    for t in (0.1, 0.2, 1.5, 2.2, 2.9):
        tracker.record(t)
    # The trailing [2.0, 2.5) half-bucket holds one event: 2/s, not
    # dropped (old bug) and not diluted to 1/s.
    assert tracker.series(0.0, 2.5) == [2.0, 1.0, 2.0]
    # Leading partial bucket [0.15, 1.0) sees only the 0.2 event.
    first = tracker.series(0.15, 3.0)[0]
    assert first == pytest.approx(1 / 0.85)


def test_throughput_tracker_out_of_order_record():
    tracker = ThroughputTracker(bucket_width=1.0)
    for t in (1.0, 0.5, 2.0):
        tracker.record(t)
    assert tracker.count_between(0.0, 1.5) == 2


def test_percentile_nearest_rank():
    values = [float(v) for v in range(1, 101)]
    assert percentile(values, 50, method="nearest") == 50.0
    assert percentile(values, 99, method="nearest") == 99.0
    assert percentile(values, 100, method="nearest") == 100.0
    with pytest.raises(ValueError):
        percentile([], 50)
    with pytest.raises(ValueError):
        percentile([1.0], 150)
    with pytest.raises(ValueError):
        percentile([1.0], 50, method="median-of-vibes")


def test_percentile_linear_interpolation():
    values = [float(v) for v in range(1, 101)]
    assert percentile(values, 50) == pytest.approx(50.5)
    assert percentile(values, 99) == pytest.approx(99.01)
    assert percentile(values, 0) == 1.0
    assert percentile(values, 100) == 100.0
    assert percentile([1.0, 2.0], 50) == pytest.approx(1.5)


def test_percentile_p999_no_longer_pins_to_max():
    """Regression: nearest-rank pinned p999 to the sample maximum for
    any n < 1000; the interpolated default must sit below a lone
    outlier."""
    values = [1.0] * 99 + [1000.0]
    assert percentile(values, 99.9, method="nearest") == 1000.0
    assert percentile(values, 99.9) < 1000.0
    assert percentile(values, 99.9) == pytest.approx(1.0 + 999 * 0.901)


# -- property tests (hypothesis) ---------------------------------------------


@settings(max_examples=60, deadline=None)
@given(
    values=st.lists(st.floats(min_value=-1e6, max_value=1e6,
                              allow_nan=False), min_size=1, max_size=40),
    qs=st.tuples(st.floats(min_value=0, max_value=100),
                 st.floats(min_value=0, max_value=100)),
    method=st.sampled_from(["linear", "nearest"]),
)
def test_percentile_monotone_and_bounded(values, qs, method):
    lo, hi = sorted(qs)
    p_lo = percentile(values, lo, method=method)
    p_hi = percentile(values, hi, method=method)
    assert p_lo <= p_hi
    assert min(values) <= p_lo <= max(values)
    assert min(values) <= p_hi <= max(values)


@settings(max_examples=60, deadline=None)
@given(
    events=st.lists(st.floats(min_value=0, max_value=100,
                              allow_nan=False), max_size=50),
    window=st.tuples(st.floats(min_value=0, max_value=100),
                     st.floats(min_value=0.1, max_value=50)),
)
def test_rate_between_equals_events_over_elapsed(events, window):
    tracker = ThroughputTracker(bucket_width=1.0)
    for t in events:
        tracker.record(t)
    start, span = window
    end = start + span
    expected = sum(1 for t in events if start <= t < end) / span
    assert tracker.rate_between(start, end) == pytest.approx(expected)
    # The bucketed series integrates back to the same count.
    total = sum(rate * width for rate, width in zip(
        tracker.series(start, end),
        _bucket_widths(start, end, tracker.bucket_width)))
    assert total == pytest.approx(expected * span)


def _bucket_widths(start, end, width):
    import math

    out = []
    for bucket in range(int(start // width), math.ceil(end / width)):
        lo = max(start, bucket * width)
        hi = min(end, (bucket + 1) * width)
        if hi > lo:
            out.append(hi - lo)
    return out


# -- cost model ------------------------------------------------------------------


def test_crucial_rate_matches_section_623():
    model = CostModel()
    # "0.25 and 0.28 cents per second for 1792MB and 2048MB"
    assert model.crucial_rate_per_second(80, 1792) * 100 == \
        pytest.approx(0.25, abs=0.01)
    assert model.crucial_rate_per_second(80, 2048) * 100 == \
        pytest.approx(0.28, abs=0.01)


def test_spark_rate_matches_section_623():
    model = CostModel()
    # "0.15 cents per second" for the 11-node EMR cluster.
    assert model.spark_rate_per_second() * 100 == pytest.approx(0.15,
                                                                abs=0.01)


def test_crucial_experiment_cost_breakdown():
    model = CostModel()
    cost = model.crucial_experiment("k-means", total_seconds=87,
                                    iteration_seconds=20.4,
                                    functions=80, memory_mb=2048)
    # Table 3: k-means (k=25) Crucial: total $0.244, iterations $0.057.
    assert cost.total_dollars == pytest.approx(0.244, abs=0.02)
    assert cost.iteration_dollars == pytest.approx(0.057, abs=0.005)


def test_spark_experiment_cost_breakdown():
    model = CostModel()
    cost = model.spark_experiment("k-means", total_seconds=168,
                                  iteration_seconds=34)
    # Table 3: k-means (k=25) Spark: total $0.246, iterations $0.050.
    assert cost.total_dollars == pytest.approx(0.246, abs=0.01)
    assert cost.iteration_dollars == pytest.approx(0.050, abs=0.005)


# -- report ------------------------------------------------------------------------


def test_render_table_alignment():
    text = render_table(["name", "value"], [("a", 1.0), ("bbbb", 22.5)],
                        title="demo")
    lines = text.splitlines()
    assert lines[0] == "demo"
    assert "name" in lines[1] and "value" in lines[1]
    assert len(lines) == 5


def test_comparison_table_ratio():
    text = comparison_table("t", [("x", 2.0, 1.0)], unit="s")
    assert "0.50x" in text
    assert "2s" in text
