"""Tests for the ASCII plotting helpers."""

import pytest

from repro.metrics.ascii_plot import bar_chart, sparkline


def test_sparkline_shape():
    line = sparkline([0, 1, 2, 3, 4, 5])
    assert len(line) == 6
    assert line[0] != line[-1]


def test_sparkline_flat_series():
    line = sparkline([5.0, 5.0, 5.0])
    assert len(line) == 3
    assert len(set(line)) == 1


def test_sparkline_resamples_to_width():
    line = sparkline(list(range(1000)), width=40)
    assert len(line) == 40


def test_sparkline_empty():
    assert sparkline([]) == ""


def test_sparkline_captures_dip():
    series = [100] * 10 + [10] * 10 + [100] * 10
    line = sparkline(series)
    assert line[15] < line[0]  # the dip is visible


def test_bar_chart_alignment_and_values():
    chart = bar_chart(["short", "longer-label"], [1.0, 2.0], unit="s")
    lines = chart.splitlines()
    assert len(lines) == 2
    assert lines[0].index("|") == lines[1].index("|")
    assert "2s" in lines[1]


def test_bar_chart_scales_to_max():
    chart = bar_chart(["a", "b"], [1.0, 10.0], width=20)
    bars = [line.count("#") for line in chart.splitlines()]
    assert bars[1] == 20
    assert bars[0] == 2


def test_bar_chart_validates_lengths():
    with pytest.raises(ValueError):
        bar_chart(["a"], [1.0, 2.0])


def test_bar_chart_empty():
    assert bar_chart([], []) == ""
