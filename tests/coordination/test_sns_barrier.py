"""Unit + chaos tests for the SNS+SQS barrier (the Fig. 7a baseline).

The barrier had no dedicated coverage: these pin the rendezvous
contract (nobody passes before the last arrival), cyclic reuse,
straggler handling, and — under chaos — a participant's container
killed mid-wait, where the at-least-once retry semantics of FaaS
(Section 4.4) require an at-least-once *release* from the
coordinator for the rendezvous to converge.
"""

import pytest

from repro import CloudThread, CrucialEnvironment, RetryPolicy
from repro.core.runtime import (
    RUNNER_FUNCTION,
    compute,
    current_environment,
)
from repro.coordination.sns_barrier import SnsSqsBarrier
from repro.simulation.thread import sleep, spawn


@pytest.fixture
def env():
    with CrucialEnvironment(seed=29, dso_nodes=1) as environment:
        yield environment


class _Party:
    """Cloud-thread body for the chaos test: a short compute, then
    one barrier round.  Re-runnable: a retried attempt re-announces
    and waits for a (re-published) release."""

    def __init__(self, barrier: SnsSqsBarrier, thread_id: int):
        self.barrier = barrier
        self.thread_id = thread_id

    def run(self) -> float:
        compute(0.5)
        self.barrier.wait(self.thread_id, 0)
        return current_environment().now


def test_rendezvous_holds_until_last_arrival(env):
    parties = 4

    def main():
        barrier = SnsSqsBarrier("rdv", parties)
        barrier.setup()
        entered, left = {}, {}

        def member(i):
            sleep(0.2 * i)  # staggered arrivals
            entered[i] = env.now
            barrier.wait(i, 0)
            left[i] = env.now

        coordinator = spawn(barrier.coordinate, 1, name="coordinator")
        threads = [spawn(member, i, name=f"m{i}")
                   for i in range(parties)]
        for thread in threads:
            thread.join()
        coordinator.join()
        return entered, left

    entered, left = env.run(main)
    assert len(left) == parties
    # Nobody is released before the last party announced itself.
    assert min(left.values()) >= max(entered.values())


def test_straggler_delays_everyone(env):
    parties, straggle = 3, 5.0

    def main():
        barrier = SnsSqsBarrier("strag", parties)
        barrier.setup()
        left = {}

        def member(i):
            if i == parties - 1:
                sleep(straggle)
            barrier.wait(i, 0)
            left[i] = env.now

        coordinator = spawn(barrier.coordinate, 1, name="coordinator")
        threads = [spawn(member, i, name=f"m{i}")
                   for i in range(parties)]
        for thread in threads:
            thread.join()
        coordinator.join()
        return left

    left = env.run(main)
    # The prompt parties were all held until the straggler arrived.
    assert min(left.values()) >= straggle


def test_cyclic_reuse_across_rounds(env):
    parties, rounds = 3, 2

    def main():
        barrier = SnsSqsBarrier("cyc", parties)
        barrier.setup()
        passes = []

        def member(i):
            for round_number in range(rounds):
                barrier.wait(i, round_number)
                passes.append((round_number, env.now))

        coordinator = spawn(barrier.coordinate, rounds,
                            name="coordinator")
        threads = [spawn(member, i, name=f"m{i}")
                   for i in range(parties)]
        for thread in threads:
            thread.join()
        coordinator.join()
        return passes

    passes = env.run(main)
    assert len(passes) == parties * rounds
    # Round 1 exits strictly follow every round 0 exit.
    round0 = max(t for r, t in passes if r == 0)
    round1 = min(t for r, t in passes if r == 1)
    assert round1 >= round0


def test_participant_killed_mid_wait_converges_with_retry(env):
    """Chaos: one party's container is killed mid-round.  The platform
    only surfaces the kill when the invocation settles, so the failed
    attempt already consumed its release — the retried attempt needs
    the coordinator to re-publish (at-least-once release), the
    standard mitigation for at-least-once function execution."""
    parties = 4

    def main():
        barrier = SnsSqsBarrier("chaos", parties)
        barrier.setup()
        env.pre_warm(parties)
        done = []
        killed = []

        def coordinator():
            # Count the first full round of arrivals, then re-publish
            # the release until every cloud thread has checked in
            # (duplicate releases are idempotent for wait()).
            seen = 0
            while seen < parties:
                batch = env.queue_service.receive(
                    barrier.arrival_queue, max_messages=10, wait=30.0)
                if batch:
                    env.queue_service.delete_batch(
                        barrier.arrival_queue,
                        [message.receipt for message in batch])
                seen += len(batch)
            while not done:
                env.notification.publish(barrier.topic, 0)
                sleep(0.5)

        def assassin():
            while not env.platform.busy_containers(RUNNER_FUNCTION):
                sleep(0.05)
            victim = env.platform.busy_containers(RUNNER_FUNCTION)[0]
            assert env.platform.kill_container(victim)
            killed.append(victim)

        coord = spawn(coordinator, name="coordinator")
        killer = spawn(assassin, name="assassin")
        workers = [
            CloudThread(_Party(barrier, i),
                        retry_policy=RetryPolicy(max_retries=2,
                                                 backoff=0.1))
            for i in range(parties)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        done.append(True)
        killer.join()
        coord.join()
        return killed, [w.attempts for w in workers], \
            [w.result() for w in workers]

    killed, attempts, results = env.run(main)
    # The kill landed, every party still made it through the barrier,
    # and exactly the killed party needed a second attempt.
    assert len(killed) == 1
    assert len(results) == parties
    assert sum(attempts) == parties + 1
    assert max(attempts) == 2
