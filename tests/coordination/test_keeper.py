"""Unit tests for the ZooKeeper-like keeper service (ROADMAP item 3).

Covers the znode tree semantics (CRUD, versions, CAS guards,
sequential and ephemeral nodes), sessions (leases, heartbeats, expiry,
container liveness), ordered one-shot watches through the fence, and
the classic recipes built on top.
"""

import pytest

from repro import (
    BadVersionError,
    CrucialEnvironment,
    KeeperError,
    KeeperService,
    NoNodeError,
    NodeExistsError,
    NotEmptyError,
    SessionExpiredError,
    find_watch_violations,
)
from repro.coordination import (
    ConfigWatcher,
    KeeperBarrier,
    KeeperSemaphore,
    LeaderElector,
)
from repro.simulation.thread import sleep, spawn


@pytest.fixture
def env():
    with CrucialEnvironment(seed=11, dso_nodes=1) as environment:
        yield environment


def make_service(**kwargs):
    kwargs.setdefault("rf", 1)
    kwargs.setdefault("session_ttl", 2.0)
    kwargs.setdefault("pump_period", 0.05)
    return KeeperService(**kwargs)


# ---------------------------------------------------------------------------
# znode tree semantics
# ---------------------------------------------------------------------------


def test_create_get_set_delete_roundtrip(env):
    def main():
        keeper = make_service(name="crud")
        with keeper.session() as s:
            s.create("/app")
            s.create("/app/config", data={"workers": 4})
            assert s.get("/app/config") == ({"workers": 4}, 0)
            assert s.set("/app/config", {"workers": 8}) == 1
            assert s.get("/app/config") == ({"workers": 8}, 1)
            assert s.children("/app") == ("config",)
            assert s.exists("/app/config") == 1
            s.delete("/app/config")
            assert s.exists("/app/config") is None
        keeper.stop()

    env.run(main)


def test_error_paths(env):
    def main():
        keeper = make_service(name="errs")
        with keeper.session() as s:
            with pytest.raises(NoNodeError):
                s.get("/missing")
            with pytest.raises(NoNodeError):
                s.create("/no/parent/here")
            s.create("/a")
            with pytest.raises(NodeExistsError):
                s.create("/a")
            s.create("/a/b")
            with pytest.raises(NotEmptyError):
                s.delete("/a")
            with pytest.raises(KeeperError):
                s.create("/", data="root has no name")
            # Ephemerals are leaves: no children under them.
            s.create("/a/eph", ephemeral=True)
            with pytest.raises(KeeperError):
                s.create("/a/eph/child")
        keeper.stop()

    env.run(main)


def test_version_cas_guards(env):
    def main():
        keeper = make_service(name="cas")
        with keeper.session() as s:
            s.create("/k", data=0)
            assert s.set("/k", 1, version=0) == 1
            with pytest.raises(BadVersionError):
                s.set("/k", 99, version=0)  # stale expected version
            with pytest.raises(BadVersionError):
                s.delete("/k", version=0)
            assert s.get("/k") == (1, 1)  # failed ops left no trace
            s.delete("/k", version=1)
            assert s.exists("/k") is None
        keeper.stop()

    env.run(main)


def test_sequential_names_dense_and_ordered(env):
    def main():
        keeper = make_service(name="seq")
        with keeper.session() as s:
            s.create("/q")
            created = [s.create("/q/item-", sequential=True)
                       for _ in range(5)]
            # Dense zero-padded counters; sorted order == create order.
            names = [p.rsplit("/", 1)[1] for p in created]
            assert names == [f"item-{i:010d}" for i in range(5)]
            assert tuple(sorted(names)) == s.children("/q")
            # The counter never reuses a slot, even after a delete.
            s.delete(created[2])
            assert s.create("/q/item-", sequential=True) \
                == "/q/item-" + f"{5:010d}"
        keeper.stop()

    env.run(main)


def test_watches_fire_once_in_kind(env):
    def main():
        keeper = make_service(name="watch")
        with keeper.session(name="writer") as w, \
                keeper.session(name="observer") as o:
            w.create("/cfg", data=1)
            o.get("/cfg", watch=True)
            o.children("/", watch=True)
            w.set("/cfg", 2)
            changed = o.next_event(timeout=10.0)
            assert (changed.kind, changed.path) == ("changed", "/cfg")
            # One-shot: a second write without re-arming is silent.
            w.set("/cfg", 3)
            assert o.next_event(timeout=1.0) is None
            # Re-arm, then delete: data watch reports the deletion and
            # the root children watch reports the shrink.
            o.get("/cfg", watch=True)
            w.delete("/cfg")
            kinds = {e.kind for e in o.events(2, timeout=10.0)}
            assert kinds == {"deleted", "children"}
        keeper.stop()

    env.run(main)


def test_exists_watch_on_absent_path_fires_on_create(env):
    def main():
        keeper = make_service(name="absent")
        with keeper.session(name="w") as w, \
                keeper.session(name="o") as o:
            assert o.exists("/later", watch=True) is None
            w.create("/later", data="here")
            event = o.next_event(timeout=10.0)
            assert (event.kind, event.path) == ("created", "/later")
        keeper.stop()

    env.run(main)


def test_watch_stream_obeys_global_write_order(env):
    """Many watches armed before a write burst: the fence releases
    events seq-dense and zxid-ordered despite the queue's heavy-tailed
    delivery lag."""
    def main():
        keeper = make_service(name="order")
        with keeper.session(name="w") as w, \
                keeper.session(name="o") as o:
            paths = [f"/n{i}" for i in range(12)]
            for path in paths:
                o.exists(path, watch=True)
            for path in paths:
                w.create(path)
            events = list(o.events(len(paths), timeout=30.0))
            assert len(events) == len(paths)
            sleep(1.0)  # let the pump quiesce before the audit
            assigned = keeper.assigned_counts()
            keeper.stop()
            return events, assigned

    events, assigned = env.run(main)
    assert [e.seq for e in events] == list(range(1, len(events) + 1))
    zxids = [e.zxid for e in events]
    assert zxids == sorted(zxids)
    assert not find_watch_violations({"o": events}, assigned)


# ---------------------------------------------------------------------------
# sessions: leases, expiry, liveness
# ---------------------------------------------------------------------------


def test_close_deletes_ephemerals_immediately(env):
    def main():
        keeper = make_service(name="bye")
        auditor = keeper.session(name="aud")
        s = keeper.session(name="tmp")
        s.create("/svc")
        s.create("/svc/me", ephemeral=True)
        assert auditor.exists("/svc/me") == 0
        s.close()
        gone_at_close = auditor.exists("/svc/me") is None
        persistent_kept = auditor.exists("/svc") == 0
        auditor.close()
        keeper.stop()
        return gone_at_close, persistent_kept

    gone, kept = env.run(main)
    assert gone and kept


def test_killed_session_expires_within_two_ttl(env):
    """A fail-stopped holder's ephemerals are reaped by the sweeper
    within 2x the session TTL (the ISSUE's detection bound)."""
    ttl = 2.0

    def main():
        keeper = make_service(name="exp", session_ttl=ttl)
        auditor = keeper.session(name="aud", ttl=60.0)
        holder = keeper.session(name="holder")
        holder.create("/lock", ephemeral=True)
        sleep(3 * ttl)  # heartbeats keep the lease alive meanwhile
        assert auditor.exists("/lock") == 0
        killed_at = env.now
        holder.kill()
        while auditor.exists("/lock") is not None:
            sleep(0.1)
            assert env.now - killed_at < 2 * ttl + 0.5, \
                "ephemeral outlived the expiry bound"
        detection = env.now - killed_at
        sleep(ttl)  # let the sweeper mark the local session
        state = holder.state
        auditor.close()
        keeper.stop()
        return detection, state

    detection, state = env.run(main)
    assert detection <= 2 * ttl
    assert state == "expired"


def test_session_state_machine(env):
    def main():
        keeper = make_service(name="states")
        s = keeper.session(name="s")
        assert s.state == "open"
        s.close()
        assert s.state == "closed"
        with pytest.raises(SessionExpiredError):
            s.create("/x")
        # A *killed* session is a zombie: ops still reach the server
        # until the lease lapses, then fail with SessionExpiredError.
        z = keeper.session(name="z", ttl=1.0)
        z.kill()
        assert z.state == "killed"
        z.create("/zombie-write")  # lease not lapsed yet: accepted
        sleep(3.0)
        with pytest.raises(SessionExpiredError):
            z.create("/too-late")
        keeper.stop()

    env.run(main)


def test_expired_sessions_watches_are_dropped(env):
    def main():
        keeper = make_service(name="drop", session_ttl=1.0)
        w = keeper.session(name="w", ttl=30.0)
        dead = keeper.session(name="dead")
        w.create("/t", data=0)
        dead.get("/t", watch=True)
        dead.kill()
        sleep(3.0)  # lease lapses; registration dropped with it
        w.set("/t", 1)
        sleep(1.0)
        assigned = keeper.assigned_counts()
        keeper.stop()
        return assigned

    assigned = env.run(main)
    assert assigned.get("dead", 0) == 0


def test_container_reclaim_abandons_function_sessions(env):
    """FaaSKeeper's liveness rule: a session opened inside a function
    container dies with the container — no goodbye, the lease just
    stops being renewed and the sweeper reaps the ephemerals."""
    ttl = 2.0

    def main():
        keeper = make_service(name="faas", session_ttl=ttl)

        def handler(ctx, payload):
            # The handler declares its container as the session home,
            # tying the lease to the container's liveness.
            session = keeper.session(name="fn-session",
                                     home=ctx.endpoint)
            session.create("/workers")
            session.create("/workers/me", ephemeral=True,
                           data=ctx.endpoint)
            return ctx.endpoint

        env.platform.deploy("keeper-worker", handler)
        auditor = keeper.session(name="aud", ttl=60.0)
        home = env.platform.invoke("client", "keeper-worker")
        assert auditor.exists("/workers/me") == 0
        # The invocation is over; the platform reclaims the idle
        # container, which abandons the session it hosted.
        reclaimed_at = env.now
        assert env.platform.reclaim_idle("keeper-worker", keep=0) == 1
        while auditor.exists("/workers/me") is not None:
            sleep(0.1)
            assert env.now - reclaimed_at < 2 * ttl + 0.5
        detection = env.now - reclaimed_at
        auditor.close()
        keeper.stop()
        return home, detection

    home, detection = env.run(main)
    # The session's home really was the function container.
    assert "keeper-worker" in home
    assert detection <= 2 * ttl


# ---------------------------------------------------------------------------
# replication + audit
# ---------------------------------------------------------------------------


def test_replicated_tree_audit_log():
    with CrucialEnvironment(seed=13, dso_nodes=3) as env:
        def main():
            keeper = make_service(name="audit", rf=2)
            with keeper.session() as s:
                s.create("/a", data=1)
                s.set("/a", 2)
                s.create("/a/b")
                s.delete("/a/b")
                acked = list(s.acked)
            log = keeper.zxid_log()
            dump = keeper.dump()
            keeper.stop()
            return acked, log, dump

        acked, log, dump = env.run(main)
    # zxids are dense and every acked write is in the log exactly once.
    assert [z for z, _, _ in log] == list(range(1, len(log) + 1))
    logged = {(op, path, zxid) for zxid, op, path in log}
    for op, path, zxid in acked:
        assert (op, path, zxid) in logged
    assert dump["/a"] == (2, 1, None)
    assert "/a/b" not in dump


# ---------------------------------------------------------------------------
# recipes
# ---------------------------------------------------------------------------


def test_barrier_rendezvous(env):
    parties, rounds = 4, 2

    def main():
        keeper = make_service(name="bar")
        passes = []

        def party(i):
            with keeper.session(name=f"p{i}") as session:
                barrier = KeeperBarrier(session, "/barrier", parties)
                for round_number in range(rounds):
                    barrier.wait(round_number)
                    passes.append((i, round_number))

        threads = [spawn(party, i, name=f"party-{i}")
                   for i in range(parties)]
        for thread in threads:
            thread.join()
        keeper.stop()
        return passes

    passes = env.run(main)
    assert len(passes) == parties * rounds
    # Nobody passes round 1 before every party passed round 0.
    order = [r for _, r in passes]
    assert order == sorted(order)


def test_semaphore_bounds_concurrency(env):
    permits, workers = 2, 6

    def main():
        keeper = make_service(name="sem")
        active = [0]
        high_water = [0]

        def worker(i):
            with keeper.session(name=f"w{i}") as session:
                sem = KeeperSemaphore(session, "/sem", permits)
                with sem:
                    active[0] += 1
                    high_water[0] = max(high_water[0], active[0])
                    sleep(0.5)
                    active[0] -= 1

        threads = [spawn(worker, i, name=f"worker-{i}")
                   for i in range(workers)]
        for thread in threads:
            thread.join()
        keeper.stop()
        return high_water[0]

    assert env.run(main) == permits


def test_leader_election_and_failover(env):
    def main():
        keeper = make_service(name="elect", session_ttl=2.0)
        sessions = {m: keeper.session(name=m) for m in ("c0", "c1", "c2")}
        electors = {m: LeaderElector(sessions[m], "/svc", m)
                    for m in sessions}
        for member in ("c0", "c1", "c2"):  # deterministic ranks
            electors[member].volunteer()
        electors["c0"].lead(timeout=30.0)
        assert electors["c0"].is_leader()
        assert not electors["c1"].is_leader()
        first = sessions["c2"].get("/svc/leader")[0]

        # The leader fail-stops; its successor must take over.
        fell_at = env.now
        sessions["c0"].kill()
        electors["c1"].lead(timeout=60.0)
        convergence = env.now - fell_at
        second = sessions["c2"].get("/svc/leader")[0]
        for name in ("c1", "c2"):
            sessions[name].close()
        keeper.stop()
        return first, second, convergence

    first, second, convergence = env.run(main)
    assert (first, second) == ("c0", "c1")
    # Failover = lease expiry + one watch delivery: well under 4x TTL.
    assert convergence < 8.0


def test_config_watcher_follows_updates(env):
    def main():
        keeper = make_service(name="cfg")
        with keeper.session(name="pub") as pub, \
                keeper.session(name="sub") as sub:
            watcher = ConfigWatcher(sub, "/conf")
            assert watcher.value is None  # absent is a valid start
            pub.create("/conf", data="v1")
            watcher.await_change(timeout=10.0)
            assert (watcher.value, watcher.version) == ("v1", 0)
            pub.set("/conf", "v2")
            watcher.await_change(timeout=10.0)
            assert (watcher.value, watcher.version) == ("v2", 1)
        keeper.stop()

    env.run(main)
