"""Property sweeps for the keeper under schedule exploration.

Three ZooKeeper contracts, each checked across seeded schedules with
both the random-preemption and PCT schedulers:

* sequential znode names are dense and strictly increasing even under
  concurrent creators racing on one parent;
* a watch set before a write is delivered exactly once;
* no session ever observes watch events out of global write order
  (:func:`repro.linearizability.watches.watch_order_invariant`).
"""

import pytest

from repro import ExplorationRunner, KeeperService, watch_order_invariant
from repro.simulation.thread import sleep, spawn

CREATORS = 3
PER_CREATOR = 4
PATHS = 8
TRIALS = 4

SCHEDULERS = [
    ("random", {"preempt_prob": 0.1}),
    ("pct", {"depth": 3, "expected_steps": 400}),
]


def sequential_workload(trial):
    """Concurrent creators race sequential creates on one parent."""
    with trial.environment(dso_nodes=1) as env:
        def main():
            keeper = KeeperService(name="props-seq", rf=1,
                                   session_ttl=30.0)
            created: list[list[str]] = [[] for _ in range(CREATORS)]

            def creator(index):
                with keeper.session(name=f"c{index}") as session:
                    for _ in range(PER_CREATOR):
                        created[index].append(
                            session.create("/q/job-", sequential=True))
                        sleep(0.01)

            with keeper.session(name="setup") as setup:
                setup.create("/q")
                threads = [spawn(creator, i, name=f"creator-{i}")
                           for i in range(CREATORS)]
                for thread in threads:
                    thread.join()
                children = setup.children("/q")
            keeper.stop()
            return created, children

        return env.run(main)


def names_dense_and_increasing(trial, value):
    created, children = value
    # Dense: the parent's counter never skipped or reused a slot.
    suffixes = sorted(int(name[-10:]) for name in children)
    assert suffixes == list(range(CREATORS * PER_CREATOR)), children
    # Per creator, acknowledged order == counter order (increasing).
    for names in created:
        seen = [int(path[-10:]) for path in names]
        assert seen == sorted(seen), names
    # Every create was acknowledged under a unique name.
    all_names = {path.rsplit("/", 1)[1]
                 for names in created for path in names}
    assert all_names == set(children)
    return True


def watch_workload(trial):
    """One observer arms watches before a write burst; the audit gets
    the delivered stream plus the tree's assigned counts."""
    with trial.environment(dso_nodes=1) as env:
        def main():
            keeper = KeeperService(name="props-watch", rf=1,
                                   session_ttl=30.0, pump_period=0.05)
            paths = [f"/w{i}" for i in range(PATHS)]
            with keeper.session(name="observer") as observer, \
                    keeper.session(name="writer") as writer:
                for path in paths:
                    observer.exists(path, watch=True)

                def write_burst():
                    for path in paths:
                        writer.create(path, data=path)
                        sleep(0.002)

                burst = spawn(write_burst, name="writer-burst")
                events = list(observer.events(PATHS, timeout=60.0))
                burst.join()
                sleep(1.0)  # quiesce the delivery pump
                assigned = keeper.assigned_counts()
                delivered = {"observer": events}
            keeper.stop()
            return delivered, assigned

        return env.run(main)


def delivered_exactly_once(trial, value):
    delivered, assigned = value
    events = delivered["observer"]
    # Every armed watch fired and reached the application once.
    assert len(events) == PATHS, events
    assert len({event.seq for event in events}) == PATHS
    assert assigned.get("observer") == PATHS
    assert {event.path for event in events} \
        == {f"/w{i}" for i in range(PATHS)}
    return True


@pytest.mark.parametrize("scheduler,opts", SCHEDULERS,
                         ids=[name for name, _ in SCHEDULERS])
def test_sequential_names_under_concurrent_creators(scheduler, opts):
    report = ExplorationRunner(
        sequential_workload, trials=TRIALS, base_seed=7,
        scheduler=scheduler, scheduler_opts=opts,
        invariants=[names_dense_and_increasing], shrink=False).run()
    assert report.ok, report.summary()
    assert len(report.results) == TRIALS


@pytest.mark.parametrize("scheduler,opts", SCHEDULERS,
                         ids=[name for name, _ in SCHEDULERS])
def test_watches_exactly_once_and_in_order(scheduler, opts):
    report = ExplorationRunner(
        watch_workload, trials=TRIALS, base_seed=19,
        scheduler=scheduler, scheduler_opts=opts,
        invariants=[delivered_exactly_once, watch_order_invariant],
        shrink=False).run()
    assert report.ok, report.summary()
    assert len(report.results) == TRIALS
