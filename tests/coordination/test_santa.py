"""Unit tests for the Santa Claus problem (Fig. 7c)."""

import pytest

from repro import CrucialEnvironment
from repro.coordination import SantaClausProblem


@pytest.fixture
def env():
    with CrucialEnvironment(seed=67, dso_nodes=1) as environment:
        yield environment


def make_problem(deliveries=5):
    return SantaClausProblem(deliveries=deliveries, seed=67)


def test_local_variant_completes_all_deliveries(env):
    result = env.run(lambda: make_problem().run("local"))
    assert result.deliveries == 5
    assert result.elapsed > 0


def test_dso_variant_completes_all_deliveries(env):
    result = env.run(lambda: make_problem().run("dso"))
    assert result.deliveries == 5


def test_cloud_variant_completes_all_deliveries(env):
    result = env.run(lambda: make_problem().run("cloud"))
    assert result.deliveries == 5


def test_unknown_variant_rejected(env):
    with pytest.raises(ValueError):
        env.run(lambda: make_problem().run("quantum"))


def test_dso_overhead_is_small(env):
    """Fig. 7c: storing the objects in Crucial costs ~8%."""

    def main():
        problem = make_problem(deliveries=10)
        local = problem.run("local", run_id="cmp-local")
        dso = problem.run("dso", run_id="cmp-dso")
        return local.elapsed, dso.elapsed

    local_time, dso_time = env.run(main)
    overhead = dso_time / local_time - 1.0
    assert -0.05 < overhead < 0.35


def test_elves_get_helped(env):
    def main():
        problem = SantaClausProblem(deliveries=8, seed=67,
                                    vacation_mean=0.5, work_mean=0.02)
        return problem.run("local")

    result = env.run(main)
    # With slow reindeer and eager elves, Santa must help some groups.
    assert result.helps > 0


def test_deterministic_repetition():
    def run_once():
        with CrucialEnvironment(seed=71, dso_nodes=1) as env:
            return env.run(lambda: make_problem().run("dso")).elapsed

    assert run_once() == run_once()
