"""Unit tests for the map-phase synchronization strategies (Fig. 6)."""

import math

import pytest

from repro import CrucialEnvironment
from repro.coordination import STRATEGIES, MapSyncExperiment

N_THREADS = 8
DRAWS = 1_000_000


@pytest.fixture
def env():
    with CrucialEnvironment(seed=61, dso_nodes=1) as environment:
        yield environment


@pytest.mark.parametrize("strategy", sorted(STRATEGIES))
def test_every_strategy_aggregates_correctly(env, strategy):
    def main():
        experiment = MapSyncExperiment(strategy, n_threads=N_THREADS,
                                       draws=DRAWS)
        return experiment.execute()

    result = env.run(main)
    estimate = 4.0 * result.aggregate / (N_THREADS * DRAWS)
    assert estimate == pytest.approx(math.pi, rel=0.01)
    assert result.sync_time > 0
    assert result.total_time > result.sync_time


def test_unknown_strategy_rejected(env):
    with pytest.raises(ValueError):
        MapSyncExperiment("carrier-pigeon")


def test_fig6_ordering_future_beats_polling(env):
    """The paper's headline shape: futures beat polling, auto-reduce
    beats everything, SQS is slowest."""

    def main():
        sync_times = {}
        for name in ("sqs", "s3-polling", "future", "auto-reduce"):
            # Enough mappers that the client-side reduce of the future
            # strategy is visible against auto-reduce's single read.
            experiment = MapSyncExperiment(name, n_threads=40,
                                           draws=DRAWS,
                                           run_id=f"order-{name}")
            sync_times[name] = experiment.execute().sync_time
        return sync_times

    sync = env.run(main)
    assert sync["auto-reduce"] < sync["future"]
    assert sync["future"] < sync["s3-polling"]
    assert sync["sqs"] > sync["future"] * 3  # SQS among the slowest
    assert sync["sqs"] > sync["s3-polling"] * 0.5
    assert sync["auto-reduce"] < sync["s3-polling"] / 2  # "twice faster"
