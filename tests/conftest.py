"""Repo-wide test fixtures.

``CHAOS_SEED`` (environment variable, comma-separated) narrows the
seeded-chaos matrix to specific seeds — the CI soak job uses it to
shard the suite across seeds and to re-run a failing seed in
isolation.
"""

import os

import pytest

#: The default seed matrix for seeded chaos tests.  Every seed must
#: pass; failures are reported (and reproducible) per seed.
CHAOS_SEEDS = (7, 23, 101)


def _selected_seeds():
    override = os.environ.get("CHAOS_SEED")
    if override:
        return tuple(int(s) for s in override.split(","))
    return CHAOS_SEEDS


@pytest.fixture(params=_selected_seeds(),
                ids=lambda seed: f"seed{seed}")
def chaos_seed(request):
    return request.param
