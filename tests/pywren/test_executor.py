"""Tests for the PyWren-style executor."""

import pytest

from repro.faas import FaasPlatform
from repro.net import LatencyModel, Network
from repro.pywren import ALL_COMPLETED, ANY_COMPLETED, PyWrenExecutor
from repro.simulation import Kernel
from repro.simulation.thread import now
from repro.storage import ObjectStore


def square(x):
    return x * x


def slow_identity(x):
    # No CrucialEnvironment in these tests: model work as a sleep.
    from repro.simulation.thread import sleep

    sleep(float(x))
    return x


@pytest.fixture
def kernel():
    with Kernel(seed=201) as k:
        yield k


@pytest.fixture
def executor(kernel):
    network = Network(kernel, LatencyModel(0.0005))
    network.ensure_endpoint("client")
    platform = FaasPlatform(kernel, network)
    store = ObjectStore(kernel)
    return PyWrenExecutor(platform, store)


def test_call_async_and_result(kernel, executor):
    def main():
        future = executor.call_async(square, 7)
        return future.result()

    assert kernel.run_main(main) == 49


def test_map_returns_ordered_results(kernel, executor):
    def main():
        futures = executor.map(square, range(10))
        done, pending = executor.wait(futures)
        assert not pending
        return executor.get_result(futures)

    assert kernel.run_main(main) == [x * x for x in range(10)]


def test_results_pass_through_object_storage(kernel, executor):
    def main():
        futures = executor.map(square, range(4))
        executor.wait(futures)
        executor.get_result(futures)

    kernel.run_main(main)
    assert executor.store.size() == 4  # one result object per call
    assert executor.store.get_count >= 4


def test_wait_any_returns_early(kernel, executor):
    def main():
        futures = executor.map(slow_identity, [30.0, 0.1])
        t0 = now()
        done, pending = executor.wait(futures,
                                      return_when=ANY_COMPLETED)
        return len(done), len(pending), now() - t0

    done, pending, elapsed = kernel.run_main(main)
    assert done >= 1
    assert elapsed < 20.0  # did not wait for the 30 s call


def test_wait_polls_at_storage_cadence(kernel, executor):
    """Completion is observed via polling, so the observed finish
    time is quantized by the poll interval + S3 listing lag."""
    def main():
        futures = executor.map(slow_identity, [2.0])
        t0 = now()
        executor.wait(futures, poll_interval=1.0)
        return now() - t0

    elapsed = kernel.run_main(main)
    assert elapsed > 2.0  # actual work + at least one extra poll round


def test_invalid_return_when(kernel, executor):
    def main():
        executor.wait([], return_when="SOME")

    with pytest.raises(ValueError):
        kernel.run_main(main)


def test_two_executors_are_isolated(kernel, executor):
    network = executor.platform.network
    other = PyWrenExecutor(executor.platform, executor.store)

    def main():
        a = executor.map(square, [2])
        b = other.map(square, [3])
        executor.wait(a)
        other.wait(b)
        return executor.get_result(a), other.get_result(b)

    assert kernel.run_main(main) == ([4], [9])
