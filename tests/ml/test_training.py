"""Unit tests for the Crucial training drivers and inference serving."""

import numpy as np
import pytest

from repro import CrucialEnvironment
from repro.ml import MLDataset
from repro.ml.inference import (
    deploy_model,
    model_references,
    run_inference_load,
)
from repro.ml.kmeans import CentroidShard, CrucialKMeans, GlobalDelta
from repro.ml.local import LocalKMeansBaseline, scale_up
from repro.ml.logreg import CrucialLogisticRegression, GlobalWeights
from repro.simulation.kernel import Kernel

SMALL = dict(partitions=4, materialized_points=2000,
             nominal_points=50_000, nominal_bytes=10 ** 7)


# -- server-side objects --------------------------------------------------------


def test_centroid_shard_accumulates_and_advances():
    shard = CentroidShard(np.zeros((2, 3)))
    shard.update(np.ones((2, 3)) * 4, np.array([2, 0]))
    delta = shard.advance()
    np.testing.assert_allclose(shard.coords[0], [2.0, 2.0, 2.0])
    np.testing.assert_allclose(shard.coords[1], [0.0, 0.0, 0.0])
    assert delta == pytest.approx(6.0)
    # accumulators reset
    assert shard.acc_counts.sum() == 0


def test_global_delta_seal_and_history():
    delta = GlobalDelta()
    assert delta.get() == float("inf")
    delta.update(2.0)
    delta.update(3.0)
    assert delta.seal() == 5.0
    assert delta.get() == 5.0
    assert delta.get_history() == [5.0]
    assert delta.delta == 0.0


def test_global_weights_sgd_step():
    weights = GlobalWeights(np.zeros(3), learning_rate=1.0)
    weights.update(np.array([1.0, 2.0, 3.0]), loss=4.0, count=2)
    loss = weights.advance()
    assert loss == 2.0
    np.testing.assert_allclose(weights.weights, [-0.5, -1.0, -1.5])
    assert weights.acc_count == 0


# -- driver validation ------------------------------------------------------------


def test_kmeans_rejects_more_workers_than_partitions():
    dataset = MLDataset("kmeans", **SMALL)
    with pytest.raises(ValueError):
        CrucialKMeans(dataset, k=2, iterations=1, workers=8)


def test_logreg_rejects_more_workers_than_partitions():
    dataset = MLDataset("logreg", **SMALL)
    with pytest.raises(ValueError):
        CrucialLogisticRegression(dataset, workers=8)


def test_kmeans_convergence_threshold_stops_early():
    dataset = MLDataset("kmeans", **SMALL)
    with CrucialEnvironment(seed=91, dso_nodes=1) as env:
        # A huge threshold satisfies the end condition right after the
        # first iteration completes (Listing 2's endCondition()).
        job = CrucialKMeans(dataset, k=3, iterations=30, workers=4,
                            run_id="early", convergence_delta=1e12)
        result = env.run(job.train)
    assert result.iterations < 30
    assert len(result.per_iteration) == result.iterations


# -- local baseline ------------------------------------------------------------------


def test_local_baseline_perfect_until_cores_exhausted():
    with Kernel(seed=92) as kernel:
        baseline = LocalKMeansBaseline(kernel, cores=4)

        def main():
            t1 = baseline.run(1, k=4, iterations=2,
                              nominal_points_per_thread=100_000,
                              dims=10).iteration_phase_time
            t4 = baseline.run(4, k=4, iterations=2,
                              nominal_points_per_thread=100_000,
                              dims=10).iteration_phase_time
            t8 = baseline.run(8, k=4, iterations=2,
                              nominal_points_per_thread=100_000,
                              dims=10).iteration_phase_time
            return t1, t4, t8

        t1, t4, t8 = kernel.run_main(main)
    assert scale_up(t1, t4) == pytest.approx(1.0, abs=0.01)
    assert scale_up(t1, t8) == pytest.approx(0.5, abs=0.02)


# -- inference serving ---------------------------------------------------------------


def test_deploy_model_places_replicated_objects():
    with CrucialEnvironment(seed=93, dso_nodes=3) as env:
        def main():
            refs = deploy_model("m", k=12, rf=2)
            assert len(refs) == 12
            placements = [env.dso.placement_of(ref) for ref in refs]
            assert all(len(p) == 2 for p in placements)
            return len({p[0] for p in placements})

        primaries = env.run(main)
    assert primaries > 1  # spread across nodes


def test_inference_load_counts_and_buckets():
    with CrucialEnvironment(seed=94, dso_nodes=2) as env:
        def main():
            deploy_model("serve", k=10, rf=2)
            return run_inference_load("serve", n_threads=4,
                                      duration=3.0, n_objects=10)

        result = env.run(main)
    assert result.total > 0
    assert sum(result.per_second) == result.total
    assert result.throughput_between(0, 3) > 0


def test_inference_survives_node_crash():
    with CrucialEnvironment(seed=95, dso_nodes=3) as env:
        def main():
            from repro.simulation.thread import sleep, spawn

            deploy_model("hard", k=10, rf=2)

            def chaos():
                sleep(1.0)
                env.dso.crash_node(env.dso.live_nodes()[0].name)

            spawn(chaos, daemon=True)
            return run_inference_load("hard", n_threads=4,
                                      duration=10.0, n_objects=10)

        result = env.run(main)
    # Inferences continue after the crash window (detection ~4 s).
    late = sum(result.per_second[7:])
    assert late > 0


def test_model_references_are_stable():
    refs_a = model_references("r", 5)
    refs_b = model_references("r", 5)
    assert refs_a == refs_b
    assert all(ref.persistent and ref.rf == 2 for ref in refs_a)
