"""Unit tests for the ML numerics and the dual-scale dataset."""

import numpy as np
import pytest

from repro.ml import MLDataset
from repro.ml import math as mlmath
from repro.ml.costmodel import (
    kmeans_iteration_cost,
    logreg_iteration_cost,
    montecarlo_cost,
)


def rng():
    return np.random.Generator(np.random.PCG64(1))


# -- k-means math ----------------------------------------------------------------


def test_kmeans_partial_shapes_and_counts():
    points = rng().standard_normal((50, 4))
    centroids = rng().standard_normal((3, 4))
    sums, counts, cost = mlmath.kmeans_partial(points, centroids)
    assert sums.shape == (3, 4)
    assert counts.sum() == 50
    assert cost >= 0


def test_kmeans_update_moves_to_means():
    points = np.array([[0.0, 0.0], [2.0, 0.0], [10.0, 10.0]])
    centroids = np.array([[1.0, 0.0], [9.0, 9.0]])
    sums, counts, _ = mlmath.kmeans_partial(points, centroids)
    new, delta = mlmath.kmeans_update(sums, counts, centroids)
    np.testing.assert_allclose(new[0], [1.0, 0.0])
    np.testing.assert_allclose(new[1], [10.0, 10.0])
    assert delta > 0


def test_kmeans_update_keeps_empty_clusters():
    centroids = np.array([[0.0, 0.0], [100.0, 100.0]])
    points = np.array([[0.1, 0.0], [-0.1, 0.0]])
    sums, counts, _ = mlmath.kmeans_partial(points, centroids)
    new, _ = mlmath.kmeans_update(sums, counts, centroids)
    np.testing.assert_allclose(new[1], [100.0, 100.0])


def test_kmeans_converges_on_clustered_data():
    points = mlmath.generate_kmeans_points(rng(), 600, 5, true_clusters=3)
    centroids = mlmath.init_centroids(rng(), 3, 5)
    costs = []
    for _ in range(15):
        sums, counts, cost = mlmath.kmeans_partial(points, centroids)
        centroids, _ = mlmath.kmeans_update(sums, counts, centroids)
        costs.append(cost)
    assert costs[-1] < costs[0]


# -- logistic regression math --------------------------------------------------------


def test_sigmoid_stable_at_extremes():
    values = mlmath.sigmoid(np.array([-800.0, 0.0, 800.0]))
    assert values[0] == pytest.approx(0.0, abs=1e-12)
    assert values[1] == pytest.approx(0.5)
    assert values[2] == pytest.approx(1.0)


def test_logreg_loss_decreases_with_sgd():
    features, labels = mlmath.generate_labeled_points(rng(), 500, 10)
    weights = np.zeros(10)
    losses = []
    for _ in range(30):
        gradient, loss, count = mlmath.logreg_partial(
            features, labels, weights)
        weights = mlmath.sgd_step(weights, gradient, count, 0.5)
        losses.append(loss / count)
    assert losses[-1] < losses[0] * 0.7


def test_logreg_gradient_shape():
    features, labels = mlmath.generate_labeled_points(rng(), 100, 7)
    gradient, loss, count = mlmath.logreg_partial(
        features, labels, np.zeros(7))
    assert gradient.shape == (7,)
    assert count == 100
    assert loss > 0


# -- dataset -----------------------------------------------------------------------


def test_dataset_nominal_bookkeeping():
    dataset = MLDataset("kmeans", partitions=80)
    assert dataset.nominal_points_per_partition == 55_600_000 // 80
    info = dataset.partition_info(3)
    assert info.nominal_bytes == 100 * 10 ** 9 // 80
    assert "part-00003" in info.key


def test_dataset_partition_out_of_range():
    dataset = MLDataset("kmeans", partitions=4)
    with pytest.raises(IndexError):
        dataset.partition_info(4)


def test_dataset_invalid_kind():
    with pytest.raises(ValueError):
        MLDataset("word2vec")


def test_dataset_materialization_is_deterministic():
    a = MLDataset("kmeans", partitions=4, seed=9).materialize(2)
    b = MLDataset("kmeans", partitions=4, seed=9).materialize(2)
    np.testing.assert_array_equal(a, b)


def test_dataset_partitions_differ():
    dataset = MLDataset("kmeans", partitions=4, seed=9)
    assert not np.array_equal(dataset.materialize(0),
                              dataset.materialize(1))


def test_logreg_dataset_shapes():
    dataset = MLDataset("logreg", partitions=4,
                        materialized_points=4000)
    features, labels = dataset.materialize(0)
    assert features.shape == (1000, 100)
    assert set(np.unique(labels)) <= {0.0, 1.0}


def test_dataset_install_skips_upload_latency():
    from repro.simulation import Kernel
    from repro.storage import ObjectStore

    with Kernel(seed=1) as kernel:
        store = ObjectStore(kernel)
        dataset = MLDataset("kmeans", partitions=4)
        dataset.install(store)  # host context: must not need a thread
        assert store.size() == 4
        assert store.stored_bytes() == dataset.nominal_bytes


# -- cost model -------------------------------------------------------------------------


def test_kmeans_cost_scales_linearly_in_k():
    c25 = kmeans_iteration_cost(695_000, 100, 25)
    c200 = kmeans_iteration_cost(695_000, 100, 200)
    assert c200 == pytest.approx(8 * c25)


def test_kmeans_cost_magnitude_matches_fig5():
    # ~2s per iteration at the paper's k=25 per-worker share.
    cost = kmeans_iteration_cost(55_600_000 // 80, 100, 25)
    assert 1.5 < cost < 2.5


def test_logreg_cost_magnitude_matches_fig4():
    cost = logreg_iteration_cost(55_600_000 // 80, 100)
    assert 0.4 < cost < 0.7


def test_spark_inflation_applies():
    plain = kmeans_iteration_cost(1000, 10, 5)
    inflated = kmeans_iteration_cost(1000, 10, 5, spark=True)
    assert inflated > plain


def test_montecarlo_cost():
    # 100M draws at ~16.4M draws/s => ~6.1 s.
    assert montecarlo_cost(100_000_000) == pytest.approx(6.1, rel=0.05)
