"""Unit tests for the RPC layer."""

import pytest

from repro.cluster import Node
from repro.errors import (
    NetworkError,
    NodeCrashedError,
    ServiceUnavailableError,
)
from repro.net import LatencyModel, Network
from repro.rpc import RpcServer
from repro.simulation import Kernel
from repro.simulation.thread import now, spawn


@pytest.fixture
def kernel():
    with Kernel(seed=17) as k:
        yield k


@pytest.fixture
def setup(kernel):
    network = Network(kernel, LatencyModel(0.010))
    network.register("client")
    node = Node(kernel, network, "server", workers=2)
    server = RpcServer(node)
    return network, node, server


def test_call_round_trip_latency(kernel, setup):
    _, _, server = setup
    server.register("echo", lambda call, x: x)

    def main():
        result = server.call("client", "echo", 42)
        return result, now()

    result, elapsed = kernel.run_main(main)
    assert result == 42
    assert elapsed == pytest.approx(0.020)  # request + response


def test_service_time_charged(kernel, setup):
    _, _, server = setup

    def handler(call, x):
        call.service(0.5)
        return x * 2

    server.register("double", handler)

    def main():
        assert server.call("client", "double", 21) == 42
        return now()

    assert kernel.run_main(main) == pytest.approx(0.520)


def test_unknown_operation(kernel, setup):
    _, _, server = setup

    def main():
        server.call("client", "nope")

    with pytest.raises(ServiceUnavailableError):
        kernel.run_main(main)


def test_handler_exception_propagates_to_caller(kernel, setup):
    _, _, server = setup

    def handler(call):
        raise KeyError("missing")

    server.register("fail", handler)

    def main():
        server.call("client", "fail")

    with pytest.raises(KeyError):
        kernel.run_main(main)


def test_call_to_dead_node(kernel, setup):
    _, node, server = setup
    server.register("echo", lambda call, x: x)
    node.crash()

    def main():
        server.call("client", "echo", 1)

    with pytest.raises(NetworkError):
        kernel.run_main(main)


def test_crash_mid_service(kernel, setup):
    _, node, server = setup

    def handler(call):
        call.service(1.0)
        return "ok"

    server.register("slow", handler)
    kernel.call_later(0.5, node.crash)

    def main():
        server.call("client", "slow")

    with pytest.raises(NodeCrashedError):
        kernel.run_main(main)


def test_worker_pool_bounds_concurrency(kernel, setup):
    _, _, server = setup  # 2 workers

    def handler(call):
        call.service(1.0)

    server.register("work", handler)

    def worker():
        server.call("client", "work")

    def main():
        threads = [spawn(worker) for _ in range(4)]
        for t in threads:
            t.join()
        return now()

    # 4 x 1s jobs on 2 workers = 2s serial portions + 20ms round trip.
    assert kernel.run_main(main) == pytest.approx(2.020, abs=0.01)


def test_parking_releases_worker(kernel, setup):
    """A parked handler must not occupy a worker slot."""
    kernel_, node, server = setup
    from repro.simulation import Event

    gate = Event(node.kernel)

    def blocker(call):
        call.park()
        gate.wait()
        call.unpark()
        return "released"

    def quick(call):
        return "quick"

    server.register("block", blocker)
    server.register("quick", quick)
    results = []

    def blocked_client():
        results.append(server.call("client", "block"))

    def main():
        blockers = [spawn(blocked_client) for _ in range(3)]
        # All three are parked; with 2 workers, a quick call must
        # still get through.
        results.append(server.call("client", "quick"))
        gate.set()
        for t in blockers:
            t.join()

    node.kernel.run_main(main)
    assert results[0] == "quick"
    assert results.count("released") == 3


def test_arguments_are_copied_not_shared(kernel, setup):
    _, _, server = setup
    captured = {}

    def handler(call, payload):
        captured["payload"] = payload
        payload["mutated"] = True
        return payload

    server.register("mutate", handler)

    def main():
        arg = {"mutated": False}
        result = server.call("client", "mutate", arg)
        return arg, result

    arg, result = kernel.run_main(main)
    assert arg == {"mutated": False}  # caller's object untouched
    assert result["mutated"] is True
    assert captured["payload"] is not arg
