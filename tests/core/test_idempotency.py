"""IdempotentStep / once(): safely re-runnable blocks of DSO work."""

from repro import (
    AtomicInt,
    CloudThread,
    CrucialEnvironment,
    IdempotentStep,
    SharedList,
    once,
)


def test_once_block_replays_on_re_entry():
    with CrucialEnvironment(seed=2) as env:
        def main():
            counter = AtomicInt("blk", 0)
            results = []
            for _ in range(3):  # "retries" of the same logical block
                with once("charge-card"):
                    results.append(counter.increment_and_get())
            return results, counter.get()

        results, final = env.run(main)
        assert results == [1, 1, 1]
        assert final == 1
        assert env.dso.stats.dedup_hits == 2


def test_once_blocks_with_different_names_are_independent():
    with CrucialEnvironment(seed=2) as env:
        def main():
            counter = AtomicInt("indep", 0)
            with once("step-a"):
                counter.increment_and_get()
            with once("step-b"):
                counter.increment_and_get()
            return counter.get()

        assert env.run(main) == 2
        assert env.dso.stats.dedup_hits == 0


class AppendStep:
    def __init__(self, item):
        self.item = item
        self.log = SharedList("steps")

    def __call__(self):
        self.log.append(self.item)
        return self.log.size()


def test_idempotent_step_runs_exactly_once():
    with CrucialEnvironment(seed=4) as env:
        def main():
            step = IdempotentStep("append-alpha", AppendStep("alpha"))
            first = step()
            again = step()  # replayed, not re-executed
            log = SharedList("steps")
            return first, again, log.get_all()

        first, again, items = env.run(main)
        assert first == again == 1
        assert items == ["alpha"]


def test_idempotent_step_retire_releases_the_session():
    with CrucialEnvironment(seed=4) as env:
        def main():
            step = IdempotentStep("append-beta", AppendStep("beta"))
            step()
            retired = step.retire()
            step()  # re-executes: the session was forgotten
            log = SharedList("steps")
            return retired, log.get_all()

        retired, items = env.run(main)
        assert retired >= 1
        assert items == ["beta", "beta"]


def test_idempotent_step_works_as_cloud_thread_runnable():
    with CrucialEnvironment(seed=6) as env:
        def main():
            counter = AtomicInt("ct", 0)
            counter.get()
            step = IdempotentStep(
                "remote-step",
                AppendStep("remote"))
            thread = CloudThread(step, name="step-runner")
            thread.start()
            size = thread.result()
            return size, SharedList("steps").get_all()

        size, items = env.run(main)
        assert size == 1
        assert items == ["remote"]
