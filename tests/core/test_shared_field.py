"""Tests for the @Shared field-annotation descriptor."""

import pytest

from repro import AtomicLong, CloudThread, CrucialEnvironment, SharedField


class Accumulator:
    """Plain shared class for the generic-proxy path."""

    def __init__(self, start=0):
        self.value = start

    def add(self, delta):
        self.value += delta
        return self.value

    def get(self):
        return self.value


class WorkerA:
    counter = SharedField(AtomicLong)  # key: "WorkerA.counter"

    def run(self):
        return self.counter.add_and_get(1)


class WorkerB:
    counter = SharedField(AtomicLong)  # key: "WorkerB.counter"

    def run(self):
        return self.counter.add_and_get(1)


class Overridden:
    counter = SharedField(AtomicLong, key="explicit-key")


class WithUserClass:
    acc = SharedField(Accumulator, 10)


class Durable:
    state = SharedField(Accumulator, persistent=True)


@pytest.fixture
def env():
    with CrucialEnvironment(seed=221, dso_nodes=2) as environment:
        yield environment


def test_key_derived_from_field_name():
    assert WorkerA.__dict__["counter"].key == "WorkerA.counter"
    assert Overridden.__dict__["counter"].key == "explicit-key"


def test_instances_share_one_object(env):
    def main():
        a1, a2 = WorkerA(), WorkerA()
        a1.counter.add_and_get(3)
        return a2.counter.get()

    assert env.run(main) == 3


def test_different_owners_distinct_objects(env):
    def main():
        WorkerA().counter.add_and_get(5)
        return WorkerB().counter.get()

    assert env.run(main) == 0


def test_user_class_via_generic_proxy(env):
    def main():
        w = WithUserClass()
        w.acc.add(7)
        return WithUserClass().acc.get()

    assert env.run(main) == 17  # ctor start=10 plus 7


def test_persistent_field_replicated(env):
    def main():
        Durable().state.add(1)
        ref = Durable.__dict__["state"]
        return ref.persistent, ref.rf

    persistent, rf = env.run(main)
    assert persistent is True


def test_shared_field_in_cloud_threads(env):
    def main():
        threads = [CloudThread(WorkerA()) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        return WorkerA().counter.get()

    assert env.run(main) == 6


def test_field_outside_class_rejected():
    stray = SharedField(AtomicLong)
    with pytest.raises(AttributeError):
        stray.__get__(None)
