"""RetryPolicy schedules and CloudThread idempotent re-invocation."""

import pytest

from repro import AtomicInt, CloudThread, CrucialEnvironment, RetryPolicy
from repro.chaos import ChaosInjector, FaultPlan
from repro.core.retry import backoff_schedule
from repro.core.runtime import RUNNER_FUNCTION, compute
from repro.errors import RetriesExhaustedError
from repro.simulation import Kernel


# -- the policy itself --------------------------------------------------------


def test_delay_schedule_is_exponential_and_capped():
    policy = RetryPolicy(max_retries=6, backoff=0.25, multiplier=2.0,
                         max_backoff=1.5)
    assert [policy.delay(a) for a in range(5)] == \
        [0.25, 0.5, 1.0, 1.5, 1.5]


def test_backoff_schedule_helper():
    policy = RetryPolicy(backoff=1.0, multiplier=3.0, max_backoff=10.0)
    assert backoff_schedule(policy, 4) == [1.0, 3.0, 9.0, 10.0]


def test_jitter_draws_from_the_given_stream_deterministically():
    policy = RetryPolicy(backoff=1.0, jitter=0.5)

    def draws(seed):
        with Kernel(seed=seed) as kernel:
            rng = kernel.rng.stream("test.retry")
            return [policy.delay(0, rng) for _ in range(5)]

    first, second = draws(42), draws(42)
    assert first == second  # same seed, same jittered schedule
    assert all(1.0 <= d <= 1.5 for d in first)
    assert len(set(first)) > 1  # it does actually jitter


def test_policy_validation():
    with pytest.raises(ValueError):
        RetryPolicy(max_retries=-1)
    with pytest.raises(ValueError):
        RetryPolicy(backoff=-0.1)
    with pytest.raises(ValueError):
        RetryPolicy(multiplier=0.5)
    with pytest.raises(ValueError):
        RetryPolicy(jitter=1.5)
    with pytest.raises(ValueError):
        RetryPolicy(max_backoff=-1.0)


def test_dso_layer_backoff_comes_from_config():
    from repro.config import DEFAULT_CONFIG
    from repro.dso.layer import DsoLayer
    from repro.net import LatencyModel, Network

    with Kernel(seed=1) as kernel:
        network = Network(kernel, LatencyModel(0.0001))
        layer = DsoLayer(kernel, network)
        timings = DEFAULT_CONFIG.dso
        policy = layer._retry_policy
        assert policy.backoff == timings.retry_backoff
        assert policy.multiplier == timings.retry_backoff_multiplier
        assert policy.max_backoff == timings.retry_backoff_max
        assert policy.jitter == timings.retry_jitter


# -- CloudThread integration --------------------------------------------------


class Noop:
    def run(self):
        return None


def test_cloud_thread_backoff_grows_between_attempts():
    with CrucialEnvironment(seed=3) as env:
        env.platform.inject_failures(RUNNER_FUNCTION, rate=1.0,
                                     kind="before")

        def main():
            start = env.kernel.now
            thread = CloudThread(
                Noop(), name="doomed",
                retry_policy=RetryPolicy(max_retries=2, backoff=0.5,
                                         multiplier=2.0))
            thread.start()
            with pytest.raises(RetriesExhaustedError):
                thread.result()
            return thread.attempts, env.kernel.now - start

        attempts, elapsed = env.run(main)
        assert attempts == 3
        # Exponential schedule: 0.5s then 1.0s between the attempts.
        assert elapsed >= 1.5


class IncrementOnce:
    def __init__(self):
        self.counter = AtomicInt("retry-counter", 0)

    def run(self):
        self.counter.increment_and_get()
        compute(2.0)  # window for the chaos kill to land
        return self.counter.get()


def test_idempotency_key_prevents_double_apply_on_retry():
    """A container kill after the increment forces a re-invocation;
    the named session replays the increment instead of repeating it."""
    with CrucialEnvironment(seed=11) as env:
        injector = ChaosInjector(env.kernel, platform=env.platform)

        def main():
            env.pre_warm(1)
            counter = AtomicInt("retry-counter", 0)
            counter.get()  # create before the thread races the kill
            injector.schedule(FaultPlan().add(
                1.0, "kill_container", RUNNER_FUNCTION))
            thread = CloudThread(
                IncrementOnce(), name="once",
                retry_policy=RetryPolicy(max_retries=3, backoff=0.2),
                idempotency_key="increment-once")
            thread.start()
            result = thread.result()
            return thread.attempts, result, counter.get()

        attempts, result, final = env.run(main)
        assert attempts == 2  # the kill really forced a retry
        assert result == 1
        assert final == 1  # exactly once, not once per attempt
        assert env.dso.stats.dedup_hits >= 1
