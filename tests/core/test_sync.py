"""Unit tests for the synchronization objects."""

import pytest

from repro import (
    CountDownLatch,
    CrucialEnvironment,
    CyclicBarrier,
    Future,
    Semaphore,
)
from repro.errors import BrokenBarrierError, FutureCancelledError
from repro.simulation.thread import now, sleep, spawn


@pytest.fixture
def env():
    with CrucialEnvironment(seed=47, dso_nodes=1) as environment:
        yield environment


# -- CyclicBarrier ---------------------------------------------------------------


def test_barrier_blocks_until_all_arrive(env):
    def main():
        barrier = CyclicBarrier("b", 3)
        release_times = []

        def party(delay):
            sleep(delay)
            barrier.wait()
            release_times.append(now())

        threads = [spawn(party, d) for d in (0.1, 0.5, 2.0)]
        for t in threads:
            t.join()
        return release_times

    times = env.run(main)
    assert len(times) == 3
    # Everyone leaves only after the slowest (2.0 s) arrival.
    assert all(t >= 2.0 for t in times)
    assert max(times) - min(times) < 0.05


def test_barrier_is_cyclic(env):
    def main():
        barrier = CyclicBarrier("cyc", 2)
        laps = []

        def party(i):
            for lap in range(3):
                barrier.wait()
                laps.append((i, lap))

        threads = [spawn(party, i) for i in range(2)]
        for t in threads:
            t.join()
        return laps

    laps = env.run(main)
    assert len(laps) == 6
    # Laps interleave: both parties complete lap k before any lap k+1.
    order = [lap for _i, lap in laps]
    assert order == sorted(order)


def test_barrier_arrival_indexes(env):
    def main():
        barrier = CyclicBarrier("idx", 3)
        indexes = []

        def party(delay):
            sleep(delay)
            indexes.append(barrier.wait())

        threads = [spawn(party, d) for d in (0.1, 0.2, 0.3)]
        for t in threads:
            t.join()
        return sorted(indexes)

    assert env.run(main) == [0, 1, 2]


def test_barrier_reset_breaks_waiters(env):
    def main():
        barrier = CyclicBarrier("broken", 3)
        errors = []

        def party():
            try:
                barrier.wait()
            except BrokenBarrierError:
                errors.append(True)

        threads = [spawn(party) for _ in range(2)]
        sleep(0.5)
        barrier.reset()
        for t in threads:
            t.join()
        return errors

    assert env.run(main) == [True, True]


def test_barrier_invalid_parties(env):
    def main():
        CyclicBarrier("bad", 0).wait()

    with pytest.raises(ValueError):
        env.run(main)


def test_barrier_number_waiting(env):
    def main():
        barrier = CyclicBarrier("count", 5)
        threads = [spawn(barrier.wait) for _ in range(3)]
        sleep(0.5)
        waiting = barrier.get_number_waiting()
        spawn(barrier.wait)
        spawn(barrier.wait)
        for t in threads:
            t.join()
        return waiting, barrier.get_parties()

    assert env.run(main) == (3, 5)


# -- Semaphore -------------------------------------------------------------------


def test_semaphore_bounds_concurrency(env):
    def main():
        semaphore = Semaphore("sem", 2)
        active = [0]
        peak = [0]

        def worker():
            with semaphore:
                active[0] += 1
                peak[0] = max(peak[0], active[0])
                sleep(1.0)
                active[0] -= 1

        threads = [spawn(worker) for _ in range(6)]
        for t in threads:
            t.join()
        return peak[0]

    assert env.run(main) == 2


def test_semaphore_try_acquire(env):
    def main():
        semaphore = Semaphore("try", 1)
        first = semaphore.try_acquire()
        second = semaphore.try_acquire()
        semaphore.release()
        return first, second, semaphore.available_permits()

    assert env.run(main) == (True, False, 1)


def test_semaphore_multi_permit(env):
    def main():
        semaphore = Semaphore("multi", 3)
        semaphore.acquire(3)
        blocked = [True]

        def late():
            semaphore.acquire(1)
            blocked[0] = False

        t = spawn(late)
        sleep(0.5)
        still_blocked = blocked[0]
        semaphore.release(3)
        t.join()
        return still_blocked, blocked[0]

    assert env.run(main) == (True, False)


# -- Future ------------------------------------------------------------------------


def test_future_get_blocks_until_set(env):
    def main():
        future = Future("f")

        def producer():
            sleep(1.5)
            future.set({"result": 99})

        spawn(producer)
        value = future.get()
        return value, now()

    value, elapsed = env.run(main)
    assert value == {"result": 99}
    assert elapsed >= 1.5


def test_future_set_twice_rejected(env):
    def main():
        future = Future("once")
        future.set(1)
        future.set(2)

    with pytest.raises(ValueError):
        env.run(main)


def test_future_cancel(env):
    def main():
        future = Future("cancelled")
        waiters = []

        def consumer():
            try:
                future.get()
            except FutureCancelledError:
                waiters.append(True)

        t = spawn(consumer)
        sleep(0.5)
        assert future.cancel() is True
        t.join()
        return waiters, future.is_done()

    waiters, done = env.run(main)
    assert waiters == [True]
    assert done is True


def test_future_cancel_after_set_fails(env):
    def main():
        future = Future("done")
        future.set(1)
        return future.cancel()

    assert env.run(main) is False


# -- CountDownLatch ------------------------------------------------------------------


def test_latch_releases_at_zero(env):
    def main():
        latch = CountDownLatch("latch", 3)

        def counter():
            sleep(1.0)
            latch.count_down()

        for _ in range(3):
            spawn(counter)
        latch.wait()
        return now()

    assert env.run(main) >= 1.0


def test_latch_count_never_negative(env):
    def main():
        latch = CountDownLatch("floor", 1)
        latch.count_down()
        latch.count_down()
        return latch.get_count()

    assert env.run(main) == 0


def test_latch_wait_after_zero_returns_immediately(env):
    def main():
        latch = CountDownLatch("fast", 0)
        latch.wait()
        return True

    assert env.run(main) is True


# -- crash behaviour ---------------------------------------------------------------------


def test_sync_objects_lost_on_node_crash(env):
    """Footnote 2: synchronization objects are not replicated."""
    from repro.errors import NodeCrashedError, ObjectLostError

    def main():
        barrier = CyclicBarrier("doomed", 2)
        failures = []

        def party():
            try:
                barrier.wait()
            except (NodeCrashedError, ObjectLostError):
                failures.append(True)

        t = spawn(party)
        sleep(0.5)
        primary = env.dso.placement_of(barrier.ref)[0]
        env.dso.crash_node(primary)
        t.join()
        return failures

    assert env.run(main) == [True]
