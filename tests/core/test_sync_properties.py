"""Property-based tests on the synchronization objects' invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import CrucialEnvironment, CyclicBarrier, Semaphore
from repro.simulation.thread import sleep, spawn


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(0, 9999),
    parties=st.integers(2, 6),
    rounds=st.integers(1, 4),
    delays=st.lists(st.floats(0.0, 2.0), min_size=6, max_size=6),
)
def test_barrier_rounds_never_mix(seed, parties, rounds, delays):
    """No thread enters round r+1 before every thread finished round r,
    whatever the arrival jitter."""
    with CrucialEnvironment(seed=seed, dso_nodes=1) as env:
        def main():
            barrier = CyclicBarrier("prop", parties)
            log: list[tuple[int, int]] = []  # (thread, round)

            def party(i):
                for round_number in range(rounds):
                    sleep(delays[(i + round_number) % len(delays)])
                    barrier.wait()
                    log.append((i, round_number))

            threads = [spawn(party, i) for i in range(parties)]
            for t in threads:
                t.join()
            return log

        log = env.run(main)
    assert len(log) == parties * rounds
    # Generations appear in non-decreasing blocks of exactly `parties`.
    round_sequence = [r for _i, r in log]
    assert round_sequence == sorted(round_sequence)
    for round_number in range(rounds):
        block = [i for i, r in log if r == round_number]
        assert sorted(block) == list(range(parties))


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(0, 9999),
    permits=st.integers(1, 4),
    workers=st.integers(2, 8),
    hold=st.floats(0.01, 0.5),
)
def test_semaphore_never_exceeds_permits(seed, permits, workers, hold):
    with CrucialEnvironment(seed=seed, dso_nodes=1) as env:
        def main():
            semaphore = Semaphore("prop-sem", permits)
            active = [0]
            peak = [0]

            def worker():
                with semaphore:
                    active[0] += 1
                    peak[0] = max(peak[0], active[0])
                    sleep(hold)
                    active[0] -= 1

            threads = [spawn(worker) for _ in range(workers)]
            for t in threads:
                t.join()
            return peak[0], semaphore.available_permits()

        peak, permits_after = env.run(main)
    assert peak <= permits
    assert permits_after == permits


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 9999), n=st.integers(1, 10))
def test_latch_exactly_n_countdowns_release(seed, n):
    from repro import CountDownLatch

    with CrucialEnvironment(seed=seed, dso_nodes=1) as env:
        def main():
            latch = CountDownLatch("prop-latch", n)
            released = []

            def waiter():
                latch.wait()
                released.append(env.now)

            thread = spawn(waiter)
            for i in range(n - 1):
                latch.count_down()
            sleep(1.0)
            premature = bool(released)
            latch.count_down()
            thread.join()
            return premature, len(released)

        premature, count = env.run(main)
    assert premature is False
    assert count == 1


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 9999),
       values=st.lists(st.integers(-100, 100), min_size=1, max_size=8))
def test_future_single_assignment(seed, values):
    """Exactly one producer wins; every consumer sees its value."""
    from repro import Future

    with CrucialEnvironment(seed=seed, dso_nodes=1) as env:
        def main():
            future = Future("prop-future")
            wins = []

            def producer(v):
                try:
                    future.set(v)
                    wins.append(v)
                except ValueError:
                    pass

            producers = [spawn(producer, v) for v in values]
            consumers = [spawn(future.get) for _ in range(3)]
            for t in producers + consumers:
                t.join()
            return wins, [c.result() for c in consumers]

        wins, seen = env.run(main)
    assert len(wins) == 1
    assert all(v == wins[0] for v in seen)
