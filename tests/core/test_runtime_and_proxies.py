"""Unit tests for the runtime environment and proxy marshalling."""

import pickle

import pytest

from repro import AtomicLong, CrucialEnvironment, SharedList, shared
from repro.core.proxy import GenericProxy
from repro.core.runtime import (
    compute,
    current_cpu_share,
    current_environment,
    current_location,
)
from repro.dso.reference import DsoReference, reference_for
from repro.errors import SimulationError


class Box:
    def __init__(self, value=None):
        self.value = value

    def get(self):
        return self.value

    def set(self, value):
        self.value = value


# -- references ---------------------------------------------------------------


def test_reference_identity_and_flags():
    ref = reference_for(Box, "b")
    assert ref.ident == ("Box", "b")
    assert not ref.persistent and ref.rf == 1
    persistent = reference_for(Box, "b", persistent=True)
    assert persistent.rf == 2


def test_reference_validation():
    with pytest.raises(ValueError):
        DsoReference("T", "k", persistent=False, rf=2)
    with pytest.raises(ValueError):
        DsoReference("T", "k", persistent=True, rf=1)
    with pytest.raises(ValueError):
        DsoReference("T", "k", rf=0)


def test_reference_str_mentions_flavor():
    assert "ephemeral" in str(reference_for(Box, "k"))
    assert "rf=3" in str(reference_for(Box, "k", persistent=True, rf=3))


# -- proxies -------------------------------------------------------------------


def test_proxy_pickle_round_trip_rebinds():
    with CrucialEnvironment(seed=121, dso_nodes=1) as env:
        def main():
            proxy = AtomicLong("pickled", 5)
            proxy.add_and_get(1)
            clone = pickle.loads(pickle.dumps(proxy))
            return clone.get(), clone.ref == proxy.ref

        value, same_ref = env.run(main)
    assert value == 6
    assert same_ref


def test_generic_proxy_pickles_user_class():
    with CrucialEnvironment(seed=122, dso_nodes=1) as env:
        def main():
            proxy = shared(Box, "boxed", "hello")
            clone = pickle.loads(pickle.dumps(proxy))
            return clone.get()

        assert env.run(main) == "hello"


def test_generic_proxy_rejects_private_attributes():
    proxy = GenericProxy(Box, "b")
    with pytest.raises(AttributeError):
        proxy._not_a_method()


def test_proxy_without_server_class_rejected():
    from repro.core.proxy import DsoProxy

    with pytest.raises(TypeError):
        DsoProxy("key")


def test_proxy_repr_mentions_reference():
    assert "pickled" in repr(AtomicLong("pickled"))


# -- runtime context -------------------------------------------------------------


def test_location_defaults_to_client():
    with CrucialEnvironment(seed=123, dso_nodes=1) as env:
        assert env.run(current_location) == "client"


class _WhatShare:
    """Module-level so it pickles into the function payload."""

    def run(self):
        return current_cpu_share()


def test_cpu_share_default_and_in_function():
    with CrucialEnvironment(seed=124, dso_nodes=1,
                            function_memory_mb=896) as env:
        def main():
            from repro import CloudThread

            local_share = current_cpu_share()
            thread = CloudThread(_WhatShare()).start()
            thread.join()
            return local_share, thread.result()

        local_share, remote_share = env.run(main)
    assert local_share == 1.0
    assert remote_share == pytest.approx(896 / 1792)


def test_compute_charges_scaled_time():
    with CrucialEnvironment(seed=125, dso_nodes=1) as env:
        def main():
            start = env.now
            compute(0.5)
            return env.now - start

        assert env.run(main) == pytest.approx(0.5)


def test_compute_zero_is_free():
    with CrucialEnvironment(seed=126, dso_nodes=1) as env:
        def main():
            start = env.now
            compute(0.0)
            compute(-1.0)
            return env.now - start

        assert env.run(main) == 0.0


def test_two_environments_cannot_both_be_active():
    env_a = CrucialEnvironment(seed=127, dso_nodes=1)
    env_b = CrucialEnvironment(seed=128, dso_nodes=1)
    env_a.activate()
    try:
        with pytest.raises(SimulationError):
            env_b.activate()
    finally:
        env_a.close()
        env_b.close()


def test_environment_services_wired():
    with CrucialEnvironment(seed=129, dso_nodes=2) as env:
        assert len(env.dso.live_nodes()) == 2
        assert env.object_store is not None
        assert env.queue_service is not None
        assert env.notification is not None
        assert env.data_grid() is env.data_grid()
        assert env.redis() is env.redis()


def test_current_environment_inside_run():
    with CrucialEnvironment(seed=130, dso_nodes=1) as env:
        assert env.run(current_environment) is env


# -- library object via shared list in functions -----------------------------------


class Appender:
    def __init__(self, item):
        self.item = item
        self.items = SharedList("shipped-list")

    def run(self):
        self.items.append(self.item)


def test_proxies_inside_runnables_reach_same_object():
    from repro import CloudThread

    with CrucialEnvironment(seed=131, dso_nodes=1) as env:
        def main():
            threads = [CloudThread(Appender(i)).start() for i in range(5)]
            for t in threads:
                t.join()
            return sorted(SharedList("shipped-list").get_all())

        assert env.run(main) == [0, 1, 2, 3, 4]
