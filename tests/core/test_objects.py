"""Unit tests for the built-in shared-object library."""

import pytest

from repro import (
    AtomicBoolean,
    AtomicByteArray,
    AtomicInt,
    AtomicLong,
    AtomicReference,
    CrucialEnvironment,
    SharedList,
    SharedMap,
)
from repro.simulation.thread import spawn


@pytest.fixture
def env():
    with CrucialEnvironment(seed=43, dso_nodes=2) as environment:
        yield environment


def test_atomic_long_basics(env):
    def main():
        counter = AtomicLong("c", 10)
        assert counter.get() == 10
        assert counter.add_and_get(5) == 15
        assert counter.get_and_add(5) == 15
        assert counter.increment_and_get() == 21
        assert counter.decrement_and_get() == 20
        counter.set(0)
        return counter.get()

    assert env.run(main) == 0


def test_atomic_long_compare_and_set(env):
    def main():
        counter = AtomicLong("cas", 1)
        assert counter.compare_and_set(1, 2) is True
        assert counter.compare_and_set(1, 3) is False
        return counter.get()

    assert env.run(main) == 2


def test_atomic_int_initial_value(env):
    def main():
        return AtomicInt("i", 7).get()

    assert env.run(main) == 7


def test_atomic_boolean(env):
    def main():
        flag = AtomicBoolean("b", False)
        assert flag.get() is False
        assert flag.compare_and_set(False, True) is True
        assert flag.compare_and_set(False, True) is False
        return flag.get()

    assert env.run(main) is True


def test_atomic_reference(env):
    def main():
        reference = AtomicReference("r", None)
        assert reference.get() is None
        old = reference.get_and_set({"model": [1, 2]})
        assert old is None
        return reference.get()

    assert env.run(main) == {"model": [1, 2]}


def test_atomic_byte_array(env):
    def main():
        array = AtomicByteArray("bytes", 4)
        assert array.length() == 4
        array.set(2, 255)
        assert array.get(2) == 255
        array.fill(7)
        return array.to_bytes()

    assert env.run(main) == bytes([7, 7, 7, 7])


def test_shared_list(env):
    def main():
        items = SharedList("list")
        items.append("a")
        items.extend(["b", "c"])
        items.set(0, "A")
        assert items.get(1) == "b"
        assert items.size() == 3
        all_items = items.get_all()
        items.clear()
        return all_items, items.size()

    all_items, size = env.run(main)
    assert all_items == ["A", "b", "c"]
    assert size == 0


def test_shared_map(env):
    def main():
        table = SharedMap("map")
        assert table.put("k", 1) is None
        assert table.put("k", 2) == 1
        assert table.get("k") == 2
        assert table.put_if_absent("k", 9) == 2
        assert table.put_if_absent("j", 9) is None
        assert table.contains_key("j") is True
        assert sorted(table.keys()) == ["j", "k"]
        assert table.remove("j") == 9
        return table.size()

    assert env.run(main) == 1


def test_shared_map_merge_aggregates_in_store(env):
    def main():
        table = SharedMap("agg")
        for delta in (1.5, 2.5, 3.0):
            table.merge("gradient", delta)
        return table.get("gradient")

    assert env.run(main) == 7.0


def test_same_key_same_object_across_proxies(env):
    def main():
        AtomicLong("shared-key").add_and_get(4)
        return AtomicLong("shared-key").get()

    assert env.run(main) == 4


def test_different_types_same_key_are_distinct(env):
    def main():
        AtomicLong("name").set(1)
        SharedList("name").append("x")
        return AtomicLong("name").get(), SharedList("name").size()

    assert env.run(main) == (1, 1)


def test_concurrent_adds_lose_nothing(env):
    def main():
        def worker():
            counter = AtomicLong("hot")
            for _ in range(20):
                counter.add_and_get(1)

        threads = [spawn(worker) for _ in range(10)]
        for t in threads:
            t.join()
        return AtomicLong("hot").get()

    assert env.run(main) == 200


def test_persistent_object_replicated(env):
    def main():
        counter = AtomicLong("durable", 0, persistent=True)
        counter.add_and_get(9)
        return counter.ref.rf, counter.get()

    rf, value = env.run(main)
    assert rf == 2
    assert value == 9


def test_explicit_delete(env):
    from repro.errors import NoSuchObjectError

    def main():
        counter = AtomicLong("temp")
        counter.add_and_get(1)
        counter.delete()
        with pytest.raises(NoSuchObjectError):
            counter.delete()

    env.run(main)
