"""Unit tests for the CloudThread abstraction and the runtime."""

import pytest

from repro import (
    RUNNER_FUNCTION,
    AtomicLong,
    CloudThread,
    CrucialEnvironment,
    RetryPolicy,
    current_location,
    run_all,
)
from repro.errors import RetriesExhaustedError, SimulationError


class Incrementer:
    """Adds a constant to a shared counter (module-level, picklable)."""

    def __init__(self, amount=1, key="counter"):
        self.amount = amount
        self.key = key
        self.counter = AtomicLong(key)

    def run(self):
        return self.counter.add_and_get(self.amount)


class WhereAmI:
    def run(self):
        return current_location()


@pytest.fixture
def env():
    with CrucialEnvironment(seed=41, dso_nodes=1) as environment:
        yield environment


def test_fork_join_counts_correctly(env):
    def main():
        threads = [CloudThread(Incrementer()) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        return AtomicLong("counter").get()

    assert env.run(main) == 8


def test_run_all_helper(env):
    def main():
        results = run_all([Incrementer(key="c2") for _ in range(4)])
        return sorted(results)

    assert env.run(main) == [1, 2, 3, 4]


def test_runnable_executes_in_container_not_client(env):
    def main():
        thread = CloudThread(WhereAmI()).start()
        thread.join()
        return thread.result(), current_location()

    remote_location, local_location = env.run(main)
    assert remote_location.startswith("lambda.crucial-runner")
    assert local_location == "client"


def test_join_before_start_rejected(env):
    def main():
        CloudThread(Incrementer()).join()

    with pytest.raises(RuntimeError):
        env.run(main)


def test_double_start_rejected(env):
    def main():
        t = CloudThread(Incrementer())
        t.start()
        t.start()

    with pytest.raises(RuntimeError):
        env.run(main)


def test_remote_failure_propagates_to_joiner(env):
    class Bomb:
        def run(self):
            raise ValueError("kaboom")

    # Bomb is function-local, hence unpicklable — so use a module-level
    # stand-in instead: a lambda payload that is not runnable at all.
    def main():
        t = CloudThread(42)  # not runnable
        t.start()
        t.join()

    with pytest.raises(RetriesExhaustedError):
        env.run(main)


def test_retry_policy_reexecutes_with_same_input(env):
    env.platform.inject_failures(RUNNER_FUNCTION, rate=0.6, kind="before")

    def main():
        threads = [
            CloudThread(Incrementer(key="retry-counter"),
                        retry_policy=RetryPolicy(max_retries=20,
                                                 backoff=0.1))
            for _ in range(5)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        return AtomicLong("retry-counter").get()

    # "before"-style failures never ran the handler, so retries are
    # exact re-executions and the count is precise.
    assert env.run(main) == 5


def test_retries_exhausted_raises(env):
    env.platform.inject_failures(RUNNER_FUNCTION, rate=1.0, kind="before")

    def main():
        t = CloudThread(Incrementer(),
                        retry_policy=RetryPolicy(max_retries=2, backoff=0.01))
        t.start()
        t.join()

    with pytest.raises(RetriesExhaustedError):
        env.run(main)


def test_invalid_retry_policy():
    with pytest.raises(ValueError):
        RetryPolicy(max_retries=-1)
    with pytest.raises(ValueError):
        RetryPolicy(backoff=-0.5)


def test_thread_dispatch_serializes_at_client(env):
    """Starting N threads costs N dispatch overheads in the client."""
    dispatch = env.config.faas_timings.dispatch_overhead

    def main():
        start = env.now
        threads = [CloudThread(Incrementer(key="d")) for _ in range(10)]
        for t in threads:
            t.start()
        elapsed = env.now - start
        for t in threads:
            t.join()
        return elapsed

    elapsed = env.run(main)
    assert elapsed == pytest.approx(10 * dispatch, rel=0.01)


def test_no_active_environment_rejected():
    from repro import current_environment

    with pytest.raises(SimulationError):
        current_environment()


def test_callable_payload_supported(env):
    def main():
        t = CloudThread(_module_level_callable)
        t.start()
        t.join()
        return t.result()

    assert env.run(main) == "called"


def _module_level_callable():
    return "called"


def test_join_timeout_returns_false_while_running(env):
    """join(timeout) distinguishes 'still running' from 'done'."""
    def main():
        t = CloudThread(Incrementer(key="jt")).start()
        # Cold start alone exceeds 1 ms of virtual time.
        early = t.join(timeout=0.001)
        late = t.join()  # no timeout: blocks until completion
        return early, late, t.done

    early, late, done = env.run(main)
    assert early is False
    assert late is True
    assert done is True


def test_join_timeout_true_when_already_done(env):
    def main():
        t = CloudThread(Incrementer(key="jd")).start()
        t.join()
        return t.join(timeout=0.0)

    assert env.run(main) is True


def test_result_joins_implicitly(env):
    """result() on a running thread blocks instead of raising."""
    def main():
        t = CloudThread(Incrementer(key="ri")).start()
        return t.result()  # no explicit join

    assert env.run(main) == 1


def test_is_alive_tracks_lifecycle(env):
    def main():
        t = CloudThread(Incrementer(key="ia"))
        before = t.is_alive()
        t.start()
        running = t.is_alive()
        t.join()
        after = t.is_alive()
        return before, running, after

    assert env.run(main) == (False, True, False)


def test_thread_attribute_deprecated(env):
    def main():
        t = CloudThread(Incrementer(key="dep")).start()
        with pytest.warns(DeprecationWarning):
            backing = t._thread
        t.join()
        return backing is not None

    assert env.run(main) is True


def test_run_all_returns_results_without_explicit_join(env):
    def main():
        return sorted(run_all([Incrementer(key="ra") for _ in range(3)],
                              retry_policy=RetryPolicy(max_retries=1)))

    assert env.run(main) == [1, 2, 3]


def test_sim_timeout_is_builtin_timeout_error():
    from repro.errors import SimTimeoutError

    assert issubclass(SimTimeoutError, TimeoutError)
