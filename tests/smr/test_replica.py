"""Tests for the message-driven replicated state machine."""

import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import MembershipService, Node
from repro.net import LatencyModel, Network
from repro.simulation import Kernel
from repro.simulation.thread import sleep, spawn
from repro.smr import ReplicatedStateMachine


class Register:
    def __init__(self):
        self.value = 0
        self.writes = []

    def write(self, value):
        self.value = value
        self.writes.append(value)
        return value

    def read(self):
        return self.value


def build(kernel, members=3, detection=1.0):
    network = Network(kernel, LatencyModel(0.0005), copy_messages=False)
    network.ensure_endpoint("client")
    membership = MembershipService(kernel,
                                   failure_detection_delay=detection)
    nodes = {}
    for i in range(members):
        node = Node(kernel, network, f"r{i}")
        nodes[node.name] = node
        membership.join(node)
    rsm = ReplicatedStateMachine(kernel, network, membership, Register)
    return network, membership, nodes, rsm


def test_single_op_applied_everywhere():
    with Kernel(seed=181) as kernel:
        _net, _mem, _nodes, rsm = build(kernel)

        def main():
            return rsm.invoke("client", "write", 7)

        assert kernel.run_main(main) == 7
        kernel.run()
        assert all(copy.value == 7 for copy in rsm.copies.values())


def test_concurrent_ops_same_order_at_all_replicas():
    with Kernel(seed=182) as kernel:
        _net, _mem, _nodes, rsm = build(kernel)

        def writer(values):
            for value in values:
                rsm.invoke("client", "write", value)

        def main():
            threads = [spawn(writer, [i * 10 + j for j in range(4)])
                       for i in range(3)]
            for t in threads:
                t.join()

        kernel.run_main(main)
        kernel.run()
        logs = [tuple(rsm.log_of(m)) for m in rsm.copies]
        assert len(logs[0]) == 12
        assert logs[0] == logs[1] == logs[2]
        writes = [tuple(copy.writes) for copy in rsm.copies.values()]
        assert writes[0] == writes[1] == writes[2]


def test_acknowledged_write_survives_crash():
    with Kernel(seed=183) as kernel:
        network, membership, nodes, rsm = build(kernel)

        def main():
            rsm.invoke("client", "write", 42)
            victim = membership.view.members[0]
            nodes[victim].crash()
            membership.report_crash(victim)
            sleep(2.0)  # ride out detection
            return rsm.invoke("client", "read")

        assert kernel.run_main(main) == 42


def test_no_members_rejected():
    with Kernel(seed=184) as kernel:
        network = Network(kernel, LatencyModel(0.0005))
        network.ensure_endpoint("client")
        membership = MembershipService(kernel)
        rsm = ReplicatedStateMachine(kernel, network, membership,
                                     Register)

        def main():
            rsm.invoke("client", "write", 1)

        with pytest.raises(Exception):
            kernel.run_main(main)


def test_joiner_receives_state_transfer():
    with Kernel(seed=185) as kernel:
        network, membership, nodes, rsm = build(kernel, members=2)

        def main():
            rsm.invoke("client", "write", 9)
            node = Node(kernel, network, "late")
            membership.join(node)
            rsm.invoke("client", "write", 10)
            sleep(1.0)

        kernel.run_main(main)
        kernel.run()
        assert rsm.copy_of("late").value == 10
        # The joiner's history includes the pre-join prefix via the
        # state transfer (log copied from a donor).
        assert len(rsm.log_of("late")) >= 2


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 9999),
       batches=st.lists(st.integers(0, 99), min_size=1, max_size=12))
def test_property_replica_states_identical(seed, batches):
    with Kernel(seed=seed) as kernel:
        _net, _mem, _nodes, rsm = build(kernel)

        def main():
            threads = [spawn(lambda v=value: rsm.invoke(
                "client", "write", v)) for value in batches]
            for t in threads:
                t.join()

        kernel.run_main(main)
        kernel.run()
        states = {pickle.dumps(copy.__dict__)
                  for copy in rsm.copies.values()}
        assert len(states) == 1
