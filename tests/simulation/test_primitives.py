"""Unit tests for virtual-time synchronization primitives."""

import pytest

from repro.errors import SimTimeoutError, SimulationError
from repro.simulation import Condition, Event, Kernel, Lock, Queue, Semaphore
from repro.simulation.thread import now, sleep, spawn


@pytest.fixture
def kernel():
    with Kernel(seed=11) as k:
        yield k


# -- Event ------------------------------------------------------------------


def test_event_wait_blocks_until_set(kernel):
    event = Event(kernel)

    def setter():
        sleep(2.0)
        event.set()

    def main():
        spawn(setter)
        assert event.wait() is True
        return now()

    assert kernel.run_main(main) == pytest.approx(2.0)


def test_event_wait_after_set_returns_immediately(kernel):
    event = Event(kernel)

    def main():
        event.set()
        assert event.wait() is True
        return now()

    assert kernel.run_main(main) == 0.0


def test_event_wait_timeout_returns_false(kernel):
    event = Event(kernel)

    def main():
        assert event.wait(timeout=1.0) is False
        return now()

    assert kernel.run_main(main) == pytest.approx(1.0)


def test_event_wakes_all_waiters(kernel):
    event = Event(kernel)
    woken = []

    def waiter(i):
        event.wait()
        woken.append(i)

    def main():
        threads = [spawn(waiter, i) for i in range(5)]
        sleep(1.0)
        event.set()
        for t in threads:
            t.join()

    kernel.run_main(main)
    assert woken == [0, 1, 2, 3, 4]


def test_event_clear_and_reuse(kernel):
    event = Event(kernel)

    def main():
        event.set()
        assert event.wait() is True
        event.clear()
        assert event.is_set() is False
        assert event.wait(timeout=0.5) is False

    kernel.run_main(main)


# -- Lock ---------------------------------------------------------------------


def test_lock_mutual_exclusion(kernel):
    lock = Lock(kernel)
    active = []
    max_active = []

    def worker():
        with lock:
            active.append(1)
            max_active.append(len(active))
            sleep(1.0)
            active.pop()

    def main():
        threads = [spawn(worker) for _ in range(4)]
        for t in threads:
            t.join()
        return now()

    assert kernel.run_main(main) == pytest.approx(4.0)
    assert max(max_active) == 1


def test_lock_held_is_per_thread(kernel):
    """``held()`` answers "does *this thread* own it", unlike
    ``locked`` ("does anyone") — the distinction cleanup paths need
    before a guarded ``release()``."""
    lock = Lock(kernel)
    observed = []

    def owner():
        with lock:
            assert lock.held()
            sleep(1.0)

    def bystander():
        sleep(0.5)  # while the owner holds it
        observed.append((lock.locked, lock.held()))

    def main():
        threads = [spawn(owner), spawn(bystander)]
        for t in threads:
            t.join()
        return lock.locked, lock.held()

    assert kernel.run_main(main) == (False, False)
    assert observed == [(True, False)]


def test_lock_fifo_order(kernel):
    lock = Lock(kernel)
    order = []

    def worker(i):
        sleep(i * 0.001)  # stagger arrival
        with lock:
            order.append(i)
            sleep(1.0)

    def main():
        threads = [spawn(worker, i) for i in range(5)]
        for t in threads:
            t.join()

    kernel.run_main(main)
    assert order == [0, 1, 2, 3, 4]


def test_lock_acquire_timeout(kernel):
    lock = Lock(kernel)

    def holder():
        with lock:
            sleep(5.0)

    def main():
        spawn(holder)
        sleep(0.1)
        assert lock.acquire(timeout=1.0) is False
        assert lock.acquire(timeout=10.0) is True
        lock.release()

    kernel.run_main(main)


def test_lock_release_by_non_owner_rejected(kernel):
    lock = Lock(kernel)

    def main():
        with pytest.raises(SimulationError):
            lock.release()

    kernel.run_main(main)


def test_lock_not_reentrant(kernel):
    lock = Lock(kernel)

    def main():
        lock.acquire()
        with pytest.raises(SimulationError):
            lock.acquire()
        lock.release()

    kernel.run_main(main)


# -- Semaphore ----------------------------------------------------------------


def test_semaphore_limits_concurrency(kernel):
    sem = Semaphore(kernel, permits=2)
    active = [0]
    peak = [0]

    def worker():
        with sem:
            active[0] += 1
            peak[0] = max(peak[0], active[0])
            sleep(1.0)
            active[0] -= 1

    def main():
        threads = [spawn(worker) for _ in range(6)]
        for t in threads:
            t.join()
        return now()

    assert kernel.run_main(main) == pytest.approx(3.0)
    assert peak[0] == 2


def test_semaphore_acquire_timeout(kernel):
    sem = Semaphore(kernel, permits=0)

    def main():
        assert sem.acquire(timeout=0.5) is False
        sem.release()
        assert sem.acquire(timeout=0.5) is True

    kernel.run_main(main)


def test_semaphore_release_multiple(kernel):
    sem = Semaphore(kernel, permits=0)
    done = []

    def worker(i):
        sem.acquire()
        done.append(i)

    def main():
        threads = [spawn(worker, i) for i in range(3)]
        sleep(1.0)
        sem.release(3)
        for t in threads:
            t.join()

    kernel.run_main(main)
    assert done == [0, 1, 2]


def test_semaphore_negative_permits_rejected(kernel):
    with pytest.raises(SimulationError):
        Semaphore(kernel, permits=-1)


# -- Condition -----------------------------------------------------------------


def test_condition_notify_wakes_one(kernel):
    cond = Condition(kernel)
    woken = []

    def waiter(i):
        with cond:
            cond.wait()
            woken.append(i)

    def main():
        threads = [spawn(waiter, i) for i in range(3)]
        sleep(1.0)
        with cond:
            cond.notify()
        sleep(1.0)
        assert woken == [0]
        with cond:
            cond.notify_all()
        for t in threads:
            t.join()

    kernel.run_main(main)
    assert woken == [0, 1, 2]


def test_condition_wait_requires_lock(kernel):
    cond = Condition(kernel)

    def main():
        with pytest.raises(SimulationError):
            cond.wait()

    kernel.run_main(main)


def test_condition_wait_for_predicate(kernel):
    cond = Condition(kernel)
    state = {"ready": False}

    def setter():
        sleep(2.0)
        with cond:
            state["ready"] = True
            cond.notify_all()

    def main():
        spawn(setter)
        with cond:
            assert cond.wait_for(lambda: state["ready"]) is True
        return now()

    assert kernel.run_main(main) == pytest.approx(2.0)


def test_condition_wait_timeout(kernel):
    cond = Condition(kernel)

    def main():
        with cond:
            assert cond.wait(timeout=0.75) is False
        return now()

    assert kernel.run_main(main) == pytest.approx(0.75)


def test_condition_wait_reacquires_lock(kernel):
    cond = Condition(kernel)
    trace = []

    def waiter():
        with cond:
            cond.wait()
            trace.append(("waiter-critical", now()))
            sleep(1.0)

    def main():
        t = spawn(waiter)
        sleep(0.5)
        with cond:
            cond.notify()
            sleep(1.0)  # still holding: waiter cannot enter yet
            trace.append(("main-exits", now()))
        t.join()

    kernel.run_main(main)
    assert trace == [("main-exits", 1.5), ("waiter-critical", 1.5)]


# -- Queue ----------------------------------------------------------------------


def test_queue_fifo(kernel):
    queue = Queue(kernel)

    def main():
        for i in range(5):
            queue.put(i)
        return [queue.get() for _ in range(5)]

    assert kernel.run_main(main) == [0, 1, 2, 3, 4]


def test_queue_get_blocks_until_put(kernel):
    queue = Queue(kernel)

    def producer():
        sleep(2.0)
        queue.put("item")

    def main():
        spawn(producer)
        item = queue.get()
        return item, now()

    assert kernel.run_main(main) == ("item", 2.0)


def test_queue_capacity_blocks_putters(kernel):
    queue = Queue(kernel, capacity=1)
    times = []

    def consumer():
        sleep(3.0)
        queue.get()

    def main():
        spawn(consumer)
        queue.put(1)
        queue.put(2)  # blocks until the consumer frees a slot
        times.append(now())

    kernel.run_main(main)
    assert times == [pytest.approx(3.0)]


def test_queue_get_timeout(kernel):
    queue = Queue(kernel)

    def main():
        with pytest.raises(SimTimeoutError):
            queue.get(timeout=0.5)

    kernel.run_main(main)


def test_queue_put_timeout(kernel):
    queue = Queue(kernel, capacity=1)

    def main():
        queue.put(1)
        with pytest.raises(SimTimeoutError):
            queue.put(2, timeout=0.5)

    kernel.run_main(main)


def test_queue_handoff_to_waiting_getter(kernel):
    queue = Queue(kernel)
    got = []

    def getter():
        got.append(queue.get())

    def main():
        t = spawn(getter)
        sleep(1.0)
        queue.put("x")
        t.join()

    kernel.run_main(main)
    assert got == ["x"]


def test_queue_invalid_capacity(kernel):
    with pytest.raises(SimulationError):
        Queue(kernel, capacity=0)
