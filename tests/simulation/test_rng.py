"""Unit tests for deterministic RNG streams."""

from repro.simulation.rng import RngRegistry


def test_same_name_same_stream_object():
    registry = RngRegistry(seed=1)
    assert registry.stream("a") is registry.stream("a")


def test_streams_are_deterministic_per_seed():
    a = RngRegistry(seed=5).stream("net").random(10).tolist()
    b = RngRegistry(seed=5).stream("net").random(10).tolist()
    assert a == b


def test_different_names_differ():
    registry = RngRegistry(seed=5)
    a = registry.stream("alpha").random(10).tolist()
    b = registry.stream("beta").random(10).tolist()
    assert a != b


def test_different_seeds_differ():
    a = RngRegistry(seed=1).stream("x").random(10).tolist()
    b = RngRegistry(seed=2).stream("x").random(10).tolist()
    assert a != b


def test_draw_order_in_one_stream_does_not_affect_others():
    """The isolation property: extra draws in one component leave
    every other component's sequence untouched."""
    registry_a = RngRegistry(seed=9)
    registry_a.stream("noisy").random(100)  # extra draws
    value_a = registry_a.stream("quiet").random()

    registry_b = RngRegistry(seed=9)
    value_b = registry_b.stream("quiet").random()
    assert value_a == value_b


def test_spawn_creates_independent_registry():
    parent = RngRegistry(seed=3)
    child = parent.spawn("worker")
    a = parent.stream("s").random(5).tolist()
    b = child.stream("s").random(5).tolist()
    assert a != b
    # but child registries are themselves deterministic
    again = RngRegistry(seed=3).spawn("worker").stream("s").random(5)
    assert b == again.tolist()
