"""The kernel's scheduling point: batch, choose, (maybe) delay.

These tests pin the contract ``Kernel._next_event`` gives the
exploration schedulers: with no scheduler attached nothing changes;
with a :class:`FifoScheduler` the run is decision-for-decision
identical to the native order; a scheduler's choice reorders only
*same-timestamp* ties; an injected delay re-enqueues the event in the
future instead of dropping it.
"""

from repro.explore import FifoScheduler, RandomScheduler
from repro.explore.scheduler import Scheduler
from repro.simulation import Kernel
from repro.simulation.thread import sleep


def _tie_workload(kernel, log):
    """Three threads woken at the identical virtual instant."""
    def worker(tag):
        sleep(1.0)  # all wakeups land at exactly t=1.0
        log.append((tag, kernel.now))

    for tag in "abc":
        kernel.spawn(worker, tag, name=f"worker-{tag}")


def test_no_scheduler_keeps_native_order():
    log = []
    with Kernel(seed=1) as kernel:
        _tie_workload(kernel, log)
        kernel.run()
    assert [tag for tag, _ in log] == ["a", "b", "c"]


def test_fifo_scheduler_is_the_degenerate_case():
    baseline, fifo = [], []
    with Kernel(seed=1) as kernel:
        _tie_workload(kernel, baseline)
        kernel.run()
    scheduler = FifoScheduler()
    with Kernel(seed=1, scheduler=scheduler) as kernel:
        _tie_workload(kernel, fifo)
        kernel.run()
    assert fifo == baseline
    # And the trace shows it saw the tie but chose FIFO at it.
    assert any(len(d.options) > 1 for d in scheduler.trace.decisions)
    assert all(d.chosen == 0 and d.delay == 0
               for d in scheduler.trace.decisions)


class _PickLast(Scheduler):
    kind = "picklast"

    def _choose(self, time, labels, entries):
        return len(entries) - 1


def test_scheduler_choice_reorders_ties():
    starts, log = [], []
    with Kernel(seed=1, scheduler=_PickLast()) as kernel:
        def worker(tag):
            starts.append((tag, kernel.now))
            sleep(1.0)
            log.append((tag, kernel.now))

        for tag in "abc":
            kernel.spawn(worker, tag, name=f"worker-{tag}")
        kernel.run()
    # The three spawn wakeups tie at t=0; picking the last candidate
    # at every point starts them in reverse.
    assert [tag for tag, _ in starts] == ["c", "b", "a"]
    # Virtual time is untouched: the choice reorders, never travels.
    assert all(now == 0.0 for _, now in starts)
    assert all(now == 1.0 for _, now in log)


class _DelayFirstOnce(Scheduler):
    kind = "delayonce"

    def __init__(self):
        super().__init__()
        self.done = False

    def _delay(self, time, label, item):
        if not self.done and label == "worker-a":
            self.done = True
            return 0.5
    # any other event runs undelayed
        return 0.0


def test_injected_delay_requeues_into_the_future():
    log = []
    with Kernel(seed=1, scheduler=_DelayFirstOnce()) as kernel:
        _tie_workload(kernel, log)
        kernel.run()
    # a was pushed 0.5s into the future; b and c ran at t=1.0 first.
    assert [tag for tag, _ in log] == ["b", "c", "a"]
    assert dict(log)["a"] == 1.5
    assert dict(log)["b"] == 1.0


def test_run_until_composes_with_scheduler():
    log = []
    scheduler = RandomScheduler(seed=3)
    with Kernel(seed=1, scheduler=scheduler) as kernel:
        _tie_workload(kernel, log)
        kernel.run_until(lambda: len(log) >= 3, limit=10.0)
    assert sorted(tag for tag, _ in log) == ["a", "b", "c"]
