"""Property-based tests on the kernel: determinism and time order."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulation import Kernel, Lock, Queue, Semaphore
from repro.simulation.thread import now, sleep, spawn

ACTIONS = st.sampled_from(["sleep", "lock", "sem", "queue_put",
                           "queue_get"])


def run_workload(seed: int, plans: list[list[str]]) -> list[tuple]:
    """A mixed concurrent workload; returns an event trace."""
    with Kernel(seed=seed) as kernel:
        lock = Lock(kernel)
        semaphore = Semaphore(kernel, permits=2)
        queue = Queue(kernel)
        trace: list[tuple] = []

        def worker(tid: int, plan: list[str]):
            rng = kernel.rng.stream(f"w{tid}")
            for step, action in enumerate(plan):
                if action == "sleep":
                    sleep(float(rng.exponential(0.5)))
                elif action == "lock":
                    with lock:
                        sleep(0.01)
                elif action == "sem":
                    with semaphore:
                        sleep(0.02)
                elif action == "queue_put":
                    queue.put((tid, step))
                else:
                    queue.put((tid, "self"))  # keep it drainable
                    queue.get()
                trace.append((tid, step, action, round(now(), 9)))

        def main():
            threads = [spawn(worker, tid, plan)
                       for tid, plan in enumerate(plans)]
            for t in threads:
                t.join()

        kernel.run_main(main)
        return trace


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10_000),
       plans=st.lists(st.lists(ACTIONS, min_size=1, max_size=5),
                      min_size=1, max_size=5))
def test_workloads_are_deterministic(seed, plans):
    assert run_workload(seed, plans) == run_workload(seed, plans)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10_000),
       plans=st.lists(st.lists(ACTIONS, min_size=1, max_size=5),
                      min_size=1, max_size=4))
def test_per_thread_time_is_monotone(seed, plans):
    trace = run_workload(seed, plans)
    per_thread: dict[int, list[float]] = {}
    for tid, _step, _action, timestamp in trace:
        per_thread.setdefault(tid, []).append(timestamp)
    for timestamps in per_thread.values():
        assert timestamps == sorted(timestamps)


@settings(max_examples=12, deadline=None)
@given(seed=st.integers(0, 10_000),
       delays=st.lists(st.floats(min_value=0.0, max_value=100.0),
                       min_size=1, max_size=20))
def test_sleep_completion_order_matches_delay_order(seed, delays):
    with Kernel(seed=seed) as kernel:
        finished: list[int] = []

        def sleeper(index: int):
            sleep(delays[index])
            finished.append(index)

        def main():
            threads = [spawn(sleeper, i) for i in range(len(delays))]
            for t in threads:
                t.join()

        kernel.run_main(main)
    # Completion order sorts by (delay, spawn index) — FIFO tie-break.
    expected = sorted(range(len(delays)), key=lambda i: (delays[i], i))
    assert finished == expected
