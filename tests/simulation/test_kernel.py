"""Unit tests for the discrete-event kernel and simulated threads."""

import pytest

from repro.errors import DeadlockError, SimTimeoutError, SimulationError
from repro.simulation import Kernel
from repro.simulation.thread import now, sleep, spawn


@pytest.fixture
def kernel():
    with Kernel(seed=7) as k:
        yield k


def test_clock_starts_at_zero(kernel):
    assert kernel.now == 0.0


def test_run_main_returns_value(kernel):
    assert kernel.run_main(lambda: 42) == 42


def test_run_main_propagates_exception(kernel):
    def boom():
        raise ValueError("boom")

    with pytest.raises(ValueError, match="boom"):
        kernel.run_main(boom)


def test_sleep_advances_virtual_time(kernel):
    def main():
        sleep(1.5)
        return now()

    assert kernel.run_main(main) == pytest.approx(1.5)


def test_sleeps_accumulate(kernel):
    def main():
        sleep(1.0)
        sleep(0.25)
        return now()

    assert kernel.run_main(main) == pytest.approx(1.25)


def test_two_threads_interleave_in_time_order(kernel):
    trace = []

    def worker(label, delay):
        sleep(delay)
        trace.append((label, now()))

    def main():
        a = spawn(worker, "a", 2.0)
        b = spawn(worker, "b", 1.0)
        a.join()
        b.join()

    kernel.run_main(main)
    assert trace == [("b", 1.0), ("a", 2.0)]


def test_fifo_tie_break_at_equal_times(kernel):
    trace = []

    def worker(label):
        sleep(1.0)
        trace.append(label)

    def main():
        threads = [spawn(worker, i) for i in range(5)]
        for t in threads:
            t.join()

    kernel.run_main(main)
    assert trace == [0, 1, 2, 3, 4]


def test_join_returns_after_target_finishes(kernel):
    def worker():
        sleep(3.0)
        return "done"

    def main():
        t = spawn(worker)
        t.join()
        return now(), t.result()

    assert kernel.run_main(main) == (3.0, "done")


def test_join_propagates_worker_exception(kernel):
    def worker():
        raise RuntimeError("worker failed")

    def main():
        t = spawn(worker)
        t.join()

    with pytest.raises(RuntimeError, match="worker failed"):
        kernel.run_main(main)


def test_join_timeout(kernel):
    def worker():
        sleep(10.0)

    def main():
        t = spawn(worker)
        with pytest.raises(SimTimeoutError):
            t.join(timeout=1.0)
        assert now() == pytest.approx(1.0)
        t.join()
        assert now() == pytest.approx(10.0)

    kernel.run_main(main)


def test_join_already_finished_thread(kernel):
    def main():
        t = spawn(lambda: "x")
        sleep(1.0)
        t.join()
        return t.result()

    assert kernel.run_main(main) == "x"


def test_call_later_runs_callback_at_time(kernel):
    fired = []
    kernel.call_later(5.0, lambda: fired.append(kernel.now))
    kernel.run()
    assert fired == [5.0]


def test_call_later_cancel(kernel):
    fired = []
    timer = kernel.call_later(5.0, lambda: fired.append(1))
    timer.cancel()
    kernel.run()
    assert fired == []


def test_run_until_time_limit(kernel):
    fired = []
    kernel.call_later(1.0, lambda: fired.append(1))
    kernel.call_later(10.0, lambda: fired.append(2))
    kernel.run(until=5.0)
    assert fired == [1]
    assert kernel.now == 5.0
    kernel.run()
    assert fired == [1, 2]


def test_run_until_limit_preserves_pending_event(kernel):
    """Regression: hitting ``limit`` used to pop-and-drop the head event.

    ``run_until`` popped via ``_next_event()`` *before* comparing the
    event time against ``limit`` and raised without re-pushing, so a
    kernel reused after catching the error had silently lost the event.
    The limit must be checked against the peeked head, leaving it
    queued for a later run.
    """
    fired = []
    kernel.call_later(5.0, lambda: fired.append(kernel.now))
    with pytest.raises(SimulationError, match="limit"):
        kernel.run_until(lambda: bool(fired), limit=2.0)
    assert kernel.now == 2.0
    assert fired == []
    # Resume the same kernel: the event must still be there and fire.
    kernel.run_until(lambda: bool(fired))
    assert fired == [5.0]


def test_run_until_limit_repeated_raises_are_stable(kernel):
    fired = []
    kernel.call_later(5.0, lambda: fired.append(kernel.now))
    for limit in (1.0, 2.0, 3.0):
        with pytest.raises(SimulationError, match="limit"):
            kernel.run_until(lambda: bool(fired), limit=limit)
    kernel.run()
    assert fired == [5.0]


def test_wakeup_pool_reuses_events(kernel):
    def main():
        for _ in range(50):
            sleep(0.001)

    kernel.run_main(main)
    # Steady-state sleeping recycles through the pool instead of
    # allocating one Wakeup per suspension.
    assert len(kernel._wakeup_pool) >= 1


def test_timer_handles_are_never_pooled(kernel):
    fired = []
    stale = kernel.call_later(1.0, lambda: fired.append("a"))
    kernel.run()
    # Cancelling a long-dead timer handle must not affect later events.
    kernel.call_later(1.0, lambda: fired.append("b"))
    stale.cancel()
    kernel.run()
    assert fired == ["a", "b"]


def test_cancelled_event_compaction_keeps_order(kernel):
    from repro.simulation.kernel import _COMPACT_MIN

    trace = []

    def waiter(i):
        # Each sleep(timeout-style) pattern: schedule a far-future
        # wakeup then cancel it, leaving garbage in the heap.
        from repro.simulation.kernel import current_thread

        me = current_thread()
        for _ in range(20):
            h = kernel.schedule_wakeup(me, 1e6)
            h.cancel()
            kernel._cancelled += 1
            me._pending.discard(h)
        sleep(float(i % 7) * 0.1)
        trace.append(i)

    def main():
        threads = [spawn(waiter, i) for i in range(2 * _COMPACT_MIN // 20)]
        for t in threads:
            t.join()

    kernel.run_main(main)
    assert sorted(trace) == list(range(2 * _COMPACT_MIN // 20))
    # Compaction ran: the garbage did not accumulate unboundedly.
    assert kernel._cancelled < 2 * _COMPACT_MIN


def test_deadlock_detection(kernel):
    from repro.simulation import Event

    event = Event(kernel)

    def main():
        event.wait()

    kernel.spawn(main)
    with pytest.raises(DeadlockError):
        kernel.run()


def test_daemon_threads_do_not_trigger_deadlock(kernel):
    from repro.simulation import Event

    event = Event(kernel)

    def background():
        event.wait()

    kernel.spawn(background, daemon=True)
    kernel.run()  # should return quietly


def test_negative_delay_rejected(kernel):
    with pytest.raises(SimulationError):
        kernel.call_later(-1.0, lambda: None)


def test_thread_cannot_join_itself(kernel):
    def main():
        from repro.simulation.kernel import current_thread

        current_thread().join()

    with pytest.raises(SimulationError):
        kernel.run_main(main)


def test_close_tears_down_blocked_threads():
    kernel = Kernel()

    def stuck():
        sleep(1e9)

    kernel.spawn(stuck)
    kernel.run(until=1.0)
    kernel.close()  # must not hang


def test_nested_spawn(kernel):
    results = []

    def grandchild():
        sleep(1.0)
        results.append(("gc", now()))

    def child():
        t = spawn(grandchild)
        t.join()
        results.append(("c", now()))

    def main():
        t = spawn(child)
        t.join()
        results.append(("m", now()))

    kernel.run_main(main)
    assert results == [("gc", 1.0), ("c", 1.0), ("m", 1.0)]


def test_many_threads_scale(kernel):
    def worker(i):
        sleep(float(i % 10))
        return i

    def main():
        threads = [spawn(worker, i) for i in range(200)]
        for t in threads:
            t.join()
        return sum(t.result() for t in threads)

    assert kernel.run_main(main) == sum(range(200))


def test_determinism_across_kernels():
    def experiment():
        with Kernel(seed=3) as kernel:
            trace = []

            def worker(i):
                delay = float(kernel.rng.stream("w").exponential(1.0))
                sleep(delay)
                trace.append((i, now()))

            def main():
                ts = [spawn(worker, i) for i in range(20)]
                for t in ts:
                    t.join()

            kernel.run_main(main)
            return trace

    assert experiment() == experiment()
