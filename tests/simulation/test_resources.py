"""Unit tests for Resource and the processor-sharing CPU model."""

import pytest

from repro.simulation import Kernel, Resource
from repro.simulation.resources import ProcessorSharing
from repro.simulation.thread import now, sleep, spawn


@pytest.fixture
def kernel():
    with Kernel(seed=5) as k:
        yield k


def test_resource_serializes_excess_demand(kernel):
    resource = Resource(kernel, capacity=2)

    def worker():
        resource.use(1.0)

    def main():
        threads = [spawn(worker) for _ in range(4)]
        for t in threads:
            t.join()
        return now()

    assert kernel.run_main(main) == pytest.approx(2.0)


def test_resource_utilization(kernel):
    resource = Resource(kernel, capacity=2)

    def main():
        resource.use(1.0)
        sleep(1.0)

    kernel.run_main(main)
    # one of two units busy for 1s out of 2s => 25%
    assert resource.utilization() == pytest.approx(0.25)


def test_processor_sharing_single_job_runs_at_full_rate(kernel):
    cpu = ProcessorSharing(kernel, cores=4)

    def main():
        cpu.execute(2.0)
        return now()

    assert kernel.run_main(main) == pytest.approx(2.0)


def test_processor_sharing_under_subscription(kernel):
    cpu = ProcessorSharing(kernel, cores=4)
    finish = []

    def worker():
        cpu.execute(2.0)
        finish.append(now())

    def main():
        threads = [spawn(worker) for _ in range(4)]
        for t in threads:
            t.join()

    kernel.run_main(main)
    # 4 jobs on 4 cores: no slowdown.
    assert finish == [pytest.approx(2.0)] * 4


def test_processor_sharing_over_subscription(kernel):
    cpu = ProcessorSharing(kernel, cores=2)
    finish = []

    def worker():
        cpu.execute(1.0)
        finish.append(now())

    def main():
        threads = [spawn(worker) for _ in range(4)]
        for t in threads:
            t.join()

    kernel.run_main(main)
    # 4 equal jobs on 2 cores run at rate 1/2: all finish at t=2.
    assert finish == [pytest.approx(2.0)] * 4


def test_processor_sharing_departure_speeds_up_survivors(kernel):
    cpu = ProcessorSharing(kernel, cores=1)
    finish = {}

    def worker(label, work):
        cpu.execute(work)
        finish[label] = now()

    def main():
        a = spawn(worker, "short", 1.0)
        b = spawn(worker, "long", 2.0)
        a.join()
        b.join()

    kernel.run_main(main)
    # Both share the core (rate 1/2). Short finishes at t=2; long then
    # runs alone and finishes its remaining 1.0 of work at t=3.
    assert finish["short"] == pytest.approx(2.0)
    assert finish["long"] == pytest.approx(3.0)


def test_processor_sharing_late_arrival(kernel):
    cpu = ProcessorSharing(kernel, cores=1)
    finish = {}

    def worker(label, work, start):
        sleep(start)
        cpu.execute(work)
        finish[label] = now()

    def main():
        a = spawn(worker, "first", 2.0, 0.0)
        b = spawn(worker, "second", 2.0, 1.0)
        a.join()
        b.join()

    kernel.run_main(main)
    # First runs alone for 1s (1.0 work left), then shares: each gets
    # rate 1/2. First finishes at 1 + 2 = 3; second has 1.0 work left at
    # t=3 and finishes at t=4.
    assert finish["first"] == pytest.approx(3.0)
    assert finish["second"] == pytest.approx(4.0)


def test_processor_sharing_scale_up_shape(kernel):
    """Scale-up = min(1, cores/threads): the Fig. 3 VM baseline."""
    cores = 8

    def run(threads):
        cpu = ProcessorSharing(kernel, cores=cores)
        start = now()
        done = []

        def worker():
            cpu.execute(1.0)

        def phase():
            ts = [spawn(worker) for _ in range(threads)]
            for t in ts:
                t.join()
            done.append(now() - start)

        return phase, done

    def main():
        results = {}
        for n in (4, 8, 16, 32):
            cpu = ProcessorSharing(kernel, cores=cores)
            begin = now()
            ts = [spawn(lambda: cpu.execute(1.0)) for _ in range(n)]
            for t in ts:
                t.join()
            results[n] = now() - begin
        return results

    results = kernel.run_main(main)
    assert results[4] == pytest.approx(1.0)
    assert results[8] == pytest.approx(1.0)
    assert results[16] == pytest.approx(2.0)
    assert results[32] == pytest.approx(4.0)
