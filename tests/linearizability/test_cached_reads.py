"""Linearizability of histories that mix cached reads with writes.

The lease protocol's claim (see repro.dso.cache): a read served from a
client-side cache linearizes at its local cache-consult instant,
because any conflicting write either revoked the lease before
acknowledging or went through a placement-version bump that
invalidated the entry first.  These tests check exactly that on
recorded histories — including ones with crashes and rebalances in the
middle — with ``read_cache=True`` end to end through the proxy stack.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import AtomicLong, CrucialEnvironment
from repro.config import DEFAULT_CONFIG
from repro.linearizability import HistoryRecorder, LinearizabilityChecker
from repro.simulation.thread import sleep, spawn


class CounterSpec:
    def __init__(self):
        self.value = 0

    def add_and_get(self, delta):
        self.value += delta
        return self.value

    def get(self):
        return self.value


OPS = st.sampled_from(["add", "get", "get", "get"])  # read-heavy mix


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=9999),
    plans=st.lists(st.lists(OPS, min_size=1, max_size=4),
                   min_size=2, max_size=4),
    rf=st.sampled_from([1, 2]),
)
def test_cached_read_histories_linearizable(seed, plans, rf):
    with CrucialEnvironment(seed=seed, dso_nodes=3,
                            read_cache=True) as env:
        recorder = HistoryRecorder(clock=lambda: env.kernel.now)

        def main():
            counter = AtomicLong("hot", 0, persistent=rf > 1,
                                 rf=rf if rf > 1 else None)
            counter.get()  # force creation before concurrency starts

            def worker(tid, plan):
                for op in plan:
                    if op == "add":
                        recorder.record(
                            f"t{tid}", "add_and_get", (1,),
                            lambda: counter.add_and_get(1))
                    else:
                        recorder.record(f"t{tid}", "get", (), counter.get)

            threads = [spawn(worker, tid, plan)
                       for tid, plan in enumerate(plans)]
            for t in threads:
                t.join()

        env.run(main)
        checker = LinearizabilityChecker(CounterSpec)
        assert checker.check(recorder.operations), \
            checker.explain(recorder.operations)


def test_no_stale_read_after_acknowledged_write():
    """The protocol's core promise, deterministically: once a write is
    acknowledged, no read — not even by a lease holder — returns the
    pre-write value."""
    with CrucialEnvironment(seed=11, dso_nodes=2, read_cache=True) as env:
        def main():
            counter = AtomicLong("x")
            readings = [counter.get()]        # leases the snapshot (0)
            counter.add_and_get(5)            # revokes before acking
            readings.append(counter.get())    # must be 5, never 0
            readings.append(counter.get())    # cached again — still 5
            return readings

        assert env.run(main) == [0, 5, 5]
        assert env.dso.stats.lease_revocations >= 1
        assert env.dso.stats.cache_hits >= 1


def test_cached_histories_linearizable_across_crash_and_rebalance():
    """One recorded history that mixes cached reads, writes, a primary
    crash (failover to the backup), and the rebalance that follows —
    the acceptance scenario of the lease protocol."""
    with CrucialEnvironment(seed=23, dso_nodes=3, read_cache=True) as env:
        recorder = HistoryRecorder(clock=lambda: env.kernel.now)

        def main():
            counter = AtomicLong("hot", 0, persistent=True, rf=2)
            counter.get()
            primary = env.dso.placement_of(counter.ref)[0]

            def worker(tid):
                for i in range(6):
                    if i % 3 == 0:
                        recorder.record(
                            f"t{tid}", "add_and_get", (1,),
                            lambda: counter.add_and_get(1))
                    else:
                        recorder.record(f"t{tid}", "get", (), counter.get)
                    sleep(1.0)

            threads = [spawn(worker, tid) for tid in range(3)]
            sleep(1.5)
            env.dso.crash_node(primary)  # leases outstanding
            sleep(DEFAULT_CONFIG.dso.failure_detection)
            env.dso.add_node()  # trigger another rebalance mid-history
            for t in threads:
                t.join()
            return counter.get()

        final = env.run(main)
        assert final == 6  # every acknowledged add exactly once
        checker = LinearizabilityChecker(CounterSpec)
        assert checker.check(recorder.operations), \
            checker.explain(recorder.operations)
        stats = env.dso.stats
        assert stats.cache_hits + stats.cache_misses > 0
        assert stats.leases_granted >= 1
