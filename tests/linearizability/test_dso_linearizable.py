"""Property test: DSO shared objects produce linearizable histories.

This is the paper's Section 3.1 guarantee, checked end-to-end: many
cloud-side threads hammer one shared object through the full stack
(proxy -> network -> primary -> SMR replicas) and the recorded
concurrent history must admit a legal linearization.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import AtomicLong, CrucialEnvironment, SharedMap
from repro.linearizability import HistoryRecorder, LinearizabilityChecker
from repro.simulation.thread import spawn


class CounterSpec:
    def __init__(self):
        self.value = 0

    def add_and_get(self, delta):
        self.value += delta
        return self.value

    def get(self):
        return self.value

    def compare_and_set(self, expected, update):
        if self.value == expected:
            self.value = update
            return True
        return False


class MapSpec:
    def __init__(self):
        self.items = {}

    def put(self, key, value):
        previous = self.items.get(key)
        self.items[key] = value
        return previous

    def get(self, key, default=None):
        return self.items.get(key, default)

    def merge(self, key, value, fn=None):
        if key not in self.items:
            self.items[key] = value
        else:
            self.items[key] = self.items[key] + value
        return self.items[key]


OPS = st.sampled_from(["add", "get", "cas"])


@settings(max_examples=12, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=9999),
    plans=st.lists(st.lists(OPS, min_size=1, max_size=3),
                   min_size=2, max_size=4),
    rf=st.sampled_from([1, 2]),
)
def test_atomic_long_histories_linearizable(seed, plans, rf):
    with CrucialEnvironment(seed=seed, dso_nodes=3) as env:
        recorder = HistoryRecorder(clock=lambda: env.kernel.now)

        def main():
            counter = AtomicLong("hot", 0, persistent=rf > 1,
                                 rf=rf if rf > 1 else None)
            counter.get()  # force creation before concurrency starts

            def worker(tid, plan):
                for index, op in enumerate(plan):
                    if op == "add":
                        recorder.record(
                            f"t{tid}", "add_and_get", (1,),
                            lambda: counter.add_and_get(1))
                    elif op == "get":
                        recorder.record(f"t{tid}", "get", (), counter.get)
                    else:
                        expected = index + tid
                        recorder.record(
                            f"t{tid}", "compare_and_set",
                            (expected, expected + 1),
                            lambda e=expected:
                            counter.compare_and_set(e, e + 1))

            threads = [spawn(worker, tid, plan)
                       for tid, plan in enumerate(plans)]
            for t in threads:
                t.join()

        env.run(main)
        checker = LinearizabilityChecker(CounterSpec)
        assert checker.check(recorder.operations), \
            checker.explain(recorder.operations)


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(min_value=0, max_value=9999))
def test_shared_map_histories_linearizable(seed):
    with CrucialEnvironment(seed=seed, dso_nodes=2) as env:
        recorder = HistoryRecorder(clock=lambda: env.kernel.now)

        def main():
            table = SharedMap("table")
            table.get("warm")  # force creation

            def worker(tid):
                recorder.record(f"t{tid}", "put", ("k", tid),
                                lambda: table.put("k", tid))
                recorder.record(f"t{tid}", "merge", ("sum", 1, None),
                                lambda: table.merge("sum", 1))
                recorder.record(f"t{tid}", "get", ("k", None),
                                lambda: table.get("k"))

            threads = [spawn(worker, tid) for tid in range(3)]
            for t in threads:
                t.join()

        env.run(main)
        checker = LinearizabilityChecker(MapSpec)
        assert checker.check(recorder.operations), \
            checker.explain(recorder.operations)


def test_contended_counter_total_is_exact():
    """No lost updates under contention (wait-free linearizable adds)."""
    with CrucialEnvironment(seed=5, dso_nodes=2) as env:
        def main():
            counter = AtomicLong("exact")

            def worker():
                for _ in range(25):
                    counter.add_and_get(1)

            threads = [spawn(worker) for _ in range(8)]
            for t in threads:
                t.join()
            return counter.get()

        assert env.run(main) == 200
