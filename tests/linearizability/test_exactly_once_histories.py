"""Linearizability of non-idempotent ops across crash/retry/rebalance.

The sharpest consequence of exactly-once shipping: histories of
*non-idempotent* operations (``add_and_get``, ``SharedList.append``)
stay linearizable against a spec that applies each invocation exactly
once, even while the primary crashes mid-workload, clients retry
through failover, and the restarted node triggers rebalancing.  Under
at-least-once retries this check fails — a double-applied increment
produces a value no single-application spec can explain.
"""

from repro import AtomicLong, CrucialEnvironment, SharedList
from repro.chaos import ChaosInjector, FaultPlan
from repro.linearizability import HistoryRecorder, LinearizabilityChecker
from repro.simulation.thread import sleep, spawn

WORKERS = 3
ADDS_PER_WORKER = 4
APPENDS_PER_WORKER = 3


class CounterSpec:
    def __init__(self):
        self.value = 0

    def add_and_get(self, delta):
        self.value += delta
        return self.value

    def get(self):
        return self.value


class ListSpec:
    def __init__(self):
        self.items = []

    def append(self, item):
        self.items.append(item)

    def size(self):
        return len(self.items)


def run_history(seed):
    with CrucialEnvironment(seed=seed, dso_nodes=3) as env:
        injector = ChaosInjector(env.kernel, network=env.network,
                                 dso=env.dso)
        counter_history = HistoryRecorder(clock=lambda: env.kernel.now)
        list_history = HistoryRecorder(clock=lambda: env.kernel.now)

        def main():
            counter = AtomicLong("eo-counter", 0, persistent=True, rf=2)
            log = SharedList("eo-log", persistent=True, rf=2)
            counter.get()
            log.size()
            primary = env.dso.placement_of(counter.ref)[0]
            injector.schedule(FaultPlan()
                              .add(2.0, "crash_node", primary)
                              .add(9.0, "restart_node", primary))

            def worker(tid):
                for i in range(ADDS_PER_WORKER):
                    counter_history.record(
                        f"t{tid}", "add_and_get", (1,),
                        lambda: counter.add_and_get(1))
                    if i < APPENDS_PER_WORKER:
                        item = (tid, i)
                        list_history.record(
                            f"t{tid}", "append", (item,),
                            lambda item=item: log.append(item))
                    sleep(0.8)
                counter_history.record(f"t{tid}", "get", (), counter.get)

            threads = [spawn(worker, tid) for tid in range(WORKERS)]
            for t in threads:
                t.join()
            sleep(8.0)  # ride out detection + rebalance
            return counter.get(), sorted(log.get_all())

        final, items = env.run(main)
        crashed = injector.log.counts("inject").get("crash_node", 0)
        assert crashed == 1, "the crash must land mid-workload"
        return final, items, counter_history, list_history, env


def test_non_idempotent_histories_linearizable_across_failover(chaos_seed):
    final, items, counter_history, list_history, env = \
        run_history(chaos_seed)

    # No duplicate effects: exact counts, exact membership.
    assert final == WORKERS * ADDS_PER_WORKER
    expected = sorted((tid, i) for tid in range(WORKERS)
                      for i in range(APPENDS_PER_WORKER))
    assert items == expected  # each append applied exactly once

    checker = LinearizabilityChecker(CounterSpec)
    assert checker.check(counter_history.operations), \
        checker.explain(counter_history.operations)
    list_checker = LinearizabilityChecker(ListSpec)
    assert list_checker.check(list_history.operations), \
        list_checker.explain(list_history.operations)

    # The guarantee was exercised: the crash forced at least one retry.
    assert env.dso.stats.retries >= 1
