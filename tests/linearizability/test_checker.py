"""Unit tests for the Wing & Gong checker on hand-crafted histories."""

import pytest

from repro.linearizability import HistoryRecorder, LinearizabilityChecker, Operation


class Register:
    """Sequential specification of a read/write register."""

    def __init__(self):
        self.value = 0

    def write(self, value):
        self.value = value

    def read(self):
        return self.value


class Counter:
    """Sequential specification of AtomicLong's core."""

    def __init__(self):
        self.value = 0

    def add_and_get(self, delta):
        self.value += delta
        return self.value

    def get(self):
        return self.value

    def compare_and_set(self, expected, update):
        if self.value == expected:
            self.value = update
            return True
        return False


def op(op_id, thread, method, args, result, invoke, response):
    return Operation(op_id=op_id, thread=thread, method=method, args=args,
                     result=result, invoke=invoke, response=response)


def test_empty_history_is_linearizable():
    checker = LinearizabilityChecker(Register)
    assert checker.check([]) is True


def test_sequential_history_linearizable():
    history = [
        op(0, "a", "write", (5,), None, 0.0, 1.0),
        op(1, "a", "read", (), 5, 2.0, 3.0),
    ]
    assert LinearizabilityChecker(Register).check(history) is True


def test_stale_read_after_write_not_linearizable():
    history = [
        op(0, "a", "write", (5,), None, 0.0, 1.0),
        op(1, "b", "read", (), 0, 2.0, 3.0),  # must see 5
    ]
    assert LinearizabilityChecker(Register).check(history) is False


def test_concurrent_write_read_either_value_ok():
    # Read overlaps the write: both 0 and 5 are legal outcomes.
    history_sees_new = [
        op(0, "a", "write", (5,), None, 0.0, 2.0),
        op(1, "b", "read", (), 5, 1.0, 3.0),
    ]
    history_sees_old = [
        op(0, "a", "write", (5,), None, 0.0, 2.0),
        op(1, "b", "read", (), 0, 1.0, 3.0),
    ]
    checker = LinearizabilityChecker(Register)
    assert checker.check(history_sees_new) is True
    assert checker.check(history_sees_old) is True


def test_value_out_of_thin_air_rejected():
    history = [
        op(0, "a", "write", (5,), None, 0.0, 2.0),
        op(1, "b", "read", (), 7, 1.0, 3.0),
    ]
    assert LinearizabilityChecker(Register).check(history) is False


def test_counter_interleaving_found():
    # Two concurrent increments: results 1 and 2 in some order.
    history = [
        op(0, "a", "add_and_get", (1,), 2, 0.0, 3.0),
        op(1, "b", "add_and_get", (1,), 1, 0.5, 2.5),
    ]
    assert LinearizabilityChecker(Counter).check(history) is True


def test_counter_duplicate_results_rejected():
    # Both increments observing 1 means a lost update.
    history = [
        op(0, "a", "add_and_get", (1,), 1, 0.0, 3.0),
        op(1, "b", "add_and_get", (1,), 1, 0.5, 2.5),
    ]
    assert LinearizabilityChecker(Counter).check(history) is False


def test_cas_semantics_checked():
    history = [
        op(0, "a", "compare_and_set", (0, 1), True, 0.0, 1.0),
        op(1, "b", "compare_and_set", (0, 2), True, 2.0, 3.0),  # impossible
    ]
    assert LinearizabilityChecker(Counter).check(history) is False


def test_real_time_order_respected():
    # b's read strictly follows a's +1, so it must see >= 1; seeing 0
    # would require reordering across a real-time gap.
    history = [
        op(0, "a", "add_and_get", (1,), 1, 0.0, 1.0),
        op(1, "b", "get", (), 0, 2.0, 3.0),
    ]
    assert LinearizabilityChecker(Counter).check(history) is False


def test_three_way_concurrency():
    history = [
        op(0, "a", "add_and_get", (1,), 1, 0.0, 10.0),
        op(1, "b", "add_and_get", (1,), 3, 0.0, 10.0),
        op(2, "c", "add_and_get", (1,), 2, 0.0, 10.0),
    ]
    assert LinearizabilityChecker(Counter).check(history) is True


def test_recorder_round_trip():
    clock = iter(float(i) for i in range(100))
    recorder = HistoryRecorder(clock=lambda: next(clock))
    model = Counter()
    recorder.record("t1", "add_and_get", (5,),
                    lambda: model.add_and_get(5))
    recorder.record("t1", "get", (), model.get)
    assert len(recorder.operations) == 2
    assert LinearizabilityChecker(Counter).check(recorder.operations)
    recorder.clear()
    assert recorder.operations == []


def test_state_budget_guard():
    checker = LinearizabilityChecker(Counter, max_states=2)
    history = [
        op(i, f"t{i}", "add_and_get", (1,), i + 1, 0.0, 100.0)
        for i in range(8)
    ]
    with pytest.raises(RuntimeError):
        checker.check(history)


def test_explain_mentions_verdict():
    history = [op(0, "a", "write", (5,), None, 0.0, 1.0)]
    text = LinearizabilityChecker(Register).explain(history)
    assert "linearizable: True" in text
