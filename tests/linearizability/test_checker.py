"""Unit tests for the Wing & Gong checker on hand-crafted histories."""

import pytest

from repro.linearizability import HistoryRecorder, LinearizabilityChecker, Operation


class Register:
    """Sequential specification of a read/write register."""

    def __init__(self):
        self.value = 0

    def write(self, value):
        self.value = value

    def read(self):
        return self.value


class Counter:
    """Sequential specification of AtomicLong's core."""

    def __init__(self):
        self.value = 0

    def add_and_get(self, delta):
        self.value += delta
        return self.value

    def get(self):
        return self.value

    def compare_and_set(self, expected, update):
        if self.value == expected:
            self.value = update
            return True
        return False


def op(op_id, thread, method, args, result, invoke, response):
    return Operation(op_id=op_id, thread=thread, method=method, args=args,
                     result=result, invoke=invoke, response=response)


def test_empty_history_is_linearizable():
    checker = LinearizabilityChecker(Register)
    assert checker.check([]) is True


def test_sequential_history_linearizable():
    history = [
        op(0, "a", "write", (5,), None, 0.0, 1.0),
        op(1, "a", "read", (), 5, 2.0, 3.0),
    ]
    assert LinearizabilityChecker(Register).check(history) is True


def test_stale_read_after_write_not_linearizable():
    history = [
        op(0, "a", "write", (5,), None, 0.0, 1.0),
        op(1, "b", "read", (), 0, 2.0, 3.0),  # must see 5
    ]
    assert LinearizabilityChecker(Register).check(history) is False


def test_concurrent_write_read_either_value_ok():
    # Read overlaps the write: both 0 and 5 are legal outcomes.
    history_sees_new = [
        op(0, "a", "write", (5,), None, 0.0, 2.0),
        op(1, "b", "read", (), 5, 1.0, 3.0),
    ]
    history_sees_old = [
        op(0, "a", "write", (5,), None, 0.0, 2.0),
        op(1, "b", "read", (), 0, 1.0, 3.0),
    ]
    checker = LinearizabilityChecker(Register)
    assert checker.check(history_sees_new) is True
    assert checker.check(history_sees_old) is True


def test_value_out_of_thin_air_rejected():
    history = [
        op(0, "a", "write", (5,), None, 0.0, 2.0),
        op(1, "b", "read", (), 7, 1.0, 3.0),
    ]
    assert LinearizabilityChecker(Register).check(history) is False


def test_counter_interleaving_found():
    # Two concurrent increments: results 1 and 2 in some order.
    history = [
        op(0, "a", "add_and_get", (1,), 2, 0.0, 3.0),
        op(1, "b", "add_and_get", (1,), 1, 0.5, 2.5),
    ]
    assert LinearizabilityChecker(Counter).check(history) is True


def test_counter_duplicate_results_rejected():
    # Both increments observing 1 means a lost update.
    history = [
        op(0, "a", "add_and_get", (1,), 1, 0.0, 3.0),
        op(1, "b", "add_and_get", (1,), 1, 0.5, 2.5),
    ]
    assert LinearizabilityChecker(Counter).check(history) is False


def test_cas_semantics_checked():
    history = [
        op(0, "a", "compare_and_set", (0, 1), True, 0.0, 1.0),
        op(1, "b", "compare_and_set", (0, 2), True, 2.0, 3.0),  # impossible
    ]
    assert LinearizabilityChecker(Counter).check(history) is False


def test_real_time_order_respected():
    # b's read strictly follows a's +1, so it must see >= 1; seeing 0
    # would require reordering across a real-time gap.
    history = [
        op(0, "a", "add_and_get", (1,), 1, 0.0, 1.0),
        op(1, "b", "get", (), 0, 2.0, 3.0),
    ]
    assert LinearizabilityChecker(Counter).check(history) is False


def test_three_way_concurrency():
    history = [
        op(0, "a", "add_and_get", (1,), 1, 0.0, 10.0),
        op(1, "b", "add_and_get", (1,), 3, 0.0, 10.0),
        op(2, "c", "add_and_get", (1,), 2, 0.0, 10.0),
    ]
    assert LinearizabilityChecker(Counter).check(history) is True


def test_recorder_round_trip():
    clock = iter(float(i) for i in range(100))
    recorder = HistoryRecorder(clock=lambda: next(clock))
    model = Counter()
    recorder.record("t1", "add_and_get", (5,),
                    lambda: model.add_and_get(5))
    recorder.record("t1", "get", (), model.get)
    assert len(recorder.operations) == 2
    assert LinearizabilityChecker(Counter).check(recorder.operations)
    recorder.clear()
    assert recorder.operations == []


def test_state_budget_guard():
    checker = LinearizabilityChecker(Counter, max_states=2)
    history = [
        op(i, f"t{i}", "add_and_get", (1,), i + 1, 0.0, 100.0)
        for i in range(8)
    ]
    with pytest.raises(RuntimeError):
        checker.check(history)


def test_explain_mentions_verdict():
    history = [op(0, "a", "write", (5,), None, 0.0, 1.0)]
    text = LinearizabilityChecker(Register).explain(history)
    assert "linearizable: True" in text


# ---------------------------------------------------------------------------
# P-compositionality (per-object partitioning)
# ---------------------------------------------------------------------------


class KvStore:
    """Sequential specification of a keyed register map: the *joint*
    model for multi-object histories whose ops carry the key in args."""

    def __init__(self):
        self.data = {}

    def write(self, key, value):
        self.data[key] = value

    def read(self, key):
        return self.data.get(key, 0)


def keyed(op_id, thread, method, args, result, invoke, response, key):
    return Operation(op_id=op_id, thread=thread, method=method, args=args,
                     result=result, invoke=invoke, response=response,
                     key=key)


def _many_object_history(objects=6):
    """Fully-concurrent 4-op pattern per object; each object forces
    local backtracking (the first read needs the later write), so the
    joint search space is the *product* of per-object spaces while the
    partitioned one is their sum."""
    history = []
    oid = 0
    keys = [f"obj-{i}" for i in range(objects)]
    pattern = [("read", (), 2), ("write", (1,), None),
               ("write", (2,), None), ("read", (), 1)]
    for j, (method, tail, result) in enumerate(pattern):
        for i, key in enumerate(keys):
            history.append(keyed(
                oid, f"t{oid}", method, (key,) + tail, result,
                0.001 * (j * objects + i), 100.0, key))
            oid += 1
    return history


def test_partitioning_tames_joint_state_explosion():
    history = _many_object_history()
    joint = LinearizabilityChecker(KvStore, max_states=5_000,
                                   partition=False)
    with pytest.raises(RuntimeError, match="state budget"):
        joint.check(history)
    partitioned = LinearizabilityChecker(KvStore, max_states=5_000)
    assert partitioned.check(history) is True
    # The whole history checks in well under the per-partition budget.
    assert partitioned.states_explored < 200


def test_cross_object_violation_still_caught_per_object():
    history = [
        keyed(0, "a", "write", ("good", 5), None, 0.0, 1.0, "good"),
        keyed(1, "b", "read", ("good",), 5, 2.0, 3.0, "good"),
        keyed(2, "a", "write", ("bad", 7), None, 0.0, 1.0, "bad"),
        keyed(3, "b", "read", ("bad",), 0, 2.0, 3.0, "bad"),  # stale
    ]
    checker = LinearizabilityChecker(KvStore)
    assert checker.check(history) is False
    text = checker.explain(history)
    assert "linearizable: False for object 'bad'" in text


def test_unkeyed_history_verdicts_unchanged_by_partitioning():
    history = [
        op(0, "a", "add_and_get", (1,), 1, 0.0, 3.0),
        op(1, "b", "add_and_get", (1,), 1, 0.5, 2.5),  # lost update
    ]
    assert LinearizabilityChecker(Counter).check(history) is False
    assert LinearizabilityChecker(
        Counter, partition=False).check(history) is False


# ---------------------------------------------------------------------------
# explain(): minimal counterexample windows
# ---------------------------------------------------------------------------


def test_explain_shrinks_to_offending_window():
    history = [
        keyed(0, "a", "write", ("x", 1), None, 0.0, 0.1, "x"),
        keyed(1, "a", "read", ("x",), 1, 0.2, 0.3, "x"),
        keyed(2, "a", "write", ("x", 2), None, 0.4, 0.5, "x"),
        keyed(3, "a", "read", ("x",), 3, 0.6, 0.7, "x"),  # thin air
    ]
    text = LinearizabilityChecker(KvStore).explain(history)
    assert "linearizable: False" in text
    # The window pinpoints the impossible read, dropping the three
    # unrelated operations.
    assert "minimal unlinearizable window (1 of 4 ops)" in text
    assert "read('x') -> 3" in text


def test_explain_window_contains_all_conflicting_ops():
    # A lost update needs *both* increments to manifest: the window
    # must keep the pair.
    history = [
        op(0, "a", "add_and_get", (1,), 1, 0.0, 3.0),
        op(1, "b", "add_and_get", (1,), 1, 0.5, 2.5),
    ]
    text = LinearizabilityChecker(Counter).explain(history)
    assert "minimal unlinearizable window (2 of 2 ops)" in text
    assert "a: add_and_get(1) -> 1" in text
    assert "b: add_and_get(1) -> 1" in text
