"""Unit tests for the cross-partition read-atomicity pass.

The base linearizability checker is per-object and cannot see
fractured reads; these tests drive the dedicated atomicity pass
(:mod:`repro.linearizability.atomicity`) on hand-built histories —
both clean ones and the canonical RAMP anomalies — before the chaos
and fuzzer suites run it on recorded trials.
"""

from __future__ import annotations

from repro.linearizability import (
    TxnCommitRecord,
    TxnReadRecord,
    final_state_violations,
    find_fractured_reads,
)


def commit(txn_id: str, cid: int, *writes: str) -> TxnCommitRecord:
    return TxnCommitRecord(txn_id=txn_id, cid=cid,
                           writes=tuple(sorted(writes)))


def read(reader: str, **cids: int) -> TxnReadRecord:
    return TxnReadRecord(reader=reader,
                         reads=tuple(sorted(cids.items())))


class TestFindFracturedReads:
    def test_clean_history_passes(self):
        commits = [commit("t1", 1, "a", "b"), commit("t2", 2, "a", "b")]
        reads = [
            read("r1", a=1, b=1),   # both from t1
            read("r2", a=2, b=2),   # both from t2
            read("r3", a=0, b=0),   # pre-history snapshot
        ]
        assert find_fractured_reads(commits, reads) == []

    def test_fractured_sibling_is_flagged(self):
        # t1 wrote both a and b at cid 1; the reader saw t1's a but
        # the initial b — the textbook fractured read.
        commits = [commit("t1", 1, "a", "b")]
        reads = [read("r1", a=1, b=0)]
        violations = find_fractured_reads(commits, reads)
        assert len(violations) == 1
        v = violations[0]
        assert (v.reader, v.txn_id) == ("r1", "t1")
        assert (v.key_seen, v.cid_seen) == ("a", 1)
        assert (v.key_stale, v.cid_stale) == ("b", 0)
        assert "fractured" in v.describe()

    def test_newer_sibling_is_not_a_fracture(self):
        # Seeing b from a LATER txn than a's writer is fine: read
        # atomicity is a lower bound on siblings, not equality.
        commits = [commit("t1", 1, "a", "b"), commit("t2", 2, "b")]
        reads = [read("r1", a=1, b=2)]
        assert find_fractured_reads(commits, reads) == []

    def test_disjoint_transactions_never_fracture(self):
        commits = [commit("t1", 1, "a"), commit("t2", 2, "b")]
        reads = [read("r1", a=1, b=0), read("r2", a=0, b=2)]
        assert find_fractured_reads(commits, reads) == []

    def test_three_key_txn_flags_each_stale_sibling(self):
        commits = [commit("t1", 1, "a", "b", "c")]
        reads = [read("r1", a=1, b=0, c=0)]
        violations = find_fractured_reads(commits, reads)
        stale = {(v.key_seen, v.key_stale) for v in violations}
        assert stale == {("a", "b"), ("a", "c")}

    def test_initial_version_has_no_siblings(self):
        # cid 0 has no logged writer, so observing it alongside
        # anything is never itself a fracture source.
        commits = [commit("t1", 1, "a")]
        reads = [read("r1", a=0, b=0)]
        assert find_fractured_reads(commits, reads) == []


class TestFinalStateViolations:
    def test_clean_final_state(self):
        commits = [commit("t1", 1, "a", "b"), commit("t2", 2, "a")]
        assert final_state_violations(commits, {"a": 2, "b": 1}) == []

    def test_dropped_write_is_reported(self):
        # t2's write to b was acked but never installed — exactly what
        # the disabled commit fence produces after a mid-commit crash.
        commits = [commit("t1", 1, "a", "b"), commit("t2", 2, "a", "b")]
        findings = final_state_violations(commits, {"a": 2, "b": 1})
        assert len(findings) == 1
        assert "'b'" in findings[0]
        assert "dropped" in findings[0]

    def test_phantom_version_is_reported(self):
        commits = [commit("t1", 1, "a")]
        findings = final_state_violations(commits, {"a": 7})
        assert len(findings) == 1
        assert "phantom" in findings[0]

    def test_missing_key_is_reported(self):
        commits = [commit("t1", 1, "a")]
        findings = final_state_violations(commits, {})
        assert len(findings) == 1
        assert "no committed state" in findings[0]

    def test_unlogged_keys_are_ignored(self):
        # Keys no logged transaction wrote carry no expectation.
        commits = [commit("t1", 1, "a")]
        assert final_state_violations(
            commits, {"a": 1, "zz": 42}) == []
