"""The znode sequential spec, and keeper histories checked against it.

First a lockstep audit: the live ``_KeeperTree`` and the
:class:`~repro.linearizability.znode.ZnodeModel` replay the same op
sequence — including every error path — and must agree bit-for-bit
(errors are compared as ``("err", <class>)`` sentinels, exactly what
the recorded history carries).  Then the real service records a
concurrent history through the full DSO stack and the Wing & Gong
checker must find a legal linearization.
"""

from dataclasses import replace

from repro import (
    CrucialEnvironment,
    KeeperService,
    LinearizabilityChecker,
    NodeExistsError,
    NoNodeError,
    ZnodeModel,
)
from repro.coordination.keeper import _KeeperTree
from repro.linearizability import HistoryRecorder
from repro.simulation.thread import sleep, spawn

#: One op per line: (method, args).  Exercises every result shape and
#: every error precedence branch the model must mirror.
SCRIPT = [
    ("create_session", ("s1", 5.0, 0.0)),
    ("create_session", ("s2", 5.0, 0.0)),
    ("create_session", ("s1", 5.0, 0.0)),      # KeeperError: duplicate
    ("create", ("/a", 1, "s1", False, False)),
    ("create", ("/a", 2, "s2", False, False)),  # NodeExistsError
    ("create", ("/a/q", None, "s1", False, False)),
    ("create", ("/a/q/j-", "x", "s1", False, True)),
    ("create", ("/a/q/j-", "y", "s2", False, True)),
    ("create", ("/a/e", "tmp", "s2", True, False)),
    ("create", ("/a/e/child", None, "s2", False, False)),  # under eph
    ("create", ("/nope/child", None, "s1", False, False)),  # NoNode
    ("get", ("/a", "s1", False)),
    ("get", ("/missing", "s1", False)),          # NoNodeError
    ("set", ("/a", 10, -1, "s1")),
    ("set", ("/a", 20, 0, "s2")),                # BadVersionError
    ("set", ("/a", 20, 1, "s2")),
    ("delete", ("/a", -1, "s1")),                # NotEmptyError
    ("delete", ("/a/q/j-" + "0" * 10, 1, "s1")),  # BadVersionError
    ("delete", ("/a/q/j-" + "0" * 10, 0, "s1")),
    ("exists", ("/a/e", "s2", False)),
    ("exists", ("/gone", "s2", False)),
    ("children", ("/a", "s1", False)),
    ("children", ("/missing", "s1", False)),     # NoNodeError
    ("touch", ("s2", 3.0, )),
    ("expire_sessions", (7.9, )),                # s1 lapsed, s2 alive
    ("create", ("/b", None, "s1", False, False)),  # SessionExpired
    ("get", ("/missing", "s1", False)),  # session beats node lookup
    ("close_session", ("s2", )),
    ("close_session", ("s2", )),                 # idempotent: ()
    ("exists", ("/a/e", None, False)),           # ephemeral reaped
]


def replay(target):
    results = []
    for method, args in SCRIPT:
        try:
            results.append(getattr(target, method)(*args))
        except Exception as exc:  # noqa: BLE001 - sentinel compare
            results.append(("err", type(exc).__name__))
    return results


def test_model_matches_live_tree_in_lockstep():
    tree_results = replay(_KeeperTree())
    model_results = replay(ZnodeModel())
    for (method, args), live, model in zip(SCRIPT, tree_results,
                                           model_results):
        assert live == model, \
            f"{method}{args}: tree={live!r} model={model!r}"
    # The script really exercised the error paths.
    errors = [r[1] for r in tree_results
              if isinstance(r, tuple) and len(r) == 2
              and r[0] == "err"]
    assert set(errors) == {
        "KeeperError", "NodeExistsError", "NoNodeError",
        "BadVersionError", "NotEmptyError", "SessionExpiredError"}


def test_recorded_concurrent_history_is_linearizable():
    """Concurrent sessions race creates/sets/deletes through the full
    DSO stack; the recorded history (errors included) must admit a
    legal linearization against the znode model."""
    with CrucialEnvironment(seed=3, dso_nodes=3) as env:
        recorder = HistoryRecorder(clock=lambda: env.kernel.now)

        def main():
            keeper = KeeperService(name="lin", rf=2, session_ttl=60.0,
                                   recorder=recorder)
            with keeper.session(name="w0") as s0, \
                    keeper.session(name="w1") as s1, \
                    keeper.session(name="w2") as s2:
                s0.create("/r")

                def worker(session, tid):
                    for i in range(4):
                        try:
                            session.create(f"/r/shared-{i}", data=tid)
                        except NodeExistsError:
                            session.set(f"/r/shared-{i}", tid)
                        session.create("/r/item-", data=tid,
                                       sequential=True)
                        if tid == i:
                            try:
                                session.delete(f"/r/shared-{i}")
                            except NoNodeError:
                                pass
                        sleep(0.01)

                threads = [spawn(worker, session, tid)
                           for tid, session in enumerate((s0, s1, s2))]
                for thread in threads:
                    thread.join()
            keeper.stop()

        env.run(main)

    history = recorder.operations
    assert len(history) > 30
    checker = LinearizabilityChecker(ZnodeModel)
    assert checker.check(history), checker.explain(history)


def test_mutated_history_is_rejected():
    """Sanity on the spec's teeth: swap two zxid results and the
    checker must refuse the history."""
    with CrucialEnvironment(seed=5, dso_nodes=1) as env:
        recorder = HistoryRecorder(clock=lambda: env.kernel.now)

        def main():
            keeper = KeeperService(name="teeth", rf=1, session_ttl=60.0,
                                   recorder=recorder)
            with keeper.session(name="s") as s:
                s.create("/x", data=0)
                s.set("/x", 1)
                # Real time must separate the two writes: abutting
                # intervals would let the checker legally reorder them.
                sleep(0.01)
                s.set("/x", 2)
            keeper.stop()

        env.run(main)

    history = list(recorder.operations)
    sets = [op for op in history if op.method == "set"]
    assert len(sets) == 2
    a, b = sets
    swapped = [replace(op, result=b.result) if op is a
               else replace(op, result=a.result) if op is b
               else op
               for op in history]
    checker = LinearizabilityChecker(ZnodeModel)
    assert not checker.check(swapped)
