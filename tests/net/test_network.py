"""Unit tests for the network substrate."""

import pickle

import pytest

from repro.errors import NetworkError, SerializationError
from repro.net import LatencyModel, Network
from repro.net.network import payload_size
from repro.simulation import Kernel
from repro.simulation.thread import now


@pytest.fixture
def kernel():
    with Kernel(seed=13) as k:
        yield k


@pytest.fixture
def network(kernel):
    net = Network(kernel, LatencyModel(0.010))
    net.register("a")
    net.register("b")
    return net


def test_transfer_charges_latency(kernel, network):
    def main():
        network.transfer("a", "b", {"x": 1})
        return now()

    assert kernel.run_main(main) == pytest.approx(0.010)


def test_transfer_copies_payload(kernel, network):
    original = {"nested": [1, 2, 3]}

    def main():
        return network.transfer("a", "b", original)

    shipped = kernel.run_main(main)
    assert shipped == original
    assert shipped is not original
    assert shipped["nested"] is not original["nested"]


def test_transfer_unserializable_payload_rejected(kernel, network):
    def main():
        network.transfer("a", "b", lambda: None)

    with pytest.raises(SerializationError):
        kernel.run_main(main)


def test_transfer_to_dead_endpoint_fails(kernel, network):
    network.endpoint("b").crash()

    def main():
        network.transfer("a", "b", 1)

    with pytest.raises(NetworkError):
        kernel.run_main(main)


def test_crash_mid_flight_fails_transfer(kernel, network):
    kernel.call_later(0.005, network.endpoint("b").crash)

    def main():
        network.transfer("a", "b", 1)

    with pytest.raises(NetworkError):
        kernel.run_main(main)


def test_payload_size_is_pickle_length():
    value = {"nested": [1, 2, 3], "blob": b"x" * 100}
    assert payload_size(value) == len(pickle.dumps(value))


def test_payload_size_rejects_unserializable():
    """Regression: ``payload_size`` used to return 0 for unpicklable
    values, silently sizing the transfer as free for exactly the
    payloads that could never cross a real wire.  It now raises like
    :func:`ship` does."""
    with pytest.raises(SerializationError):
        payload_size(lambda: None)


def test_partition_blocks_both_directions(kernel, network):
    network.partition({"a"}, {"b"})
    assert not network.reachable("a", "b")
    assert not network.reachable("b", "a")
    network.heal()
    assert network.reachable("a", "b")


def test_link_override(kernel, network):
    network.set_link("a", "b", LatencyModel(1.0))

    def main():
        network.transfer("a", "b", None, nbytes=0)
        return now()

    assert kernel.run_main(main) == pytest.approx(1.0)


def test_bandwidth_term(kernel):
    net = Network(kernel, LatencyModel(0.0, bandwidth=1000.0))
    net.register("a")
    net.register("b")

    def main():
        net.transfer("a", "b", None, nbytes=500)
        return now()

    assert kernel.run_main(main) == pytest.approx(0.5)


def test_duplicate_registration_rejected(kernel, network):
    with pytest.raises(NetworkError):
        network.register("a")


def test_unknown_endpoint_rejected(kernel, network):
    with pytest.raises(NetworkError):
        network.endpoint("zzz")


def test_message_accounting(kernel, network):
    def main():
        network.transfer("a", "b", b"xxxx")
        network.transfer("b", "a", b"yyyy")

    kernel.run_main(main)
    assert network.messages_sent == 2
    assert network.bytes_sent > 0


def test_latency_model_mean_and_scaling():
    model = LatencyModel(0.1, sigma=0.0, bandwidth=100.0)
    assert model.mean() == pytest.approx(0.1)
    assert model.mean(nbytes=10) == pytest.approx(0.2)
    assert model.scaled(2.0).base == pytest.approx(0.2)


def test_latency_jitter_is_seeded(kernel):
    model = LatencyModel(0.1, sigma=0.5)
    rng_a = Kernel(seed=1).rng.stream("x")
    rng_b = Kernel(seed=1).rng.stream("x")
    samples_a = [model.sample(rng_a) for _ in range(10)]
    samples_b = [model.sample(rng_b) for _ in range(10)]
    assert samples_a == samples_b
    assert len(set(samples_a)) > 1
