"""Tests for asynchronous (Event) invocations with platform retries."""

import pytest

from repro.faas import FaasPlatform
from repro.net import LatencyModel, Network
from repro.simulation import Kernel
from repro.storage import QueueService


@pytest.fixture
def kernel():
    with Kernel(seed=171) as k:
        yield k


@pytest.fixture
def platform(kernel):
    network = Network(kernel, LatencyModel(0.0005))
    network.ensure_endpoint("driver")
    return FaasPlatform(kernel, network)


def test_async_invocation_returns_immediately(kernel, platform):
    platform.deploy("slow", lambda ctx, x: ctx.compute(5.0) or "done")

    def main():
        t0 = kernel.now
        handle = platform.invoke_async("driver", "slow")
        dispatched_at = kernel.now - t0
        handle.join()
        return dispatched_at, handle.result()

    dispatched_at, result = kernel.run_main(main)
    assert dispatched_at == 0.0
    assert result == "done"


def test_async_retries_automatically(kernel, platform):
    """Event invocations are retried by the platform (Section 2.1)."""
    attempts = []

    def handler(ctx, x):
        attempts.append(1)
        return "ok"

    platform.deploy("flaky", handler)
    platform.inject_failures("flaky", rate=1.0, kind="before")

    def main():
        handle = platform.invoke_async("driver", "flaky",
                                       max_retries=2)
        with pytest.raises(Exception):
            handle.join()

    kernel.run_main(main)
    assert platform.invocation_count("flaky") == 3  # 1 + 2 retries


def test_async_dead_letter_queue(kernel, platform):
    platform.deploy("doomed", lambda ctx, x: x)
    platform.inject_failures("doomed", rate=1.0, kind="before")
    sqs = QueueService(kernel)
    sqs.create_queue("dlq")

    def main():
        handle = platform.invoke_async(
            "driver", "doomed", payload={"job": 9},
            dead_letter_queue=(sqs, "dlq"), max_retries=1)
        handle.join()
        batch = sqs.receive("dlq", wait=10.0)
        return batch[0].body

    body = kernel.run_main(main)
    assert body["function"] == "doomed"
    assert body["payload"] == {"job": 9}
    assert "failed" in body["error"]
    assert body["attempts"] == 2  # 1 initial + max_retries=1


def test_async_success_skips_dlq(kernel, platform):
    platform.deploy("fine", lambda ctx, x: x * 2)
    sqs = QueueService(kernel)
    sqs.create_queue("dlq2")

    def main():
        handle = platform.invoke_async("driver", "fine", payload=21,
                                       dead_letter_queue=(sqs, "dlq2"))
        handle.join()
        return handle.result(), sqs.approximate_depth("dlq2")

    result, depth = kernel.run_main(main)
    assert result == 42
    assert depth == 0


def test_async_unknown_function_fails_fast(kernel, platform):
    from repro.errors import ServiceUnavailableError

    def main():
        platform.invoke_async("driver", "ghost")

    with pytest.raises(ServiceUnavailableError):
        kernel.run_main(main)
