"""Unit tests for the FaaS platform."""

import pytest

from repro.config import DEFAULT_CONFIG
from repro.errors import (
    FunctionTimeoutError,
    InvocationError,
    ServiceUnavailableError,
    ThrottlingError,
)
from repro.faas import FaasPlatform
from repro.net import LatencyModel, Network
from repro.simulation import Kernel
from repro.simulation.thread import now, spawn


@pytest.fixture
def kernel():
    with Kernel(seed=31) as k:
        yield k


@pytest.fixture
def platform(kernel):
    network = Network(kernel, LatencyModel(0.0005))
    network.ensure_endpoint("driver")
    return FaasPlatform(kernel, network)


def test_deploy_and_invoke(kernel, platform):
    platform.deploy("double", lambda ctx, x: x * 2)

    def main():
        return platform.invoke("driver", "double", 21)

    assert kernel.run_main(main) == 42


def test_invoke_unknown_function(kernel, platform):
    def main():
        platform.invoke("driver", "ghost")

    with pytest.raises(ServiceUnavailableError):
        kernel.run_main(main)


def test_duplicate_deploy_rejected(kernel, platform):
    platform.deploy("f", lambda ctx, x: x)
    with pytest.raises(ValueError):
        platform.deploy("f", lambda ctx, x: x)


def test_memory_limit_enforced(kernel, platform):
    limit = DEFAULT_CONFIG.faas_limits.max_memory_mb
    with pytest.raises(ValueError):
        platform.deploy("big", lambda ctx, x: x, memory_mb=limit + 1)


def test_cold_start_then_warm_start(kernel, platform):
    platform.deploy("f", lambda ctx, x: x)

    def main():
        t0 = now()
        platform.invoke("driver", "f")
        cold_time = now() - t0
        t1 = now()
        platform.invoke("driver", "f")
        warm_time = now() - t1
        return cold_time, warm_time

    cold_time, warm_time = kernel.run_main(main)
    assert cold_time > 1.0  # 1-2s cold start
    assert warm_time < 0.1
    records = platform.records
    assert records[0].cold_start is True
    assert records[1].cold_start is False
    assert records[0].container == records[1].container  # reuse


def test_pre_warm_removes_cold_starts(kernel, platform):
    platform.deploy("f", lambda ctx, x: x)
    platform.pre_warm("f", 4)

    def worker():
        platform.invoke("driver", "f")

    def main():
        threads = [spawn(worker) for _ in range(4)]
        for t in threads:
            t.join()

    kernel.run_main(main)
    assert all(not r.cold_start for r in platform.records)


def test_concurrent_invocations_use_distinct_containers(kernel, platform):
    def handler(ctx, payload):
        ctx.compute(1.0)

    platform.deploy("f", handler)
    platform.pre_warm("f", 3)

    def main():
        threads = [spawn(lambda: platform.invoke("driver", "f"))
                   for _ in range(3)]
        for t in threads:
            t.join()

    kernel.run_main(main)
    containers = {r.container for r in platform.records}
    assert len(containers) == 3


def test_cpu_share_scales_with_memory(kernel, platform):
    def handler(ctx, payload):
        start = now()
        ctx.compute(1.0)
        return now() - start

    platform.deploy("full", handler, memory_mb=1792)
    platform.deploy("half", handler, memory_mb=896)

    def main():
        return (platform.invoke("driver", "full"),
                platform.invoke("driver", "half"))

    full_time, half_time = kernel.run_main(main)
    assert full_time == pytest.approx(1.0)
    assert half_time == pytest.approx(2.0)


def test_handler_exception_wrapped(kernel, platform):
    def handler(ctx, payload):
        raise RuntimeError("user bug")

    platform.deploy("bad", handler)

    def main():
        platform.invoke("driver", "bad")

    with pytest.raises(InvocationError) as excinfo:
        kernel.run_main(main)
    assert isinstance(excinfo.value.cause, RuntimeError)


def test_timeout_enforced(kernel, platform):
    def handler(ctx, payload):
        ctx.compute(10.0)

    platform.deploy("slow", handler, timeout=1.0)

    def main():
        platform.invoke("driver", "slow")

    with pytest.raises(FunctionTimeoutError):
        kernel.run_main(main)


def test_injected_failures_before_execution(kernel, platform):
    runs = []
    platform.deploy("flaky", lambda ctx, x: runs.append(x))
    platform.inject_failures("flaky", rate=1.0, kind="before")

    def main():
        platform.invoke("driver", "flaky", 1)

    with pytest.raises(InvocationError):
        kernel.run_main(main)
    assert runs == []  # handler never ran


def test_injected_failures_after_execution(kernel, platform):
    runs = []
    platform.deploy("flaky", lambda ctx, x: runs.append(x))
    platform.inject_failures("flaky", rate=1.0, kind="after")

    def main():
        platform.invoke("driver", "flaky", 1)

    with pytest.raises(InvocationError):
        kernel.run_main(main)
    assert runs == [1]  # side effects happened before the failure


def test_invalid_failure_kind(kernel, platform):
    platform.deploy("f", lambda ctx, x: x)
    with pytest.raises(ValueError):
        platform.inject_failures("f", 0.5, kind="sideways")


def test_throttling_at_concurrency_limit(kernel):
    from dataclasses import replace

    from repro.config import Config, FaasLimits

    config = Config(faas_limits=FaasLimits(max_concurrency=2))
    network = Network(kernel, LatencyModel(0.0005))
    network.ensure_endpoint("driver")
    platform = FaasPlatform(kernel, network, config=config)

    def handler(ctx, payload):
        ctx.compute(5.0)

    platform.deploy("f", handler)
    platform.pre_warm("f", 3)
    errors = []

    def worker():
        try:
            platform.invoke("driver", "f")
        except ThrottlingError as exc:
            errors.append(exc)

    def main():
        threads = [spawn(worker) for _ in range(3)]
        for t in threads:
            t.join()

    kernel.run_main(main)
    assert len(errors) == 1


def test_billing_records(kernel, platform):
    def handler(ctx, payload):
        ctx.compute(0.25)

    platform.deploy("f", handler, memory_mb=2048)

    def main():
        platform.invoke("driver", "f")

    kernel.run_main(main)
    assert platform.invocation_count("f") == 1
    # 0.25s rounds to 0.3 billed seconds at 2 GB.
    assert platform.billed_gb_seconds("f") == pytest.approx(0.3 * 2.0)


def test_payload_and_result_are_copied(kernel, platform):
    def handler(ctx, payload):
        payload["mutated"] = True
        return payload

    platform.deploy("f", handler)

    def main():
        arg = {"mutated": False}
        result = platform.invoke("driver", "f", arg)
        return arg, result

    arg, result = kernel.run_main(main)
    assert arg == {"mutated": False}
    assert result["mutated"] is True
