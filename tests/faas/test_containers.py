"""Container lifecycle tests: keep-alive, reuse, identity."""

import pytest

from repro.config import Config, FaasTimings
from repro.faas import FaasPlatform
from repro.net import LatencyModel, Network
from repro.simulation import Kernel
from repro.simulation.thread import sleep


@pytest.fixture
def kernel():
    with Kernel(seed=151) as k:
        yield k


def make_platform(kernel, keep_alive=60.0):
    from dataclasses import replace

    config = Config(faas_timings=replace(FaasTimings(),
                                         keep_alive=keep_alive))
    network = Network(kernel, LatencyModel(0.0005))
    network.ensure_endpoint("driver")
    platform = FaasPlatform(kernel, network, config=config)
    platform.deploy("f", lambda ctx, x: ctx.endpoint)
    return platform


def test_idle_container_expires_after_keep_alive(kernel):
    platform = make_platform(kernel, keep_alive=10.0)

    def main():
        first = platform.invoke("driver", "f")
        sleep(11.0)
        second = platform.invoke("driver", "f")
        return first, second

    first, second = kernel.run_main(main)
    assert first != second  # cold again
    assert platform.records[0].cold_start
    assert platform.records[1].cold_start


def test_container_reused_within_keep_alive(kernel):
    platform = make_platform(kernel, keep_alive=60.0)

    def main():
        first = platform.invoke("driver", "f")
        sleep(30.0)
        second = platform.invoke("driver", "f")
        return first, second

    first, second = kernel.run_main(main)
    assert first == second
    assert not platform.records[1].cold_start


def test_context_endpoint_is_network_addressable(kernel):
    platform = make_platform(kernel)

    def main():
        return platform.invoke("driver", "f")

    endpoint = kernel.run_main(main)
    assert platform.network.endpoint(endpoint).alive


def test_billed_duration_rounds_up_to_100ms(kernel):
    from repro.faas.platform import InvocationRecord

    record = InvocationRecord(function="f", container="c", start=0.0,
                              end=0.234, memory_mb=1024,
                              cold_start=False, error=None)
    assert record.billed_duration == pytest.approx(0.3)
    zero = InvocationRecord(function="f", container="c", start=0.0,
                            end=0.0, memory_mb=1024, cold_start=False,
                            error=None)
    assert zero.billed_duration == pytest.approx(0.1)


def test_records_capture_errors(kernel):
    platform = make_platform(kernel)
    platform.deploy("bad", lambda ctx, x: 1 / 0)

    def main():
        from repro.errors import InvocationError

        with pytest.raises(InvocationError):
            platform.invoke("driver", "bad")

    kernel.run_main(main)
    assert platform.records[-1].error == "InvocationError"


def test_timeout_validation(kernel):
    platform = make_platform(kernel)
    with pytest.raises(ValueError):
        platform.deploy("slowpoke", lambda ctx, x: x, timeout=16 * 60.0)
    with pytest.raises(ValueError):
        platform.deploy("zero", lambda ctx, x: x, timeout=0)
