"""Both variants of every ported application run and agree.

Table 4's claim is only meaningful if the paired programs are real:
these tests execute the local and the Crucial variant of each port and
check they compute the same thing.
"""

import math

import pytest

from repro import CrucialEnvironment
from repro.ports import (
    common,
    kmeans_crucial,
    kmeans_local,
    logreg_crucial,
    logreg_local,
    montecarlo_crucial,
    montecarlo_local,
    santa_crucial,
    santa_local,
)


@pytest.fixture
def env():
    common.reset_registry()
    with CrucialEnvironment(seed=73, dso_nodes=1) as environment:
        yield environment
    common.reset_registry()


def test_montecarlo_variants_agree(env):
    local = env.run(lambda: montecarlo_local.estimate_pi(
        6, counter_key="mc-local"))
    crucial = env.run(lambda: montecarlo_crucial.estimate_pi(
        6, counter_key="mc-crucial"))
    assert local == pytest.approx(math.pi, abs=0.01)
    assert crucial == pytest.approx(math.pi, abs=0.01)


def test_kmeans_variants_agree(env):
    local = env.run(lambda: kmeans_local.run_kmeans(
        4, run_id="kml"))
    crucial = env.run(lambda: kmeans_crucial.run_kmeans(
        4, run_id="kmc"))
    assert len(local) == 3
    # Same seeds, same math, same aggregation order => same deltas.
    assert local == pytest.approx(crucial)


def test_logreg_variants_agree(env):
    local = env.run(lambda: logreg_local.run_logreg(4, run_id="lrl"))
    crucial = env.run(lambda: logreg_crucial.run_logreg(4, run_id="lrc"))
    assert len(local) == 5
    assert local[-1] < local[0]
    assert local == pytest.approx(crucial)


def test_santa_variants_complete(env):
    local = env.run(lambda: santa_local.solve(deliveries=5,
                                              run_id="sl"))
    crucial = env.run(lambda: santa_crucial.solve(deliveries=5,
                                                  run_id="sc"))
    assert local["delivered"] == 5
    assert crucial["delivered"] == 5


def test_local_registry_shares_by_key(env):
    def main():
        a = common.LocalAtomicLong("same")
        b = common.LocalAtomicLong("same")
        a.add_and_get(3)
        return b.get()

    assert env.run(main) == 3


def test_local_registry_reset(env):
    def main():
        common.LocalAtomicLong("x").add_and_get(1)
        common.reset_registry()
        return common.LocalAtomicLong("x").get()

    assert env.run(main) == 0


def test_local_shared_ignores_persistence_flags(env):
    from repro.ports.kmeans_objects import GlobalDelta

    def main():
        obj = common.local_shared(GlobalDelta, "d", persistent=True,
                                  rf=2)
        obj.update(1.0)
        return obj.last()

    assert env.run(main) == 1.0


def test_diff_counts_are_small():
    from repro.harness.table4_loc import PAIRS, count_changes

    for name, (local_module, crucial_module) in PAIRS.items():
        total, changed = count_changes(local_module, crucial_module)
        assert changed <= 8, name
        assert total > 30, name
