"""Tests for the CLI entry point and the error hierarchy."""

import pytest

from repro import __main__ as cli
from repro import errors


# -- CLI --------------------------------------------------------------------------


def test_cli_list(capsys):
    assert cli.main(["list"]) == 0
    out = capsys.readouterr().out
    for name in ("table2", "fig5", "fig8", "ablation"):
        assert name in out


def test_cli_runs_an_experiment(capsys):
    assert cli.main(["table4"]) == 0
    out = capsys.readouterr().out
    assert "Table 4" in out
    assert "completed in" in out


def test_cli_rejects_unknown_experiment():
    with pytest.raises(SystemExit):
        cli.main(["fig99"])


def test_cli_experiments_cover_every_harness():
    import repro.harness as harness

    covered = {module.__name__.rsplit(".", 1)[-1]
               for module, _scales in cli.EXPERIMENTS.values()}
    assert covered == set(harness.__all__)


# -- error hierarchy ----------------------------------------------------------------


def test_cloud_errors_are_repro_errors():
    for exc_type in (errors.NetworkError, errors.NodeCrashedError,
                     errors.NoSuchKeyError, errors.ObjectLostError,
                     errors.FaasError, errors.InvocationError,
                     errors.ThrottlingError,
                     errors.RetriesExhaustedError):
        assert issubclass(exc_type, errors.CloudError)
        assert issubclass(exc_type, errors.ReproError)


def test_simulation_errors_separate_from_cloud():
    assert issubclass(errors.DeadlockError, errors.SimulationError)
    assert not issubclass(errors.DeadlockError, errors.CloudError)


def test_shutdown_is_base_exception():
    # Must escape `except Exception` in application code.
    assert issubclass(errors.SimShutdown, BaseException)
    assert not issubclass(errors.SimShutdown, Exception)


def test_invocation_error_keeps_cause():
    cause = ValueError("inner")
    error = errors.InvocationError("outer", cause=cause)
    assert error.cause is cause


def test_deadlock_error_lists_threads():
    error = errors.DeadlockError(["a", "b"])
    assert "a" in str(error) and "b" in str(error)
    assert error.blocked_names == ["a", "b"]
