"""Cross-cutting edge cases: thread lifecycle, partitions, costs."""

import pytest

from repro import CrucialEnvironment, dso_costs, shared
from repro.dso import DsoLayer, DsoReference
from repro.dso.layer import KvSlot
from repro.errors import NetworkError, SimulationError
from repro.net import LatencyModel, Network
from repro.simulation import Kernel
from repro.simulation.thread import sleep, spawn


# -- SimThread lifecycle ----------------------------------------------------------


def test_result_before_completion_rejected():
    with Kernel(seed=231) as kernel:
        def main():
            thread = spawn(lambda: sleep(10.0))
            with pytest.raises(SimulationError):
                thread.result()
            thread.join()

        kernel.run_main(main)


def test_double_start_rejected():
    with Kernel(seed=232) as kernel:
        def main():
            thread = spawn(lambda: None)
            with pytest.raises(SimulationError):
                thread.start()
            thread.join()

        kernel.run_main(main)


def test_join_twice_is_fine():
    with Kernel(seed=233) as kernel:
        def main():
            thread = spawn(lambda: 42)
            thread.join()
            thread.join()
            return thread.result()

        assert kernel.run_main(main) == 42


def test_failed_thread_exception_rethrown_per_join():
    with Kernel(seed=234) as kernel:
        def bad():
            raise KeyError("x")

        def main():
            thread = spawn(bad)
            for _ in range(2):
                with pytest.raises(KeyError):
                    thread.join()

        kernel.run_main(main)


def test_unobserved_failures_tracked():
    with Kernel(seed=235) as kernel:
        def bad():
            raise RuntimeError("silent")

        def main():
            spawn(bad)
            sleep(1.0)

        kernel.run_main(main)
        assert len(kernel.failed_threads) == 1


# -- network partitions against the DSO ---------------------------------------------


def test_partitioned_client_cannot_reach_dso():
    with Kernel(seed=236) as kernel:
        network = Network(kernel, LatencyModel(0.0001))
        network.ensure_endpoint("client")
        layer = DsoLayer(kernel, network)
        node = layer.add_node()
        ref = DsoReference("KvSlot", "p")

        def main():
            layer.put("client", "p", 1)
            network.partition({"client"}, {node.name})
            with pytest.raises(NetworkError):
                layer.invoke("client", ref, "get",
                             ctor=(KvSlot, (), {}))
            network.heal()
            return layer.get("client", "p")

        assert kernel.run_main(main) == 1


def test_replica_partition_stalls_smr_until_healed():
    """SMR refuses to acknowledge while a replica is unreachable (it
    could not guarantee durability); ops retry and complete once the
    partition heals."""
    with Kernel(seed=237) as kernel:
        network = Network(kernel, LatencyModel(0.0001))
        network.ensure_endpoint("client")
        layer = DsoLayer(kernel, network)
        for _ in range(2):
            layer.add_node()
        ref = DsoReference("KvSlot", "r", persistent=True, rf=2)

        def main():
            layer.invoke("client", ref, "set", (9,),
                         ctor=(KvSlot, (), {}))
            primary, backup = layer.placement_of(ref)
            network.partition({primary}, {backup})
            kernel.call_later(1.5, network.heal)
            t0 = kernel.now
            value = layer.invoke("client", ref, "get",
                                 ctor=(KvSlot, (), {}))
            return value, kernel.now - t0

        value, elapsed = kernel.run_main(main)
    assert value == 9
    assert elapsed >= 1.5  # stalled for the partition's duration


# -- dso_costs validation ---------------------------------------------------------------


def test_dso_costs_rejects_unknown_method():
    with pytest.raises(AttributeError):
        @dso_costs(frobnicate=1.0)
        class Nope:
            def get(self):
                return 1


def test_dso_costs_constant_and_callable():
    @dso_costs(slow=0.25, sized=lambda items: len(items) * 0.1)
    class Job:
        def slow(self):
            return "done"

        def sized(self, items):
            return len(items)

    with CrucialEnvironment(seed=238, dso_nodes=1) as env:
        def main():
            job = shared(Job, "job")
            t0 = env.now
            job.slow()
            constant_elapsed = env.now - t0
            t1 = env.now
            job.sized([1, 2, 3])
            sized_elapsed = env.now - t1
            return constant_elapsed, sized_elapsed

        constant_elapsed, sized_elapsed = env.run(main)
    assert constant_elapsed >= 0.25
    assert sized_elapsed >= 0.3


def test_dso_costs_accumulate_across_decorations():
    @dso_costs(a=1.0)
    class Multi:
        def a(self):
            return 1

        def b(self):
            return 2

    decorated = dso_costs(b=2.0)(Multi)
    assert set(decorated.__dso_costs__) == {"a", "b"}


# -- kv slot / raw path --------------------------------------------------------------


def test_kv_slot_default_value():
    slot = KvSlot()
    assert slot.get() is None
    slot.set([1, 2])
    assert slot.get() == [1, 2]


def test_raw_put_get_roundtrip_values():
    with Kernel(seed=239) as kernel:
        network = Network(kernel, LatencyModel(0.0001))
        network.ensure_endpoint("client")
        layer = DsoLayer(kernel, network)
        layer.add_node()

        def main():
            layer.put("client", "complex", {"a": [1, 2], "b": None})
            return layer.get("client", "complex")

        assert kernel.run_main(main) == {"a": [1, 2], "b": None}
