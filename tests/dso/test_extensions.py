"""Tests for the DSO extensions: passivation and eventual reads."""

import pytest

from repro.config import DEFAULT_CONFIG
from repro.dso import DsoLayer, DsoReference
from repro.errors import ObjectLostError, ServiceUnavailableError
from repro.net import LatencyModel, Network
from repro.simulation import Kernel
from repro.simulation.thread import now, sleep
from repro.storage import ObjectStore


class Counter:
    def __init__(self, value=0):
        self.value = value

    def add(self, delta):
        self.value += delta
        return self.value

    def get(self):
        return self.value


CTOR = (Counter, (), {})


@pytest.fixture
def kernel():
    with Kernel(seed=111) as k:
        yield k


@pytest.fixture
def setup(kernel):
    network = Network(kernel, LatencyModel(0.0001))
    network.ensure_endpoint("client")
    layer = DsoLayer(kernel, network)
    for _ in range(3):
        layer.add_node()
    store = ObjectStore(kernel)
    return layer, store


def ref(key, rf=1):
    return DsoReference("Counter", key, persistent=rf > 1, rf=rf)


# -- passivation ---------------------------------------------------------------


def test_passivate_and_restore_after_total_loss(kernel, setup):
    """An ephemeral object checkpointed to S3 survives losing every
    in-memory copy — the training/inference handoff pattern."""
    layer, store = setup
    r = ref("model")

    def main():
        layer.invoke("client", r, "add", (41,), ctor=CTOR)
        key = layer.passivate("client", r, store)
        layer.crash_node(layer.placement_of(r)[0])
        sleep(DEFAULT_CONFIG.dso.failure_detection + 1.0)
        with pytest.raises(ObjectLostError):
            layer.invoke("client", r, "get", ctor=CTOR)
        layer.restore("client", r, store, key)
        return layer.invoke("client", r, "add", (1,), ctor=CTOR)

    assert kernel.run_main(main) == 42


def test_restore_rejects_live_object(kernel, setup):
    layer, store = setup
    r = ref("live")

    def main():
        layer.invoke("client", r, "add", (1,), ctor=CTOR)
        layer.passivate("client", r, store)
        with pytest.raises(ServiceUnavailableError):
            layer.restore("client", r, store)

    kernel.run_main(main)


def test_passivation_is_a_snapshot_not_a_link(kernel, setup):
    layer, store = setup
    r = ref("snap")

    def main():
        layer.invoke("client", r, "add", (10,), ctor=CTOR)
        layer.passivate("client", r, store)
        layer.invoke("client", r, "add", (5,), ctor=CTOR)  # after snapshot
        layer.delete("client", r)
        layer.restore("client", r, store)
        return layer.invoke("client", r, "get", ctor=CTOR)

    assert kernel.run_main(main) == 10  # post-snapshot write not included


def test_restored_object_is_replicated_per_ref(kernel, setup):
    layer, store = setup
    r = ref("dup", rf=2)

    def main():
        layer.invoke("client", r, "add", (3,), ctor=CTOR)
        layer.passivate("client", r, store)
        layer.delete("client", r)
        layer.restore("client", r, store)
        return layer.placement_of(r)

    replicas = kernel.run_main(main)
    assert len(replicas) == 2


# -- eventual reads ------------------------------------------------------------------


def test_read_any_returns_current_value_when_quiescent(kernel, setup):
    layer, _ = setup
    r = ref("quiet", rf=2)

    def main():
        layer.invoke("client", r, "add", (7,), ctor=CTOR)
        return [layer.read_any("client", r, "get") for _ in range(6)]

    assert kernel.run_main(main) == [7] * 6


def test_read_any_is_faster_than_linearizable_read(kernel, setup):
    """No lock, no SMR round: an any-replica read of a replicated
    object is roughly a plain round trip."""
    layer, _ = setup
    r = ref("fast", rf=2)
    ops = 40

    def main():
        layer.invoke("client", r, "add", (1,), ctor=CTOR)
        t0 = now()
        for _ in range(ops):
            layer.invoke("client", r, "get", ctor=CTOR)
        linearizable = (now() - t0) / ops
        t1 = now()
        for _ in range(ops):
            layer.read_any("client", r, "get")
        eventual = (now() - t1) / ops
        return linearizable, eventual

    linearizable, eventual = kernel.run_main(main)
    assert eventual < 0.75 * linearizable


def test_read_any_spreads_load_across_replicas(kernel, setup):
    layer, _ = setup
    r = ref("spread", rf=2)

    def main():
        layer.invoke("client", r, "add", (1,), ctor=CTOR)
        for _ in range(50):
            layer.read_any("client", r, "get")

    kernel.run_main(main)
    replicas = layer.placement_of(r)
    served = [layer.nodes[name].containers[r.ident].applied_ops
              for name in replicas]
    assert all(count > 5 for count in served)


def test_read_any_requires_existing_object(kernel, setup):
    from repro.errors import NoSuchObjectError

    layer, _ = setup

    def main():
        layer.read_any("client", ref("ghost"), "get")

    with pytest.raises(NoSuchObjectError):
        kernel.run_main(main)
