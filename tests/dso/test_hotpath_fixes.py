"""Regression tests for the hot-path bug sweep (ISSUE 6).

Each test pins behaviour that was observably wrong before its fix:

* ``_revoke_leases`` waited out unreachable lease holders *serially*,
  so a reachable holder queued behind a partitioned one kept serving
  stale cached reads for the whole TTL wait.
* ``invoke``'s retry backoff could sleep past ``_retry_deadline_pad``
  and fire one extra attempt before surfacing the failure.

(The third fix of the sweep — ``run_until(limit=...)`` dropping the
event it peeked — is covered in ``tests/simulation/test_kernel.py``.)
"""

import dataclasses

import pytest

from repro.config import DEFAULT_CONFIG
from repro.dso import DsoLayer
from repro.errors import NetworkError
from repro.net import LatencyModel, Network
from repro.simulation import Kernel
from repro.simulation.thread import sleep, spawn


def config_with(**dso_overrides):
    return dataclasses.replace(
        DEFAULT_CONFIG,
        dso=dataclasses.replace(DEFAULT_CONFIG.dso, **dso_overrides))


@pytest.fixture
def kernel():
    with Kernel(seed=101) as k:
        yield k


@pytest.fixture
def network(kernel):
    net = Network(kernel, LatencyModel(0.0001))
    net.ensure_endpoint("writer")
    return net


def make_layer(kernel, network, config=DEFAULT_CONFIG, read_cache=False):
    layer = DsoLayer(kernel, network, config, read_cache=read_cache)
    layer.add_node()
    return layer


# ---------------------------------------------------------------------------
# Lease revocation: unreachable holders must not delay reachable ones
# ---------------------------------------------------------------------------


def test_reachable_holder_invalidated_before_ttl_wait(kernel, network):
    """A reachable lease holder is invalidated *before* the writer
    starts waiting out a partitioned holder's TTL.

    Pre-fix, holders were processed serially in grant order: the
    writer slept out "blocked"'s lease first and only then sent
    "reader"'s invalidation, so "reader" kept serving the stale cached
    value for the whole stall.
    """
    config = config_with(lease_ttl=2.0)
    layer = make_layer(kernel, network, config=config, read_cache=True)
    (node_name,) = layer.nodes
    observed = {}

    def reader():
        sleep(0.5)  # mid-stall, well inside both lease windows
        observed["value"] = layer.get("reader", "k")

    def main():
        layer.put("writer", "k", "v0")
        layer.get("blocked", "k")  # first lease -> first in holder order
        layer.get("reader", "k")   # second lease, still reachable
        network.partition({node_name}, {"blocked"})
        thread = spawn(reader)
        start = kernel.now
        layer.put("writer", "k", "v1")
        stall = kernel.now - start
        thread.join()
        return stall

    stall = kernel.run_main(main)
    # The write still waits out the partitioned holder's TTL...
    assert stall >= 1.8
    # ...but the reachable holder was invalidated up front, so its
    # mid-stall read missed the cache and returned the new value.
    assert observed["value"] == "v1"
    assert layer.stats.lease_revocations == 2


def test_partitioned_holders_are_waited_out_together(kernel, network):
    """Two unreachable holders stall the writer to the *max* remaining
    TTL, not the sum: their leases expire concurrently."""
    config = config_with(lease_ttl=2.0)
    layer = make_layer(kernel, network, config=config, read_cache=True)
    (node_name,) = layer.nodes

    def main():
        layer.put("writer", "k", "v0")
        layer.get("h1", "k")   # lease expires ~2.0
        sleep(1.0)
        layer.get("h2", "k")   # lease expires ~3.0
        network.partition({node_name}, {"h1", "h2"})
        start = kernel.now
        layer.put("writer", "k", "v1")
        return kernel.now - start

    stall = kernel.run_main(main)
    # max remaining TTL is ~2.0 (h2's lease); the sum would be ~3.0.
    assert stall == pytest.approx(2.0, abs=0.1)
    assert layer.stats.lease_revocations == 2


# ---------------------------------------------------------------------------
# Retry backoff: clamped to the deadline, no extra attempt
# ---------------------------------------------------------------------------


def test_retry_backoff_clamped_to_deadline(kernel, network):
    """A persistent transient failure surfaces at *exactly*
    ``_retry_deadline_pad()`` after the first attempt.

    Pre-fix, the last exponential backoff slept its full duration past
    the deadline, firing one extra attempt and surfacing the error
    seconds late (~15.75s instead of 12.25s with the default policy).
    """
    layer = make_layer(kernel, network)
    (node_name,) = layer.nodes
    attempt_times = []
    original = layer._invoke_once

    def counting(*args, **kwargs):
        attempt_times.append(kernel.now)
        return original(*args, **kwargs)

    layer._invoke_once = counting

    def main():
        layer.put("writer", "k", "v0")
        network.partition({node_name}, {"writer"})
        start = kernel.now
        with pytest.raises(NetworkError):
            layer.put("writer", "k", "v1")
        return start, kernel.now

    start, end = kernel.run_main(main)
    pad = layer._retry_deadline_pad()
    # The failure surfaces exactly at the deadline: the final backoff
    # is clamped to the remaining window instead of overshooting it.
    assert end - start == pytest.approx(pad, abs=1e-9)
    # Every attempt started strictly inside the retry window.
    failing_attempts = attempt_times[1:]  # [0] is the successful create
    assert all(t < start + pad for t in failing_attempts)
    # Default policy: backoffs 0.25*2^k capped at 4s (each stretched up
    # to +10% by seeded jitter) fit exactly 5 full sleeps plus the
    # clamped one inside the 12.25s window -> 6 attempts with this
    # seed.  Pre-fix the overshooting sleeps bought two more.
    assert len(failing_attempts) == 6
