"""Pipelined + batched DSO shipping: unit tests at the layer level.

Covers the client-side machinery of :mod:`repro.dso.pipeline` — flush
triggers (size, window, explicit, blocking on a future), round-trip
coalescing, sync/async program order, per-op failure isolation, and
the cacheable-read bypass.
"""

import dataclasses

import pytest

from repro.config import DEFAULT_CONFIG
from repro.dso import DsoLayer, DsoReference
from repro.net import LatencyModel, Network
from repro.simulation import Kernel
from repro.simulation.thread import sleep


def config_with(**dso_overrides):
    return dataclasses.replace(
        DEFAULT_CONFIG,
        dso=dataclasses.replace(DEFAULT_CONFIG.dso, **dso_overrides))


@pytest.fixture
def kernel():
    with Kernel(seed=11) as k:
        yield k


@pytest.fixture
def network(kernel):
    net = Network(kernel, LatencyModel(0.0001))
    net.ensure_endpoint("client")
    return net


def make_layer(kernel, network, nodes=1, config=DEFAULT_CONFIG,
               read_cache=False):
    layer = DsoLayer(kernel, network, config, read_cache=read_cache)
    for _ in range(nodes):
        layer.add_node()
    return layer


def test_flush_resolves_submitted_futures(kernel, network):
    layer = make_layer(kernel, network)

    def main():
        futures = [layer.put_async("client", f"k{i}", i) for i in range(4)]
        assert not any(f.done for f in futures)
        layer.flush("client")
        assert all(f.done for f in futures)
        return [layer.get("client", f"k{i}") for i in range(4)]

    assert kernel.run_main(main) == [0, 1, 2, 3]


def test_result_triggers_flush(kernel, network):
    """Blocking on a future flushes immediately instead of waiting out
    the batching window."""
    layer = make_layer(kernel, network)
    window = DEFAULT_CONFIG.dso.pipeline_flush_window

    def main():
        start = kernel.now
        future = layer.put_async("client", "k", "v")
        assert future.result() is None
        return kernel.now - start

    elapsed = kernel.run_main(main)
    # One round trip, not window + round trip.
    assert elapsed < window + 3 * DEFAULT_CONFIG.dso.client_server.mean()


def test_window_flush_fires_without_explicit_flush(kernel, network):
    layer = make_layer(kernel, network)
    window = DEFAULT_CONFIG.dso.pipeline_flush_window

    def main():
        futures = [layer.put_async("client", f"k{i}", i) for i in range(2)]
        sleep(window + 10 * DEFAULT_CONFIG.dso.client_server.mean())
        return [f.done for f in futures]

    assert kernel.run_main(main) == [True, True]
    assert layer.stats.batches == 1
    assert layer.stats.pipelined_ops == 2


def test_size_flush_splits_at_max_batch(kernel, network):
    config = config_with(pipeline_max_batch=4)
    layer = make_layer(kernel, network, config=config)

    def main():
        futures = [layer.put_async("client", f"k{i}", i) for i in range(8)]
        layer.flush()  # no-arg form drains every endpoint
        assert all(f.done for f in futures)

    kernel.run_main(main)
    assert layer.stats.batches == 2
    assert layer.stats.pipelined_ops == 8


def test_same_primary_ops_share_round_trips(kernel, network):
    """A batch to one primary pays ~one round trip total, not one per
    op: per-op virtual time amortizes well below the sync latency."""
    layer = make_layer(kernel, network)
    ops = 16

    def main():
        layer.put("client", "warm", 0)
        start = kernel.now
        for i in range(ops):
            layer.put("client", "warm", i)
        sync = (kernel.now - start) / ops

        start = kernel.now
        futures = [layer.put_async("client", "warm", i) for i in range(ops)]
        layer.flush("client")
        assert all(f.done for f in futures)
        pipelined = (kernel.now - start) / ops
        return sync, pipelined

    sync, pipelined = kernel.run_main(main)
    assert sync / pipelined >= 3.0


def test_sync_invoke_drains_queued_async_ops(kernel, network):
    """Program order across the sync/async boundary: a sync op never
    overtakes async ops its endpoint already queued."""
    layer = make_layer(kernel, network)

    def main():
        future = layer.put_async("client", "k", "async-first")
        layer.put("client", "k", "sync-second")
        # The sync put drained the pipeline before shipping itself.
        assert future.done
        return layer.get("client", "k")

    assert kernel.run_main(main) == "sync-second"


def test_app_exception_fails_only_its_own_future(kernel, network):
    layer = make_layer(kernel, network)

    class Box:
        def __init__(self):
            self.value = None

        def set(self, value):
            self.value = value
            return value

    ref = DsoReference("Box", "box", persistent=False, rf=1)
    ctor = (Box, (), {})

    def main():
        good = layer.invoke_async("client", ref, "set", ("ok",), ctor=ctor)
        bad = layer.invoke_async("client", ref, "no_such_method", ctor=ctor)
        tail = layer.invoke_async("client", ref, "set", ("done",), ctor=ctor)
        layer.flush("client")
        assert good.result() == "ok"
        assert isinstance(bad.exception(), AttributeError)
        with pytest.raises(AttributeError):
            bad.result()
        return tail.result()

    assert kernel.run_main(main) == "done"


def test_cacheable_read_bypasses_pipeline(kernel, network):
    """With the read cache on, async reads resolve synchronously (local
    hit or unstamped ship) and never enter the batch queue."""
    layer = make_layer(kernel, network, read_cache=True)

    def main():
        layer.put("client", "k", "v")
        layer.get("client", "k")  # grants the lease
        future = layer.get_async("client", "k")
        assert future.done  # resolved at submit, no flush needed
        return future.result()

    assert kernel.run_main(main) == "v"
    assert layer.stats.batches == 0
    assert layer.stats.cache_hits >= 1


def test_async_preserves_session_order(kernel, network):
    """Batched ops apply in submission order within a session: a
    read-modify-write chain sees every prior write."""
    layer = make_layer(kernel, network, nodes=2)

    class Log:
        def __init__(self):
            self.entries = []

        def append(self, entry):
            self.entries.append(entry)
            return list(self.entries)

    ref = DsoReference("Log", "log", persistent=True, rf=2)
    ctor = (Log, (), {})

    def main():
        futures = [layer.invoke_async("client", ref, "append", (i,),
                                      ctor=ctor) for i in range(10)]
        layer.flush("client")
        return [f.result() for f in futures]

    views = kernel.run_main(main)
    assert views == [list(range(i + 1)) for i in range(10)]
