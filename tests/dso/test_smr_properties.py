"""Property-based tests: SMR replicas stay byte-identical."""

import pickle

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dso import DsoLayer, DsoReference
from repro.net import LatencyModel, Network
from repro.simulation import Kernel
from repro.simulation.thread import spawn


class Ledger:
    """A richer state machine than a counter: ordered log + balances."""

    def __init__(self):
        self.log = []
        self.balances = {}

    def credit(self, account, amount):
        self.balances[account] = self.balances.get(account, 0) + amount
        self.log.append(("credit", account, amount))
        return self.balances[account]

    def transfer(self, src, dst, amount):
        if self.balances.get(src, 0) < amount:
            self.log.append(("bounced", src, dst, amount))
            return False
        self.balances[src] -= amount
        self.balances[dst] = self.balances.get(dst, 0) + amount
        self.log.append(("transfer", src, dst, amount))
        return True

    def snapshot(self):
        return dict(self.balances)


OPS = st.tuples(
    st.sampled_from(["credit", "transfer"]),
    st.sampled_from(["a", "b", "c"]),
    st.sampled_from(["a", "b", "c"]),
    st.integers(1, 50),
)


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(0, 9999),
    plans=st.lists(st.lists(OPS, min_size=1, max_size=4),
                   min_size=1, max_size=4),
)
def test_replicas_apply_identical_sequences(seed, plans):
    """After concurrent method streams, every replica of the object
    holds byte-identical state (the SMR contract)."""
    with Kernel(seed=seed) as kernel:
        network = Network(kernel, LatencyModel(0.0001))
        network.ensure_endpoint("client")
        layer = DsoLayer(kernel, network)
        for _ in range(3):
            layer.add_node()
        ref = DsoReference("Ledger", "bank", persistent=True, rf=2)
        ctor = (Ledger, (), {})

        def worker(plan):
            for op, x, y, amount in plan:
                if op == "credit":
                    layer.invoke("client", ref, "credit", (x, amount),
                                 ctor=ctor)
                else:
                    layer.invoke("client", ref, "transfer",
                                 (x, y, amount), ctor=ctor)

        def main():
            threads = [spawn(worker, plan) for plan in plans]
            for t in threads:
                t.join()

        kernel.run_main(main)
        replicas = layer.placement_of(ref)
        assert len(replicas) == 2
        states = [
            pickle.dumps(layer.nodes[name].containers[ref.ident].instance
                         .__dict__)
            for name in replicas
        ]
        assert states[0] == states[1]
        # Balances are conserved: sum == total credited.
        instance = layer.nodes[replicas[0]].containers[ref.ident].instance
        credited = sum(amount for entry in instance.log
                       if entry[0] == "credit"
                       for amount in [entry[2]])
        assert sum(instance.balances.values()) == credited
