"""Property-based invariants of the lease/cache read path.

Random interleavings of reads, writes, lease expiries and failovers
drive :class:`LeaseTable` + :class:`ObjectCache` through the exact
protocol ``DsoLayer`` implements (grant on read, revoke before a write
acknowledges, placement-version fencing on failover), asserting the
coherence contract the module docstring of :mod:`repro.dso.cache`
argues for:

* **no stale read after revoke** — once a write has revoked the
  outstanding leases, no read anywhere observes the pre-write value;
* **placement-version fencing** — a promoted primary cannot revoke
  leases it never granted, so entries leased under an older placement
  version must never be served, even while their TTL is still valid.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dso.cache import CacheEntry, LeaseTable, ObjectCache

IDENT = ("dso", "counter")
TTL = 5.0

#: (endpoint index, action, time advance) triples.
EVENTS = st.lists(
    st.tuples(st.integers(0, 2),
              st.sampled_from(["read", "write", "failover"]),
              st.floats(0.0, 4.0)),
    min_size=1, max_size=50)


class _Deployment:
    """The cache protocol with the layer's moving parts stubbed out:
    one replicated value, per-endpoint caches, one lease table."""

    def __init__(self, endpoints=3):
        self.now = 0.0
        self.value = 0
        self.version = 0
        self.leases = LeaseTable()
        self.caches = {f"ep{i}": ObjectCache(limit=4)
                       for i in range(endpoints)}

    def read(self, endpoint):
        """Serve from a valid lease, else fetch + grant (the
        ``_cached_read`` / ``_grant_lease`` path)."""
        cache = self.caches[endpoint]
        entry = cache.get(IDENT)
        if (entry is not None and entry.expiry > self.now
                and entry.version == self.version):
            return entry.snapshot
        cache.invalidate(IDENT)
        expiry = self.now + TTL
        cache.put(IDENT, CacheEntry(snapshot=self.value, expiry=expiry,
                                    version=self.version))
        self.leases.grant(endpoint, expiry)
        return self.value

    def write(self):
        """Revoke before acknowledging (the ``_revoke_leases`` path)."""
        for holder, _expiry in self.leases.active(self.now):
            self.caches[holder].invalidate(IDENT)
        self.leases.clear()
        self.value += 1

    def failover(self):
        """Promotion: the new primary starts with an empty lease table
        and a bumped placement version — it cannot send revocations
        for its predecessor's grants."""
        self.version += 1
        self.leases.clear()
        self.value += 1  # the new primary immediately applies a write


@settings(max_examples=50, deadline=None)
@given(events=EVENTS)
def test_no_read_ever_observes_a_stale_value(events):
    world = _Deployment()
    for index, action, advance in events:
        world.now += advance
        endpoint = f"ep{index}"
        if action == "read":
            seen = world.read(endpoint)
            # Coherence: revocation-before-ack plus version fencing
            # means every read observes the latest acknowledged write,
            # cached or not.
            assert seen == world.value, \
                (f"stale read at {endpoint}: saw {seen}, "
                 f"current {world.value} (version {world.version})")
        elif action == "write":
            world.write()
        else:
            world.failover()


@settings(max_examples=50, deadline=None)
@given(events=EVENTS, bump_at=st.integers(0, 10))
def test_version_fencing_blocks_predecessor_leases(events, bump_at):
    """Interleave an unannounced failover anywhere in the stream: no
    entry granted under an older placement version is ever served."""
    world = _Deployment()
    for step, (index, action, advance) in enumerate(events):
        world.now += advance
        if step == bump_at:
            world.failover()
        endpoint = f"ep{index}"
        if action == "write":
            world.write()
            continue
        cached = world.caches[endpoint].get(IDENT)
        seen = world.read(endpoint)
        assert seen == world.value
        if cached is not None and cached.version != world.version:
            # The fence, specifically: the stale-version entry was
            # bypassed even though its TTL may still be running.
            assert seen != cached.snapshot or cached.snapshot == world.value


def test_lease_table_active_filters_expired_holders():
    table = LeaseTable()
    table.grant("a", 2.0)
    table.grant("b", 4.0)
    table.grant("a", 3.0)  # extends, never shortens
    assert dict(table.active(2.5)) == {"a": 3.0, "b": 4.0}
    assert dict(table.active(3.5)) == {"b": 4.0}
    assert table.active(4.0) == []


def test_object_cache_never_exceeds_its_limit():
    cache = ObjectCache(limit=3)
    for i in range(10):
        cache.put(("dso", f"k{i}"), CacheEntry(i, 1.0, 0))
        assert len(cache) <= 3
    # LRU: the three most recently inserted survive.
    assert cache.idents() == [("dso", "k7"), ("dso", "k8"), ("dso", "k9")]