"""Lease-based read caching: hits, coherence, TTL, LRU, lifetimes.

Covers the protocol of :mod:`repro.dso.cache` end to end at the layer
level — cache hits skip the network, writes revoke leases before they
are acknowledged, leases expire by TTL and die with placement-version
bumps — plus the FaaS wiring (cache lifetime == container lifetime).
"""

import dataclasses

import pytest

from repro import AtomicLong, CloudThread, CrucialEnvironment
from repro.config import DEFAULT_CONFIG
from repro.dso import DsoLayer
from repro.dso.cache import LeaseTable, ObjectCache, is_readonly, readonly
from repro.dso.layer import KvSlot
from repro.net import LatencyModel, Network
from repro.simulation import Kernel
from repro.simulation.thread import sleep


def config_with(**dso_overrides):
    return dataclasses.replace(
        DEFAULT_CONFIG,
        dso=dataclasses.replace(DEFAULT_CONFIG.dso, **dso_overrides))


@pytest.fixture
def kernel():
    with Kernel(seed=101) as k:
        yield k


@pytest.fixture
def network(kernel):
    net = Network(kernel, LatencyModel(0.0001))
    net.ensure_endpoint("client")
    return net


def make_layer(kernel, network, nodes, config=DEFAULT_CONFIG,
               read_cache=True):
    layer = DsoLayer(kernel, network, config, read_cache=read_cache)
    for _ in range(nodes):
        layer.add_node()
    return layer


# ---------------------------------------------------------------------------
# Marker and data-structure units
# ---------------------------------------------------------------------------


def test_readonly_marker_classification():
    assert is_readonly(KvSlot, "get")
    assert not is_readonly(KvSlot, "set")
    assert is_readonly(KvSlot, "__dso_touch__")  # creation ping
    assert not is_readonly(KvSlot, "no_such_method")

    class Custom:
        @readonly
        def peek(self):
            return 1

        def poke(self):
            return 2

    assert is_readonly(Custom, "peek")
    assert not is_readonly(Custom, "poke")


def test_lease_table_tracks_active_holders():
    table = LeaseTable()
    table.grant("a", expiry=5.0)
    table.grant("b", expiry=2.0)
    table.grant("a", expiry=3.0)  # never shortens an existing lease
    assert dict(table.active(1.0)) == {"a": 5.0, "b": 2.0}
    assert dict(table.active(4.0)) == {"a": 5.0}
    table.clear()
    assert len(table) == 0


def test_object_cache_evicts_lru():
    from repro.dso.cache import CacheEntry

    cache = ObjectCache(limit=2)
    entry = CacheEntry(snapshot=None, expiry=1.0, version=0)
    cache.put(("T", "a"), entry)
    cache.put(("T", "b"), entry)
    cache.get(("T", "a"))  # refresh recency: "b" is now coldest
    cache.put(("T", "c"), entry)
    assert set(cache.idents()) == {("T", "a"), ("T", "c")}


# ---------------------------------------------------------------------------
# Layer-level protocol
# ---------------------------------------------------------------------------


def test_warm_read_served_from_cache(kernel, network):
    layer = make_layer(kernel, network, nodes=1)

    def main():
        layer.put("client", "k", "v")
        layer.get("client", "k")  # miss: ships, returns with a lease
        before_msgs = network.messages_sent
        start = kernel.now
        value = layer.get("client", "k")  # hit: local
        return value, kernel.now - start, network.messages_sent - before_msgs

    value, elapsed, messages = kernel.run_main(main)
    assert value == "v"
    assert messages == 0  # the hit never touched the network
    assert elapsed == pytest.approx(DEFAULT_CONFIG.dso.cache_hit_overhead)
    assert layer.stats.cache_hits == 1
    assert layer.stats.cache_misses == 1
    assert layer.stats.leases_granted >= 1


def test_cache_disabled_by_default(kernel, network):
    layer = make_layer(kernel, network, nodes=1, read_cache=False)

    def main():
        layer.put("client", "k", "v")
        layer.get("client", "k")
        layer.get("client", "k")

    kernel.run_main(main)
    assert layer.stats.cache_hits == 0
    assert layer.stats.cache_misses == 0
    assert layer.stats.leases_granted == 0
    assert layer.cache_of("client") is None


def test_write_revokes_lease_before_acknowledging(kernel, network):
    layer = make_layer(kernel, network, nodes=1)
    network.ensure_endpoint("writer")

    def main():
        layer.put("client", "k", "v0")
        layer.get("client", "k")  # client now holds a lease
        layer.put("writer", "k", "v1")  # must revoke before acking
        return layer.get("client", "k")

    assert kernel.run_main(main) == "v1"  # never the stale snapshot
    assert layer.stats.lease_revocations == 1
    # The post-write read had to ship again (its entry was invalidated).
    assert layer.stats.cache_misses == 2


def test_lease_expires_by_ttl(kernel, network):
    config = config_with(lease_ttl=1.0)
    layer = make_layer(kernel, network, nodes=1, config=config)

    def main():
        layer.put("client", "k", "v")
        layer.get("client", "k")
        sleep(1.5)  # past the lease window
        layer.get("client", "k")

    kernel.run_main(main)
    assert layer.stats.cache_hits == 0
    assert layer.stats.cache_misses == 2


def test_unreachable_holder_is_waited_out(kernel, network):
    """A writer that cannot deliver an invalidation waits out the
    holder's lease TTL before acknowledging — no cached read can be
    served after the ack even though the revoke message was lost."""
    config = config_with(lease_ttl=2.0)
    layer = make_layer(kernel, network, nodes=1, config=config)
    network.ensure_endpoint("writer")
    (node_name,) = layer.nodes

    def main():
        layer.put("client", "k", "v0")
        layer.get("client", "k")  # lease granted to "client"
        granted_at = kernel.now
        network.partition({node_name}, {"client"})
        start = kernel.now
        layer.put("writer", "k", "v1")
        write_latency = kernel.now - start
        network.heal()
        return granted_at, write_latency

    granted_at, write_latency = kernel.run_main(main)
    # The write stalled until the lease self-expired.
    assert granted_at + write_latency >= granted_at + 1.9
    assert layer.stats.lease_revocations == 1


def test_lru_eviction_respects_configured_limit(kernel, network):
    config = config_with(cache_max_objects=2)
    layer = make_layer(kernel, network, nodes=1, config=config)

    def main():
        for key in ("a", "b", "c"):
            layer.put("client", key, key)
            layer.get("client", key)

    kernel.run_main(main)
    cache = layer.cache_of("client")
    assert len(cache) == 2
    assert ("KvSlot", "a") not in cache.idents()


def test_failover_invalidates_leases_via_version(kernel, network):
    """A promoted backup cannot know its predecessor's leases; the
    placement-version bump invalidates them conservatively, so a read
    under a still-unexpired lease re-fetches instead of serving the
    pre-crash snapshot."""
    config = config_with(lease_ttl=120.0)  # far beyond detection time
    layer = make_layer(kernel, network, nodes=3, config=config)
    network.ensure_endpoint("writer")

    def main():
        layer.put("client", "k", "v0", rf=2)
        layer.get("client", "k", rf=2)  # lease at the old primary
        primary = layer.placement_of(layer._kv_ref("k", 2))[0]
        layer.crash_node(primary)
        sleep(DEFAULT_CONFIG.dso.failure_detection + 1.0)
        # The new primary acknowledges a write knowing nothing of the
        # old lease — correct only because the version bump fenced it.
        layer.put("writer", "k", "v1", rf=2)
        return layer.get("client", "k", rf=2)

    assert kernel.run_main(main) == "v1"
    assert layer.stats.cache_hits == 0  # the stale entry never served


def test_delete_purges_cached_snapshots(kernel, network):
    config = config_with(lease_ttl=120.0)
    layer = make_layer(kernel, network, nodes=1, config=config)

    def main():
        layer.put("client", "k", "old")
        layer.get("client", "k")
        layer.delete("client", layer._kv_ref("k", 1))
        layer.put("client", "k", "new")  # re-created at version 0 again
        return layer.get("client", "k")

    assert kernel.run_main(main) == "new"
    assert layer.stats.cache_hits == 0


def test_drop_endpoint_cache_forgets_working_set(kernel, network):
    layer = make_layer(kernel, network, nodes=1)

    def main():
        layer.put("client", "k", "v")
        layer.get("client", "k")
        assert layer.cache_of("client") is not None
        layer.drop_endpoint_cache("client")
        assert layer.cache_of("client") is None
        layer.get("client", "k")  # must ship again

    kernel.run_main(main)
    assert layer.stats.cache_hits == 0
    assert layer.stats.cache_misses == 2


# ---------------------------------------------------------------------------
# Transactions: leases are fenced at commit
# ---------------------------------------------------------------------------


def test_txn_commit_revokes_lease_before_acknowledging(kernel, network):
    """A reader's lease on a TxnCell is revoked before the writing
    transaction's commit acknowledges — the txn write path honours
    the same coherence contract as plain writes."""
    layer = make_layer(kernel, network, nodes=1)
    network.ensure_endpoint("writer")
    ctor = layer._txn_ctor()
    ref = layer._txn_ref("k", 1)

    def main():
        with layer.transaction("writer") as txn:
            txn.write("k", "v0")
        layer.invoke("client", ref, "get", ctor=ctor)  # miss + lease
        hit = layer.invoke("client", ref, "get", ctor=ctor)
        with layer.transaction("writer") as txn:
            txn.write("k", "v1")
        after = layer.invoke("client", ref, "get", ctor=ctor)
        return hit, after

    assert kernel.run_main(main) == ("v0", "v1")  # never the snapshot
    assert layer.stats.cache_hits == 1
    assert layer.stats.lease_revocations >= 1
    # The post-commit read had to ship again.
    assert layer.stats.cache_misses == 2


def test_mid_txn_lease_on_written_key_is_fenced_at_commit(
        kernel, network):
    """The satellite case: a ``@readonly`` lease granted *mid-txn*
    (the txn's own read of a key it then writes) is invalidated by
    the commit, so no later cached read serves the pre-commit
    snapshot."""
    layer = make_layer(kernel, network, nodes=1)
    ctor = layer._txn_ctor()
    ref = layer._txn_ref("k", 1)

    def main():
        with layer.transaction("client") as txn:
            txn.write("k", "v0")
        with layer.transaction("client") as txn:
            old = txn.read("k")  # __txn_read__ is @readonly: leased
            txn.write("k", "v1")
        cached = layer.invoke("client", ref, "get", ctor=ctor)
        return old, cached

    assert kernel.run_main(main) == ("v0", "v1")
    assert layer.stats.lease_revocations >= 1


# ---------------------------------------------------------------------------
# FaaS wiring: cache lifetime == container lifetime
# ---------------------------------------------------------------------------


class _ReadTwice:
    def __init__(self):
        self.counter = AtomicLong("hot")

    def run(self):
        self.counter.get()
        return self.counter.get()


def test_container_cache_survives_warm_reuse_and_dies_on_kill():
    with CrucialEnvironment(seed=3, dso_nodes=1, read_cache=True) as env:
        def main():
            AtomicLong("hot").get()  # create (and lease to the client)
            first = CloudThread(_ReadTwice())
            first.start()
            first.join()
            hits_after_first = env.dso.stats.cache_hits
            second = CloudThread(_ReadTwice())
            second.start()
            second.join()
            return hits_after_first

        hits_after_first = env.run(main)
        container = env.platform.records[-1].container
        # Both invocations reused one warm container, so the second
        # body's reads all hit the cache the first body populated.
        assert env.platform.records[-2].container == container
        assert hits_after_first >= 1
        assert env.dso.stats.cache_hits >= hits_after_first + 2
        cache = env.dso.cache_of(container)
        assert cache is not None and len(cache) == 1
        # Chaos (or keep-alive expiry) reclaims the container: the
        # platform hook drops its cache with it.
        assert env.platform.kill_container(container)
        assert env.dso.cache_of(container) is None
