"""Property-based invariants of the exactly-once ``SessionTable``.

Random operation sequences (hypothesis' seeded generators) against the
table, with a mirror model tracking what the table *must* remember:

* watermark truncation never drops a reply the client has not yet
  acknowledged — whatever interleaving of records, acks and
  retransmissions produced it;
* bounded-table eviction respects commit flags: a session retaining an
  *uncommitted* reply (whose retransmission would re-replicate) is
  never evicted while any fully-acknowledged or all-committed session
  could be dropped instead.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dso.session import SessionStamp, SessionTable

#: (session index, action, payload) — the raw material of a run.
EVENTS = st.lists(
    st.tuples(st.integers(0, 3),
              st.sampled_from(["record", "ack", "retransmit"]),
              st.booleans()),
    min_size=1, max_size=60)


class _Client:
    """Client-side view of one session: what may be acknowledged."""

    def __init__(self, index):
        self.sid = f"s{index}"
        self.next_seq = 0
        self.acked = -1
        self.received = []  # seqs whose replies arrived, in order
        self.replies = {}   # seq -> reply we expect the table to hold

    def stamp(self, seq=None):
        return SessionStamp(sid=self.sid,
                            seq=self.next_seq if seq is None else seq,
                            acked=self.acked)


@settings(max_examples=40, deadline=None)
@given(events=EVENTS)
def test_truncation_never_drops_an_unacked_reply(events):
    table = SessionTable(limit=4096)  # never evicts in this run
    clients = [_Client(i) for i in range(4)]
    for index, action, flag in events:
        client = clients[index]
        if action == "record":
            stamp = client.stamp()
            reply = f"{client.sid}#{stamp.seq}"
            table.record(stamp, reply, committed=flag)
            client.replies[stamp.seq] = reply
            client.received.append(stamp.seq)
            client.next_seq += 1
        elif action == "ack" and client.received:
            # The client acknowledges its oldest outstanding reply;
            # the watermark rides on the *next* recorded stamp.
            client.acked = max(client.acked, client.received.pop(0))
        elif action == "retransmit" and client.replies:
            seq = max(client.replies)
            if seq > client.acked:  # re-asking below the watermark is
                entry = table.lookup(client.stamp(seq=seq))  # a protocol
                assert entry is not None                     # violation
                assert entry.reply == client.replies[seq]
        # The invariant, after every step: every reply above the
        # acknowledgement watermark is still retrievable.
        for c in clients:
            for seq, reply in c.replies.items():
                if seq > c.acked:
                    entry = table.lookup(c.stamp(seq=seq))
                    assert entry is not None, \
                        f"{c.sid}#{seq} dropped (acked={c.acked})"
                    assert entry.reply == reply


@settings(max_examples=40, deadline=None)
@given(
    committed_flags=st.lists(st.booleans(), min_size=6, max_size=20),
    limit=st.integers(2, 5),
)
def test_eviction_never_drops_uncommitted_while_committed_remain(
        committed_flags, limit):
    """As long as at most ``limit`` sessions hold uncommitted replies,
    none of them is ever evicted — eviction prefers acknowledged and
    all-committed sessions."""
    uncommitted = [f"s{i}" for i, c in enumerate(committed_flags)
                   if not c]
    if len(uncommitted) > limit:
        uncommitted = uncommitted[:limit]
        committed_flags = list(committed_flags)
        kept = 0
        for i, c in enumerate(committed_flags):
            if not c:
                kept += 1
                if kept > limit:
                    committed_flags[i] = True
    table = SessionTable(limit=limit)
    for i, committed in enumerate(committed_flags):
        stamp = SessionStamp(sid=f"s{i}", seq=0)
        table.record(stamp, f"reply-{i}", committed=committed)
    survivors = set(table.sessions())
    for sid in uncommitted:
        assert sid in survivors, \
            f"uncommitted session {sid} evicted; survivors={survivors}"


def test_eviction_prefers_committed_over_colder_uncommitted():
    # LRU alone would evict s-uncommitted (the coldest); the commit
    # flag must override recency.
    table = SessionTable(limit=2)
    table.record(SessionStamp(sid="s-uncommitted", seq=0), "r0",
                 committed=False)
    table.record(SessionStamp(sid="s-committed", seq=0), "r1",
                 committed=True)
    table.record(SessionStamp(sid="s-new", seq=0), "r2", committed=False)
    assert set(table.sessions()) == {"s-uncommitted", "s-new"}


@settings(max_examples=40, deadline=None)
@given(
    pressure=st.integers(1, 40),
    pinned_count=st.integers(1, 4),
    resolve=st.booleans(),
)
def test_pinned_prepares_survive_any_lru_pressure(
        pressure, pinned_count, resolve):
    """A pinned entry (an unresolved transaction prepare) is never
    evicted, however cold its session goes — and once unpinned it
    becomes an ordinary candidate again."""
    table = SessionTable(limit=3)
    for i in range(pinned_count):
        table.record(SessionStamp(sid=f"txn-{i}", seq=0),
                     f"prepared-{i}", committed=False, pin=f"t{i}")
    # Flood the table far past its cap with churn sessions; the
    # pinned sessions are the coldest throughout.
    for i in range(pressure):
        table.record(SessionStamp(sid=f"churn-{i}", seq=0),
                     f"r{i}", committed=bool(i % 2))
    survivors = set(table.sessions())
    for i in range(pinned_count):
        assert f"txn-{i}" in survivors, \
            f"pinned session txn-{i} evicted; survivors={survivors}"
        entry = table.lookup(SessionStamp(sid=f"txn-{i}", seq=0))
        assert entry is not None and entry.reply == f"prepared-{i}"
    if resolve:
        # Commit/abort resolution unpins; subsequent pressure may now
        # reclaim the (cold, committed-free) prepare sessions.
        for i in range(pinned_count):
            assert table.unpin(f"t{i}") == 1
        for i in range(pressure, pressure + 2 * pinned_count + 4):
            table.record(SessionStamp(sid=f"churn-{i}", seq=0),
                         f"r{i}", committed=True)
        assert len(table.sessions()) <= table.limit + pinned_count
        assert table.pinned_tokens() == set()


def test_all_sessions_pinned_defers_eviction_to_unpin():
    """When every session holds a pinned entry the table transiently
    exceeds its cap rather than losing a dedup record; the first
    unpin lets the next record() reclaim the slot."""
    table = SessionTable(limit=2)
    for i in range(4):
        table.record(SessionStamp(sid=f"txn-{i}", seq=0), f"p{i}",
                     committed=False, pin=f"t{i}")
    assert len(table.sessions()) == 4  # over the cap, nothing lost
    table.unpin("t0")
    table.record(SessionStamp(sid="new", seq=0), "r", committed=False)
    survivors = set(table.sessions())
    assert "txn-0" not in survivors  # the lone unpinned session paid
    assert {"txn-1", "txn-2", "txn-3", "new"} <= survivors


def test_eviction_prefers_empty_sessions_over_all_committed():
    table = SessionTable(limit=2)
    # s-empty recorded then fully truncated by its own watermark.
    table.record(SessionStamp(sid="s-empty", seq=0), "r0",
                 committed=True)
    table.truncate(SessionStamp(sid="s-empty", seq=1, acked=0))
    table.record(SessionStamp(sid="s-committed", seq=0), "r1",
                 committed=True)
    table.record(SessionStamp(sid="s-new", seq=0), "r2", committed=False)
    assert set(table.sessions()) == {"s-committed", "s-new"}