"""Property-based tests: batched async shipping is order-transparent.

Whatever mix of ``invoke_async`` and ``flush`` a client issues — and
however the schedule-exploration scheduler interleaves the pump thread
with the submitter — the object ends in exactly the state a purely
sequential ``invoke`` stream would have produced.  Batching may merge
round trips, but it must never reorder ops within a session.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dso import DsoLayer, DsoReference
from repro.explore import RandomScheduler
from repro.net import LatencyModel, Network
from repro.simulation import Kernel
from repro.simulation.thread import spawn


class Log:
    """Order-sensitive state machine: a strictly appended log."""

    def __init__(self):
        self.entries = []

    def append(self, entry):
        self.entries.append(entry)
        return len(self.entries)

    def snapshot(self):
        return list(self.entries)


REF = DsoReference("Log", "log", persistent=True, rf=2)
CTOR = (Log, (), {})

#: One client step: ship asynchronously, ship synchronously, or drain.
STEP = st.sampled_from(["async", "sync", "flush"])


def _run_plan(client_plans, scheduler=None):
    """Execute per-client step plans; return the object's final log."""
    with Kernel(seed=5, scheduler=scheduler) as kernel:
        network = Network(kernel, LatencyModel(0.0001))
        layer = DsoLayer(kernel, network)
        for _ in range(2):
            layer.add_node()

        def client_thread(client, steps):
            value = 0
            for step in steps:
                if step == "async":
                    layer.invoke_async(client, REF, "append",
                                       ((client, value),), ctor=CTOR)
                    value += 1
                elif step == "sync":
                    layer.invoke(client, REF, "append",
                                 ((client, value),), ctor=CTOR)
                    value += 1
                else:
                    layer.flush(client)
            layer.flush(client)

        def main():
            threads = [spawn(client_thread, client, steps)
                       for client, steps in client_plans.items()]
            for t in threads:
                t.join()
            return layer.invoke("auditor", REF, "snapshot", ctor=CTOR)

        return kernel.run_main(main)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 9999),
       steps=st.lists(STEP, min_size=1, max_size=12))
def test_single_session_matches_sequential_invoke(seed, steps):
    """One client: any async/flush interleaving produces the *exact*
    final log of the all-sync plan, under FIFO and random schedules."""
    sequential = _run_plan(
        {"c1": ["sync" if s == "async" else s for s in steps]})
    mixed_fifo = _run_plan({"c1": steps})
    mixed_random = _run_plan(
        {"c1": steps},
        scheduler=RandomScheduler(seed=seed, preempt_prob=0.25))
    assert mixed_fifo == sequential
    assert mixed_random == sequential


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 9999),
       steps_a=st.lists(STEP, min_size=1, max_size=8),
       steps_b=st.lists(STEP, min_size=1, max_size=8))
def test_concurrent_sessions_keep_per_session_order(seed, steps_a, steps_b):
    """Two concurrent clients: the merged log restricted to either
    session is that session's submission order — batching never
    reorders within a session, whatever the global interleaving."""
    log = _run_plan({"a": steps_a, "b": steps_b},
                    scheduler=RandomScheduler(seed=seed, preempt_prob=0.25))
    for client, steps in (("a", steps_a), ("b", steps_b)):
        ops = sum(1 for s in steps if s != "flush")
        mine = [value for owner, value in log if owner == client]
        assert mine == list(range(ops))
    assert len(log) == sum(1 for s in steps_a + steps_b if s != "flush")
