"""Failure-injection tests for the DSO layer beyond the basics."""

import pytest

from repro.config import DEFAULT_CONFIG
from repro.dso import DsoLayer, DsoReference
from repro.errors import ObjectLostError
from repro.net import LatencyModel, Network
from repro.simulation import Kernel
from repro.simulation.thread import sleep, spawn


class Counter:
    def __init__(self, value=0):
        self.value = value

    def add(self, delta):
        self.value += delta
        return self.value

    def get(self):
        return self.value


CTOR = (Counter, (), {})


def ref(key, persistent=False, rf=1):
    return DsoReference("Counter", key, persistent=persistent, rf=rf)


@pytest.fixture
def kernel():
    with Kernel(seed=101) as k:
        yield k


@pytest.fixture
def network(kernel):
    net = Network(kernel, LatencyModel(0.0001))
    net.ensure_endpoint("client")
    return net


def make_layer(kernel, network, nodes):
    layer = DsoLayer(kernel, network)
    for _ in range(nodes):
        layer.add_node()
    return layer


def test_backup_crash_is_transparent(kernel, network):
    """Losing a backup (not the primary) never surfaces to clients."""
    layer = make_layer(kernel, network, nodes=3)
    r = ref("x", persistent=True, rf=2)

    def main():
        layer.invoke("client", r, "add", (7,), ctor=CTOR)
        backup = layer.placement_of(r)[1]
        layer.crash_node(backup)
        # Immediately readable (primary alive), before detection.
        value_now = layer.invoke("client", r, "get", ctor=CTOR)
        sleep(DEFAULT_CONFIG.dso.failure_detection + 1.0)
        value_later = layer.invoke("client", r, "get", ctor=CTOR)
        return value_now, value_later

    assert kernel.run_main(main) == (7, 7)


def test_rf2_re_replication_after_crash(kernel, network):
    """After failover, the rebalancer restores rf=2."""
    layer = make_layer(kernel, network, nodes=3)
    r = ref("y", persistent=True, rf=2)

    def main():
        layer.invoke("client", r, "add", (1,), ctor=CTOR)
        victim = layer.placement_of(r)[0]
        layer.crash_node(victim)
        sleep(DEFAULT_CONFIG.dso.failure_detection
              + DEFAULT_CONFIG.dso.view_change_pause
              + 2 * DEFAULT_CONFIG.dso.transfer_per_object + 2.0)
        return layer.placement_of(r)

    replicas = kernel.run_main(main)
    assert len(replicas) == 2
    assert len(set(replicas)) == 2


def test_joint_failure_of_all_replicas_loses_object(kernel, network):
    """rf=2 tolerates rf-1 failures; two joint failures lose data."""
    layer = make_layer(kernel, network, nodes=3)
    r = ref("z", persistent=True, rf=2)

    def main():
        layer.invoke("client", r, "add", (1,), ctor=CTOR)
        first, second = layer.placement_of(r)
        layer.crash_node(first)
        layer.crash_node(second)
        sleep(DEFAULT_CONFIG.dso.failure_detection + 2.0)
        with pytest.raises(ObjectLostError):
            layer.invoke("client", r, "get", ctor=CTOR)

    kernel.run_main(main)
    assert layer.stats.lost_objects >= 1


def test_writes_during_failover_are_not_lost(kernel, network):
    """A writer hammering the object through a crash keeps a
    consistent count: every acknowledged add is reflected exactly
    once — session dedup prevents failover retries from re-applying."""
    layer = make_layer(kernel, network, nodes=3)
    r = ref("w", persistent=True, rf=2)
    acknowledged = []

    def writer():
        for i in range(30):
            value = layer.invoke("client", r, "add", (1,), ctor=CTOR)
            acknowledged.append(value)
            sleep(0.3)

    def main():
        thread = spawn(writer)
        sleep(2.0)
        layer.crash_node(layer.placement_of(r)[0])
        thread.join()
        return layer.invoke("client", r, "get", ctor=CTOR)

    final = kernel.run_main(main)
    # Every acknowledged increment survives, and none is applied
    # twice: exactly-once, not at-least-once.
    assert final == len(acknowledged) == 30
    assert final == acknowledged[-1]


def test_operations_queue_behind_rebalancing_object(kernel, network):
    """Rebalance holds an object's lock only for its own transfer;
    in-flight ops retry and complete."""
    layer = make_layer(kernel, network, nodes=1)

    def main():
        for i in range(10):
            layer.put("client", f"key-{i}", i)
        layer.add_node()
        results = []

        def reader():
            for i in range(10):
                results.append(layer.get("client", f"key-{i}"))
                sleep(0.2)

        thread = spawn(reader)
        thread.join()
        return results

    assert kernel.run_main(main) == list(range(10))


def test_stats_track_retries_and_invocations(kernel, network):
    layer = make_layer(kernel, network, nodes=2)
    r = ref("s", persistent=True, rf=2)

    def main():
        layer.invoke("client", r, "add", (1,), ctor=CTOR)
        layer.crash_node(layer.placement_of(r)[0])
        layer.invoke("client", r, "get", ctor=CTOR)

    kernel.run_main(main)
    assert layer.stats.invocations >= 2
    assert layer.stats.retries >= 1
