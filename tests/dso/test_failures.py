"""Failure-injection tests for the DSO layer beyond the basics."""

import pytest

from repro.config import DEFAULT_CONFIG
from repro.dso import DsoLayer, DsoReference
from repro.errors import ObjectLostError
from repro.net import LatencyModel, Network
from repro.simulation import Kernel
from repro.simulation.thread import sleep, spawn


class Counter:
    def __init__(self, value=0):
        self.value = value

    def add(self, delta):
        self.value += delta
        return self.value

    def get(self):
        return self.value


CTOR = (Counter, (), {})


def ref(key, persistent=False, rf=1):
    return DsoReference("Counter", key, persistent=persistent, rf=rf)


@pytest.fixture
def kernel():
    with Kernel(seed=101) as k:
        yield k


@pytest.fixture
def network(kernel):
    net = Network(kernel, LatencyModel(0.0001))
    net.ensure_endpoint("client")
    return net


def make_layer(kernel, network, nodes):
    layer = DsoLayer(kernel, network)
    for _ in range(nodes):
        layer.add_node()
    return layer


def test_backup_crash_is_transparent(kernel, network):
    """Losing a backup (not the primary) never surfaces to clients."""
    layer = make_layer(kernel, network, nodes=3)
    r = ref("x", persistent=True, rf=2)

    def main():
        layer.invoke("client", r, "add", (7,), ctor=CTOR)
        backup = layer.placement_of(r)[1]
        layer.crash_node(backup)
        # Immediately readable (primary alive), before detection.
        value_now = layer.invoke("client", r, "get", ctor=CTOR)
        sleep(DEFAULT_CONFIG.dso.failure_detection + 1.0)
        value_later = layer.invoke("client", r, "get", ctor=CTOR)
        return value_now, value_later

    assert kernel.run_main(main) == (7, 7)


def test_rf2_re_replication_after_crash(kernel, network):
    """After failover, the rebalancer restores rf=2."""
    layer = make_layer(kernel, network, nodes=3)
    r = ref("y", persistent=True, rf=2)

    def main():
        layer.invoke("client", r, "add", (1,), ctor=CTOR)
        victim = layer.placement_of(r)[0]
        layer.crash_node(victim)
        sleep(DEFAULT_CONFIG.dso.failure_detection
              + DEFAULT_CONFIG.dso.view_change_pause
              + 2 * DEFAULT_CONFIG.dso.transfer_per_object + 2.0)
        return layer.placement_of(r)

    replicas = kernel.run_main(main)
    assert len(replicas) == 2
    assert len(set(replicas)) == 2


def test_joint_failure_of_all_replicas_loses_object(kernel, network):
    """rf=2 tolerates rf-1 failures; two joint failures lose data."""
    layer = make_layer(kernel, network, nodes=3)
    r = ref("z", persistent=True, rf=2)

    def main():
        layer.invoke("client", r, "add", (1,), ctor=CTOR)
        first, second = layer.placement_of(r)
        layer.crash_node(first)
        layer.crash_node(second)
        sleep(DEFAULT_CONFIG.dso.failure_detection + 2.0)
        with pytest.raises(ObjectLostError):
            layer.invoke("client", r, "get", ctor=CTOR)

    kernel.run_main(main)
    assert layer.stats.lost_objects >= 1


def test_writes_during_failover_are_not_lost(kernel, network):
    """A writer hammering the object through a crash keeps a
    consistent count: every acknowledged add is reflected exactly
    once — session dedup prevents failover retries from re-applying."""
    layer = make_layer(kernel, network, nodes=3)
    r = ref("w", persistent=True, rf=2)
    acknowledged = []

    def writer():
        for i in range(30):
            value = layer.invoke("client", r, "add", (1,), ctor=CTOR)
            acknowledged.append(value)
            sleep(0.3)

    def main():
        thread = spawn(writer)
        sleep(2.0)
        layer.crash_node(layer.placement_of(r)[0])
        thread.join()
        return layer.invoke("client", r, "get", ctor=CTOR)

    final = kernel.run_main(main)
    # Every acknowledged increment survives, and none is applied
    # twice: exactly-once, not at-least-once.
    assert final == len(acknowledged) == 30
    assert final == acknowledged[-1]


def test_operations_queue_behind_rebalancing_object(kernel, network):
    """Rebalance holds an object's lock only for its own transfer;
    in-flight ops retry and complete."""
    layer = make_layer(kernel, network, nodes=1)

    def main():
        for i in range(10):
            layer.put("client", f"key-{i}", i)
        layer.add_node()
        results = []

        def reader():
            for i in range(10):
                results.append(layer.get("client", f"key-{i}"))
                sleep(0.2)

        thread = spawn(reader)
        thread.join()
        return results

    assert kernel.run_main(main) == list(range(10))


def test_read_any_retries_through_replica_crash(kernel, network):
    """Regression: ``read_any`` had no retry loop, so a dead replica
    pick leaked the internal ``_StaleContainer``/``NetworkError`` to
    callers instead of retrying against another replica."""
    layer = make_layer(kernel, network, nodes=2)
    r = ref("anyread", persistent=True, rf=2)

    def main():
        layer.invoke("client", r, "add", (3,), ctor=CTOR)
        layer.crash_node(layer.placement_of(r)[0])
        # Before detection the placement still lists the dead primary;
        # the random replica pick will keep landing on it until the
        # retry loop re-rolls onto the survivor.
        return [layer.read_any("client", r, "get") for _ in range(8)]

    assert kernel.run_main(main) == [3] * 8
    assert layer.stats.retries >= 1


def test_read_any_retries_when_container_moved(kernel, network):
    """The other ``_StaleContainer`` source: the replica is alive but
    no longer hosts the object (rebalance moved it away)."""
    layer = make_layer(kernel, network, nodes=1)
    r = ref("moved")

    def main():
        layer.invoke("client", r, "add", (4,), ctor=CTOR)
        # Force staleness by hand: evict the container but leave the
        # placement pointing at the node, exactly the window a
        # concurrent rebalance opens.
        (node,) = layer.nodes.values()
        container = node.containers[r.ident]
        node.evict(r.ident)

        def rehost():
            sleep(0.5)
            node.containers[r.ident] = container

        spawn(rehost)
        return layer.read_any("client", r, "get")

    assert kernel.run_main(main) == 4
    assert layer.stats.retries >= 1


def test_read_bulk_retries_only_failed_groups(kernel, network):
    """Regression: a transient failure used to re-read the *whole*
    batch, double-charging nodes whose group had already succeeded.
    Now only unfinished groups are retried: per-node applied-op counts
    show each object on the healthy node was read exactly once."""
    layer = make_layer(kernel, network, nodes=2)

    def main():
        refs, by_node = [], {}
        for i in range(8):
            r = ref(f"bulk-{i}")
            layer.invoke("client", r, "add", (i,), ctor=CTOR)
            refs.append(r)
            by_node.setdefault(layer.placement_of(r)[0], []).append(r)
        assert len(by_node) == 2, "keys must span both nodes"
        first_node, second_node = sorted(by_node)

        def applied(node_name):
            node = layer.nodes[node_name]
            return {r.key: node.containers[r.ident].applied_ops
                    for r in by_node[node_name]}

        baseline = applied(first_node)
        # Fail every message to the second-sorted node: the first
        # group completes, the second fails and is retried alone.
        network.set_drop_rate("client", second_node, 1.0)
        kernel.call_later(
            1.0, lambda: network.set_drop_rate("client", second_node, 0.0))
        values = layer.read_bulk("client", refs)
        delta = {key: applied(first_node)[key] - baseline[key]
                 for key in baseline}
        return values, delta

    values, delta = kernel.run_main(main)
    assert values == list(range(8))
    assert layer.stats.retries >= 1
    # The healthy node's objects were each read exactly once — the
    # retry loop did not re-charge the group that had succeeded.
    assert all(count == 1 for count in delta.values()), delta


def test_crash_during_rebalance_leaves_no_stuck_lock(kernel, network):
    """Crash the transfer source mid-rebalance: the guarded release in
    the rebalancer's ``finally`` must neither double-release nor leave
    the (re-hosted) object's lock stuck, and the layer keeps serving."""
    layer = make_layer(kernel, network, nodes=2)
    r = ref("reb", persistent=True, rf=2)

    def main():
        layer.invoke("client", r, "add", (9,), ctor=CTOR)
        source = layer.placement_of(r)[0]
        # Joining a node triggers a rebalance pass; crash the source
        # inside the per-object transfer window.
        layer.add_node()
        sleep(DEFAULT_CONFIG.dso.view_change_pause
              + DEFAULT_CONFIG.dso.transfer_per_object / 2)
        layer.crash_node(source)
        sleep(DEFAULT_CONFIG.dso.failure_detection
              + DEFAULT_CONFIG.dso.view_change_pause
              + 2 * DEFAULT_CONFIG.dso.transfer_per_object + 2.0)
        # Still serving: acknowledged state survived on the backup and
        # no lock is wedged from the aborted transfer.
        layer.invoke("client", r, "add", (1,), ctor=CTOR)
        return layer.invoke("client", r, "get", ctor=CTOR)

    assert kernel.run_main(main) == 10
    for node in layer.live_nodes():
        container = node.containers.get(r.ident)
        if container is not None:
            assert not container.lock.locked


def test_stats_track_retries_and_invocations(kernel, network):
    layer = make_layer(kernel, network, nodes=2)
    r = ref("s", persistent=True, rf=2)

    def main():
        layer.invoke("client", r, "add", (1,), ctor=CTOR)
        layer.crash_node(layer.placement_of(r)[0])
        layer.invoke("client", r, "get", ctor=CTOR)

    kernel.run_main(main)
    assert layer.stats.invocations >= 2
    assert layer.stats.retries >= 1
