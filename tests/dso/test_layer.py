"""Unit tests for the DSO layer: placement, invocation, SMR, failover."""

import pytest

from repro.config import DEFAULT_CONFIG
from repro.dso import DsoLayer, DsoReference
from repro.dso.layer import KvSlot
from repro.errors import (
    NoSuchObjectError,
    ObjectLostError,
    ServiceUnavailableError,
)
from repro.net import LatencyModel, Network
from repro.simulation import Kernel
from repro.simulation.thread import now, sleep, spawn


class Counter:
    """A module-level shared class (picklable, deterministic)."""

    def __init__(self, value=0):
        self.value = value

    def add(self, delta):
        self.value += delta
        return self.value

    def get(self):
        return self.value


@pytest.fixture
def kernel():
    with Kernel(seed=37) as k:
        yield k


@pytest.fixture
def network(kernel):
    net = Network(kernel, LatencyModel(0.0001))
    net.ensure_endpoint("client")
    return net


def make_layer(kernel, network, nodes=1):
    layer = DsoLayer(kernel, network)
    for _ in range(nodes):
        layer.add_node()
    return layer


CTOR = (Counter, (), {})


def ref(key="c", persistent=False, rf=1):
    return DsoReference("Counter", key, persistent=persistent, rf=rf)


def test_create_on_first_touch_and_invoke(kernel, network):
    layer = make_layer(kernel, network)

    def main():
        r = ref()
        assert layer.invoke("client", r, "add", (5,), ctor=CTOR) == 5
        return layer.invoke("client", r, "get", ctor=CTOR)

    assert kernel.run_main(main) == 5
    assert layer.stats.creations == 1


def test_same_reference_shares_one_instance(kernel, network):
    layer = make_layer(kernel, network, nodes=3)

    def main():
        layer.invoke("client", ref(), "add", (1,), ctor=CTOR)
        layer.invoke("client", ref(), "add", (2,), ctor=CTOR)
        return layer.invoke("client", ref(), "get", ctor=CTOR)

    assert kernel.run_main(main) == 3
    assert layer.stats.creations == 1


def test_distinct_keys_are_distinct_objects(kernel, network):
    layer = make_layer(kernel, network)

    def main():
        layer.invoke("client", ref("a"), "add", (1,), ctor=CTOR)
        layer.invoke("client", ref("b"), "add", (10,), ctor=CTOR)
        return (layer.invoke("client", ref("a"), "get", ctor=CTOR),
                layer.invoke("client", ref("b"), "get", ctor=CTOR))

    assert kernel.run_main(main) == (1, 10)


def test_invoke_unknown_object_without_ctor(kernel, network):
    layer = make_layer(kernel, network)

    def main():
        layer.invoke("client", ref("ghost"), "get")

    with pytest.raises(NoSuchObjectError):
        kernel.run_main(main)


def test_no_nodes_is_unavailable(kernel, network):
    layer = DsoLayer(kernel, network)

    def main():
        layer.invoke("client", ref(), "get", ctor=CTOR)

    with pytest.raises(ServiceUnavailableError):
        kernel.run_main(main)


def test_raw_put_get_latency_matches_table2(kernel, network):
    layer = make_layer(kernel, network)
    ops = 50

    def main():
        layer.put("client", "k", b"x" * 1024)
        t0 = now()
        for _ in range(ops):
            layer.get("client", "k")
        return (now() - t0) / ops

    avg_get = kernel.run_main(main)
    # Table 2: Crucial GET = 229 us.
    assert avg_get == pytest.approx(229e-6, rel=0.15)


def test_replicated_put_doubles_latency(kernel, network):
    layer = make_layer(kernel, network, nodes=2)
    ops = 50

    def main():
        layer.put("client", "k", b"x" * 1024, rf=2)
        t0 = now()
        for _ in range(ops):
            layer.get("client", "k", rf=2)
        return (now() - t0) / ops

    avg_get = kernel.run_main(main)
    # Table 2: Crucial rf=2 GET = 505 us.
    assert avg_get == pytest.approx(505e-6, rel=0.15)


def test_replicas_hold_identical_state(kernel, network):
    layer = make_layer(kernel, network, nodes=3)
    r = ref("counter", persistent=True, rf=2)

    def main():
        for i in range(5):
            layer.invoke("client", r, "add", (i,), ctor=CTOR)

    kernel.run_main(main)
    replicas = layer.placement_of(r)
    assert len(replicas) == 2
    values = [layer.nodes[name].containers[r.ident].instance.value
              for name in replicas]
    assert values == [10, 10]


def test_acknowledged_writes_survive_primary_crash(kernel, network):
    layer = make_layer(kernel, network, nodes=3)
    r = ref("important", persistent=True, rf=2)

    def main():
        layer.invoke("client", r, "add", (42,), ctor=CTOR)
        primary = layer.placement_of(r)[0]
        layer.crash_node(primary)
        # Retry loop inside invoke rides out failure detection (4 s).
        return layer.invoke("client", r, "get", ctor=CTOR)

    assert kernel.run_main(main) == 42
    assert layer.stats.retries > 0


def test_ephemeral_object_lost_on_crash(kernel, network):
    layer = make_layer(kernel, network, nodes=2)
    r = ref("volatile")

    def main():
        layer.invoke("client", r, "add", (1,), ctor=CTOR)
        primary = layer.placement_of(r)[0]
        layer.crash_node(primary)
        with pytest.raises(ObjectLostError):
            layer.invoke("client", r, "get", ctor=CTOR)

    kernel.run_main(main)
    assert layer.stats.lost_objects >= 1


def test_rebalance_on_node_addition(kernel, network):
    layer = make_layer(kernel, network, nodes=1)

    def main():
        for i in range(30):
            layer.put("client", f"key-{i}", i)
        layer.add_node()
        # Wait for view-change pause + per-object transfers.
        sleep(DEFAULT_CONFIG.dso.view_change_pause
              + 31 * DEFAULT_CONFIG.dso.transfer_per_object + 1.0)
        return layer.object_counts()

    counts = kernel.run_main(main)
    assert sum(counts.values()) == 30
    assert all(count > 0 for count in counts.values())
    assert layer.stats.rebalanced_objects > 0


def test_data_survives_rebalancing(kernel, network):
    layer = make_layer(kernel, network, nodes=1)

    def main():
        for i in range(20):
            layer.put("client", f"key-{i}", i * 11)
        layer.add_node()
        sleep(DEFAULT_CONFIG.dso.view_change_pause
              + 21 * DEFAULT_CONFIG.dso.transfer_per_object + 1.0)
        return [layer.get("client", f"key-{i}") for i in range(20)]

    values = kernel.run_main(main)
    assert values == [i * 11 for i in range(20)]


def test_concurrent_increments_are_linearizable_count(kernel, network):
    layer = make_layer(kernel, network, nodes=2)

    def worker():
        for _ in range(10):
            layer.invoke("client", ref("shared"), "add", (1,), ctor=CTOR)

    def main():
        threads = [spawn(worker) for _ in range(8)]
        for t in threads:
            t.join()
        return layer.invoke("client", ref("shared"), "get", ctor=CTOR)

    assert kernel.run_main(main) == 80


def test_method_cost_charged(kernel, network):
    layer = make_layer(kernel, network)

    def main():
        r = ref("pricey")
        layer.invoke("client", r, "get", ctor=CTOR)  # create
        t0 = now()
        layer.invoke("client", r, "get", ctor=CTOR, cost=0.5)
        return now() - t0

    elapsed = kernel.run_main(main)
    assert elapsed >= 0.5


def test_delete_object(kernel, network):
    layer = make_layer(kernel, network)
    r = ref("temp")

    def main():
        layer.invoke("client", r, "add", (1,), ctor=CTOR)
        layer.delete("client", r)
        assert not layer.object_exists(r)
        with pytest.raises(NoSuchObjectError):
            layer.delete("client", r)

    kernel.run_main(main)


def test_read_bulk_returns_all_values(kernel, network):
    layer = make_layer(kernel, network, nodes=3)

    def main():
        refs = []
        for i in range(12):
            r = DsoReference("KvSlot", f"m-{i}")
            layer.invoke("client", r, "set", (i * 2,),
                         ctor=(KvSlot, (), {}))
            refs.append(r)
        return layer.read_bulk("client", refs, method="get")

    assert kernel.run_main(main) == [i * 2 for i in range(12)]


def test_application_exception_propagates(kernel, network):
    layer = make_layer(kernel, network)

    def main():
        r = ref("x")
        layer.invoke("client", r, "get", ctor=CTOR)
        layer.invoke("client", r, "no_such_method", ctor=CTOR)

    with pytest.raises(AttributeError):
        kernel.run_main(main)


def test_graceful_node_removal_moves_objects(kernel, network):
    layer = make_layer(kernel, network, nodes=2)

    def main():
        for i in range(20):
            layer.put("client", f"key-{i}", i)
        victim = layer.live_nodes()[0].name
        layer.remove_node(victim)
        sleep(DEFAULT_CONFIG.dso.view_change_pause
              + 21 * DEFAULT_CONFIG.dso.transfer_per_object + 1.0)
        return victim, [layer.get("client", f"key-{i}") for i in range(20)]

    victim, values = kernel.run_main(main)
    assert values == list(range(20))
    counts = layer.object_counts()
    survivor_total = sum(count for name, count in counts.items()
                         if name != victim)
    assert survivor_total == 20
