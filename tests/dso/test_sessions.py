"""Exactly-once method shipping: replicated client sessions.

Covers the session table itself, the DSO layer's dedup behaviour
(retries, named-session replay, rebalance, passivation), truncation by
the acknowledgement watermark, and the SMR substrate's stamped path.
"""

import pytest

from repro.config import DEFAULT_CONFIG
from repro.dso import DsoLayer, DsoReference
from repro.dso.session import SessionStamp, SessionTable
from repro.errors import SessionReplayError
from repro.net import LatencyModel, Network
from repro.simulation import Kernel
from repro.simulation.thread import sleep
from repro.storage import ObjectStore


class Counter:
    def __init__(self, value=0):
        self.value = value

    def add(self, delta):
        self.value += delta
        return self.value

    def get(self):
        return self.value


CTOR = (Counter, (), {})


def ref(key, rf=1):
    return DsoReference("Counter", key, persistent=rf > 1, rf=rf)


@pytest.fixture
def kernel():
    with Kernel(seed=7) as k:
        yield k


@pytest.fixture
def network(kernel):
    net = Network(kernel, LatencyModel(0.0001))
    net.ensure_endpoint("client")
    return net


def make_layer(kernel, network, nodes):
    layer = DsoLayer(kernel, network)
    for _ in range(nodes):
        layer.add_node()
    return layer


# -- the table itself ---------------------------------------------------------


def test_table_records_and_replays():
    table = SessionTable()
    stamp = SessionStamp("c1", 0)
    assert table.lookup(stamp) is None
    table.record(stamp, "reply-0", committed=True)
    entry = table.lookup(stamp)
    assert entry is not None
    assert entry.reply == "reply-0"
    assert entry.committed


def test_table_truncates_below_watermark():
    table = SessionTable()
    table.record(SessionStamp("c1", 0), "r0", committed=True)
    # seq 1 arrives carrying acked=0: r0 may be forgotten.
    table.record(SessionStamp("c1", 1, acked=0), "r1", committed=True)
    assert table.entry_count() == 1
    # Replaying the truncated seq is a protocol violation.
    with pytest.raises(SessionReplayError):
        table.lookup(SessionStamp("c1", 0, acked=0))


def test_table_eviction_prefers_fully_acked_sessions():
    table = SessionTable(limit=2)
    table.record(SessionStamp("cold", 0), "r", committed=True)
    table.truncate(SessionStamp("cold", 0, acked=0))  # now entry-less
    table.record(SessionStamp("hot", 0), "r", committed=True)
    table.record(SessionStamp("new", 0), "r", committed=True)
    assert "cold" not in table.sessions()
    assert set(table.sessions()) == {"hot", "new"}


def test_table_merge_keeps_remembered_replies():
    a, b = SessionTable(), SessionTable()
    a.record(SessionStamp("s", 0), "original", committed=True)
    b.merge_from(a)
    assert b.lookup(SessionStamp("s", 0)).reply == "original"


# -- layer-level dedup --------------------------------------------------------


def test_named_session_replays_cached_replies(kernel, network):
    """Re-entering a named session returns the original replies
    without re-executing — the whole block is exactly-once."""
    layer = make_layer(kernel, network, nodes=2)
    r = ref("job-counter")

    def main():
        with layer.session("job-1"):
            first = layer.invoke("client", r, "add", (1,), ctor=CTOR)
        with layer.session("job-1"):  # the "retry"
            replayed = layer.invoke("client", r, "add", (1,), ctor=CTOR)
        final = layer.invoke("client", r, "get", ctor=CTOR)
        return first, replayed, final

    first, replayed, final = kernel.run_main(main)
    assert first == replayed == 1
    assert final == 1  # applied once, not twice
    assert layer.stats.dedup_hits == 1


def test_named_session_resumes_past_the_replayed_prefix(kernel, network):
    """A replay executes for real from the first call the previous run
    never made — partial progress is kept, the rest continues."""
    layer = make_layer(kernel, network, nodes=2)
    r = ref("resume")

    def main():
        with layer.session("step"):
            layer.invoke("client", r, "add", (1,), ctor=CTOR)
            layer.invoke("client", r, "add", (1,), ctor=CTOR)
        with layer.session("step"):
            a = layer.invoke("client", r, "add", (1,), ctor=CTOR)
            b = layer.invoke("client", r, "add", (1,), ctor=CTOR)
            c = layer.invoke("client", r, "add", (1,), ctor=CTOR)  # new
        return a, b, c, layer.invoke("client", r, "get", ctor=CTOR)

    a, b, c, final = kernel.run_main(main)
    assert (a, b) == (1, 2)  # cached
    assert c == 3  # freshly executed
    assert final == 3
    assert layer.stats.dedup_hits == 2


def test_retire_session_allows_re_execution(kernel, network):
    layer = make_layer(kernel, network, nodes=2)
    r = ref("retire")

    def main():
        with layer.session("once"):
            layer.invoke("client", r, "add", (1,), ctor=CTOR)
        retired = layer.retire_session("client", "once")
        with layer.session("once"):
            layer.invoke("client", r, "add", (1,), ctor=CTOR)
        return retired, layer.invoke("client", r, "get", ctor=CTOR)

    retired, final = kernel.run_main(main)
    assert retired == 1
    assert final == 2  # retired session re-executes


def test_thread_sessions_stay_truncated(kernel, network):
    """Each acked invocation truncates its predecessor: a thread
    session holds at most one reply per container."""
    layer = make_layer(kernel, network, nodes=1)
    r = ref("tight")

    def main():
        for _ in range(20):
            layer.invoke("client", r, "add", (1,), ctor=CTOR)

    kernel.run_main(main)
    (node,) = layer.nodes.values()
    container = node.containers[r.ident]
    assert container.sessions.entry_count() <= 1


def test_dedup_state_replicates_to_backups(kernel, network):
    """With rf=2, the backup remembers the same stamps the primary
    does — that is what makes dedup survive failover."""
    layer = make_layer(kernel, network, nodes=2)
    r = ref("rep", rf=2)

    def main():
        layer.invoke("client", r, "add", (1,), ctor=CTOR)

    kernel.run_main(main)
    primary, backup = layer.placement_of(r)
    psessions = layer.nodes[primary].containers[r.ident].sessions
    bsessions = layer.nodes[backup].containers[r.ident].sessions
    assert psessions.sessions() == bsessions.sessions()
    assert bsessions.entry_count() == psessions.entry_count() >= 1


def test_sessions_migrate_with_rebalanced_objects(kernel, network):
    """Adding a node moves objects to new consistent-hash owners; the
    dedup tables move with them, so a named-session replay against the
    new owner still hits."""
    layer = make_layer(kernel, network, nodes=1)
    r = ref("mover")
    timings = DEFAULT_CONFIG.dso

    def main():
        with layer.session("migrate-job"):
            layer.invoke("client", r, "add", (5,), ctor=CTOR)
        before = layer.placement_of(r)
        layer.add_node()
        sleep(timings.view_change_pause + timings.transfer_per_object * 4
              + 1.0)
        after = layer.placement_of(r)
        with layer.session("migrate-job"):
            replayed = layer.invoke("client", r, "add", (5,), ctor=CTOR)
        return before, after, replayed, layer.invoke(
            "client", r, "get", ctor=CTOR)

    before, after, replayed, final = kernel.run_main(main)
    assert replayed == 5
    assert final == 5
    assert layer.stats.dedup_hits == 1


def test_sessions_survive_passivate_restore(kernel, network):
    """Passivation snapshots include the session table: replays dedup
    even after the object was lost and restored from the store."""
    layer = make_layer(kernel, network, nodes=2)
    store = ObjectStore(kernel)
    r = ref("phoenix")

    def main():
        with layer.session("checkpointed"):
            layer.invoke("client", r, "add", (3,), ctor=CTOR)
        key = layer.passivate("client", r, store)
        layer.delete("client", r)
        layer.restore("client", r, store, key)
        with layer.session("checkpointed"):
            replayed = layer.invoke("client", r, "add", (3,), ctor=CTOR)
        return replayed, layer.invoke("client", r, "get", ctor=CTOR)

    replayed, final = kernel.run_main(main)
    assert replayed == 3
    assert final == 3
    assert layer.stats.dedup_hits == 1


def test_dedup_hit_emits_trace_span(kernel, network):
    kernel.enable_tracing()
    layer = make_layer(kernel, network, nodes=2)
    r = ref("traced")

    def main():
        with layer.session("traced-job"):
            layer.invoke("client", r, "add", (1,), ctor=CTOR)
        with layer.session("traced-job"):
            layer.invoke("client", r, "add", (1,), ctor=CTOR)

    kernel.run_main(main)
    hits = [s for s in kernel.tracer.spans if s.name == "dso.dedup_hit"]
    assert len(hits) == 1
    assert hits[0].attributes["session"] == "named:traced-job"
    assert hits[0].attributes["seq"] == 0
    # Client spans carry the stamp too, for cross-referencing.
    invokes = [s for s in kernel.tracer.spans
               if s.name.startswith("dso.invoke:")]
    assert all("session" in s.attributes for s in invokes)


# -- the SMR substrate's stamped path ----------------------------------------


def test_smr_invoke_with_stamp_dedups(kernel, network):
    from repro.cluster.membership import MembershipService
    from repro.cluster.node import Node
    from repro.smr.replica import ReplicatedStateMachine

    membership = MembershipService(kernel, failure_detection_delay=1.0)
    for name in ("a", "b", "c"):
        membership.join(Node(kernel, network, name))
    rsm = ReplicatedStateMachine(kernel, network, membership, Counter)

    def main():
        stamp = SessionStamp("client#s0", 0)
        first = rsm.invoke("client", "add", 1, session=stamp)
        again = rsm.invoke("client", "add", 1, session=stamp)
        return first, again

    first, again = kernel.run_main(main)
    assert first == again == 1
    for member in ("a", "b", "c"):
        assert rsm.copy_of(member).value == 1
        assert len(rsm.log_of(member)) == 1
