"""Unit tests for read-atomic multi-object transactions (repro.dso.txn).

Covers the client-side protocol on a healthy cluster: commit/abort
semantics, read-your-writes, the read-set validation that keeps every
read an atomic-visibility snapshot (history fallback and RAMP's
forced fetch), the server-side commit fence, and the documented
*absence* of atomicity in ``read_bulk`` that transactions exist to
fix.  Crash-failover behaviour lives in ``tests/chaos/test_txn_chaos``
and the fuzzer in ``tests/explore/test_txn_hunter``.
"""

import pytest

from repro.config import DEFAULT_CONFIG
from repro.dso import DsoLayer, DsoReference
from repro.errors import TxnAbortedError, TxnPrepareLostError
from repro.linearizability import find_fractured_reads
from repro.net import LatencyModel, Network
from repro.simulation import Kernel
from repro.simulation.thread import sleep, spawn


class Counter:
    """Module-level (picklable) plain shared class for interop tests."""

    def __init__(self, value=0):
        self.value = value

    def add(self, delta):
        self.value += delta
        return self.value

    def get(self):
        return self.value


CTOR = (Counter, (), {})


@pytest.fixture
def kernel():
    with Kernel(seed=37) as k:
        yield k


@pytest.fixture
def network(kernel):
    net = Network(kernel, LatencyModel(0.0001))
    net.ensure_endpoint("client")
    return net


def make_layer(kernel, network, nodes=1):
    layer = DsoLayer(kernel, network)
    for _ in range(nodes):
        layer.add_node()
    return layer


def cell_ref(key, rf=1):
    return DsoReference("TxnCell", key, persistent=rf > 1, rf=rf)


def cell_value(layer, key, rf=1):
    return layer.invoke("client", cell_ref(key, rf), "get",
                        ctor=layer._txn_ctor())


def test_commit_installs_and_reads_back(kernel, network):
    layer = make_layer(kernel, network, nodes=3)

    def main():
        with layer.transaction("client") as txn:
            txn.write("a", 1)
            txn.write("b", 2)
        with layer.transaction("client") as txn:
            return txn.read("a"), txn.read("b")

    assert kernel.run_main(main) == (1, 2)
    assert layer.stats.txns_committed == 2
    assert len(layer.txn_log) == 1
    assert layer.txn_log[0].writes == ("a", "b")


def test_read_your_writes_and_repeatable_reads(kernel, network):
    layer = make_layer(kernel, network, nodes=2)

    def main():
        with layer.transaction("client") as txn:
            txn.write("a", "old")
        with layer.transaction("client") as txn:
            first = txn.read("a")
            txn.write("a", "mine")
            buffered = txn.read("a")
            txn.write("fresh", "new")
            unread = txn.read("fresh")
            return first, buffered, unread

    assert kernel.run_main(main) == ("old", "mine", "new")


def test_abort_discards_writes(kernel, network):
    layer = make_layer(kernel, network)

    def main():
        with layer.transaction("client") as txn:
            txn.write("a", "committed")
        txn2 = layer.transaction("client")
        with txn2 as txn:
            txn.write("a", "doomed")
            txn.abort()
        return cell_value(layer, "a")

    assert kernel.run_main(main) == "committed"
    assert layer.stats.txns_aborted == 1
    assert len(layer.txn_log) == 1  # the abort never logged a commit


def test_context_manager_aborts_on_exception(kernel, network):
    layer = make_layer(kernel, network)

    def main():
        with layer.transaction("client") as txn:
            txn.write("a", "kept")
        with pytest.raises(RuntimeError):
            with layer.transaction("client") as txn:
                txn.write("a", "lost")
                raise RuntimeError("application error")
        assert txn.status == "aborted"
        return cell_value(layer, "a")

    assert kernel.run_main(main) == "kept"


def test_closed_txn_rejects_further_operations(kernel, network):
    layer = make_layer(kernel, network)

    def main():
        with layer.transaction("client") as txn:
            txn.write("a", 1)
        with pytest.raises(TxnAbortedError):
            txn.read("a")
        with pytest.raises(TxnAbortedError):
            txn.write("a", 2)

    kernel.run_main(main)


def test_read_only_txn_commits_without_a_commit_record(kernel, network):
    layer = make_layer(kernel, network)

    def main():
        with layer.transaction("client") as txn:
            txn.write("a", 1)
        with layer.transaction("client") as txn:
            txn.read("a")
        return txn.status

    assert kernel.run_main(main) == "committed"
    assert len(layer.txn_log) == 1
    # ... but its observations are recorded for the atomicity pass.
    assert any(r.reader.startswith("ro:") or r.reads
               for r in layer.txn_reads)


def test_history_fallback_preserves_atomic_visibility(kernel, network):
    """A reader that saw txn1's 'a' must not see txn2's 'b'.

    txn2 wrote both keys after the reader observed 'a'; returning
    txn2's newer 'b' would fracture txn2 (its 'a' was missed), so the
    read falls back to the older committed sibling from the history.
    """
    layer = make_layer(kernel, network, nodes=3)

    def main():
        with layer.transaction("client") as txn:
            txn.write("a", "a1")
            txn.write("b", "b1")
        reader = layer.transaction("client")
        with reader as txn:
            seen_a = txn.read("a")
            with layer.transaction("client") as writer:
                writer.write("a", "a2")
                writer.write("b", "b2")
            seen_b = txn.read("b")
            again = txn.read("a")
        return seen_a, seen_b, again

    assert kernel.run_main(main) == ("a1", "b1", "a1")
    assert find_fractured_reads(layer.txn_log, layer.txn_reads) == []


def test_forced_fetch_from_prepared(kernel, network):
    """Having read a committed key of a half-committed transaction,
    the sibling read is served from the *prepared* entry (RAMP's
    forced fetch) — the committed half proves the commit point."""
    layer = make_layer(kernel, network, nodes=2)

    def main():
        cid = next(layer._txn_cids)
        for key, value in (("c", "c1"), ("d", "d1")):
            layer.invoke("client", cell_ref(key), "__txn_prepare__",
                         args=("manual", cid, value, ("c", "d")),
                         ctor=layer._txn_ctor())
        # Commit lands on 'c' only; 'd' is still merely prepared.
        layer.invoke("client", cell_ref("c"), "__txn_commit__",
                     args=("manual", cid, "c1", ("c", "d")))
        with layer.transaction("client") as txn:
            return txn.read("c"), txn.read("d")

    assert kernel.run_main(main) == ("c1", "d1")
    assert layer.stats.txn_forced_fetches == 1


def test_commit_fence_rejects_unprepared_commit(kernel, network):
    """A commit for a transaction the primary never saw prepared is
    fenced out before installing anything — the failover case where
    the unreplicated prepare died with the old primary."""
    layer = make_layer(kernel, network)

    def main():
        cell_value(layer, "k")  # create
        with pytest.raises(TxnPrepareLostError):
            layer.invoke("client", cell_ref("k"), "__txn_commit__",
                         args=("ghost", 99, "v", ("k",)))
        return cell_value(layer, "k")

    assert kernel.run_main(main) is None  # nothing was installed
    assert layer.stats.txn_fence_trips == 1


def test_deferred_invoke_runs_only_on_commit(kernel, network):
    layer = make_layer(kernel, network)
    counter = DsoReference("Counter", "n")

    def main():
        txn = layer.transaction("client")
        with txn as t:
            t.invoke(counter, "add", (1,), ctor=CTOR)
            t.abort()
        aborted = layer.invoke("client", counter, "get", ctor=CTOR)
        with layer.transaction("client") as t:
            t.write("a", 1)
            t.invoke(counter, "add", (1,), ctor=CTOR)
        committed = layer.invoke("client", counter, "get", ctor=CTOR)
        return aborted, committed

    assert kernel.run_main(main) == (0, 1)


def test_interop_with_plain_reads(kernel, network):
    """Committed TxnCell state is visible to the non-transactional
    surface: ``get`` via invoke and the read_bulk sweep."""
    layer = make_layer(kernel, network, nodes=3)

    def main():
        with layer.transaction("client") as txn:
            for i in range(4):
                txn.write(f"k{i}", i * 10)
        refs = [cell_ref(f"k{i}") for i in range(4)]
        return layer.read_bulk("client", refs)

    assert kernel.run_main(main) == [0, 10, 20, 30]


def test_pinned_prepares_drain_after_commit(kernel, network):
    """No replica is left holding prepared soft state or pinned
    session entries once every transaction resolved."""
    layer = make_layer(kernel, network, nodes=3)

    def main():
        with layer.transaction("client") as txn:
            txn.write("a", 1)
            txn.write("b", 2)
        with layer.transaction("client") as txn:
            txn.write("a", 3)
            txn.abort()

    kernel.run_main(main)
    for node in layer.nodes.values():
        for container in node.containers.values():
            assert container.pinned_txns() == set()


def test_read_bulk_fractures_under_mid_sweep_write(kernel, network):
    """Regression pinning read_bulk's *documented* non-atomicity.

    The sweep serves one group per hosting node, sequentially in
    primary-name order; a transaction that commits both keys between
    the two groups' service instants is observed half-old, half-new.
    This fractured read is expected behaviour (see the read_bulk
    docstring) — the atomic alternative is reading inside a
    transaction, asserted at the end.
    """
    layer = make_layer(kernel, network, nodes=3)
    per_read = 0.02  # stretch each group's service window to ~20ms

    def main():
        # Find two cells hosted by *different* primaries, ordered so
        # key_a's group is served first (groups sort by primary name).
        key_a, key_b = None, None
        for i in range(32):
            key = f"frac-{i}"
            cell_value(layer, key)  # create + place
            primary = layer.placement_of(cell_ref(key))[0]
            if key_a is None:
                key_a, primary_a = key, primary
            elif primary != primary_a:
                key_b, primary_b = key, primary
                break
        assert key_b is not None
        if primary_b < primary_a:
            key_a, key_b = key_b, key_a
        with layer.transaction("client") as txn:
            txn.write(key_a, "old")
            txn.write(key_b, "old")

        results = {}

        def sweep():
            results["bulk"] = layer.read_bulk(
                "client", [cell_ref(key_a), cell_ref(key_b)],
                per_read_cost=per_read)

        reader = spawn(sweep, name="bulk-reader")
        # Commit mid-sweep: after group A's service instant (~20ms),
        # before group B's (~40ms).
        sleep(per_read * 1.25)
        with layer.transaction("client") as txn:
            txn.write(key_a, "new")
            txn.write(key_b, "new")
        reader.join()

        with layer.transaction("client") as txn:
            atomic = [txn.read(key_a), txn.read(key_b)]
        return results["bulk"], atomic

    bulk, atomic = kernel.run_main(main)
    # The sweep fractured the writer: stale first key, fresh second.
    assert bulk == ["old", "new"]
    # The transactional read of the same keys never fractures.
    assert atomic == ["new", "new"]
    assert find_fractured_reads(layer.txn_log, layer.txn_reads) == []
