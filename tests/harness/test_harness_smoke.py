"""Smoke tests: every harness runs at reduced scale and its report
renders.  Full-scale shapes are asserted in benchmarks/."""

import pytest

from repro.harness import (
    ablation_shipping,
    fig2a_throughput,
    fig2b_montecarlo,
    fig3_scaleup,
    fig4_logreg,
    fig6_mapsync,
    fig7a_barrier,
    fig7b_breakdown,
    fig7c_santa,
    fig8_persistence,
    serving,
    table2_latency,
    table4_loc,
)


def test_table2_small():
    result = table2_latency.run(ops=40)
    report = table2_latency.report(result)
    assert "Table 2" in report
    assert set(result.averages) == set(table2_latency.PAPER)


def test_fig2a_small():
    result = fig2a_throughput.run(threads=10, window=0.05)
    report = fig2a_throughput.report(result)
    assert "Fig. 2a" in report
    assert all(v > 0 for v in result.throughput.values())


def test_fig2b_small():
    result = fig2b_montecarlo.run(thread_counts=(1, 8),
                                  draws=2_000_000)
    assert result.speedup(8) > 5
    assert "Fig. 2b" in fig2b_montecarlo.report(result)


def test_fig3_small():
    result = fig3_scaleup.run(thread_counts=(1, 16), iterations=2)
    assert result.curves["vm-8-cores"][16] < 0.6
    assert result.curves["crucial"][16] > 0.9
    assert "Fig. 3" in fig3_scaleup.report(result)


def test_fig4_small():
    result = fig4_logreg.run(iterations=5, workers=10)
    assert result.crucial_iter < result.spark_iter
    assert "Fig. 4" in fig4_logreg.report(result)


def test_fig6_small():
    result = fig6_mapsync.run(n_threads=10, draws=2_000_000,
                              repetitions=1)
    assert result.mean("auto-reduce") < result.mean("sqs")
    assert "Fig. 6" in fig6_mapsync.report(result)


def test_fig7a_small():
    result = fig7a_barrier.run(thread_counts=(4,))
    assert result.waits[("crucial", 4)] < result.waits[("sns-sqs", 4)]
    assert "Fig. 7a" in fig7a_barrier.report(result)


def test_fig7b_small():
    result = fig7b_breakdown.run(threads=4, iterations=2)
    stages = result.phases["per-iteration stages"]
    barrier = result.phases["single stage + barrier"]
    assert stages["s3_read"] > barrier["s3_read"]
    assert "Fig. 7b" in fig7b_breakdown.report(result)


def test_fig7c_small():
    result = fig7c_santa.run(deliveries=4)
    assert all(r.deliveries == 4 for r in result.results.values())
    assert "Fig. 7c" in fig7c_santa.report(result)


def test_fig8_small():
    result = fig8_persistence.run(duration=30.0, n_threads=10,
                                  n_objects=30)
    assert result.steady() > 0
    assert result.run.total > 0
    assert "Fig. 8" in fig8_persistence.report(result)


def test_table4_report():
    result = table4_loc.run()
    assert len(result.rows) == 4
    assert "Table 4" in table4_loc.report(result)


def test_fig2a_report_contains_ratios():
    result = fig2a_throughput.run(threads=8, window=0.05)
    report = fig2a_throughput.report(result)
    assert "complex ops" in report


@pytest.mark.parametrize("module,marker", [
    (table2_latency, "Table 2"),
    (fig2b_montecarlo, "512x"),
])
def test_paper_values_documented(module, marker):
    import inspect

    assert marker.lower().replace(" ", "") in \
        inspect.getsource(module).lower().replace(" ", "")


def test_ablation_small():
    result = ablation_shipping.run(worker_counts=(4, 8))
    report = ablation_shipping.report(result)
    assert "Ablation" in report
    m = result.measurements
    assert m[("data-shipping", 8)][1] > m[("method-shipping", 8)][1]


def test_serving_small():
    result = serving.run(base_rate=15.0, peak_rate=90.0, duration=14.0)
    report = serving.report(result)
    assert "open-loop serving" in report
    assert set(result.points) == set(serving.POINTS)
    for point in result.points.values():
        assert point.errors == 0
        assert point.requests > 0
        assert point.sustained_tput > 0
