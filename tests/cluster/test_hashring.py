"""Unit and property-based tests for consistent hashing."""

from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import ConsistentHashRing

MEMBERS = ["node-0", "node-1", "node-2", "node-3", "node-4"]


def test_empty_ring_lookup_fails():
    ring = ConsistentHashRing()
    with pytest.raises(LookupError):
        ring.lookup("k")


def test_lookup_is_deterministic():
    ring_a = ConsistentHashRing(MEMBERS)
    ring_b = ConsistentHashRing(MEMBERS)
    for i in range(100):
        assert ring_a.lookup(f"key-{i}") == ring_b.lookup(f"key-{i}")


def test_lookup_returns_member():
    ring = ConsistentHashRing(MEMBERS)
    for i in range(100):
        assert ring.lookup(("T", f"key-{i}")) in MEMBERS


def test_balance():
    ring = ConsistentHashRing(MEMBERS, virtual_nodes=256)
    counts = Counter(ring.lookup(f"key-{i}") for i in range(10_000))
    expected = 10_000 / len(MEMBERS)
    for member in MEMBERS:
        assert counts[member] == pytest.approx(expected, rel=0.35)


def test_duplicate_member_rejected():
    ring = ConsistentHashRing(["a"])
    with pytest.raises(ValueError):
        ring.add("a")


def test_remove_unknown_member_rejected():
    ring = ConsistentHashRing(["a"])
    with pytest.raises(ValueError):
        ring.remove("b")


def test_preference_list_distinct_and_ordered():
    ring = ConsistentHashRing(MEMBERS)
    for i in range(200):
        owners = ring.preference_list(f"key-{i}", 3)
        assert len(owners) == 3
        assert len(set(owners)) == 3
        assert owners[0] == ring.lookup(f"key-{i}")


def test_preference_list_caps_at_membership():
    ring = ConsistentHashRing(["a", "b"])
    assert len(ring.preference_list("k", 5)) == 2


def test_invalid_virtual_nodes():
    with pytest.raises(ValueError):
        ConsistentHashRing(virtual_nodes=0)


@settings(max_examples=25, deadline=None)
@given(st.sets(st.sampled_from(MEMBERS), min_size=2, max_size=5),
       st.sampled_from(MEMBERS))
def test_monotonicity_on_removal(members, to_remove):
    """Removing a member only moves keys owned by that member."""
    if to_remove not in members:
        members = set(members) | {to_remove}
    before = ConsistentHashRing(sorted(members))
    keys = [f"key-{i}" for i in range(300)]
    owners_before = {k: before.lookup(k) for k in keys}
    before.remove(to_remove)
    for key in keys:
        owner_after = before.lookup(key)
        if owners_before[key] != to_remove:
            assert owner_after == owners_before[key]
        else:
            assert owner_after != to_remove


@settings(max_examples=25, deadline=None)
@given(st.sets(st.sampled_from(MEMBERS[:4]), min_size=1, max_size=4))
def test_monotonicity_on_addition(members):
    """Adding a member only moves keys *to* the new member."""
    ring = ConsistentHashRing(sorted(members))
    keys = [f"key-{i}" for i in range(300)]
    owners_before = {k: ring.lookup(k) for k in keys}
    ring.add("node-new")
    for key in keys:
        owner_after = ring.lookup(key)
        assert owner_after in (owners_before[key], "node-new")


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=1, max_value=4), st.text(min_size=1, max_size=20))
def test_preference_list_prefix_stability(rf, key):
    """preference_list(k, n) is a prefix of preference_list(k, n+1)."""
    ring = ConsistentHashRing(MEMBERS)
    shorter = ring.preference_list(key, rf)
    longer = ring.preference_list(key, rf + 1)
    assert tuple(longer[:len(shorter)]) == tuple(shorter)
