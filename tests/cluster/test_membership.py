"""Unit tests for the membership/view service."""

import pytest

from repro.cluster import MembershipService, Node
from repro.net import LatencyModel, Network
from repro.simulation import Kernel


@pytest.fixture
def kernel():
    with Kernel(seed=3) as k:
        yield k


@pytest.fixture
def network(kernel):
    return Network(kernel, LatencyModel(0.001))


def make_node(kernel, network, name):
    return Node(kernel, network, name)


def test_initial_view_is_empty(kernel):
    service = MembershipService(kernel)
    assert service.view.members == ()
    assert service.view.view_id == 0


def test_join_installs_new_view(kernel, network):
    service = MembershipService(kernel)
    node = make_node(kernel, network, "n1")
    view = service.join(node)
    assert view.members == ("n1",)
    assert view.view_id == 1
    assert "n1" in service.view


def test_views_are_totally_ordered(kernel, network):
    service = MembershipService(kernel)
    for i in range(4):
        service.join(make_node(kernel, network, f"n{i}"))
    ids = [v.view_id for v in service.history]
    assert ids == sorted(ids)
    assert len(set(ids)) == len(ids)


def test_duplicate_join_rejected(kernel, network):
    service = MembershipService(kernel)
    node = make_node(kernel, network, "n1")
    service.join(node)
    with pytest.raises(ValueError):
        service.join(node)


def test_crash_detected_after_delay(kernel, network):
    service = MembershipService(kernel, failure_detection_delay=4.0)
    n1 = make_node(kernel, network, "n1")
    n2 = make_node(kernel, network, "n2")
    service.join(n1)
    service.join(n2)
    n1.crash()
    service.report_crash("n1")
    kernel.run(until=3.9)
    assert "n1" in service.view  # not yet detected
    kernel.run(until=4.1)
    assert "n1" not in service.view
    assert service.view.members == ("n2",)


def test_listener_receives_views_in_order(kernel, network):
    service = MembershipService(kernel)
    received = []
    service.subscribe(received.append)
    service.join(make_node(kernel, network, "n1"))
    service.join(make_node(kernel, network, "n2"))
    service.leave("n1")
    assert [v.members for v in received] == [("n1",), ("n1", "n2"), ("n2",)]


def test_leave_unknown_member_is_idempotent(kernel, network):
    """``leave`` of a non-member is a no-op returning the current
    view: an autoscaler's scale-in decision can race the failure
    detector expelling the same node, and the second departure must
    not blow up the controller."""
    service = MembershipService(kernel)
    service.join(make_node(kernel, network, "n1"))
    before = service.view
    assert service.leave("ghost") is before
    assert service.view.view_id == before.view_id
    service.leave("n1")
    after = service.view
    assert service.leave("n1") is after  # already gone: still a no-op
