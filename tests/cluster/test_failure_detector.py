"""Tests for the heartbeat failure detector."""

import pytest

from repro.cluster import MembershipService, Node
from repro.cluster.failure_detector import HeartbeatFailureDetector
from repro.net import LatencyModel, Network
from repro.simulation import Kernel
from repro.simulation.thread import sleep


def build(kernel, members=3, period=0.5, timeout=2.0):
    network = Network(kernel, LatencyModel(0.0005))
    membership = MembershipService(kernel)
    nodes = {}
    for i in range(members):
        node = Node(kernel, network, f"n{i}")
        nodes[node.name] = node
        membership.join(node)
    detector = HeartbeatFailureDetector(kernel, network, membership,
                                        period=period, timeout=timeout)
    detector.start()
    return network, membership, nodes, detector


def test_detects_crash_within_bound():
    with Kernel(seed=191) as kernel:
        _net, membership, nodes, detector = build(kernel)

        def main():
            sleep(1.0)
            nodes["n1"].crash()
            crash_time = kernel.now
            while "n1" in membership.view.members:
                sleep(0.1)
            return kernel.now - crash_time

        latency = kernel.run_main(main)
    assert latency <= detector.detection_bound() + 0.2


def test_no_false_positives_on_live_members():
    with Kernel(seed=192) as kernel:
        _net, membership, _nodes, _detector = build(kernel)

        def main():
            sleep(20.0)
            return membership.view.members

        members = kernel.run_main(main)
    assert members == ("n0", "n1", "n2")


def test_invalid_timeout_rejected():
    with Kernel(seed=193) as kernel:
        network = Network(kernel, LatencyModel(0.0005))
        membership = MembershipService(kernel)
        with pytest.raises(ValueError):
            HeartbeatFailureDetector(kernel, network, membership,
                                     period=2.0, timeout=1.0)


def test_double_start_rejected():
    with Kernel(seed=194) as kernel:
        _net, _mem, _nodes, detector = build(kernel)
        with pytest.raises(RuntimeError):
            detector.start()


def test_multiple_crashes_all_detected():
    with Kernel(seed=195) as kernel:
        _net, membership, nodes, _detector = build(kernel, members=4)

        def main():
            nodes["n0"].crash()
            sleep(1.0)
            nodes["n2"].crash()
            sleep(10.0)
            return membership.view.members

        members = kernel.run_main(main)
    assert members == ("n1", "n3")


def test_dso_failover_with_heartbeat_detector():
    """End to end: DSO failover driven by detection, not by report."""
    from repro.dso import DsoLayer, DsoReference
    from repro.dso.layer import KvSlot

    with Kernel(seed=196) as kernel:
        network = Network(kernel, LatencyModel(0.0001))
        network.ensure_endpoint("client")
        layer = DsoLayer(kernel, network)
        for _ in range(3):
            layer.add_node()
        layer.enable_failure_detector(period=0.5, timeout=2.0)
        ref = DsoReference("KvSlot", "hb", persistent=True, rf=2)

        def main():
            layer.invoke("client", ref, "set", (5,),
                         ctor=(KvSlot, (), {}))
            layer.crash_node(layer.placement_of(ref)[0])
            return layer.invoke("client", ref, "get",
                                ctor=(KvSlot, (), {}))

        assert kernel.run_main(main) == 5
