"""Warm-read latency with the lease cache on, vs the Table 2 baseline."""

import json

import pytest

from conftest import OUT_DIR, archive, full_scale
from repro.harness import cache_readpath, table2_latency


def test_cache_readpath(benchmark):
    ops = 2000 if full_scale() else 300
    result = benchmark.pedantic(cache_readpath.run, kwargs={"ops": ops},
                                rounds=1, iterations=1)
    report = cache_readpath.report(result)
    archive("cache_readpath", report)
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / "BENCH_readpath.json").write_text(json.dumps({
        "ops": result.ops,
        "uncached_get_us": result.uncached_get * 1e6,
        "cached_get_us": result.cached_get * 1e6,
        "cached_put_us": result.cached_put * 1e6,
        "speedup": result.speedup,
        "cache_hits": result.hits,
        "cache_misses": result.misses,
        "lease_revocations": result.revocations,
    }, indent=2) + "\n")

    # The acceptance bar: warm reads at least 5x cheaper than the
    # always-ship read path.
    assert result.speedup >= 5.0, report
    # Every measured warm read was a cache hit (one cold miss to grant).
    assert result.hits >= result.ops
    # The write path is unchanged: both the cache-on PUT and the
    # cache-off GET still sit on the Table 2 crucial calibration.
    paper_put, paper_get = table2_latency.PAPER["crucial"]
    assert result.cached_put == pytest.approx(paper_put, rel=0.15)
    assert result.uncached_get == pytest.approx(paper_get, rel=0.15)
