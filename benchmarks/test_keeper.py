"""Coordination service: recipes, fan-out, expiry, election floors."""

import json

from conftest import OUT_DIR, archive, full_scale
from repro.harness import keeper
from repro.harness.keeper import SESSION_TTL


def test_keeper(benchmark):
    kwargs = {"watchers": 300, "failovers": 3, "updates": 4} \
        if full_scale() else {}
    result = benchmark.pedantic(keeper.run, kwargs=kwargs,
                                rounds=1, iterations=1)
    report = keeper.report(result)
    archive("keeper", report)
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / "BENCH_keeper.json").write_text(json.dumps({
        "session_ttl": SESSION_TTL,
        "barrier_parties": result.barrier_parties,
        "barrier_rounds": result.barrier_rounds,
        "barrier_passes": result.barrier_passes,
        "sem_workers": result.sem_workers,
        "sem_permits": result.sem_permits,
        "sem_acquisitions": result.sem_acquisitions,
        "sem_max_concurrent": result.sem_max_concurrent,
        "failovers": result.failovers,
        "convergences_s": result.convergences_s,
        "watchers": result.watchers,
        "updates": result.updates,
        "fanout_p50_ms": result.fanout_p50_ms,
        "fanout_p99_ms": result.fanout_p99_ms,
        "expiry_detections_s": result.expiry_detections_s,
        "watch_violations": result.watch_violations,
        "load_requests": result.load_requests,
        "load_errors": result.load_errors,
    }, indent=2) + "\n")

    # Exact rendezvous counts: the recipes match the scenario sizes.
    assert result.barrier_passes \
        == result.barrier_parties * result.barrier_rounds, report
    assert result.sem_acquisitions == result.sem_workers, report
    assert result.sem_max_concurrent == result.sem_permits, report
    # Every leader failover converges, within lease expiry + one
    # watch hop (the chaos suite pins the same bound per seed).
    assert len(result.convergences_s) == result.failovers, report
    assert result.convergence_max_s <= 2 * SESSION_TTL, report
    # A dead holder's ephemerals vanish within twice the lease TTL.
    assert result.expiry_max_s <= 2 * SESSION_TTL, report
    # Watch fan-out tail: one SQS delivery hop, heavy tail included.
    assert result.fanout_p99_ms <= 2000.0, report
    # Ordered delivery held for every watcher; background load clean.
    assert result.watch_violations == 0, report
    assert result.load_errors == 0, report
