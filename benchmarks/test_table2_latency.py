"""Table 2: 1 KB access latency across the five storage systems."""

import pytest

from conftest import archive, full_scale
from repro.harness import table2_latency


def test_table2_latency(benchmark):
    ops = 2000 if full_scale() else 300
    result = benchmark.pedantic(table2_latency.run, kwargs={"ops": ops},
                                rounds=1, iterations=1)
    report = table2_latency.report(result)
    archive("table2_latency", report)

    for system, (paper_put, paper_get) in table2_latency.PAPER.items():
        put, get = result.averages[system]
        assert put == pytest.approx(paper_put, rel=0.15), system
        assert get == pytest.approx(paper_get, rel=0.15), system
    # Order-of-magnitude separation: S3 vs in-memory systems.
    assert result.averages["s3"][1] > 10 * result.averages["crucial"][1]
    # Replication roughly doubles latency.
    ratio = (result.averages["crucial-rf2"][1]
             / result.averages["crucial"][1])
    assert 1.8 < ratio < 2.6
