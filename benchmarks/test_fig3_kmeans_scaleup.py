"""Fig. 3: k-means scale-up — Crucial vs single-machine VMs."""

from conftest import archive, full_scale
from repro.harness import fig3_scaleup


def test_fig3_kmeans_scaleup(benchmark):
    counts = ((1, 8, 16, 80, 160, 320) if full_scale()
              else (1, 16, 160, 320))
    result = benchmark.pedantic(
        fig3_scaleup.run, kwargs={"thread_counts": counts},
        rounds=1, iterations=1)
    report = fig3_scaleup.report(result)
    archive("fig3_kmeans_scaleup", report)

    crucial = result.curves["crucial"]
    vm8 = result.curves["vm-8-cores"]
    vm16 = result.curves["vm-16-cores"]
    # Crucial stays within ~10-15% of the optimum at every scale.
    assert crucial[160] > 0.85
    assert crucial[320] > 0.80
    # The VMs collapse once threads exceed cores.
    assert vm8[160] < 0.10
    assert vm16[160] < 0.20
    assert vm16[16] > 0.95
