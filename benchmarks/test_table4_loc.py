"""Table 4: lines changed to port each application to Crucial."""

from conftest import archive
from repro.harness import table4_loc


def test_table4_loc(benchmark):
    result = benchmark.pedantic(table4_loc.run, rounds=1, iterations=1)
    report = table4_loc.report(result)
    archive("table4_loc", report)

    # Porting is a handful of changed lines per application (the
    # paper's Java programs are longer, so fractions differ; the
    # changed-line counts match its order of magnitude).
    for row in result.rows:
        assert row.changed_lines <= 8, row.application
        assert row.changed_fraction < 0.15, row.application
