"""Fig. 8: inference serving under storage-node churn."""

from conftest import archive, full_scale
from repro.harness import fig8_persistence


def test_fig8_persistence(benchmark):
    duration = 360.0 if full_scale() else 120.0
    result = benchmark.pedantic(
        fig8_persistence.run, kwargs={"duration": duration},
        rounds=1, iterations=1)
    report = fig8_persistence.report(result)
    archive("fig8_persistence", report)

    steady = result.steady()
    degraded = result.degraded()
    recovered = result.recovered()
    # Paper: ~490 inferences/s steady state.
    assert 380 < steady < 600
    # Paper: the crash costs ~30% of throughput, but never blocks.
    drop = 1.0 - degraded / steady
    assert 0.2 < drop < 0.45
    assert degraded > 100
    # Paper: initial throughput restored after the new node joins.
    assert recovered > 0.9 * steady
