"""Ablation: method shipping vs data shipping (Section 4.2)."""

from conftest import archive, full_scale
from repro.harness import ablation_shipping


def test_ablation_method_shipping(benchmark):
    counts = (8, 20, 40, 80) if full_scale() else (8, 20, 40)
    result = benchmark.pedantic(
        ablation_shipping.run, kwargs={"worker_counts": counts},
        rounds=1, iterations=1)
    report = ablation_shipping.report(result)
    archive("ablation_shipping", report)

    m = result.measurements
    big = counts[-1]
    small = counts[0]
    # O(N) vs O(N^2): message growth is linear vs quadratic.
    method_growth = (m[("method-shipping", big)][1]
                     / m[("method-shipping", small)][1])
    data_growth = (m[("data-shipping", big)][1]
                   / m[("data-shipping", small)][1])
    scale = big / small
    assert method_growth < 2.0 * scale
    assert data_growth > 0.5 * scale ** 2
    # At the largest N, data shipping is slower in wall time too.
    assert m[("data-shipping", big)][0] > m[("method-shipping", big)][0]
