"""Fig. 7a: barrier wait times, Crucial vs SNS+SQS."""

from conftest import archive, full_scale
from repro.harness import fig7a_barrier


def test_fig7a_barrier(benchmark):
    kwargs = ({"thread_counts": (4, 20, 80, 320),
               "crucial_only": (1800,)} if full_scale()
              else {"thread_counts": (4, 80, 320)})
    result = benchmark.pedantic(fig7a_barrier.run, kwargs=kwargs,
                                rounds=1, iterations=1)
    report = fig7a_barrier.report(result)
    archive("fig7a_barrier", report)

    waits = result.waits
    # Crucial's barrier is at least an order of magnitude faster.
    assert waits[("sns-sqs", 320)] > 8 * waits[("crucial", 320)]
    # Crucial stays in the tens of milliseconds at 320 threads.
    assert waits[("crucial", 320)] < 0.15
    # SNS+SQS is hundreds of milliseconds even at 4 threads.
    assert waits[("sns-sqs", 4)] > 0.2
    if ("crucial", 1800) in waits:
        # Paper: 68 ms on average with 1800 threads.
        assert waits[("crucial", 1800)] < 0.25
