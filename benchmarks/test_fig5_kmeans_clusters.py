"""Fig. 5: k-means completion time vs number of clusters."""

from conftest import archive, full_scale
from repro.harness import fig5_kmeans


def test_fig5_kmeans_clusters(benchmark):
    ks = (25, 50, 100, 200) if full_scale() else (25, 100, 200)
    result = benchmark.pedantic(fig5_kmeans.run, kwargs={"ks": ks},
                                rounds=1, iterations=1)
    report = fig5_kmeans.report(result)
    archive("fig5_kmeans_clusters", report)

    iteration = result.iteration_times
    # Paper: k=25 Crucial ~40% faster than Spark (20.4s vs 34s).
    gain = 1.0 - iteration[("crucial", 25)] / iteration[("spark", 25)]
    assert 0.25 < gain < 0.55
    assert 15 < iteration[("crucial", 25)] < 26
    assert 28 < iteration[("spark", 25)] < 42
    # The relative gap narrows as k grows.
    gap_small = gain
    gap_large = 1.0 - (iteration[("crucial", 200)]
                       / iteration[("spark", 200)])
    assert gap_large < gap_small
    # The Redis-backed variant is always slower than Crucial.
    for k in ks:
        assert iteration[("redis", k)] > iteration[("crucial", k)]
