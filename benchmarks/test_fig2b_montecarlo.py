"""Fig. 2b: Monte Carlo scalability up to 800 cloud threads."""

import math

from conftest import archive, full_scale
from repro.harness import fig2b_montecarlo


def test_fig2b_montecarlo(benchmark):
    counts = ((1, 50, 100, 200, 400, 800) if full_scale()
              else (1, 50, 200, 800))
    result = benchmark.pedantic(
        fig2b_montecarlo.run, kwargs={"thread_counts": counts},
        rounds=1, iterations=1)
    report = fig2b_montecarlo.report(result)
    archive("fig2b_montecarlo", report)

    # Paper: 512x speedup at 800 threads, 8.4G points/s.
    speedup = result.speedup(800)
    assert 400 < speedup < 700
    assert 6e9 < result.runs[800][2] < 10e9
    # Scaling is near-linear early on.
    assert result.speedup(50) > 40
    # And the estimates actually converge to pi.
    for threads, (estimate, _t, _pps) in result.runs.items():
        assert abs(estimate - math.pi) < 1e-3, threads
