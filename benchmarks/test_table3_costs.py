"""Table 3: monetary costs of the ML experiments."""

from conftest import archive
from repro.harness import table3_costs


def test_table3_costs(benchmark):
    result = benchmark.pedantic(table3_costs.run, rounds=1, iterations=1)
    report = table3_costs.report(result)
    archive("table3_costs", report)

    costs = result.costs
    k25_crucial = costs[("k-means k=25", "crucial")]
    k25_spark = costs[("k-means k=25", "spark")]
    # Paper: similar cost at k=25 (Crucial is much faster there).
    assert abs(k25_crucial.total_dollars - k25_spark.total_dollars) \
        < 0.12
    # Paper: Crucial costlier when compute dominates (k=200).
    k200_crucial = costs[("k-means k=200", "crucial")]
    k200_spark = costs[("k-means k=200", "spark")]
    assert k200_crucial.total_dollars > k200_spark.total_dollars
    # Magnitudes within ~40% of Table 3.
    assert 0.15 < k25_crucial.total_dollars < 0.35
    assert 0.3 < k200_crucial.total_dollars < 0.95
