"""Fig. 6: synchronizing a map phase, five strategies."""

from conftest import archive, full_scale
from repro.harness import fig6_mapsync


def test_fig6_mapsync(benchmark):
    repetitions = 3 if full_scale() else 2
    result = benchmark.pedantic(
        fig6_mapsync.run, kwargs={"repetitions": repetitions},
        rounds=1, iterations=1)
    report = fig6_mapsync.report(result)
    archive("fig6_mapsync", report)

    mean = result.mean
    # Paper ordering: polling (SQS/S3) slow, in-memory faster,
    # futures better, auto-reduce best.
    assert mean("auto-reduce") <= mean("future")
    assert mean("future") < mean("grid-polling")
    assert mean("grid-polling") < mean("s3-polling")
    assert mean("sqs") > mean("future") * 3
    assert mean("sqs") > mean("s3-polling") * 0.5  # among the slowest
    # Paper: auto-reduce at least 2x faster than the S3 solution.
    assert mean("s3-polling") / mean("auto-reduce") > 2.0
