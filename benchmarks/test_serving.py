"""Open-loop serving under a diurnal ramp: static vs autoscaled."""

import json
from dataclasses import asdict

from conftest import OUT_DIR, archive, full_scale
from repro.harness import serving


def test_serving(benchmark):
    kwargs = {"duration": 56.0, "peak_rate": 400.0} if full_scale() else {}
    result = benchmark.pedantic(serving.run, kwargs=kwargs,
                                rounds=1, iterations=1)
    report = serving.report(result)
    archive("serving", report)
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / "BENCH_serving.json").write_text(json.dumps({
        "duration": result.duration,
        "base_rate": result.base_rate,
        "peak_rate": result.peak_rate,
        "requests": result.requests,
        "points": [
            {
                "label": point.label,
                "nodes_start": point.nodes_start,
                "nodes_end": point.nodes_end,
                "requests": point.requests,
                "errors": point.errors,
                "sustained_tput": point.sustained_tput,
                "p50_ms": point.p50_ms,
                "p99_ms": point.p99_ms,
                "p999_ms": point.p999_ms,
                "dollars": point.dollars,
                "node_seconds": point.node_seconds,
                "cold_starts": point.cold_starts,
                "acked_writes": point.acked_writes,
                "scale_events": [asdict(e) for e in point.scale_events],
            }
            for point in result.points.values()
        ],
    }, indent=2) + "\n")

    small = result.points["static-small"]
    large = result.points["static-large"]
    auto = result.points["autoscaled"]
    # The elasticity claim: autoscaled beats the trough-sized cluster
    # on tail latency while staying under the peak-sized cluster's
    # dollar total.
    assert auto.p999_ms < small.p999_ms, report
    assert auto.dollars < large.dollars, report
    # Open loop: every strategy absorbs the same offered load; the
    # sustained rate is set by the arrival process, not the cluster
    # (seed-calibrated: the 50->340 ramp averages ~197 req/s).
    for point in (small, large, auto):
        assert point.sustained_tput >= 150.0, report
    # The autoscaler actually reacted: grew at the ramp, shrank after.
    actions = [e.action for e in auto.scale_events]
    assert "add-node" in actions, report
    assert "remove-node" in actions, report
    # Every request completed; writes were all acknowledged.
    for point in (small, large, auto):
        assert point.errors == 0, report
        assert point.acked_writes == small.acked_writes, report
