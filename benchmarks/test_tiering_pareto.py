"""Cost-vs-latency Pareto sweep across storage placements."""

import json
import math

from conftest import OUT_DIR, archive, full_scale
from repro.harness import tiering_pareto


def test_tiering_pareto(benchmark):
    reads = 2400 if full_scale() else 600
    result = benchmark.pedantic(tiering_pareto.run,
                                kwargs={"reads": reads},
                                rounds=1, iterations=1)
    report = tiering_pareto.report(result)
    archive("tiering_pareto", report)
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / "BENCH_tiering.json").write_text(json.dumps({
        "objects": result.objects,
        "object_bytes": result.object_bytes,
        "reads": result.reads,
        "points": [
            {
                "label": point.label,
                "mean_read_ms": point.mean_read * 1e3,
                "p99_read_ms": point.p99_read * 1e3,
                "hot_read_ms": (None if math.isnan(point.hot_read)
                                else point.hot_read * 1e3),
                "dollars_per_gb_month": point.dollars_per_gb_month,
                "request_dollars": point.request_dollars,
                "hot_fraction": point.hot_fraction,
                "promotions": point.promotions,
                "demotions": point.demotions,
            }
            for point in result.points.values()
        ],
    }, indent=2) + "\n")

    hot = result.points["all-hot"]
    cold = result.points["all-cold"]
    tiered = result.points["tiered"]
    # The Pareto claim: tiered strictly dominates all-cold on latency
    # and all-hot on dollars.
    assert tiered.mean_read < cold.mean_read, report
    assert tiered.dollars_per_gb_month < hot.dollars_per_gb_month, report
    # Hot-path floor: a read that finds its key on the memory tier
    # costs at most 1.5x the all-in-memory baseline.
    assert tiered.hot_read <= 1.5 * hot.mean_read, report
    # Cost floor: the placement policy keeps the effective capacity
    # price under half of keeping everything in RAM.
    assert tiered.dollars_per_gb_month <= 0.5 * hot.dollars_per_gb_month, \
        report
    # The policy actually moved data both ways.
    assert tiered.promotions > 0 and tiered.demotions > 0, report
