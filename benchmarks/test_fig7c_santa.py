"""Fig. 7c: the Santa Claus problem across deployments."""

from conftest import archive
from repro.harness import fig7c_santa


def test_fig7c_santa(benchmark):
    result = benchmark.pedantic(fig7c_santa.run, rounds=1, iterations=1)
    report = fig7c_santa.report(result)
    archive("fig7c_santa", report)

    # All three variants solve the problem completely.
    assert all(r.deliveries == 15 for r in result.results.values())
    # Paper: storing the objects in Crucial costs ~8%.
    assert -0.02 < result.overhead("dso") < 0.25
    # Cloud threads add little beyond invocation overhead.
    assert result.overhead("cloud") < result.overhead("dso") + 0.20
