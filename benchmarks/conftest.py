"""Shared helpers for the benchmark suite.

Each benchmark runs the corresponding experiment harness once under
pytest-benchmark (real wall time is what the benchmark records; the
scientific results are *virtual-time* measurements), prints the
paper-vs-measured report, and archives it under ``benchmarks/out/`` —
EXPERIMENTS.md is assembled from those files.

Set ``REPRO_BENCH_FULL=1`` to run every experiment at full paper scale
(more threads / repetitions / longer windows); the default sizes keep
the whole suite around a few minutes while preserving every reported
shape.
"""

import os
import pathlib

OUT_DIR = pathlib.Path(__file__).parent / "out"


def full_scale() -> bool:
    return os.environ.get("REPRO_BENCH_FULL", "") == "1"


def archive(name: str, report: str) -> None:
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / f"{name}.txt").write_text(report + "\n")
    print("\n" + report)
