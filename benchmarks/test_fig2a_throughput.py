"""Fig. 2a: throughput of simple vs complex ops, Crucial vs Redis."""

from conftest import archive, full_scale
from repro.harness import fig2a_throughput


def test_fig2a_throughput(benchmark):
    kwargs = ({"threads": 200, "window": 0.2} if full_scale()
              else {"threads": 200, "window": 0.1})
    result = benchmark.pedantic(fig2a_throughput.run, kwargs=kwargs,
                                rounds=1, iterations=1)
    report = fig2a_throughput.report(result)
    archive("fig2a_throughput", report)

    throughput = result.throughput
    # Redis wins on simple operations (optimized C core)...
    assert throughput[("redis", "simple")] > \
        throughput[("crucial", "simple")]
    # ...but Crucial's disjoint-access parallelism dominates complex
    # ones by severalfold, even with replication on.
    assert throughput[("crucial", "complex")] > \
        3.0 * throughput[("redis", "complex")]
    assert throughput[("crucial-rf2", "complex")] > \
        1.3 * throughput[("redis", "complex")]
    # Crucial is insensitive to operation complexity relative to
    # Redis: its complex/simple ratio is much higher.
    crucial_ratio = (throughput[("crucial", "complex")]
                     / throughput[("crucial", "simple")])
    redis_ratio = (throughput[("redis", "complex")]
                   / throughput[("redis", "simple")])
    assert crucial_ratio > 3.0 * redis_ratio
