"""Fig. 7b: phase breakdown — per-iteration stages vs single stage."""

from conftest import archive
from repro.harness import fig7b_breakdown


def test_fig7b_breakdown(benchmark):
    result = benchmark.pedantic(fig7b_breakdown.run, rounds=1,
                                iterations=1)
    report = fig7b_breakdown.report(result)
    archive("fig7b_breakdown", report)

    stages = result.phases["per-iteration stages"]
    barrier = result.phases["single stage + barrier"]
    # Re-reading input every iteration dominates approach (a).
    assert stages["s3_read"] > 3 * barrier["s3_read"]
    # The single-stage approach wins overall.
    assert sum(barrier.values()) < 0.75 * sum(stages.values())
    # Barrier synchronization is a small fraction of the total.
    assert barrier["sync"] < 0.1 * sum(barrier.values())
    # Compute work is identical across approaches.
    assert abs(stages["compute"] - barrier["compute"]) \
        < 0.2 * barrier["compute"]
