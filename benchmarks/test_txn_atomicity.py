"""Transaction overhead vs raw invokes, plus contention counters."""

import json

import pytest

from conftest import OUT_DIR, archive, full_scale
from repro.harness import txn_atomicity

# CI floors (virtual-time ratios, so wall-clock jitter cannot move
# them): a SIZE-key read-atomic commit must stay within 3x of SIZE
# plain sequential invokes — two pipelined rounds (prepare + commit)
# against SIZE independent round trips — and the validated snapshot
# read within 4x of the non-atomic read_bulk sweep.
OVERHEAD_RATIO_CEILING = 3.0
READ_RATIO_CEILING = 4.0


def test_txn_atomicity(benchmark):
    reps = 50 if full_scale() else 20
    clients = 8 if full_scale() else 4
    result = benchmark.pedantic(
        txn_atomicity.run,
        kwargs={"reps": reps, "clients": clients},
        rounds=1, iterations=1)
    report = txn_atomicity.report(result)
    archive("txn_atomicity", report)
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / "BENCH_txn.json").write_text(json.dumps({
        "size": result.size,
        "reps": result.reps,
        "txn_commit_us": result.txn_commit_time * 1e6,
        "seq_invoke_us": result.seq_invoke_time * 1e6,
        "overhead_ratio": result.overhead_ratio,
        "txn_read_us": result.txn_read_time * 1e6,
        "bulk_read_us": result.bulk_read_time * 1e6,
        "read_ratio": result.read_ratio,
        "contended_txns": result.contended_txns,
        "aborts": result.aborts,
        "abort_rate": result.abort_rate,
        "read_retries": result.read_retries,
        "forced_fetches": result.forced_fetches,
    }, indent=2) + "\n")

    assert result.overhead_ratio <= OVERHEAD_RATIO_CEILING, report
    assert result.read_ratio <= READ_RATIO_CEILING, report
    # The commit still does real work: it cannot be cheaper than one
    # baseline invoke (that would mean the measured window is broken).
    assert result.txn_commit_time > result.seq_invoke_time / result.size
    # No conflict detection => no contention aborts on a healthy
    # cluster; a nonzero rate means spurious aborts crept in.
    assert result.aborts == 0, report
    assert result.contended_txns > 0
