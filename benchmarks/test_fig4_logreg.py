"""Fig. 4: logistic regression — Crucial vs Spark."""

from conftest import archive, full_scale
from repro.harness import fig4_logreg


def test_fig4_logreg(benchmark):
    iterations = 100 if full_scale() else 100  # paper scale is cheap
    result = benchmark.pedantic(
        fig4_logreg.run, kwargs={"iterations": iterations},
        rounds=1, iterations=1)
    report = fig4_logreg.report(result)
    archive("fig4_logreg", report)

    # Paper: iterative phase 18% faster in Crucial (62.3s vs 75.9s).
    gain = 1.0 - result.crucial_iter / result.spark_iter
    assert 0.10 < gain < 0.35
    assert 50 < result.crucial_iter < 80
    assert 60 < result.spark_iter < 95
    # Fig. 4b: the loss decreases and both systems' math agrees.
    assert result.crucial_loss[-1] < result.crucial_loss[0] * 0.5
    drift = max(abs(a - b) for a, b in
                zip(result.crucial_loss, result.spark_loss))
    assert drift < 1e-9
