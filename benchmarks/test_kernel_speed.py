"""Kernel dispatch rate and pipelined DSO shipping vs sequential."""

import json

import pytest

from conftest import OUT_DIR, archive, full_scale
from repro.config import DEFAULT_CONFIG
from repro.harness import kernel_speed

# Conservative wall-clock floors (events/sec): a regression that
# reintroduces per-pop isinstance/getattr taxes or per-event allocation
# shows up as an order-of-magnitude drop, while CI jitter stays within
# these margins.
WAKEUPS_PER_SEC_FLOOR = 10_000
TIMERS_PER_SEC_FLOOR = 100_000
# Virtual-time amortization bar for batched shipping (ISSUE 6).
PIPELINE_SPEEDUP_FLOOR = 3.0


def test_kernel_speed(benchmark):
    events = 200_000 if full_scale() else 40_000
    ops = 2_000 if full_scale() else 400
    result = benchmark.pedantic(kernel_speed.run,
                                kwargs={"events": events, "ops": ops},
                                rounds=1, iterations=1)
    report = kernel_speed.report(result)
    archive("kernel_speed", report)
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / "BENCH_kernel.json").write_text(json.dumps({
        "wakeup_events": result.wakeup_events,
        "wakeups_per_sec": result.wakeups_per_sec,
        "timer_events": result.timer_events,
        "timers_per_sec": result.timers_per_sec,
        "ops": result.ops,
        "sync_op_us": result.sync_op_time * 1e6,
        "pipelined_op_us": result.pipelined_op_time * 1e6,
        "sync_ops_per_sec": 1.0 / result.sync_op_time,
        "pipelined_ops_per_sec": 1.0 / result.pipelined_op_time,
        "pipeline_speedup": result.pipeline_speedup,
        "batches": result.batches,
    }, indent=2) + "\n")

    assert result.wakeups_per_sec >= WAKEUPS_PER_SEC_FLOOR, report
    assert result.timers_per_sec >= TIMERS_PER_SEC_FLOOR, report
    # Batched shipping amortizes the round trip at least 3x on a
    # same-primary workload.
    assert result.pipeline_speedup >= PIPELINE_SPEEDUP_FLOOR, report
    # And costs the synchronous path nothing: the sequential PUT stays
    # on the Table 2 calibration (hops + put_service).
    timings = DEFAULT_CONFIG.dso
    expected_sync = (2 * timings.client_server.mean()
                     + timings.put_service)
    assert result.sync_op_time == pytest.approx(expected_sync, rel=0.10)
