"""Latency models for simulated services and links.

Every calibrated latency in :mod:`repro.config` is expressed as a
``LatencyModel``: a base one-way/round-trip cost, a bandwidth term for
payload size, and optional lognormal jitter.  Lognormal matches the
right-skewed tail every cloud measurement study reports, and is the
reason e.g. the S3-polling bars of Figure 6 show high variability.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class LatencyModel:
    """Sampled delay = ``base * jitter + nbytes / bandwidth``.

    ``jitter`` is lognormal with median 1 and shape ``sigma``; with
    ``sigma == 0`` the model is deterministic.  ``bandwidth`` is in
    bytes/second; ``None`` means payload size is free (already folded
    into ``base``).
    """

    base: float
    sigma: float = 0.0
    bandwidth: float | None = None

    def sample(self, rng: np.random.Generator, nbytes: int = 0) -> float:
        delay = self.base
        if self.sigma > 0.0:
            delay *= float(rng.lognormal(mean=0.0, sigma=self.sigma))
        if self.bandwidth is not None and nbytes > 0:
            delay += nbytes / self.bandwidth
        return delay

    def mean(self, nbytes: int = 0) -> float:
        """Expected delay (lognormal mean = exp(sigma^2 / 2))."""
        delay = self.base * math.exp(self.sigma ** 2 / 2.0)
        if self.bandwidth is not None and nbytes > 0:
            delay += nbytes / self.bandwidth
        return delay

    def scaled(self, factor: float) -> "LatencyModel":
        return LatencyModel(self.base * factor, self.sigma, self.bandwidth)


#: Zero-cost model (co-located processes).
ZERO = LatencyModel(0.0)
