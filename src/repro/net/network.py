"""A point-to-point message-passing network with failures.

Endpoints register by name.  A *transfer* charges the calling simulated
thread the sampled link latency; reachability honours endpoint
liveness and the current partition set.  Payloads cross the network by
``pickle`` round-trip (see :func:`ship`) so no mutable Python reference
leaks between simulated nodes — the discipline that lets the DSO layer
legitimately claim distributed-memory semantics.
"""

from __future__ import annotations

import pickle
from typing import Any

from repro.errors import NetworkError, SerializationError
from repro.net.latency import LatencyModel
from repro.simulation.kernel import Kernel, current_thread


def ship(value: Any) -> Any:
    """Copy ``value`` as if it were serialized onto the wire.

    Raises :class:`SerializationError` for unpicklable values, exactly
    as Crucial requires shared objects and method arguments to be
    serializable for marshalling.
    """
    try:
        return pickle.loads(pickle.dumps(value))
    except Exception as exc:  # pickle raises a zoo of types
        raise SerializationError(f"value is not serializable: {exc!r}") from exc


def payload_size(value: Any) -> int:
    """Wire size of a value, in bytes (its pickle length).

    Raises :class:`SerializationError` for unpicklable values, like
    :func:`ship` does.  It used to return 0 instead, which silently
    under-charged transfer latency for exactly the payloads that could
    never have crossed a real wire — callers sized the transfer as
    free and then (with ``copy_messages`` on) failed later in
    :func:`ship`, or (with it off) not at all.
    """
    try:
        return len(pickle.dumps(value))
    except Exception as exc:  # pickle raises a zoo of types
        raise SerializationError(f"value is not serializable: {exc!r}") from exc


class Endpoint:
    """A network-attached process (server node, client, service)."""

    def __init__(self, name: str):
        self.name = name
        self.alive = True
        #: Incremented on every crash; in-flight calls compare epochs to
        #: detect that the server died under them.
        self.epoch = 0

    def crash(self) -> None:
        self.alive = False
        self.epoch += 1

    def restart(self) -> None:
        self.alive = True

    def __repr__(self) -> str:
        state = "up" if self.alive else "down"
        return f"<Endpoint {self.name} {state} epoch={self.epoch}>"


class Network:
    """Latency-modelled connectivity between named endpoints."""

    def __init__(self, kernel: Kernel, default_latency: LatencyModel,
                 copy_messages: bool = True, name: str = "net"):
        self.kernel = kernel
        self.default_latency = default_latency
        self.copy_messages = copy_messages
        self.name = name
        self._endpoints: dict[str, Endpoint] = {}
        self._links: dict[tuple[str, str], LatencyModel] = {}
        self._partitions: set[frozenset[str]] = set()
        self._drop_rates: dict[tuple[str, str], float] = {}
        self._rng = kernel.rng.stream(f"net.{name}")
        self.messages_sent = 0
        self.bytes_sent = 0
        self.messages_dropped = 0

    # -- topology -----------------------------------------------------------

    def register(self, name: str) -> Endpoint:
        if name in self._endpoints:
            raise NetworkError(f"endpoint {name!r} already registered")
        endpoint = Endpoint(name)
        self._endpoints[name] = endpoint
        return endpoint

    def endpoint(self, name: str) -> Endpoint:
        try:
            return self._endpoints[name]
        except KeyError:
            raise NetworkError(f"unknown endpoint {name!r}") from None

    def ensure_endpoint(self, name: str) -> Endpoint:
        """Register ``name`` if unknown; idempotent (used by clients)."""
        existing = self._endpoints.get(name)
        if existing is not None:
            return existing
        return self.register(name)

    def set_link(self, src: str, dst: str, model: LatencyModel,
                 symmetric: bool = True) -> None:
        """Override the latency model of one link."""
        self._links[(src, dst)] = model
        if symmetric:
            self._links[(dst, src)] = model

    def link(self, src: str, dst: str) -> LatencyModel:
        return self._links.get((src, dst), self.default_latency)

    # -- failures -------------------------------------------------------------

    def partition(self, group_a: set[str], group_b: set[str]) -> None:
        """Disconnect every pair across the two groups."""
        for a in group_a:
            for b in group_b:
                self._partitions.add(frozenset((a, b)))

    def unpartition(self, group_a: set[str], group_b: set[str]) -> None:
        """Reconnect the pairs a matching :meth:`partition` cut.

        Unlike :meth:`heal`, other partitions stay in force, so
        overlapping injected partitions compose.
        """
        for a in group_a:
            for b in group_b:
                self._partitions.discard(frozenset((a, b)))

    def heal(self) -> None:
        self._partitions.clear()

    def set_drop_rate(self, src: str, dst: str, rate: float,
                      symmetric: bool = True) -> None:
        """Drop each message on the link with probability ``rate``.

        A dropped message still charges the sender its link latency
        (the bytes left, they just never arrived), then surfaces as a
        :class:`NetworkError` — indistinguishable, to the sender, from
        the destination failing mid-flight, which is what forces the
        upper layers' retry paths.  ``rate=0`` restores the link.
        """
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"drop rate {rate} outside [0, 1]")
        pairs = [(src, dst)] + ([(dst, src)] if symmetric else [])
        for pair in pairs:
            if rate == 0.0:
                self._drop_rates.pop(pair, None)
            else:
                self._drop_rates[pair] = rate

    def drop_rate(self, src: str, dst: str) -> float:
        return self._drop_rates.get((src, dst), 0.0)

    def reachable(self, src: str, dst: str) -> bool:
        if src == dst:
            return True
        src_ep = self.endpoint(src)
        dst_ep = self.endpoint(dst)
        if not (src_ep.alive and dst_ep.alive):
            return False
        return frozenset((src, dst)) not in self._partitions

    # -- data plane -------------------------------------------------------------

    def transfer(self, src: str, dst: str, value: Any = None,
                 nbytes: int | None = None) -> Any:
        """Move ``value`` from ``src`` to ``dst``, charging link latency.

        Blocks the calling simulated thread for the sampled delay and
        returns the shipped (copied) value.  Raises
        :class:`NetworkError` if the destination is unreachable at send
        time *or* crashes mid-flight.
        """
        with self.kernel.tracer.span(
                "net.transfer", kind="internal", endpoint=src,
                attributes={"src": src, "dst": dst}) as span:
            if not self.reachable(src, dst):
                raise NetworkError(f"{dst!r} unreachable from {src!r}")
            if nbytes is None:
                nbytes = payload_size(value) if self.copy_messages else 0
            shipped = ship(value) if self.copy_messages else value
            span.set("bytes", nbytes)
            delay = self.link(src, dst).sample(self._rng, nbytes)
            rate = self._drop_rates.get((src, dst), 0.0)
            dropped = rate > 0.0 and float(self._rng.random()) < rate
            dst_epoch = self.endpoint(dst).epoch
            current_thread().sleep(delay)
            self.messages_sent += 1
            self.bytes_sent += nbytes
            if dropped:
                self.messages_dropped += 1
                raise NetworkError(f"message {src!r} -> {dst!r} dropped")
            if not self.reachable(src, dst) \
                    or self.endpoint(dst).epoch != dst_epoch:
                raise NetworkError(
                    f"{dst!r} failed during transfer from {src!r}")
            return shipped

    def delay(self, src: str, dst: str, nbytes: int = 0) -> float:
        """Sample a link delay without blocking (for timers)."""
        return self.link(src, dst).sample(self._rng, nbytes)
