"""Network substrate: latency models, links, partitions, transfers."""

from repro.net.latency import LatencyModel
from repro.net.network import Network

__all__ = ["LatencyModel", "Network"]
