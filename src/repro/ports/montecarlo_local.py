"""Monte Carlo pi estimation — single-machine, multi-threaded."""

import math

import numpy as np

from repro.core.runtime import compute, current_environment
from repro.ml.costmodel import montecarlo_cost
from repro.ports.common import LocalAtomicLong as AtomicLong
from repro.ports.common import LocalThread as Thread

ITERATIONS = 10_000_000


class PiEstimator:
    """The Runnable of Listing 1."""

    def __init__(self, seed: int, counter_key: str = "counter"):
        self.seed = seed
        self.counter = AtomicLong(counter_key)

    def run(self) -> None:
        env = current_environment()
        rng = np.random.Generator(np.random.PCG64(self.seed))
        count = int(rng.binomial(ITERATIONS, math.pi / 4.0))
        compute(montecarlo_cost(ITERATIONS, env.config))
        self.counter.add_and_get(count)


def estimate_pi(n_threads: int, counter_key: str = "counter") -> float:
    threads = [Thread(PiEstimator(i, counter_key))
               for i in range(n_threads)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    total = AtomicLong(counter_key).get()
    return 4.0 * total / (n_threads * ITERATIONS)
