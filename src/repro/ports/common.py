"""Single-machine counterparts of Crucial's abstractions.

These mirror the Crucial API exactly — key-addressed shared objects
and thread objects — but live in the local process: ``LocalThread``
spawns an in-process thread, and the "shared" objects are plain
in-memory instances found through a per-process registry.  Keeping the
APIs congruent is what makes the Table 4 diffs as small as the paper
reports: porting an application is (mostly) swapping these imports for
the Crucial ones.
"""

from __future__ import annotations

from typing import Any

from repro.simulation.kernel import current_kernel
from repro.simulation.primitives import Condition


_registry: dict[tuple[str, str], Any] = {}


def reset_registry() -> None:
    """Forget every local shared object (call between runs)."""
    _registry.clear()


def _lookup(kind: str, key: str, factory) -> Any:
    ident = (kind, key)
    if ident not in _registry:
        _registry[ident] = factory()
    return _registry[ident]


def local_shared(cls: type, key: str, *args: Any, **kwargs: Any) -> Any:
    """The POJO twin of :func:`repro.core.shared`: a plain instance.

    ``persistent``/``rf`` are accepted and ignored (no replication in
    one process).
    """
    kwargs.pop("persistent", None)
    kwargs.pop("rf", None)
    return _lookup(cls.__name__, key, lambda: cls(*args, **kwargs))


class LocalThread:
    """``java.lang.Thread``: runs a Runnable in-process."""

    def __init__(self, runnable: Any, name: str | None = None):
        self.runnable = runnable
        self.name = name
        self._thread = None

    def start(self) -> "LocalThread":
        target = getattr(self.runnable, "run", self.runnable)
        self._thread = current_kernel().spawn(target, name=self.name)
        return self

    def join(self) -> None:
        self._thread.join()

    def result(self) -> Any:
        return self._thread.result()


class _LocalAtomic:
    def __init__(self, value=0):
        self.value = value

    def get(self):
        return self.value

    def set(self, value) -> None:
        self.value = value

    def add_and_get(self, delta):
        self.value += delta
        return self.value

    def increment_and_get(self):
        return self.add_and_get(1)

    def compare_and_set(self, expected, update) -> bool:
        if self.value == expected:
            self.value = update
            return True
        return False


class LocalAtomicLong:
    """Key-addressed local counter, API-identical to AtomicLong."""

    def __init__(self, key: str, initial: int = 0, **_ignored):
        self._cell = _lookup("AtomicLong", key,
                             lambda: _LocalAtomic(initial))

    def get(self):
        return self._cell.get()

    def set(self, value) -> None:
        self._cell.set(value)

    def add_and_get(self, delta):
        return self._cell.add_and_get(delta)

    def increment_and_get(self):
        return self._cell.increment_and_get()

    def compare_and_set(self, expected, update) -> bool:
        return self._cell.compare_and_set(expected, update)


class LocalAtomicInt(LocalAtomicLong):
    pass


class _BarrierState:
    def __init__(self, parties: int):
        self.parties = parties
        self.count = 0
        self.generation = 0
        self.condition = Condition(current_kernel())


class LocalCyclicBarrier:
    """Key-addressed in-process cyclic barrier (java.util.concurrent)."""

    def __init__(self, key: str, parties: int, **_ignored):
        self._state = _lookup("CyclicBarrier", key,
                              lambda: _BarrierState(parties))

    def wait(self) -> int:
        state = self._state
        with state.condition:
            generation = state.generation
            state.count += 1
            index = state.parties - state.count
            if state.count == state.parties:
                state.count = 0
                state.generation += 1
                state.condition.notify_all()
                return index
            while generation == state.generation:
                state.condition.wait()
            return index

    await_ = wait
