"""The k-means shared objects, written once for both variants.

The paper's point, made literal: "the code of the objects used in the
POJO solution is not changed" when moving to Crucial — these classes
run in-process in the local variant and inside the DSO layer in the
serverless one.
"""

from __future__ import annotations

import numpy as np

from repro.ml import math as mlmath


class GlobalCentroids:
    """All k centroids with in-place partial aggregation."""

    def __init__(self, k: int, dims: int, seed: int = 17):
        rng = np.random.Generator(np.random.PCG64(seed))
        self.coords = mlmath.init_centroids(rng, k, dims)
        self.acc_sums = np.zeros_like(self.coords)
        self.acc_counts = np.zeros(k, dtype=np.int64)

    def get_correct_coordinates(self) -> np.ndarray:
        return self.coords

    def update(self, sums: np.ndarray, counts: np.ndarray) -> None:
        self.acc_sums += sums
        self.acc_counts += counts

    def advance(self) -> float:
        self.coords, delta = mlmath.kmeans_update(
            self.acc_sums, self.acc_counts, self.coords)
        self.acc_sums[:] = 0.0
        self.acc_counts[:] = 0
        return delta


class GlobalDelta:
    """The convergence criterion."""

    def __init__(self):
        self.history: list[float] = []

    def update(self, delta: float) -> None:
        self.history.append(delta)

    def last(self) -> float:
        return self.history[-1] if self.history else float("inf")

    def get_history(self) -> list[float]:
        return list(self.history)
