"""Logistic regression with SGD — serverless, with Crucial."""

import numpy as np

from repro.core.runtime import compute, current_environment
from repro.ml import math as mlmath
from repro.ml.costmodel import logreg_iteration_cost
from repro.ports.logreg_objects import GlobalWeights
from repro.core.sync import CyclicBarrier
from repro.core.cloud_thread import CloudThread as Thread
from repro.core.shared import shared

POINTS_PER_WORKER = 500
NOMINAL_POINTS = 200_000


class LogisticRegression:
    """One SGD worker."""

    def __init__(self, worker_id: int, parties: int, dims: int,
                 iterations: int, run_id: str):
        self.worker_id = worker_id
        self.dims = dims
        self.iterations = iterations
        self.weights = shared(GlobalWeights, f"{run_id}/weights", dims)
        self.barrier = CyclicBarrier(f"{run_id}/barrier", parties)

    def load_dataset_fragment(self):
        rng = np.random.Generator(np.random.PCG64(self.worker_id))
        return mlmath.generate_labeled_points(rng, POINTS_PER_WORKER,
                                              self.dims)

    def run(self) -> None:
        env = current_environment()
        features, labels = self.load_dataset_fragment()
        for _iteration in range(self.iterations):
            weights = self.weights.get()
            gradient, loss, count = mlmath.logreg_partial(
                features, labels, weights)
            compute(logreg_iteration_cost(NOMINAL_POINTS, self.dims,
                                          env.config))
            self.weights.update(gradient, loss, count)
            if self.barrier.wait() == 0:
                self.weights.advance()
            self.barrier.wait()


def run_logreg(workers: int, dims: int = 10, iterations: int = 5,
               run_id: str = "logreg") -> list[float]:
    threads = [
        Thread(LogisticRegression(i, workers, dims, iterations, run_id))
        for i in range(workers)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return shared(GlobalWeights, f"{run_id}/weights",
                  dims).get_loss_history()
