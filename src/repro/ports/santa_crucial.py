"""The Santa Claus problem — Crucial shared objects and cloud threads."""

from repro.coordination.santa import DsoMonitorHandle, SantaWorkshop
from repro.core.runtime import current_environment
from repro.core.cloud_thread import CloudThread as Thread
from repro.simulation.thread import sleep

import numpy as np

VACATION_MEAN = 0.05
WORK_MEAN = 0.03
DELIVERY_TIME = 0.02
HELP_TIME = 0.01


def make_workshop(deliveries: int, run_id: str):
    current_environment().pre_warm(20)
    return DsoMonitorHandle(f"{run_id}/workshop", 9, 3, deliveries)


class Reindeer:
    def __init__(self, workshop, seed: int):
        self.workshop = workshop
        self.seed = seed

    def run(self) -> None:
        rng = np.random.Generator(np.random.PCG64(self.seed))
        while True:
            sleep(float(rng.exponential(VACATION_MEAN)))
            if self.workshop.invoke("reindeer_back") == "stop":
                return


class Elf:
    def __init__(self, workshop, seed: int):
        self.workshop = workshop
        self.seed = seed

    def run(self) -> None:
        rng = np.random.Generator(np.random.PCG64(self.seed))
        while True:
            sleep(float(rng.exponential(WORK_MEAN)))
            if self.workshop.invoke("elf_asks") == "stop":
                return


class Santa:
    def __init__(self, workshop):
        self.workshop = workshop

    def run(self) -> None:
        while True:
            action = self.workshop.invoke("santa_waits")
            if action == "done":
                return
            sleep(DELIVERY_TIME if action == "deliver" else HELP_TIME)
            self.workshop.invoke("delivery_done" if action == "deliver"
                                 else "help_done")


def solve(deliveries: int = 15, run_id: str = "santa") -> dict:
    workshop = make_workshop(deliveries, run_id)
    entities = ([Santa(workshop)]
                + [Reindeer(workshop, 1 + i) for i in range(9)]
                + [Elf(workshop, 100 + i) for i in range(10)])
    threads = [Thread(entity) for entity in entities]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return workshop.invoke("get_stats")
