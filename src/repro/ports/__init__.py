"""Application ports: single-machine programs and their Crucial twins.

Table 4 counts the lines changed to move each application to FaaS.
This package keeps both variants of every application as real,
runnable modules whose textual diff the Table 4 benchmark computes —
the claim is reproduced on actual code, not quoted.
"""
