"""k-means clustering — single-machine, multi-threaded (Listing 2)."""

import numpy as np

from repro.core.runtime import compute, current_environment
from repro.ml import math as mlmath
from repro.ml.costmodel import kmeans_iteration_cost
from repro.ports.kmeans_objects import GlobalCentroids, GlobalDelta
from repro.ports.common import LocalAtomicInt as AtomicInt
from repro.ports.common import LocalCyclicBarrier as CyclicBarrier
from repro.ports.common import LocalThread as Thread
from repro.ports.common import local_shared as shared

POINTS_PER_WORKER = 400
NOMINAL_POINTS = 200_000


class KMeans:
    """The Runnable of Listing 2."""

    def __init__(self, worker_id: int, parties: int, k: int, dims: int,
                 iterations: int, run_id: str):
        self.worker_id = worker_id
        self.k = k
        self.dims = dims
        self.iterations = iterations
        self.centroids = shared(GlobalCentroids, f"{run_id}/centroids",
                                k, dims)
        self.global_delta = shared(GlobalDelta, f"{run_id}/delta")
        self.iteration_counter = AtomicInt(f"{run_id}/iterations")
        self.barrier = CyclicBarrier(f"{run_id}/barrier", parties)

    def load_dataset_fragment(self) -> np.ndarray:
        rng = np.random.Generator(np.random.PCG64(self.worker_id))
        return mlmath.generate_kmeans_points(rng, POINTS_PER_WORKER,
                                             self.dims)

    def run(self) -> None:
        env = current_environment()
        points = self.load_dataset_fragment()
        for iteration in range(self.iterations):
            correct = self.centroids.get_correct_coordinates()
            sums, counts, _cost = mlmath.kmeans_partial(points, correct)
            compute(kmeans_iteration_cost(NOMINAL_POINTS, self.dims,
                                          self.k, env.config))
            self.centroids.update(sums, counts)
            if self.barrier.wait() == 0:
                self.global_delta.update(self.centroids.advance())
                self.iteration_counter.compare_and_set(iteration,
                                                       iteration + 1)
            self.barrier.wait()


def run_kmeans(workers: int, k: int = 4, dims: int = 8,
               iterations: int = 3, run_id: str = "kmeans") -> list[float]:
    threads = [Thread(KMeans(i, workers, k, dims, iterations, run_id))
               for i in range(workers)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return shared(GlobalDelta, f"{run_id}/delta").get_history()
