"""The logistic-regression shared object, written once (see
kmeans_objects: identical object code in both variants)."""

from __future__ import annotations

import numpy as np

from repro.ml import math as mlmath


class GlobalWeights:
    """The shared weight vector with in-place gradient aggregation."""

    def __init__(self, dims: int, learning_rate: float = 0.5):
        self.weights = np.zeros(dims)
        self.learning_rate = learning_rate
        self.acc_gradient = np.zeros(dims)
        self.acc_loss = 0.0
        self.acc_count = 0
        self.loss_history: list[float] = []

    def get(self) -> np.ndarray:
        return self.weights

    def update(self, gradient: np.ndarray, loss: float,
               count: int) -> None:
        self.acc_gradient += gradient
        self.acc_loss += loss
        self.acc_count += count

    def advance(self) -> float:
        mean_loss = self.acc_loss / max(self.acc_count, 1)
        self.weights = mlmath.sgd_step(self.weights, self.acc_gradient,
                                       self.acc_count,
                                       self.learning_rate)
        self.loss_history.append(mean_loss)
        self.acc_gradient[:] = 0.0
        self.acc_loss = 0.0
        self.acc_count = 0
        return mean_loss

    def get_loss_history(self) -> list[float]:
        return list(self.loss_history)
