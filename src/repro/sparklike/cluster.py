"""The provisioned Spark cluster: a driver plus executor nodes.

Matches the paper's EMR setup: 1 master and N worker (core) nodes of
``cores_per_worker`` vCPUs each.  Executors model CPU with a FIFO core
pool; tasks queue when a stage has more partitions than the cluster
has cores.
"""

from __future__ import annotations

from repro.cluster.node import Node
from repro.config import Config, DEFAULT_CONFIG
from repro.net.network import Network
from repro.simulation.kernel import Kernel
from repro.simulation.resources import Resource


class Executor:
    """One worker VM running Spark executor processes."""

    def __init__(self, kernel: Kernel, network: Network, name: str,
                 cores: int):
        self.kernel = kernel
        self.node = Node(kernel, network, name, workers=cores)
        self.cores = Resource(kernel, capacity=cores, name=f"{name}.cores")
        #: partition id -> cached partition data (block manager).
        self.blocks: dict = {}

    @property
    def name(self) -> str:
        return self.node.name


class SparkCluster:
    """Driver + executors; the unit benchmarks provision."""

    def __init__(self, kernel: Kernel, network: Network,
                 config: Config = DEFAULT_CONFIG, name: str = "spark",
                 workers: int | None = None,
                 cores_per_worker: int | None = None):
        self.kernel = kernel
        self.network = network
        self.config = config
        self.name = name
        timings = config.spark
        workers = workers if workers is not None else timings.worker_nodes
        cores_per_worker = (cores_per_worker if cores_per_worker is not None
                            else timings.cores_per_worker)
        self.driver = Node(kernel, network, f"{name}-driver", workers=8)
        self.executors = [
            Executor(kernel, network, f"{name}-worker-{i}", cores_per_worker)
            for i in range(workers)
        ]
        for executor in self.executors:
            network.set_link(self.driver.name, executor.name,
                             timings.cluster_link)
        self._rng = kernel.rng.stream(f"spark.{name}")
        self.stages_run = 0
        self.tasks_run = 0

    @property
    def total_cores(self) -> int:
        return sum(e.cores.capacity for e in self.executors)

    def executor_for(self, partition_id: int) -> Executor:
        """Sticky partition placement (data locality)."""
        return self.executors[partition_id % len(self.executors)]
