"""Shuffle: the all-to-all repartitioning behind keyed aggregation.

Section 1 discusses shuffling as the canonical pain point of
storage-mediated serverless analytics (Locus [42] exists to make it
scale).  The dedicated-cluster engine does it executor-to-executor:
every map partition hashes its records into R buckets, and every
reduce partition pulls its bucket from every map partition — P x R
transfers whose cost this module charges over the cluster links.
"""

from __future__ import annotations

import hashlib
from typing import Any, Callable, Iterable

from repro.net.network import payload_size
from repro.simulation.thread import spawn
from repro.sparklike.rdd import RDD


def _bucket_of(key: Any, buckets: int) -> int:
    digest = hashlib.blake2b(repr(key).encode(), digest_size=4).digest()
    return int.from_bytes(digest, "big") % buckets


def shuffle(rdd: RDD, num_partitions: int | None = None) -> RDD:
    """Repartition an RDD of ``(key, value)`` records by key hash.

    Returns an RDD whose partition ``i`` holds every record with
    ``hash(key) % R == i``.  Charges: map-side partitioning work, then
    the P x R all-to-all block transfers between executors.
    """
    cluster = rdd.cluster
    if num_partitions is None:
        num_partitions = rdd.num_partitions

    # Map side: split each partition into R blocks (one task each).
    def split(partition: Iterable[tuple]) -> list[list[tuple]]:
        blocks: list[list[tuple]] = [[] for _ in range(num_partitions)]
        for key, value in partition:
            blocks[_bucket_of(key, num_partitions)].append((key, value))
        return blocks

    block_rdd = rdd.map_partitions(split)

    # Reduce side: every output partition fetches its block from every
    # map partition — the P x R transfer matrix.
    outputs: list[list[tuple]] = [[] for _ in range(num_partitions)]

    def fetch(reduce_id: int):
        target = cluster.executor_for(reduce_id)
        merged: list[tuple] = []
        for map_id, blocks in enumerate(block_rdd.partitions):
            block = blocks[reduce_id]
            source = cluster.executor_for(map_id)
            if source is not target:
                cluster.network.transfer(source.name, target.name, None,
                                         nbytes=payload_size(block))
            merged.extend(block)
        outputs[reduce_id] = merged

    fetchers = [spawn(fetch, r, name=f"shuffle-fetch-{r}")
                for r in range(num_partitions)]
    for fetcher in fetchers:
        fetcher.join()
    return RDD(cluster, outputs, rdd.nominal_partition_bytes)


def reduce_by_key(rdd: RDD, fn: Callable[[Any, Any], Any],
                  num_partitions: int | None = None) -> RDD:
    """``reduceByKey``: shuffle then combine values per key."""
    shuffled = shuffle(rdd, num_partitions)

    def combine(partition: list[tuple]) -> list[tuple]:
        accumulator: dict = {}
        for key, value in partition:
            if key in accumulator:
                accumulator[key] = fn(accumulator[key], value)
            else:
                accumulator[key] = value
        return sorted(accumulator.items())

    return shuffled.map_partitions(combine)
