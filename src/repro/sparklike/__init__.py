"""A miniature Spark: the dedicated-cluster baseline of Section 6.2.

Driver + executors on provisioned VMs, partitioned datasets, lazy-free
eager stages with per-task scheduling costs, broadcast variables, and
reduce/treeAggregate back to the driver — the BSP pattern whose
per-iteration reduce phase Crucial's in-store aggregation avoids.
"""

from repro.sparklike.cluster import SparkCluster
from repro.sparklike.rdd import RDD, Broadcast
from repro.sparklike.mllib import KMeansMLlib, LogisticRegressionWithSGD

__all__ = [
    "SparkCluster",
    "RDD",
    "Broadcast",
    "KMeansMLlib",
    "LogisticRegressionWithSGD",
]
