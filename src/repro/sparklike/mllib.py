"""MLlib-equivalent algorithms on the mini-Spark engine.

``KMeansMLlib`` and ``LogisticRegressionWithSGD`` follow MLlib's BSP
structure: broadcast the model, map over partitions, reduce partial
aggregates back to the driver, update, repeat.  Each iteration pays
the engine's stage costs plus the calibrated MLlib per-iteration
overhead (k-means runs several jobs per iteration; LR one
treeAggregate) — the reduce-phase cost that Section 6.2.2 identifies
as Spark's per-iteration handicap.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ml import math as mlmath
from repro.ml.costmodel import kmeans_iteration_cost, logreg_iteration_cost
from repro.ml.dataset import MLDataset
from repro.simulation.kernel import current_thread
from repro.sparklike.cluster import SparkCluster
from repro.sparklike.rdd import RDD
from repro.storage import ObjectStore


def read_dataset(cluster: SparkCluster, dataset: MLDataset,
                 store: ObjectStore) -> RDD:
    """Load + parse the dataset into an RDD (the pre-iteration phase).

    Each task reads its partition from the object store at nominal
    size and parses it; Spark's row-object loader is slower per byte
    than Crucial's straight numpy parse.
    """
    base = RDD(cluster, list(range(dataset.partitions)),
               dataset.nominal_bytes_per_partition)
    compute = cluster.config.compute
    transfer = (dataset.nominal_bytes_per_partition
                / (cluster.config.storage.s3_get.bandwidth or 85e6))
    parse = (dataset.nominal_bytes_per_partition
             * compute.parse_per_byte * compute.spark_parse_inflation)

    def load(partition_id: int, _data) -> object:
        return dataset.materialize(partition_id)

    return base.map_partitions_with_index(
        load, cost_fn=lambda _data: transfer + parse)


@dataclass
class SparkFitResult:
    model: np.ndarray
    total_time: float
    load_time: float
    iteration_phase_time: float
    per_iteration: list[float]
    history: list[float]  # cost (k-means) or loss (LR) per iteration


class KMeansMLlib:
    """MLlib-style k-means ``train`` on the mini-Spark engine."""

    def __init__(self, cluster: SparkCluster, k: int, iterations: int,
                 seed: int = 7):
        self.cluster = cluster
        self.k = k
        self.iterations = iterations
        self.seed = seed

    def train(self, dataset: MLDataset, store: ObjectStore) -> SparkFitResult:
        cluster = self.cluster
        config = cluster.config
        thread = current_thread()
        start = cluster.kernel.now
        data = read_dataset(cluster, dataset, store)
        load_time = cluster.kernel.now - start
        rng = np.random.Generator(np.random.PCG64(self.seed))
        centroids = mlmath.init_centroids(rng, self.k, dataset.features)
        iteration_cost = kmeans_iteration_cost(
            dataset.nominal_points_per_partition, dataset.features, self.k,
            config, spark=True)
        per_iteration: list[float] = []
        history: list[float] = []
        for _iteration in range(self.iterations):
            iteration_start = cluster.kernel.now
            data.broadcast(centroids)
            sums, counts, cost = data.reduce(
                fn=lambda a, b: (a[0] + b[0], a[1] + b[1], a[2] + b[2]),
                map_fn=lambda points: mlmath.kmeans_partial(
                    points, centroids),
                cost_fn=lambda _points: iteration_cost)
            centroids, _delta = mlmath.kmeans_update(sums, counts, centroids)
            # MLlib's k-means runs extra jobs per iteration (cost
            # evaluation, collectAsMap): calibrated fixed overhead.
            thread.sleep(config.spark.mllib_kmeans_iteration_overhead)
            history.append(cost)
            per_iteration.append(cluster.kernel.now - iteration_start)
        return SparkFitResult(
            model=centroids,
            total_time=cluster.kernel.now - start,
            load_time=load_time,
            iteration_phase_time=sum(per_iteration),
            per_iteration=per_iteration,
            history=history)


class LogisticRegressionWithSGD:
    """MLlib's ``LogisticRegressionWithSGD`` equivalent."""

    def __init__(self, cluster: SparkCluster, iterations: int = 100,
                 learning_rate: float = 0.5):
        self.cluster = cluster
        self.iterations = iterations
        self.learning_rate = learning_rate

    def train(self, dataset: MLDataset, store: ObjectStore) -> SparkFitResult:
        cluster = self.cluster
        config = cluster.config
        thread = current_thread()
        start = cluster.kernel.now
        data = read_dataset(cluster, dataset, store)
        load_time = cluster.kernel.now - start
        weights = np.zeros(dataset.features)
        iteration_cost = logreg_iteration_cost(
            dataset.nominal_points_per_partition, dataset.features,
            config, spark=True)
        per_iteration: list[float] = []
        history: list[float] = []
        for _iteration in range(self.iterations):
            iteration_start = cluster.kernel.now
            data.broadcast(weights)
            gradient, loss, count = data.reduce(
                fn=lambda a, b: (a[0] + b[0], a[1] + b[1], a[2] + b[2]),
                map_fn=lambda part: mlmath.logreg_partial(
                    part[0], part[1], weights),
                cost_fn=lambda _part: iteration_cost)
            weights = mlmath.sgd_step(weights, gradient, count,
                                      self.learning_rate)
            thread.sleep(config.spark.mllib_logreg_iteration_overhead)
            history.append(loss / max(count, 1))
            per_iteration.append(cluster.kernel.now - iteration_start)
        return SparkFitResult(
            model=weights,
            total_time=cluster.kernel.now - start,
            load_time=load_time,
            iteration_phase_time=sum(per_iteration),
            per_iteration=per_iteration,
            history=history)
