"""RDDs: partitioned datasets with map/reduce over the cluster.

Stages execute eagerly: the driver pays a stage-submission cost, then
launches one task per partition.  A task runs on its partition's
executor, queuing for a core, paying the task-launch overhead plus the
modelled compute cost, and executing the *real* Python function on the
materialized partition data — so results (losses, centroids) are
genuine while times come from the calibrated model.

``reduce`` sends per-partition results to the driver and combines them
there: the per-iteration synchronization+communication cost that
Section 6.2.2 contrasts with Crucial's in-store aggregation.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.net.network import payload_size
from repro.simulation.thread import spawn
from repro.sparklike.cluster import SparkCluster

#: cost_fn(partition) -> CPU-seconds of the task at nominal data scale.
CostFn = Callable[[Any], float]


class Broadcast:
    """A read-only variable shipped once per executor per broadcast."""

    def __init__(self, cluster: SparkCluster, value: Any):
        self.cluster = cluster
        self.value = value
        self._distribute()

    def _distribute(self) -> None:
        driver = self.cluster.driver.name
        nbytes = payload_size(self.value)
        for executor in self.cluster.executors:
            self.cluster.network.transfer(driver, executor.name, None,
                                          nbytes=nbytes)


class RDD:
    """An eagerly-evaluated partitioned dataset."""

    def __init__(self, cluster: SparkCluster, partitions: list[Any],
                 nominal_partition_bytes: int = 0):
        self.cluster = cluster
        self.partitions = partitions
        self.nominal_partition_bytes = nominal_partition_bytes

    @classmethod
    def parallelize(cls, cluster: SparkCluster, items: list[Any],
                    num_partitions: int) -> "RDD":
        if num_partitions <= 0:
            raise ValueError(f"need positive partitions: {num_partitions}")
        chunks: list[list[Any]] = [[] for _ in range(num_partitions)]
        for index, item in enumerate(items):
            chunks[index % num_partitions].append(item)
        return cls(cluster, chunks)

    @property
    def num_partitions(self) -> int:
        return len(self.partitions)

    # -- stage execution -----------------------------------------------------------

    def _run_stage(self, fn: Callable[[int, Any], Any],
                   cost_fn: CostFn | None) -> list[Any]:
        """One task per partition; returns per-partition results."""
        cluster = self.cluster
        timings = cluster.config.spark
        from repro.simulation.kernel import current_thread

        current_thread().sleep(timings.stage_submit)
        cluster.stages_run += 1

        def task(partition_id: int):
            executor = cluster.executor_for(partition_id)
            with executor.cores.request():
                thread = current_thread()
                thread.sleep(timings.task_launch)
                data = self.partitions[partition_id]
                if cost_fn is not None:
                    cost = float(cost_fn(data))
                    if cost > 0:
                        jitter = float(cluster._rng.lognormal(0.0, 0.03))
                        thread.sleep(cost * jitter)
                cluster.tasks_run += 1
                return fn(partition_id, data)

        threads = [spawn(task, i, name=f"task-{i}")
                   for i in range(self.num_partitions)]
        for t in threads:
            t.join()
        return [t.result() for t in threads]

    # -- transformations and actions --------------------------------------------------

    def map_partitions(self, fn: Callable[[Any], Any],
                       cost_fn: CostFn | None = None) -> "RDD":
        results = self._run_stage(lambda _i, data: fn(data), cost_fn)
        return RDD(self.cluster, results, self.nominal_partition_bytes)

    def map_partitions_with_index(self, fn: Callable[[int, Any], Any],
                                  cost_fn: CostFn | None = None) -> "RDD":
        results = self._run_stage(fn, cost_fn)
        return RDD(self.cluster, results, self.nominal_partition_bytes)

    def collect(self) -> list[Any]:
        """Pull every partition to the driver (network-charged)."""
        driver = self.cluster.driver.name
        for partition_id, data in enumerate(self.partitions):
            executor = self.cluster.executor_for(partition_id)
            self.cluster.network.transfer(executor.name, driver, None,
                                          nbytes=payload_size(data))
        return list(self.partitions)

    def reduce(self, fn: Callable[[Any, Any], Any],
               map_fn: Callable[[Any], Any] | None = None,
               cost_fn: CostFn | None = None) -> Any:
        """Map each partition, then combine everything at the driver.

        This is the aggregation pattern whose cost Crucial avoids: N
        partial results cross the network to one combiner.
        """
        partials = self._run_stage(
            lambda _i, data: (map_fn(data) if map_fn else data), cost_fn)
        driver = self.cluster.driver.name
        accumulator = None
        for partition_id, partial in enumerate(partials):
            executor = self.cluster.executor_for(partition_id)
            self.cluster.network.transfer(executor.name, driver, None,
                                          nbytes=payload_size(partial))
            accumulator = partial if accumulator is None \
                else fn(accumulator, partial)
        return accumulator

    def broadcast(self, value: Any) -> Broadcast:
        return Broadcast(self.cluster, value)

    def count(self) -> int:
        lengths = self._run_stage(lambda _i, data: len(data), None)
        return sum(lengths)
