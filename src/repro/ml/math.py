"""Numerical kernels shared by the Crucial and Spark implementations.

Both systems run the *same* math on the same materialized data, so
their models and loss trajectories coincide (as in Fig. 4b) and any
timing difference is attributable to the systems, not the algorithms.
"""

from __future__ import annotations

import numpy as np


# -- k-means -------------------------------------------------------------------


def kmeans_partial(points: np.ndarray,
                   centroids: np.ndarray) -> tuple[np.ndarray, np.ndarray, float]:
    """Assignment step over one partition.

    Returns ``(sums, counts, cost)``: per-cluster coordinate sums and
    member counts, plus the within-cluster squared-distance total.
    """
    distances = ((points[:, None, :] - centroids[None, :, :]) ** 2).sum(axis=2)
    assignment = distances.argmin(axis=1)
    k = centroids.shape[0]
    counts = np.bincount(assignment, minlength=k).astype(np.int64)
    sums = np.zeros_like(centroids)
    np.add.at(sums, assignment, points)
    cost = float(distances[np.arange(len(points)), assignment].sum())
    return sums, counts, cost


def kmeans_update(sums: np.ndarray, counts: np.ndarray,
                  previous: np.ndarray) -> tuple[np.ndarray, float]:
    """Update step: new centroids and total movement (delta).

    Empty clusters keep their previous position (MLlib behaviour).
    """
    new_centroids = previous.copy()
    nonempty = counts > 0
    new_centroids[nonempty] = sums[nonempty] / counts[nonempty, None]
    delta = float(np.abs(new_centroids - previous).sum())
    return new_centroids, delta


def init_centroids(rng: np.random.Generator, k: int, dims: int,
                   scale: float = 1.0) -> np.ndarray:
    """Random initial positions (Section 6.2.2)."""
    return rng.standard_normal((k, dims)) * scale


# -- logistic regression -----------------------------------------------------------


def sigmoid(z: np.ndarray) -> np.ndarray:
    out = np.empty_like(z)
    positive = z >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-z[positive]))
    expz = np.exp(z[~positive])
    out[~positive] = expz / (1.0 + expz)
    return out


def logreg_partial(features: np.ndarray, labels: np.ndarray,
                   weights: np.ndarray) -> tuple[np.ndarray, float, int]:
    """Gradient + loss contribution of one partition.

    Labels are in {0, 1}.  Returns ``(gradient_sum, loss_sum, count)``.
    """
    z = features @ weights
    predictions = sigmoid(z)
    gradient = features.T @ (predictions - labels)
    eps = 1e-12
    loss = float(-(labels * np.log(predictions + eps)
                   + (1.0 - labels) * np.log(1.0 - predictions + eps)).sum())
    return gradient, loss, len(labels)


def sgd_step(weights: np.ndarray, gradient_sum: np.ndarray, count: int,
             learning_rate: float) -> np.ndarray:
    return weights - learning_rate * (gradient_sum / max(count, 1))


# -- synthetic data (the spark-perf generator) --------------------------------------


def generate_kmeans_points(rng: np.random.Generator, n: int, dims: int,
                           true_clusters: int = 10,
                           spread: float = 0.25) -> np.ndarray:
    """Points drawn around ``true_clusters`` well-separated centers."""
    centers = rng.standard_normal((true_clusters, dims)) * 3.0
    assignment = rng.integers(0, true_clusters, size=n)
    return (centers[assignment]
            + rng.standard_normal((n, dims)) * spread).astype(np.float64)


def generate_labeled_points(rng: np.random.Generator, n: int, dims: int,
                            true_weights: np.ndarray | None = None,
                            ) -> tuple[np.ndarray, np.ndarray]:
    """Linearly-separable-ish labeled data for logistic regression.

    Pass the same ``true_weights`` to every partition of a dataset so
    the parts are samples of one underlying model.
    """
    if true_weights is None:
        true_weights = rng.standard_normal(dims)
    features = rng.standard_normal((n, dims))
    logits = features @ true_weights + rng.standard_normal(n) * 0.5
    labels = (logits > 0).astype(np.float64)
    return features, labels
