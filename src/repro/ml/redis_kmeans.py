"""k-means over Redis (the "Crucial + Redis" line of Fig. 5).

"We also run the k-means application with a modified version of
Crucial that uses Redis for in-memory storage.  Object methods are
implemented in Redis with the help of Lua scripts."  (Section 6.2.2)

The shared state (centroid shards, delta) lives in Redis and is
mutated by server-side scripts; thread synchronization still uses
Crucial's barrier (Redis has no blocking coordination primitive).
Because the Redis server is single-threaded and every centroid
coordinate crosses the Lua boundary, the update scripts serialize —
which is why "the implementation that uses Redis as the storage tier
is always slower than Crucial" (Fig. 5), consistent with Fig. 2a.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.cloud_thread import CloudThread
from repro.core.objects import AtomicInt
from repro.core.runtime import compute, current_environment, current_location
from repro.core.sync import CyclicBarrier
from repro.ml import math as mlmath
from repro.ml.costmodel import kmeans_iteration_cost
from repro.ml.dataset import MLDataset
from repro.storage.kvstore import RedisCluster, Script

# -- server-side scripts (the Lua stand-ins) ----------------------------------------


def _script_update(data, key, sums, counts):
    accumulator = data.get(key + ":acc")
    if accumulator is None:
        data[key + ":acc"] = [sums.copy(), counts.copy()]
    else:
        accumulator[0] += sums
        accumulator[1] += counts


def _script_advance(data, key):
    coords = data[key]
    sums, counts = data.pop(key + ":acc")
    new_coords, delta = mlmath.kmeans_update(sums, counts, coords)
    data[key] = new_coords
    return delta


def register_scripts(redis: RedisCluster) -> None:
    per_element = redis.config.redis.lua_per_element
    redis.register_script("kmeans_update", Script(
        fn=_script_update,
        cost=lambda sums, counts: sums.size * per_element))
    redis.register_script("kmeans_advance", Script(
        fn=_script_advance, cost=lambda: 0.0))


# -- workers ----------------------------------------------------------------------------


class RedisKMeansWorker:
    """Same loop as :class:`~repro.ml.kmeans.KMeansWorker`, but state
    ops target Redis scripts instead of DSO methods."""

    def __init__(self, worker_id: int, run_id: str, partition_key: str,
                 nominal_points: int, nominal_bytes: int, dims: int, k: int,
                 shards: int, parties: int, max_iterations: int):
        self.worker_id = worker_id
        self.run_id = run_id
        self.partition_key = partition_key
        self.nominal_points = nominal_points
        self.nominal_bytes = nominal_bytes
        self.dims = dims
        self.k = k
        self.shards = shards
        self.max_iterations = max_iterations
        self.barrier = CyclicBarrier(f"{run_id}/barrier", parties)
        self.iteration_counter = AtomicInt(f"{run_id}/iterations")

    def _shard_key(self, shard: int) -> str:
        return f"{self.run_id}/centroids-{shard}"

    def run(self) -> dict:
        env = current_environment()
        redis = env.redis()
        client = current_location()
        points = env.object_store.get(self.partition_key)
        compute(self.nominal_bytes * env.config.compute.parse_per_byte)
        load_done = env.now
        iteration_cost = kmeans_iteration_cost(
            self.nominal_points, self.dims, self.k, env.config)
        bounds = np.linspace(0, self.k, self.shards + 1, dtype=int)
        iteration_times = []
        for iteration in range(self.max_iterations):
            iteration_start = env.now
            centroids = np.concatenate([
                redis.get(client, self._shard_key(s))
                for s in range(self.shards)
            ])
            sums, counts, _cost = mlmath.kmeans_partial(points, centroids)
            compute(iteration_cost, jitter_sigma=0.02)
            for shard in range(self.shards):
                lo, hi = bounds[shard], bounds[shard + 1]
                redis.eval_script(client, "kmeans_update",
                                  self._shard_key(shard),
                                  sums[lo:hi], counts[lo:hi])
            arrival = self.barrier.wait()
            if arrival == 0:
                for shard in range(self.shards):
                    redis.eval_script(client, "kmeans_advance",
                                      self._shard_key(shard))
                self.iteration_counter.compare_and_set(iteration,
                                                       iteration + 1)
            self.barrier.wait()
            iteration_times.append(env.now - iteration_start)
        return {"worker_id": self.worker_id, "load_time": load_done,
                "iteration_times": iteration_times}


@dataclass
class RedisKMeansResult:
    total_time: float
    load_time: float
    iteration_phase_time: float
    per_iteration: list[float]


class RedisKMeans:
    """Driver for the Redis-backed variant."""

    def __init__(self, dataset: MLDataset, k: int, iterations: int,
                 workers: int = 80, shards: int | None = None,
                 run_id: str = "redis-kmeans", seed: int = 7):
        self.dataset = dataset
        self.k = k
        self.iterations = iterations
        self.workers = workers
        self.shards = shards if shards is not None else min(k, 32)
        self.run_id = run_id
        self.seed = seed

    def train(self, pre_warm: bool = True) -> RedisKMeansResult:
        env = current_environment()
        redis = env.redis()
        register_scripts(redis)
        self.dataset.install(env.object_store)
        if pre_warm:
            env.pre_warm(self.workers)
        rng = np.random.Generator(np.random.PCG64(self.seed))
        initial = mlmath.init_centroids(rng, self.k,
                                        self.dataset.features)
        bounds = np.linspace(0, self.k, self.shards + 1, dtype=int)
        client = current_location()
        for shard in range(self.shards):
            redis.set(client, f"{self.run_id}/centroids-{shard}",
                      initial[bounds[shard]:bounds[shard + 1]])
        start = env.now
        threads = [
            CloudThread(RedisKMeansWorker(
                worker_id=i, run_id=self.run_id,
                partition_key=self.dataset.partition_info(i).key,
                nominal_points=self.dataset.nominal_points_per_partition,
                nominal_bytes=self.dataset.nominal_bytes_per_partition,
                dims=self.dataset.features, k=self.k, shards=self.shards,
                parties=self.workers, max_iterations=self.iterations))
            for i in range(self.workers)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        reports = [thread.result() for thread in threads]
        end = env.now
        per_iteration = [
            max(r["iteration_times"][i] for r in reports)
            for i in range(self.iterations)
        ]
        return RedisKMeansResult(
            total_time=end - start,
            load_time=max(r["load_time"] for r in reports) - start,
            iteration_phase_time=sum(per_iteration),
            per_iteration=per_iteration)
