"""Crucial k-means (Listing 2).

Iterative clustering with recurring synchronization points and a small
mutable shared state: the centroids (a list of ``@Shared`` objects,
one shard per subset of clusters), the convergence criterion
(``GlobalDelta``), an iteration counter, and a cyclic barrier
coordinating the iterations.  The corresponding method calls execute
remotely in the DSO layer — the in-store aggregation that replaces
Spark's reduce phase (Section 4.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.cloud_thread import CloudThread, RetryPolicy
from repro.core.objects import AtomicInt
from repro.core.runtime import compute, current_environment
from repro.core.shared import dso_costs, shared
from repro.core.sync import CyclicBarrier
from repro.ml import math as mlmath
from repro.ml.costmodel import kmeans_iteration_cost
from repro.ml.dataset import MLDataset


@dso_costs(update=lambda sums, counts: sums.size * 2e-9,
           get=lambda: 0.0)
class CentroidShard:
    """A subset of the k centroids, with in-store partial aggregation.

    Workers ``update`` it with partial sums/counts; after the barrier,
    one worker calls ``advance`` to fold the accumulators into new
    coordinates (state machine step; deterministic).
    """

    def __init__(self, coords: np.ndarray):
        self.coords = np.asarray(coords, dtype=np.float64)
        self.acc_sums = np.zeros_like(self.coords)
        self.acc_counts = np.zeros(len(self.coords), dtype=np.int64)

    def get(self) -> np.ndarray:
        return self.coords

    def update(self, sums: np.ndarray, counts: np.ndarray) -> None:
        self.acc_sums += sums
        self.acc_counts += counts

    def advance(self) -> float:
        """Fold accumulators into the next coordinates; returns the
        movement (delta) of this shard's centroids."""
        new_coords, delta = mlmath.kmeans_update(
            self.acc_sums, self.acc_counts, self.coords)
        self.coords = new_coords
        self.acc_sums[:] = 0.0
        self.acc_counts[:] = 0
        return delta


class GlobalDelta:
    """The convergence criterion (Listing 2's ``GlobalDelta``)."""

    def __init__(self):
        self.delta = 0.0
        self.history: list[float] = []

    def update(self, delta: float) -> None:
        self.delta += delta

    def seal(self) -> float:
        """Close the current iteration's delta and reset."""
        self.history.append(self.delta)
        value = self.delta
        self.delta = 0.0
        return value

    def get(self) -> float:
        return self.history[-1] if self.history else float("inf")

    def get_history(self) -> list[float]:
        return list(self.history)


class KMeansWorker:
    """The per-cloud-thread Runnable of Listing 2."""

    def __init__(self, worker_id: int, run_id: str, partition_key: str,
                 nominal_points: int, nominal_bytes: int, dims: int, k: int,
                 shards: int, parties: int, max_iterations: int,
                 initial_centroids: np.ndarray,
                 convergence_delta: float = 0.0):
        self.worker_id = worker_id
        self.partition_key = partition_key
        self.nominal_points = nominal_points
        self.nominal_bytes = nominal_bytes
        self.dims = dims
        self.k = k
        self.max_iterations = max_iterations
        self.convergence_delta = convergence_delta
        bounds = np.linspace(0, k, shards + 1, dtype=int)
        self.shard_proxies = [
            shared(CentroidShard, f"{run_id}/centroids-{s}",
                   initial_centroids[bounds[s]:bounds[s + 1]])
            for s in range(shards)
        ]
        self.global_delta = shared(GlobalDelta, key=f"{run_id}/delta")
        self.iteration_counter = AtomicInt(f"{run_id}/iterations")
        self.barrier = CyclicBarrier(f"{run_id}/barrier", parties)

    # -- phases -------------------------------------------------------------------

    def load_dataset_fragment(self) -> np.ndarray:
        env = current_environment()
        points = env.object_store.get(self.partition_key)
        compute(self.nominal_bytes
                * env.config.compute.parse_per_byte)
        return points

    def run(self) -> dict:
        env = current_environment()
        points = self.load_dataset_fragment()
        load_done = env.now
        iteration_cost = kmeans_iteration_cost(
            self.nominal_points, self.dims, self.k, env.config)
        iteration_times = []
        iteration = self.iteration_counter.get()
        while True:
            iteration_start = env.now
            correct_centroids = np.concatenate(
                [proxy.get() for proxy in self.shard_proxies])
            sums, counts, _cost = mlmath.kmeans_partial(
                points, correct_centroids)
            compute(iteration_cost, jitter_sigma=0.02)
            bounds = np.linspace(0, self.k, len(self.shard_proxies) + 1,
                                 dtype=int)
            for index, proxy in enumerate(self.shard_proxies):
                lo, hi = bounds[index], bounds[index + 1]
                proxy.update(sums[lo:hi], counts[lo:hi])
            arrival = self.barrier.wait()
            if arrival == 0:  # last to arrive advances the global state
                for proxy in self.shard_proxies:
                    self.global_delta.update(proxy.advance())
                self.global_delta.seal()
                self.iteration_counter.compare_and_set(
                    iteration, iteration + 1)
            self.barrier.wait()
            iteration += 1
            iteration_times.append(env.now - iteration_start)
            if iteration >= self.max_iterations:
                break
            if self.convergence_delta > 0 and \
                    self.global_delta.get() < self.convergence_delta:
                break
        return {
            "worker_id": self.worker_id,
            "load_time": load_done,
            "iteration_times": iteration_times,
            "iterations_done": iteration,
        }


@dataclass
class KMeansResult:
    centroids: np.ndarray
    iterations: int
    total_time: float
    load_time: float
    iteration_phase_time: float
    per_iteration: list[float]
    delta_history: list[float]
    worker_reports: list[dict] = field(repr=False, default_factory=list)


class CrucialKMeans:
    """Driver: provisions workers, runs Listing 2, gathers timings."""

    def __init__(self, dataset: MLDataset, k: int, iterations: int,
                 workers: int = 80, shards: int | None = None,
                 run_id: str = "kmeans", seed: int = 7,
                 convergence_delta: float = 0.0,
                 retry_policy: RetryPolicy | None = None):
        if workers > dataset.partitions:
            raise ValueError("more workers than dataset partitions")
        self.dataset = dataset
        self.k = k
        self.iterations = iterations
        self.workers = workers
        self.shards = shards if shards is not None else min(k, 32)
        self.run_id = run_id
        self.seed = seed
        self.convergence_delta = convergence_delta
        self.retry_policy = retry_policy

    def train(self, pre_warm: bool = True) -> KMeansResult:
        """Run the full job; call from inside ``env.run(...)``."""
        env = current_environment()
        self.dataset.install(env.object_store)
        if pre_warm:
            env.pre_warm(self.workers)
        rng = np.random.Generator(np.random.PCG64(self.seed))
        initial = mlmath.init_centroids(rng, self.k, self.dataset.features)
        start = env.now
        runnables = [
            KMeansWorker(
                worker_id=i, run_id=self.run_id,
                partition_key=self.dataset.partition_info(i).key,
                nominal_points=self.dataset.nominal_points_per_partition,
                nominal_bytes=self.dataset.nominal_bytes_per_partition,
                dims=self.dataset.features, k=self.k, shards=self.shards,
                parties=self.workers, max_iterations=self.iterations,
                initial_centroids=initial,
                convergence_delta=self.convergence_delta)
            for i in range(self.workers)
        ]
        threads = [CloudThread(r, retry_policy=self.retry_policy)
                   for r in runnables]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        reports = [thread.result() for thread in threads]
        end = env.now
        load_time = max(r["load_time"] for r in reports) - start
        per_iteration = [
            max(r["iteration_times"][i] for r in reports)
            for i in range(min(len(r["iteration_times"]) for r in reports))
        ]
        centroids = np.concatenate([
            runnables[0].shard_proxies[s].get()
            for s in range(self.shards)])
        delta_history = runnables[0].global_delta.get_history()
        return KMeansResult(
            centroids=centroids,
            iterations=max(r["iterations_done"] for r in reports),
            total_time=end - start,
            load_time=load_time,
            iteration_phase_time=sum(per_iteration),
            per_iteration=per_iteration,
            delta_history=delta_history,
            worker_reports=reports)
