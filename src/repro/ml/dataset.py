"""The dual-scale dataset (spark-perf stand-in).

The paper trains on 100 GB / 55.6 M points / 100 features split into
80 S3 partitions.  We cannot materialize that on a laptop, so each
dataset carries two scales:

* **nominal** — the paper's sizes; drives every *time and cost* model
  (S3 transfer duration, per-iteration compute);
* **materialized** — a small, deterministic sample per partition;
  drives the *numerics* (losses, centroids, convergence).

Both the Crucial workers and the Spark executors read the same
materialized partitions, so their models agree.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import Config, DEFAULT_CONFIG
from repro.ml import math as mlmath
from repro.storage.backend import StorageBackend


@dataclass(frozen=True)
class PartitionInfo:
    key: str
    nominal_points: int
    nominal_bytes: int


class MLDataset:
    """A partitioned dataset with nominal and materialized scales."""

    def __init__(self, kind: str, partitions: int = 80,
                 materialized_points: int = 40_000,
                 config: Config = DEFAULT_CONFIG, seed: int = 12345,
                 features: int | None = None,
                 nominal_points: int | None = None,
                 nominal_bytes: int | None = None):
        if kind not in ("kmeans", "logreg"):
            raise ValueError(f"unknown dataset kind {kind!r}")
        if partitions <= 0:
            raise ValueError(f"need positive partitions: {partitions}")
        spec = config.dataset
        self.kind = kind
        self.partitions = partitions
        self.features = features if features is not None else spec.features
        self.nominal_points = (nominal_points if nominal_points is not None
                               else spec.nominal_points)
        self.nominal_bytes = (nominal_bytes if nominal_bytes is not None
                              else spec.nominal_bytes)
        self.materialized_points = materialized_points
        self.seed = seed
        self._cache: dict[int, object] = {}

    # -- nominal bookkeeping -----------------------------------------------------

    @property
    def nominal_points_per_partition(self) -> int:
        return self.nominal_points // self.partitions

    @property
    def nominal_bytes_per_partition(self) -> int:
        return self.nominal_bytes // self.partitions

    def partition_info(self, index: int) -> PartitionInfo:
        if not 0 <= index < self.partitions:
            raise IndexError(f"partition {index} out of range")
        return PartitionInfo(
            key=f"datasets/{self.kind}/{self.seed}/part-{index:05d}",
            nominal_points=self.nominal_points_per_partition,
            nominal_bytes=self.nominal_bytes_per_partition)

    # -- materialization ----------------------------------------------------------

    def materialize(self, index: int):
        """Deterministically generate partition ``index``'s sample.

        k-means: an ``(m, features)`` array.  logreg: ``(X, y)``.
        """
        if index in self._cache:
            return self._cache[index]
        rng = np.random.Generator(np.random.PCG64(
            np.random.SeedSequence([self.seed, index])))
        m = self.materialized_points // self.partitions
        m = max(m, 50)
        if self.kind == "kmeans":
            data = mlmath.generate_kmeans_points(rng, m, self.features)
        else:
            # All partitions sample one underlying model: the true
            # weights derive from the dataset seed alone.
            weights_rng = np.random.Generator(np.random.PCG64(
                np.random.SeedSequence([self.seed, 0x7777])))
            true_weights = weights_rng.standard_normal(self.features)
            data = mlmath.generate_labeled_points(rng, m, self.features,
                                                  true_weights)
        self._cache[index] = data
        return data

    def upload(self, store: StorageBackend) -> list[PartitionInfo]:
        """PUT all partitions to the store at nominal size.

        Must run inside a simulated thread (charges the backend's
        write latencies and request fees).
        """
        infos = []
        for index in range(self.partitions):
            info = self.partition_info(index)
            store.put(info.key, self.materialize(index),
                      nbytes=info.nominal_bytes)
            infos.append(info)
        return infos

    def install(self, store: StorageBackend) -> list[PartitionInfo]:
        """Place partitions in the store *without* charging upload
        time (the dataset pre-exists the experiment, as in the paper).
        Capacity rent still accrues from now on.
        """
        infos = []
        for index in range(self.partitions):
            info = self.partition_info(index)
            store.seed(info.key, self.materialize(index),
                       nbytes=info.nominal_bytes)
            infos.append(info)
        return infos
