"""Single-machine baselines (the VM bars of Fig. 3).

The same k-means iteration structure as Listing 2, but run with plain
threads on one multi-core VM: shared state costs nothing, and the CPU
is an egalitarian processor-sharing pool — so scale-up collapses to
``cores / threads`` once the VM is oversubscribed, exactly the
degradation Fig. 3 shows for m5.2xlarge (8 cores) and m5.4xlarge (16).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import Config, DEFAULT_CONFIG
from repro.ml.costmodel import kmeans_iteration_cost
from repro.simulation.kernel import Kernel
from repro.simulation.primitives import Condition
from repro.simulation.resources import ProcessorSharing
from repro.simulation.thread import spawn


class _LocalBarrier:
    """An in-process cyclic barrier over simulation primitives."""

    def __init__(self, kernel: Kernel, parties: int):
        self.parties = parties
        self.count = 0
        self.generation = 0
        self._condition = Condition(kernel)

    def wait(self) -> None:
        with self._condition:
            generation = self.generation
            self.count += 1
            if self.count == self.parties:
                self.count = 0
                self.generation += 1
                self._condition.notify_all()
                return
            while generation == self.generation:
                self._condition.wait()


@dataclass
class LocalRunResult:
    threads: int
    iteration_phase_time: float


class LocalKMeansBaseline:
    """k-means iterations with VM threads (the Fig. 3 baseline)."""

    def __init__(self, kernel: Kernel, cores: int,
                 config: Config = DEFAULT_CONFIG):
        self.kernel = kernel
        self.cores = cores
        self.config = config

    def run(self, threads: int, k: int = 25, iterations: int = 10,
            nominal_points_per_thread: int | None = None,
            dims: int | None = None) -> LocalRunResult:
        """Run the iteration phase; input scales with ``threads``.

        Must be called from inside a simulated thread.
        """
        if nominal_points_per_thread is None:
            nominal_points_per_thread = (
                self.config.dataset.nominal_points
                // self.config.dataset.partitions)
        if dims is None:
            dims = self.config.dataset.features
        cpu = ProcessorSharing(self.kernel, cores=self.cores)
        barrier = _LocalBarrier(self.kernel, threads)
        cost = kmeans_iteration_cost(nominal_points_per_thread, dims, k,
                                     self.config)
        start = self.kernel.now

        def worker():
            for _ in range(iterations):
                cpu.execute(cost)
                barrier.wait()

        workers = [spawn(worker, name=f"vm-thread-{i}")
                   for i in range(threads)]
        for worker_thread in workers:
            worker_thread.join()
        return LocalRunResult(threads=threads,
                              iteration_phase_time=self.kernel.now - start)


def scale_up(t1: float, tn: float) -> float:
    """The paper's metric: ``scale-up = T1 / Tn`` with input scaled
    proportionally to threads (1.0 = perfect)."""
    return t1 / tn
