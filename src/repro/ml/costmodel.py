"""Compute-time model for the ML workloads at nominal scale.

The simulation executes the numerics on small materialized samples;
the virtual clock instead advances by what the *nominal* (100 GB)
workload would cost, using the per-operation constants of
:class:`repro.config.ComputeCosts` (back-derived from Figs. 4 and 5).
"""

from __future__ import annotations

from repro.config import Config, DEFAULT_CONFIG


def kmeans_iteration_cost(nominal_points: int, dims: int, k: int,
                          config: Config = DEFAULT_CONFIG,
                          spark: bool = False) -> float:
    """CPU-seconds (one vCPU) of one k-means assignment+update pass."""
    cost = nominal_points * dims * k * config.compute.kmeans_point_dim_cluster
    if spark:
        cost *= config.compute.spark_compute_inflation
    return cost


def logreg_iteration_cost(nominal_points: int, dims: int,
                          config: Config = DEFAULT_CONFIG,
                          spark: bool = False) -> float:
    """CPU-seconds of one gradient pass over ``nominal_points``."""
    cost = nominal_points * dims * config.compute.logreg_point_feature
    if spark:
        cost *= config.compute.spark_compute_inflation
    return cost


def montecarlo_cost(draws: int, config: Config = DEFAULT_CONFIG) -> float:
    """CPU-seconds to draw ``draws`` Monte-Carlo points."""
    return draws * config.compute.montecarlo_draw


def inference_cost(config: Config = DEFAULT_CONFIG) -> float:
    """Client-side CPU-seconds of one k-means inference (distance
    computations against the full centroid set)."""
    return config.compute.inference_compute
