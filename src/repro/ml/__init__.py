"""Machine-learning workloads (Section 6.2).

The two algorithms the paper evaluates — k-means clustering and
logistic regression — in both their Crucial form (cloud threads +
shared objects + barrier) and helpers shared with the Spark baseline.
Numerics run for real on materialized data; execution time is charged
from the calibrated cost model at the dataset's *nominal* scale.
"""

from repro.ml.dataset import MLDataset
from repro.ml.kmeans import CrucialKMeans
from repro.ml.logreg import CrucialLogisticRegression

__all__ = ["MLDataset", "CrucialKMeans", "CrucialLogisticRegression"]
