"""Crucial logistic regression (Section 6.2.2).

"In Crucial, the weight coefficients are shared objects.  At each
iteration, a cloud thread retrieves the current weights, computes the
sub-gradients, updates the shared objects, and synchronizes with the
other threads.  Once all the partial results are uploaded to the DSO
layer, the weights are recomputed and the threads proceed to the next
iteration."
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.cloud_thread import CloudThread, RetryPolicy
from repro.core.runtime import compute, current_environment
from repro.core.shared import dso_costs, shared
from repro.core.sync import CyclicBarrier
from repro.ml import math as mlmath
from repro.ml.costmodel import logreg_iteration_cost
from repro.ml.dataset import MLDataset


@dso_costs(update=lambda grad, loss, count: grad.size * 2e-9,
           get=lambda: 0.0)
class GlobalWeights:
    """The shared weight vector with in-store gradient aggregation."""

    def __init__(self, initial: np.ndarray, learning_rate: float):
        self.weights = np.asarray(initial, dtype=np.float64)
        self.learning_rate = float(learning_rate)
        self.acc_gradient = np.zeros_like(self.weights)
        self.acc_loss = 0.0
        self.acc_count = 0
        self.loss_history: list[float] = []

    def get(self) -> np.ndarray:
        return self.weights

    def update(self, gradient: np.ndarray, loss: float, count: int) -> None:
        """Aggregate one worker's sub-gradient in the store."""
        self.acc_gradient += gradient
        self.acc_loss += loss
        self.acc_count += count

    def advance(self) -> float:
        """Apply the SGD step and log the epoch's mean loss."""
        mean_loss = self.acc_loss / max(self.acc_count, 1)
        self.weights = mlmath.sgd_step(
            self.weights, self.acc_gradient, self.acc_count,
            self.learning_rate)
        self.loss_history.append(mean_loss)
        self.acc_gradient[:] = 0.0
        self.acc_loss = 0.0
        self.acc_count = 0
        return mean_loss

    def get_loss_history(self) -> list[float]:
        return list(self.loss_history)


class LogRegWorker:
    """Per-cloud-thread SGD worker."""

    def __init__(self, worker_id: int, run_id: str, partition_key: str,
                 nominal_points: int, nominal_bytes: int, dims: int,
                 parties: int, iterations: int,
                 initial_weights: np.ndarray, learning_rate: float):
        self.worker_id = worker_id
        self.partition_key = partition_key
        self.nominal_points = nominal_points
        self.nominal_bytes = nominal_bytes
        self.dims = dims
        self.iterations = iterations
        self.weights = shared(GlobalWeights, f"{run_id}/weights",
                              initial_weights, learning_rate)
        self.barrier = CyclicBarrier(f"{run_id}/barrier", parties)

    def run(self) -> dict:
        env = current_environment()
        features, labels = env.object_store.get(self.partition_key)
        compute(self.nominal_bytes * env.config.compute.parse_per_byte)
        load_done = env.now
        iteration_cost = logreg_iteration_cost(
            self.nominal_points, self.dims, env.config)
        iteration_times = []
        for _iteration in range(self.iterations):
            iteration_start = env.now
            weights = self.weights.get()
            gradient, loss, count = mlmath.logreg_partial(
                features, labels, weights)
            compute(iteration_cost, jitter_sigma=0.02)
            self.weights.update(gradient, loss, count)
            arrival = self.barrier.wait()
            if arrival == 0:
                self.weights.advance()
            self.barrier.wait()
            iteration_times.append(env.now - iteration_start)
        return {
            "worker_id": self.worker_id,
            "load_time": load_done,
            "iteration_times": iteration_times,
        }


@dataclass
class LogRegResult:
    weights: np.ndarray
    loss_history: list[float]
    total_time: float
    load_time: float
    iteration_phase_time: float
    per_iteration: list[float]
    worker_reports: list[dict] = field(repr=False, default_factory=list)


class CrucialLogisticRegression:
    """Driver for the Crucial implementation of Fig. 4."""

    def __init__(self, dataset: MLDataset, iterations: int = 100,
                 workers: int = 80, learning_rate: float = 0.5,
                 run_id: str = "logreg", seed: int = 11,
                 retry_policy: RetryPolicy | None = None):
        if workers > dataset.partitions:
            raise ValueError("more workers than dataset partitions")
        self.dataset = dataset
        self.iterations = iterations
        self.workers = workers
        self.learning_rate = learning_rate
        self.run_id = run_id
        self.seed = seed
        self.retry_policy = retry_policy

    def train(self, pre_warm: bool = True) -> LogRegResult:
        env = current_environment()
        self.dataset.install(env.object_store)
        if pre_warm:
            env.pre_warm(self.workers)
        initial = np.zeros(self.dataset.features)
        start = env.now
        runnables = [
            LogRegWorker(
                worker_id=i, run_id=self.run_id,
                partition_key=self.dataset.partition_info(i).key,
                nominal_points=self.dataset.nominal_points_per_partition,
                nominal_bytes=self.dataset.nominal_bytes_per_partition,
                dims=self.dataset.features, parties=self.workers,
                iterations=self.iterations, initial_weights=initial,
                learning_rate=self.learning_rate)
            for i in range(self.workers)
        ]
        threads = [CloudThread(r, retry_policy=self.retry_policy)
                   for r in runnables]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        reports = [thread.result() for thread in threads]
        end = env.now
        load_time = max(r["load_time"] for r in reports) - start
        per_iteration = [
            max(r["iteration_times"][i] for r in reports)
            for i in range(self.iterations)
        ]
        weights_proxy = runnables[0].weights
        return LogRegResult(
            weights=weights_proxy.get(),
            loss_history=weights_proxy.get_loss_history(),
            total_time=end - start,
            load_time=load_time,
            iteration_phase_time=sum(per_iteration),
            per_iteration=per_iteration,
            worker_reports=reports)
