"""Serving a trained k-means model from the DSO layer (Fig. 8).

The persistent-state experiment: 200 replicated centroid objects
(rf=2) live on a 3-node DSO cluster; 100 cloud threads run inferences
in closed loop.  The harness crashes a node mid-run and adds one
later; throughput dips by roughly one third (a third of the serving
capacity is gone) and recovers as the background rebalancer spreads
objects onto the new node.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.cloud_thread import CloudThread
from repro.core.runtime import compute, current_environment
from repro.core.shared import shared
from repro.dso.reference import DsoReference
from repro.ml.costmodel import inference_cost
from repro.ml.kmeans import CentroidShard

#: Server CPU to read + marshal one centroid object (95 us dispatch is
#: charged separately): calibrated so 3 nodes saturate near the
#: paper's ~490 inferences/s with 100 closed-loop threads.
PER_READ_COST = 150e-6


def model_references(run_id: str, n_objects: int,
                     rf: int = 2) -> list[DsoReference]:
    return [
        DsoReference("CentroidShard", f"{run_id}/centroids-{i}",
                     persistent=True, rf=rf)
        for i in range(n_objects)
    ]


def deploy_model(run_id: str, k: int = 200, dims: int = 100,
                 rf: int = 2, seed: int = 3) -> list[DsoReference]:
    """Store a trained model: one persistent shared object per
    centroid (the paper's "200 centroids")."""
    rng = np.random.Generator(np.random.PCG64(seed))
    for i in range(k):
        proxy = shared(CentroidShard, f"{run_id}/centroids-{i}",
                       rng.standard_normal((1, dims)),
                       persistent=True, rf=rf)
        proxy._ensure()
    return model_references(run_id, k, rf)


class InferenceWorker:
    """Closed-loop inference client (runs as a cloud thread)."""

    def __init__(self, worker_id: int, run_id: str, n_objects: int,
                 duration: float, rf: int = 2):
        self.worker_id = worker_id
        self.run_id = run_id
        self.n_objects = n_objects
        self.duration = duration
        self.rf = rf

    def run(self) -> list[float]:
        """Returns the completion timestamps of its inferences."""
        env = current_environment()
        refs = model_references(self.run_id, self.n_objects, self.rf)
        deadline = env.now + self.duration
        completions: list[float] = []
        while env.now < deadline:
            try:
                env.dso.read_bulk(env.client_endpoint, refs, method="get",
                                  per_read_cost=PER_READ_COST)
            except Exception:
                # Node failure mid-read: back off briefly and retry —
                # the service degrades but never blocks (Fig. 8).
                from repro.simulation.thread import sleep

                sleep(0.2)
                continue
            compute(inference_cost(env.config))
            completions.append(env.now)
        return completions


@dataclass
class InferenceRunResult:
    duration: float
    per_second: list[int]  # completed inferences per 1s bucket
    total: int

    def throughput_between(self, start: float, end: float) -> float:
        window = self.per_second[int(start):int(end)]
        return sum(window) / max(len(window), 1)


def run_inference_load(run_id: str, n_threads: int, duration: float,
                       n_objects: int = 200, rf: int = 2,
                       pre_warm: bool = True) -> InferenceRunResult:
    """Drive the closed-loop load; call inside ``env.run(...)``.

    Fault injection (crash/add nodes) is the caller's business — see
    the Fig. 8 harness.
    """
    env = current_environment()
    if pre_warm:
        env.pre_warm(n_threads)
    start = env.now
    threads = [
        CloudThread(InferenceWorker(i, run_id, n_objects, duration, rf))
        for i in range(n_threads)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    buckets = [0] * (int(duration) + 2)
    total = 0
    for thread in threads:
        for timestamp in thread.result():
            buckets[min(int(timestamp - start), len(buckets) - 1)] += 1
            total += 1
    return InferenceRunResult(duration=duration, per_second=buckets,
                              total=total)
