"""Hot-path speed: kernel dispatch rate and pipelined DSO shipping.

Not a figure from the paper — this harness guards the reproduction's
own critical path.  Every benchmark, chaos trial, and fuzzer schedule
is bounded by two rates:

* **events/sec** (wall clock): how fast the kernel pops and dispatches
  heap events.  Thread wakeups pay the real-thread handshake; timers
  are pure kernel-context callbacks.  The pooled/slotted event path
  and the no-scheduler fast path keep both cheap.
* **ops/sec** (virtual time): how fast a client pushes DSO ops.  The
  sequential ``put`` pays a full round trip per op; the pipelined
  ``put_async`` path batches queued ops into shared round trips, which
  is where the ≥3x amortization this harness pins comes from.

The virtual-time numbers double as a calibration guard: the sync op
latency must stay on the Table 2 PUT calibration, proving the batching
machinery costs the synchronous path nothing.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro import CrucialEnvironment
from repro.metrics.report import comparison_table
from repro.simulation import Kernel
from repro.simulation.thread import sleep, spawn


@dataclass
class KernelSpeedResult:
    """Wall-clock dispatch rates plus virtual-time op latencies."""

    wakeup_events: int
    wakeup_wall: float  #: wall seconds dispatching thread wakeups
    timer_events: int
    timer_wall: float  #: wall seconds dispatching timer callbacks
    ops: int
    sync_op_time: float  #: virtual seconds per sequential put
    pipelined_op_time: float  #: virtual seconds per batched async put
    batches: int  #: round trips that carried the async ops

    @property
    def wakeups_per_sec(self) -> float:
        return self.wakeup_events / self.wakeup_wall

    @property
    def timers_per_sec(self) -> float:
        return self.timer_events / self.timer_wall

    @property
    def pipeline_speedup(self) -> float:
        """Virtual-time ops/sec gain of pipelined over sequential."""
        return self.sync_op_time / self.pipelined_op_time


def _wakeup_rate(events: int, seed: int) -> tuple[int, float]:
    """Dispatch ``events`` thread wakeups; return (count, wall secs).

    A handful of threads sleep in short steps — the dominant event
    pattern of every workload — so the measured rate includes the
    real-thread handshake, the wakeup pool, and cancellation cleanup.
    """
    threads = 4
    rounds = events // threads
    with Kernel(seed=seed) as kernel:
        def sleeper():
            for _ in range(rounds):
                sleep(1e-6)

        def main():
            workers = [spawn(sleeper) for _ in range(threads)]
            for worker in workers:
                worker.join()

        thread = kernel.spawn(main)
        start = time.perf_counter()
        kernel.run_until(lambda: thread.done)
        wall = time.perf_counter() - start
    return threads * rounds, wall


def _timer_rate(events: int, seed: int) -> tuple[int, float]:
    """Dispatch ``events`` timer callbacks; return (count, wall secs)."""
    with Kernel(seed=seed) as kernel:
        fired = [0]

        def tick():
            fired[0] += 1

        for i in range(events):
            kernel.call_later((i + 1) * 1e-6, tick)
        start = time.perf_counter()
        kernel.run()
        wall = time.perf_counter() - start
        assert fired[0] == events
    return events, wall


def _op_rates(ops: int, seed: int) -> tuple[float, float, int]:
    """Virtual-time per-op latency: sequential puts vs pipelined puts.

    Single-node deployment, so every op shares one primary — the
    workload batching is built to amortize.  Returns (sync, pipelined,
    batches).
    """
    with CrucialEnvironment(seed=seed, dso_nodes=1) as env:
        def workload():
            client = env.client_endpoint
            env.dso.put(client, "warm", 0)  # create outside the window
            start = env.now
            for i in range(ops):
                env.dso.put(client, "warm", i)
            sync = (env.now - start) / ops

            start = env.now
            futures = [env.dso.put_async(client, "warm", i)
                       for i in range(ops)]
            env.dso.flush(client)
            pipelined = (env.now - start) / ops
            assert all(f.done for f in futures)
            for future in futures:
                future.result()
            return sync, pipelined

        sync, pipelined = env.run(workload)
        batches = env.dso.stats.batches
    return sync, pipelined, batches


def run(events: int = 40_000, ops: int = 400,
        seed: int = 1) -> KernelSpeedResult:
    wakeup_events, wakeup_wall = _wakeup_rate(events, seed)
    timer_events, timer_wall = _timer_rate(events, seed)
    sync, pipelined, batches = _op_rates(ops, seed)
    return KernelSpeedResult(
        wakeup_events=wakeup_events, wakeup_wall=wakeup_wall,
        timer_events=timer_events, timer_wall=timer_wall,
        ops=ops, sync_op_time=sync, pipelined_op_time=pipelined,
        batches=batches)


def report(result: KernelSpeedResult) -> str:
    lines = [
        f"kernel dispatch ({result.wakeup_events:,} wakeups, "
        f"{result.timer_events:,} timers)",
        f"  thread wakeups  {result.wakeups_per_sec:,.0f} events/s",
        f"  timer callbacks {result.timers_per_sec:,.0f} events/s",
    ]
    table = comparison_table(
        f"DSO shipping, {result.ops} same-primary PUTs "
        f"(pipeline speedup {result.pipeline_speedup:.1f}x, "
        f"{result.batches} batches)",
        [
            ("PUT sequential", result.sync_op_time * 1e6,
             result.sync_op_time * 1e6),
            ("PUT pipelined", result.sync_op_time * 1e6,
             result.pipelined_op_time * 1e6),
        ], unit="us")
    return "\n".join(lines) + "\n" + table
