"""Table 2: average latency to access a 1 KB object sequentially.

Compares S3, Redis, Infinispan (plain grid), Crucial (DSO), and
Crucial with rf=2, exactly the paper's five rows.  The paper runs 30k
operations per system; latencies here are i.i.d. samples around the
calibrated means, so a few hundred suffice — ``ops`` scales it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import CrucialEnvironment
from repro.metrics.report import comparison_table

PAYLOAD = b"x" * 1024

#: Table 2 values, in seconds: (put, get).
PAPER = {
    "s3": (34_868e-6, 23_072e-6),
    "redis": (232e-6, 229e-6),
    "infinispan": (228e-6, 207e-6),
    "crucial": (231e-6, 229e-6),
    "crucial-rf2": (512e-6, 505e-6),
}


@dataclass
class LatencyResult:
    #: system -> (avg put seconds, avg get seconds)
    averages: dict[str, tuple[float, float]]
    ops: int


def run(ops: int = 300, seed: int = 1) -> LatencyResult:
    with CrucialEnvironment(seed=seed, dso_nodes=2) as env:
        def main():
            averages = {}
            redis = env.redis(shards=1)
            grid = env.data_grid(nodes=1)
            client = env.client_endpoint

            def timed(fn):
                start = env.now
                for _ in range(ops):
                    fn()
                return (env.now - start) / ops

            env.object_store.put("t2", PAYLOAD)
            averages["s3"] = (
                timed(lambda: env.object_store.put("t2", PAYLOAD)),
                timed(lambda: env.object_store.get("t2")))
            redis.set(client, "t2", PAYLOAD)
            averages["redis"] = (
                timed(lambda: redis.set(client, "t2", PAYLOAD)),
                timed(lambda: redis.get(client, "t2")))
            grid.put(client, "t2", PAYLOAD)
            averages["infinispan"] = (
                timed(lambda: grid.put(client, "t2", PAYLOAD)),
                timed(lambda: grid.get(client, "t2")))
            env.dso.put(client, "t2", PAYLOAD)
            averages["crucial"] = (
                timed(lambda: env.dso.put(client, "t2", PAYLOAD)),
                timed(lambda: env.dso.get(client, "t2")))
            env.dso.put(client, "t2r", PAYLOAD, rf=2)
            averages["crucial-rf2"] = (
                timed(lambda: env.dso.put(client, "t2r", PAYLOAD, rf=2)),
                timed(lambda: env.dso.get(client, "t2r", rf=2)))
            return averages

        averages = env.run(main)
    return LatencyResult(averages=averages, ops=ops)


def report(result: LatencyResult) -> str:
    entries = []
    for system, (paper_put, paper_get) in PAPER.items():
        put, get = result.averages[system]
        entries.append((f"{system} PUT", paper_put * 1e6, put * 1e6))
        entries.append((f"{system} GET", paper_get * 1e6, get * 1e6))
    return comparison_table(
        f"Table 2 - 1KB access latency, {result.ops} sequential ops",
        entries, unit="us")
