"""Fig. 8: inference serving under storage-node churn.

A 200-centroid k-means model is stored in 3 DSO nodes with rf=2; 100
cloud threads perform inferences in closed loop.  One node is crashed
a third of the way through and a fresh node added at two thirds.
Paper shape: ~490 inferences/s steady state; the crash costs ~30% of
throughput (a third of serving capacity); adding a node restores the
initial throughput after a rebalancing ramp (~20 s in the paper); the
system never blocks.

The paper's run lasts 360 s; the default here is a 120 s run with the
same proportions (crash at T/3, join at 2T/3) — pass
``duration=360`` for the full-length version.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import CrucialEnvironment
from repro.metrics.report import render_table
from repro.ml.inference import (
    InferenceRunResult,
    deploy_model,
    run_inference_load,
)
from repro.simulation.thread import sleep, spawn

PAPER_STEADY = 490.0
PAPER_DROP = 0.30


@dataclass
class PersistenceResult:
    run: InferenceRunResult
    crash_at: float
    join_at: float
    detection: float

    def steady(self) -> float:
        return self.run.throughput_between(0.2 * self.crash_at,
                                           0.9 * self.crash_at)

    def degraded(self) -> float:
        start = min(self.crash_at + self.detection + 2.0,
                    0.5 * (self.crash_at + self.join_at))
        return self.run.throughput_between(start, self.join_at)

    def recovered(self) -> float:
        return self.run.throughput_between(0.92 * self.run.duration,
                                           self.run.duration)


def run(duration: float = 120.0, n_threads: int = 100,
        n_objects: int = 200, seed: int = 12) -> PersistenceResult:
    crash_at = duration / 3.0
    join_at = 2.0 * duration / 3.0
    with CrucialEnvironment(seed=seed, dso_nodes=3) as env:
        detection = env.config.dso.failure_detection

        def main():
            deploy_model("fig8", k=n_objects, rf=2, seed=seed)

            def chaos():
                sleep(crash_at)
                victim = env.dso.live_nodes()[0].name
                env.dso.crash_node(victim)
                sleep(join_at - crash_at)
                env.dso.add_node()

            spawn(chaos, name="chaos", daemon=True)
            return run_inference_load("fig8", n_threads=n_threads,
                                      duration=duration,
                                      n_objects=n_objects)

        result = env.run(main)
    return PersistenceResult(run=result, crash_at=crash_at,
                             join_at=join_at, detection=detection)


def report(result: PersistenceResult) -> str:
    steady = result.steady()
    degraded = result.degraded()
    recovered = result.recovered()
    drop = 1.0 - degraded / steady if steady else 0.0
    rows = [
        ("steady state", f"{steady:.0f} inf/s"),
        (f"after crash (t={result.crash_at:.0f}s + detection)",
         f"{degraded:.0f} inf/s ({drop:-.0%} vs steady)"),
        (f"after join (t={result.join_at:.0f}s) + rebalance",
         f"{recovered:.0f} inf/s"),
    ]
    table = render_table(["window", "throughput"], rows,
                         title="Fig. 8 - inference serving under churn")
    from repro.metrics.ascii_plot import sparkline

    table += (
        f"\npaper: ~490 inf/s steady -> measured {steady:.0f} inf/s"
        f"\npaper: crash costs ~30% -> measured {drop:.0%}"
        f"\npaper: initial throughput restored after node join -> "
        f"measured {recovered / steady:.0%} of steady"
        f"\nthroughput series (1s buckets, crash at "
        f"{result.crash_at:.0f}s, join at {result.join_at:.0f}s):"
        f"\n  {sparkline(result.run.per_second[:int(result.run.duration)], width=72)}"
        f"\nper-second series (5s buckets): "
        + " ".join(
            f"{sum(result.run.per_second[i:i + 5]) / 5:.0f}"
            for i in range(0, int(result.run.duration), 5)))
    return table
