"""Experiment drivers: one module per table/figure of the paper.

Each module exposes ``run(...) -> <Result>`` returning structured
virtual-time measurements, and ``report(result) -> str`` rendering the
paper-vs-measured comparison that EXPERIMENTS.md records.  Benchmarks
under ``benchmarks/`` are thin wrappers around these.

Experiments accept a ``scale`` knob where the paper's full size would
be slow to simulate; scaled runs keep the workload *shape* (threads,
objects, and measured windows shrink together).
"""

from repro.harness import (  # noqa: F401  (re-exported for discoverability)
    ablation_shipping,
    cache_readpath,
    fig2a_throughput,
    fig2b_montecarlo,
    fig3_scaleup,
    fig4_logreg,
    fig5_kmeans,
    fig6_mapsync,
    fig7a_barrier,
    fig7b_breakdown,
    fig7c_santa,
    fig8_persistence,
    keeper,
    kernel_speed,
    serving,
    table2_latency,
    table3_costs,
    table4_loc,
    tiering_pareto,
    txn_atomicity,
)

__all__ = [
    "ablation_shipping",
    "cache_readpath",
    "table2_latency",
    "fig2a_throughput",
    "fig2b_montecarlo",
    "fig3_scaleup",
    "fig4_logreg",
    "fig5_kmeans",
    "table3_costs",
    "fig6_mapsync",
    "fig7a_barrier",
    "fig7b_breakdown",
    "fig7c_santa",
    "fig8_persistence",
    "keeper",
    "kernel_speed",
    "serving",
    "table4_loc",
    "tiering_pareto",
    "txn_atomicity",
]
