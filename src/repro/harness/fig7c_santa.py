"""Fig. 7c: the Santa Claus problem across the three deployments.

10 elves, 9 reindeer, Santa, 15 toy deliveries.  Paper shape: moving
the monitor objects into the DSO layer costs ~8% over POJO; running
entities as cloud threads changes almost nothing beyond invocation
overhead (cold starts excluded).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import CrucialEnvironment
from repro.coordination.santa import SantaClausProblem, SantaResult
from repro.metrics.report import render_table

PAPER_DSO_OVERHEAD = 0.08


@dataclass
class SantaComparison:
    results: dict[str, SantaResult]
    deliveries: int

    def overhead(self, variant: str) -> float:
        return (self.results[variant].elapsed
                / self.results["local"].elapsed - 1.0)


def run(deliveries: int = 15, seed: int = 11) -> SantaComparison:
    results: dict[str, SantaResult] = {}
    for variant in ("local", "dso", "cloud"):
        with CrucialEnvironment(seed=seed, dso_nodes=1) as env:
            problem = SantaClausProblem(deliveries=deliveries, seed=seed)
            results[variant] = env.run(
                lambda v=variant: problem.run(v))
    return SantaComparison(results=results, deliveries=deliveries)


def report(result: SantaComparison) -> str:
    rows = []
    for variant in ("local", "dso", "cloud"):
        r = result.results[variant]
        overhead = result.overhead(variant)
        rows.append((variant, f"{r.elapsed:.2f}s", f"{overhead:+.1%}",
                     r.deliveries, r.helps))
    table = render_table(
        ["variant", "completion", "vs local", "deliveries", "helps"],
        rows,
        title=f"Fig. 7c - Santa Claus problem, {result.deliveries} "
              "deliveries")
    table += (f"\npaper: DSO overhead ~8% -> measured "
              f"{result.overhead('dso'):.1%}"
              f"\npaper: cloud threads ~= DSO (invocation only) -> "
              f"measured {result.overhead('cloud'):.1%}")
    return table
