"""Fig. 7a: average time a thread spends waiting on a barrier.

Cloud threads execute consecutive 1-second computations in lock step;
the barrier is either Crucial's DSO CyclicBarrier or the SNS+SQS
construction.  Paper shape: Crucial is roughly an order of magnitude
faster at 320 threads, and passes the barrier in ~68 ms on average
with 1800 threads.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import CrucialEnvironment, CloudThread, CyclicBarrier
from repro.coordination.sns_barrier import SnsSqsBarrier
from repro.core.runtime import compute, current_environment
from repro.metrics.report import render_table
from repro.simulation.thread import spawn

PAPER_1800_THREADS_WAIT = 0.068
ROUNDS = 3
STEP_SECONDS = 1.0


class _CrucialLockStep:
    def __init__(self, run_id: str, thread_id: int, parties: int):
        self.thread_id = thread_id
        self.barrier = CyclicBarrier(f"{run_id}/barrier", parties)

    def run(self) -> float:
        env = current_environment()
        self.barrier.wait()  # warm-up: absorb invocation stagger
        waited = 0.0
        for _round in range(ROUNDS):
            compute(STEP_SECONDS, jitter_sigma=0.005)
            entered = env.now
            self.barrier.wait()
            waited += env.now - entered
        return waited / ROUNDS


class _SnsLockStep:
    def __init__(self, barrier: SnsSqsBarrier, thread_id: int):
        self.barrier = barrier
        self.thread_id = thread_id

    def run(self) -> float:
        env = current_environment()
        self.barrier.wait(self.thread_id, 0)  # warm-up round
        waited = 0.0
        for round_number in range(1, ROUNDS + 1):
            compute(STEP_SECONDS, jitter_sigma=0.005)
            entered = env.now
            self.barrier.wait(self.thread_id, round_number)
            waited += env.now - entered
        return waited / ROUNDS


@dataclass
class BarrierComparison:
    #: (system, threads) -> average wait seconds
    waits: dict[tuple[str, int], float]


def _run_crucial(threads: int, seed: int) -> float:
    with CrucialEnvironment(seed=seed, dso_nodes=1) as env:
        def main():
            env.pre_warm(threads)
            workers = [
                CloudThread(_CrucialLockStep(f"7a-{threads}", i, threads))
                for i in range(threads)
            ]
            for worker in workers:
                worker.start()
            for worker in workers:
                worker.join()
            return sum(w.result() for w in workers) / threads

        return env.run(main)


def _run_sns(threads: int, seed: int) -> float:
    with CrucialEnvironment(seed=seed, dso_nodes=1) as env:
        def main():
            barrier = SnsSqsBarrier(f"7a-sns-{threads}", threads)
            barrier.setup()
            env.pre_warm(threads)
            coordinator = spawn(barrier.coordinate, ROUNDS + 1,
                                name="coordinator")
            workers = [CloudThread(_SnsLockStep(barrier, i))
                       for i in range(threads)]
            for worker in workers:
                worker.start()
            for worker in workers:
                worker.join()
            coordinator.join()
            return sum(w.result() for w in workers) / threads

        return env.run(main)


def run(thread_counts: tuple[int, ...] = (4, 20, 80, 320),
        crucial_only: tuple[int, ...] = (), seed: int = 9) -> BarrierComparison:
    waits: dict[tuple[str, int], float] = {}
    for threads in thread_counts:
        waits[("crucial", threads)] = _run_crucial(threads, seed)
        waits[("sns-sqs", threads)] = _run_sns(threads, seed)
    for threads in crucial_only:
        waits[("crucial", threads)] = _run_crucial(threads, seed)
    return BarrierComparison(waits=waits)


def report(result: BarrierComparison) -> str:
    threads = sorted({t for _s, t in result.waits})
    rows = []
    for system in ("crucial", "sns-sqs"):
        row = [system]
        for t in threads:
            value = result.waits.get((system, t))
            row.append(f"{value * 1000:.0f}ms" if value is not None
                       else "-")
        rows.append(row)
    table = render_table(
        ["system"] + [str(t) for t in threads], rows,
        title="Fig. 7a - average barrier wait (1s lock-step rounds)")
    largest = max(t for s, t in result.waits if s == "sns-sqs")
    ratio = (result.waits[("sns-sqs", largest)]
             / result.waits[("crucial", largest)])
    table += (f"\npaper: ~10x faster than SNS+SQS at 320 threads -> "
              f"measured {ratio:.1f}x at {largest} threads")
    big = max(t for s, t in result.waits if s == "crucial")
    table += (f"\npaper: 68ms average at 1800 threads -> measured "
              f"{result.waits[('crucial', big)] * 1000:.0f}ms at "
              f"{big} threads")
    return table
