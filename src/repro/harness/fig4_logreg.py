"""Fig. 4: logistic regression, Crucial versus Spark.

100 SGD iterations over the 100 GB dataset (80 workers / 80
partitions).  Paper: the iterative phase takes 62.3 s in Crucial
versus 75.9 s in Spark (18% faster), and both systems' logistic loss
decreases identically per iteration — Crucial simply finishes sooner
(Fig. 4b plots loss against time).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import CrucialEnvironment
from repro.metrics.report import comparison_table
from repro.ml.dataset import MLDataset
from repro.ml.logreg import CrucialLogisticRegression
from repro.net import LatencyModel, Network
from repro.simulation.kernel import Kernel
from repro.sparklike import LogisticRegressionWithSGD, SparkCluster
from repro.storage import ObjectStore

PAPER_CRUCIAL_ITER = 62.3
PAPER_SPARK_ITER = 75.9
PAPER_CRUCIAL_TOTAL = 122.0
PAPER_SPARK_TOTAL = 192.0


@dataclass
class LogRegComparison:
    crucial_iter: float
    spark_iter: float
    crucial_total: float
    spark_total: float
    crucial_loss: list[float]
    spark_loss: list[float]
    iterations: int


def run(iterations: int = 100, workers: int = 80,
        seed: int = 5) -> LogRegComparison:
    dataset = MLDataset("logreg", partitions=workers,
                        materialized_points=40_000, seed=seed)
    with CrucialEnvironment(seed=seed, dso_nodes=1,
                            function_memory_mb=1792) as env:
        job = CrucialLogisticRegression(dataset, iterations=iterations,
                                        workers=workers)
        crucial = env.run(job.train)
    with Kernel(seed=seed) as kernel:
        network = Network(kernel, LatencyModel(0.0002),
                          copy_messages=False)
        cluster = SparkCluster(kernel, network)
        store = ObjectStore(kernel)
        algorithm = LogisticRegressionWithSGD(cluster,
                                              iterations=iterations)
        spark = kernel.run_main(lambda: algorithm.train(dataset, store))
    return LogRegComparison(
        crucial_iter=crucial.iteration_phase_time,
        spark_iter=spark.iteration_phase_time,
        crucial_total=crucial.total_time,
        spark_total=spark.total_time,
        crucial_loss=crucial.loss_history,
        spark_loss=spark.history,
        iterations=iterations)


def report(result: LogRegComparison) -> str:
    fraction = result.iterations / 100.0
    table = comparison_table(
        f"Fig. 4 - logistic regression, {result.iterations} iterations",
        [
            ("Crucial iteration phase", PAPER_CRUCIAL_ITER * fraction,
             result.crucial_iter),
            ("Spark iteration phase", PAPER_SPARK_ITER * fraction,
             result.spark_iter),
            ("Crucial total", PAPER_CRUCIAL_TOTAL
             - PAPER_CRUCIAL_ITER * (1 - fraction), result.crucial_total),
            ("Spark total", PAPER_SPARK_TOTAL
             - PAPER_SPARK_ITER * (1 - fraction), result.spark_total),
        ], unit="s")
    gain = 1.0 - result.crucial_iter / result.spark_iter
    table += (f"\npaper: iterative phase 18% faster in Crucial -> "
              f"measured {gain:.0%}")
    first, mid, last = (result.crucial_loss[0],
                        result.crucial_loss[len(result.crucial_loss) // 2],
                        result.crucial_loss[-1])
    table += (f"\nFig. 4b loss trajectory (Crucial): "
              f"{first:.4f} -> {mid:.4f} -> {last:.4f}")
    drift = max(abs(a - b) for a, b in
                zip(result.crucial_loss, result.spark_loss))
    table += (f"\nmax |Crucial - Spark| loss difference: {drift:.2e} "
              "(identical math, as in the paper)")
    # Fig. 4b plots loss against *time*: same curve, but Crucial's
    # iterations tick faster, so it reaches any loss level sooner.
    from repro.metrics.ascii_plot import sparkline

    table += (
        f"\nloss vs iteration ({result.iterations} iterations):"
        f"\n  crucial {sparkline(result.crucial_loss, width=60)}"
        f" done at t={result.crucial_iter:.1f}s"
        f"\n  spark   {sparkline(result.spark_loss, width=60)}"
        f" done at t={result.spark_iter:.1f}s")
    return table
