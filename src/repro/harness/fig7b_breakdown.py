"""Fig. 7b: phase breakdown of an iterative task — stages vs barrier.

Approach (a): each iteration launches a *new* stage of cloud threads,
so every iteration pays invocation + S3 input read.  Approach (b): a
single stage runs all iterations, synchronized with Crucial's barrier,
so the input is fetched once.  The paper reports (b) is faster and
that barrier synchronization time is small because invocations and S3
reads leave the critical path.

The breakdown is **derived from the distributed trace**, not from
stopwatches inside the workload: the harness runs with tracing
enabled and decomposes each ``cloudthread:*`` root span into

* ``invocation`` — root duration minus the container-side
  ``runnable:*`` span (dispatch, startup, queueing, response);
* ``s3_read`` — the ``s3.get`` spans in the subtree;
* ``sync`` — the ``dso.invoke:_CyclicBarrier.*`` spans (barrier RPCs,
  including the server-side park);
* ``compute`` — the runnable span's *self* time (duration not covered
  by its direct children).

The four phases therefore sum to each thread's end-to-end span by
construction — the consistency the paper's stacked bars imply.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import CloudThread, CrucialEnvironment, CyclicBarrier, compute
from repro.metrics.report import render_table
from repro.trace.tracer import Span, Tracer

PHASES = ("invocation", "s3_read", "compute", "sync")
INPUT_BYTES = 200 * 10 ** 6  # per-thread input fragment
COMPUTE_SECONDS = 1.0


class _SingleIteration:
    """One iteration of approach (a): read input, compute, return."""

    def __init__(self, key: str):
        self.key = key

    def run(self) -> None:
        from repro import current_environment

        current_environment().object_store.get(self.key)
        compute(COMPUTE_SECONDS, jitter_sigma=0.01)


class _AllIterations:
    """Approach (b): read once, iterate with a barrier."""

    def __init__(self, key: str, run_id: str, thread_id: int,
                 parties: int, iterations: int):
        self.key = key
        self.thread_id = thread_id
        self.iterations = iterations
        self.barrier = CyclicBarrier(f"{run_id}/barrier", parties)

    def run(self) -> None:
        from repro import current_environment

        current_environment().object_store.get(self.key)
        for _iteration in range(self.iterations):
            compute(COMPUTE_SECONDS, jitter_sigma=0.01)
            self.barrier.wait()


@dataclass
class BreakdownResult:
    #: approach -> phase -> total seconds (averaged over threads)
    phases: dict[str, dict[str, float]]
    #: per-thread detail for the first two threads of each approach
    details: dict[str, list[dict]] = field(default_factory=dict)
    threads: int = 0
    iterations: int = 0


def _phases_of_root(root: Span, tracer: Tracer) -> dict[str, float]:
    """Decompose one cloud thread's root span into the four phases."""
    subtree = tracer.subtree(root)
    runnable = next((s for s in subtree
                     if s.name.startswith("runnable:")), None)
    s3_read = sum(s.duration for s in subtree if s.name == "s3.get")
    sync = sum(s.duration for s in subtree
               if s.name.startswith("dso.invoke:_CyclicBarrier"))
    if runnable is None:
        return {"invocation": root.duration, "s3_read": s3_read,
                "compute": 0.0, "sync": sync}
    child_time = sum(s.duration for s in tracer.children_of(runnable))
    return {
        "invocation": root.duration - runnable.duration,
        "s3_read": s3_read,
        "compute": runnable.duration - child_time,
        "sync": sync,
    }


def run(threads: int = 10, iterations: int = 5,
        seed: int = 10) -> BreakdownResult:
    marker = {"a_end": 0}
    with CrucialEnvironment(seed=seed, dso_nodes=1,
                            trace_enabled=True) as env:
        tracer = env.kernel.tracer

        def main():
            for i in range(threads):
                env.object_store.seed(f"input-{i}", b"",
                                      nbytes=INPUT_BYTES)
            env.pre_warm(threads)

            # Approach (a): one stage per iteration.
            for _iteration in range(iterations):
                stage = [CloudThread(_SingleIteration(f"input-{i}"))
                         for i in range(threads)]
                for thread in stage:
                    thread.start()
                for thread in stage:
                    thread.join()
            marker["a_end"] = tracer.spans[-1].span_id

            # Approach (b): one stage, barrier-synchronized.
            stage = [
                CloudThread(_AllIterations(f"input-{i}", "fig7b", i,
                                           threads, iterations))
                for i in range(threads)
            ]
            for thread in stage:
                thread.start()
            for thread in stage:
                thread.join()

        env.run(main)

        roots = [s for s in tracer.roots()
                 if s.name.startswith("cloudthread:")]
        roots_a = [r for r in roots if r.span_id <= marker["a_end"]]
        roots_b = [r for r in roots if r.span_id > marker["a_end"]]

        # Approach (a): accumulate each thread's iterations (stages
        # launch threads in index order, so position within the stage
        # identifies the thread).
        totals_a = {phase: 0.0 for phase in PHASES}
        details_a = [{phase: 0.0 for phase in PHASES}
                     for _ in range(threads)]
        for index, root in enumerate(roots_a):
            for phase, value in _phases_of_root(root, tracer).items():
                totals_a[phase] += value / threads
                details_a[index % threads][phase] += value

        totals_b = {phase: 0.0 for phase in PHASES}
        details_b = []
        for root in roots_b:
            decomposed = _phases_of_root(root, tracer)
            details_b.append(decomposed)
            for phase in PHASES:
                totals_b[phase] += decomposed[phase] / threads

    return BreakdownResult(
        phases={"per-iteration stages": totals_a,
                "single stage + barrier": totals_b},
        details={"per-iteration stages": details_a[:2],
                 "single stage + barrier": details_b[:2]},
        threads=threads, iterations=iterations)


def report(result: BreakdownResult) -> str:
    rows = []
    for approach, totals in result.phases.items():
        rows.append([approach]
                    + [f"{totals[phase]:.2f}s" for phase in PHASES]
                    + [f"{sum(totals.values()):.2f}s"])
    table = render_table(
        ["approach"] + list(PHASES) + ["total"], rows,
        title=(f"Fig. 7b - iterative task breakdown, "
               f"{result.threads} threads x {result.iterations} "
               "iterations (derived from trace spans)"))
    stages = result.phases["per-iteration stages"]
    barrier = result.phases["single stage + barrier"]
    table += (
        f"\npaper: input fetched once -> S3 time "
        f"{stages['s3_read']:.2f}s (stages) vs "
        f"{barrier['s3_read']:.2f}s (barrier)"
        f"\npaper: barrier sync time is small -> "
        f"{barrier['sync']:.2f}s of "
        f"{sum(barrier.values()):.2f}s total"
        f"\npaper: single stage total is lower -> "
        f"{sum(barrier.values()):.2f}s vs {sum(stages.values()):.2f}s")
    return table
