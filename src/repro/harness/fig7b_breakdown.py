"""Fig. 7b: phase breakdown of an iterative task — stages vs barrier.

Approach (a): each iteration launches a *new* stage of cloud threads,
so every iteration pays invocation + S3 input read.  Approach (b): a
single stage runs all iterations, synchronized with Crucial's barrier,
so the input is fetched once.  The paper reports (b) is faster and
that barrier synchronization time is small because invocations and S3
reads leave the critical path.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import CloudThread, CrucialEnvironment, CyclicBarrier
from repro.core.runtime import compute, current_environment
from repro.metrics.report import render_table

PHASES = ("invocation", "s3_read", "compute", "sync")
INPUT_BYTES = 200 * 10 ** 6  # per-thread input fragment
COMPUTE_SECONDS = 1.0


class _SingleIteration:
    """One iteration of approach (a): read input, compute, return."""

    def __init__(self, key: str):
        self.key = key

    def run(self) -> dict:
        env = current_environment()
        t0 = env.now
        env.object_store.get(self.key)
        t1 = env.now
        compute(COMPUTE_SECONDS, jitter_sigma=0.01)
        return {"s3_read": t1 - t0, "compute": env.now - t1}


class _AllIterations:
    """Approach (b): read once, iterate with a barrier."""

    def __init__(self, key: str, run_id: str, thread_id: int,
                 parties: int, iterations: int):
        self.key = key
        self.thread_id = thread_id
        self.iterations = iterations
        self.barrier = CyclicBarrier(f"{run_id}/barrier", parties)

    def run(self) -> dict:
        env = current_environment()
        t0 = env.now
        env.object_store.get(self.key)
        s3_time = env.now - t0
        compute_time = 0.0
        sync_time = 0.0
        for _iteration in range(self.iterations):
            t1 = env.now
            compute(COMPUTE_SECONDS, jitter_sigma=0.01)
            t2 = env.now
            self.barrier.wait()
            compute_time += t2 - t1
            sync_time += env.now - t2
        return {"s3_read": s3_time, "compute": compute_time,
                "sync": sync_time}


@dataclass
class BreakdownResult:
    #: approach -> phase -> total seconds (averaged over threads)
    phases: dict[str, dict[str, float]]
    #: per-thread detail for the first two threads of each approach
    details: dict[str, list[dict]] = field(default_factory=dict)
    threads: int = 0
    iterations: int = 0


def run(threads: int = 10, iterations: int = 5,
        seed: int = 10) -> BreakdownResult:
    phases: dict[str, dict[str, float]] = {}
    details: dict[str, list[dict]] = {}
    with CrucialEnvironment(seed=seed, dso_nodes=1) as env:
        def main():
            for i in range(threads):
                env.object_store._objects.pop(f"input-{i}", None)
            from repro.storage.object_store import _StoredObject

            for i in range(threads):
                env.object_store._objects[f"input-{i}"] = _StoredObject(
                    value=b"", nbytes=INPUT_BYTES, put_time=0.0,
                    visible_at=0.0)
            env.pre_warm(threads)

            # Approach (a): one stage per iteration.
            totals_a = {phase: 0.0 for phase in PHASES}
            details_a: list[dict] = [
                {phase: 0.0 for phase in PHASES} for _ in range(threads)]
            for _iteration in range(iterations):
                stage = [CloudThread(_SingleIteration(f"input-{i}"))
                         for i in range(threads)]
                dispatch_start = env.now
                for thread in stage:
                    thread.start()
                for thread in stage:
                    thread.join()
                for i, thread in enumerate(stage):
                    measured = thread.result()
                    wall = env.now - dispatch_start
                    invocation = wall - measured["s3_read"] \
                        - measured["compute"]
                    for phase, value in (("invocation", invocation),
                                         ("s3_read", measured["s3_read"]),
                                         ("compute", measured["compute"]),
                                         ("sync", 0.0)):
                        totals_a[phase] += value / threads
                        details_a[i][phase] += value

            # Approach (b): one stage, barrier-synchronized.
            stage_start = env.now
            stage = [
                CloudThread(_AllIterations(f"input-{i}", "fig7b", i,
                                           threads, iterations))
                for i in range(threads)
            ]
            for thread in stage:
                thread.start()
            for thread in stage:
                thread.join()
            totals_b = {phase: 0.0 for phase in PHASES}
            details_b: list[dict] = []
            for thread in stage:
                measured = thread.result()
                wall = env.now - stage_start
                invocation = wall - sum(measured.values())
                detail = {"invocation": invocation, **measured}
                details_b.append(detail)
                for phase in PHASES:
                    totals_b[phase] += detail[phase] / threads
            phases["per-iteration stages"] = totals_a
            phases["single stage + barrier"] = totals_b
            details["per-iteration stages"] = details_a[:2]
            details["single stage + barrier"] = details_b[:2]

        env.run(main)
    return BreakdownResult(phases=phases, details=details,
                           threads=threads, iterations=iterations)


def report(result: BreakdownResult) -> str:
    rows = []
    for approach, totals in result.phases.items():
        rows.append([approach]
                    + [f"{totals[phase]:.2f}s" for phase in PHASES]
                    + [f"{sum(totals.values()):.2f}s"])
    table = render_table(
        ["approach"] + list(PHASES) + ["total"], rows,
        title=(f"Fig. 7b - iterative task breakdown, "
               f"{result.threads} threads x {result.iterations} "
               "iterations"))
    stages = result.phases["per-iteration stages"]
    barrier = result.phases["single stage + barrier"]
    table += (
        f"\npaper: input fetched once -> S3 time "
        f"{stages['s3_read']:.2f}s (stages) vs "
        f"{barrier['s3_read']:.2f}s (barrier)"
        f"\npaper: barrier sync time is small -> "
        f"{barrier['sync']:.2f}s of "
        f"{sum(barrier.values()):.2f}s total"
        f"\npaper: single stage total is lower -> "
        f"{sum(barrier.values()):.2f}s vs {sum(stages.values()):.2f}s")
    return table
