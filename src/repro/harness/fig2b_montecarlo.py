"""Fig. 2b: scalability of the Monte Carlo simulation (Listing 1).

1 to 800 cloud threads draw 100 M points each and aggregate into one
shared counter.  The paper reports linear scaling with a 512x speedup
at 800 threads and 8.4 billion points/second.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import CrucialEnvironment
from repro.apps.montecarlo import estimate_pi
from repro.metrics.report import render_table

PAPER_SPEEDUP_800 = 512.0
PAPER_POINTS_PER_SECOND_800 = 8.4e9


@dataclass
class MonteCarloScaling:
    #: threads -> (pi estimate, elapsed, points/second)
    runs: dict[int, tuple[float, float, float]]
    draws_per_thread: int

    def speedup(self, threads: int) -> float:
        base = self.runs[1][2]
        return self.runs[threads][2] / base


def run(thread_counts: tuple[int, ...] = (1, 50, 100, 200, 400, 800),
        draws: int = 100_000_000, seed: int = 3) -> MonteCarloScaling:
    runs = {}
    for threads in thread_counts:
        with CrucialEnvironment(seed=seed, dso_nodes=1) as env:
            def main():
                return estimate_pi(threads, draws,
                                   counter_key=f"pi-{threads}")

            estimate, elapsed = env.run(main)
        points_per_second = threads * draws / elapsed
        runs[threads] = (estimate, elapsed, points_per_second)
    return MonteCarloScaling(runs=runs, draws_per_thread=draws)


def report(result: MonteCarloScaling) -> str:
    rows = []
    for threads, (estimate, elapsed, pps) in sorted(result.runs.items()):
        rows.append((threads, f"{estimate:.5f}", f"{elapsed:.2f}s",
                     f"{pps / 1e9:.2f}G/s",
                     f"{result.speedup(threads):.0f}x"))
    table = render_table(
        ["threads", "pi", "elapsed", "points/s", "speedup"], rows,
        title="Fig. 2b - Monte Carlo scalability")
    if 800 in result.runs:
        table += (
            f"\npaper: 512x speedup at 800 threads -> measured "
            f"{result.speedup(800):.0f}x"
            f"\npaper: 8.4G points/s at 800 threads -> measured "
            f"{result.runs[800][2] / 1e9:.1f}G/s")
    return table
