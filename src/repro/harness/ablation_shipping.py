"""Ablation: method shipping versus data shipping (Section 4.2).

The design claim: executing aggregation *as object methods* in the DSO
layer turns the AllReduce pattern's O(N^2) messages into O(N).  This
experiment makes N workers combine k x d partial aggregates so that
every worker ends with the global result:

* ``method-shipping`` — each worker merges its partial into one shared
  object and reads the combined result back: 2N object calls;
* ``data-shipping``   — each worker writes its partial to storage and
  every worker fetches all N partials to combine locally (the only
  option when storage is a dumb CRUD service): N writes + N^2 reads.

Reported: wall time and message count as N grows; the quadratic term
makes data shipping collapse, which is why Crucial's k-means beats the
store-and-gather pattern.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import CrucialEnvironment
from repro.core.cloud_thread import CloudThread
from repro.core.runtime import current_environment
from repro.core.shared import dso_costs, shared
from repro.core.sync import CyclicBarrier
from repro.metrics.report import render_table

DIMS = (32, 100)  # k x d partial aggregates (k=32 centroids)


@dso_costs(merge=lambda partial: partial.size * 2e-9,
           get=lambda: 0.0)
class Aggregate:
    """The in-store combiner."""

    def __init__(self, shape):
        self.total = np.zeros(shape)
        self.contributions = 0

    def merge(self, partial) -> int:
        self.total += partial
        self.contributions += 1
        return self.contributions

    def get(self):
        return self.total


class MethodShippingWorker:
    def __init__(self, worker_id: int, parties: int, run_id: str):
        self.worker_id = worker_id
        self.aggregate = shared(Aggregate, f"{run_id}/agg", DIMS)
        self.barrier = CyclicBarrier(f"{run_id}/barrier", parties)

    def run(self) -> float:
        rng = np.random.Generator(np.random.PCG64(self.worker_id))
        partial = rng.standard_normal(DIMS)
        self.aggregate.merge(partial)
        self.barrier.wait()
        result = self.aggregate.get()
        return float(result.sum())


class DataShippingWorker:
    def __init__(self, worker_id: int, parties: int, run_id: str):
        self.worker_id = worker_id
        self.parties = parties
        self.run_id = run_id
        self.barrier = CyclicBarrier(f"{run_id}/barrier", parties)

    def run(self) -> float:
        env = current_environment()
        grid = env.data_grid()
        from repro.core.runtime import current_location

        client = current_location()
        rng = np.random.Generator(np.random.PCG64(self.worker_id))
        partial = rng.standard_normal(DIMS)
        grid.put(client, f"{self.run_id}/{self.worker_id}", partial)
        self.barrier.wait()
        # AllReduce by gathering: every worker pulls every partial.
        total = np.zeros(DIMS)
        for peer in range(self.parties):
            total += grid.get(client, f"{self.run_id}/{peer}")
        return float(total.sum())


@dataclass
class ShippingResult:
    #: (strategy, workers) -> (wall seconds, network messages)
    measurements: dict[tuple[str, int], tuple[float, int]]


def _run(worker_cls, n: int, run_id: str, seed: int) -> tuple[float, int]:
    with CrucialEnvironment(seed=seed, dso_nodes=2) as env:
        def main():
            env.pre_warm(n)
            messages_before = env.network.messages_sent
            start = env.now
            threads = [CloudThread(worker_cls(i, n, run_id))
                       for i in range(n)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            results = {round(t.result(), 6) for t in threads}
            assert len(results) == 1  # everyone got the same aggregate
            return (env.now - start,
                    env.network.messages_sent - messages_before)

        return env.run(main)


def run(worker_counts: tuple[int, ...] = (8, 20, 40, 80),
        seed: int = 14) -> ShippingResult:
    measurements: dict[tuple[str, int], tuple[float, int]] = {}
    for n in worker_counts:
        measurements[("method-shipping", n)] = _run(
            MethodShippingWorker, n, f"ms-{n}", seed)
        measurements[("data-shipping", n)] = _run(
            DataShippingWorker, n, f"ds-{n}", seed)
    return ShippingResult(measurements=measurements)


def report(result: ShippingResult) -> str:
    counts = sorted({n for _s, n in result.measurements})
    rows = []
    for strategy in ("method-shipping", "data-shipping"):
        for n in counts:
            wall, messages = result.measurements[(strategy, n)]
            rows.append((strategy, n, f"{wall:.3f}s", messages,
                         f"{messages / n:.1f}"))
    table = render_table(
        ["strategy", "workers", "wall", "messages", "messages/worker"],
        rows, title="Ablation - method shipping vs data shipping "
        "(Section 4.2)")
    n = counts[-1]
    ratio = (result.measurements[("data-shipping", n)][1]
             / result.measurements[("method-shipping", n)][1])
    table += (f"\npaper claim: O(N) vs O(N^2) messages -> at N={n} "
              f"data shipping sends {ratio:.1f}x more messages")
    return table
