"""Coordination-service scenarios: recipes + fan-out under live load.

Not a figure from the paper — the keeper is ROADMAP item 3's
FaaSKeeper-shaped extension — but measured with the paper's
methodology: virtual-time latencies through the full simulated stack
(DSO tree, SQS delivery, heartbeat leases), reported next to the
bounds the chaos/property suites pin.  Four scenarios run against one
replicated keeper while an open-loop serving workload keeps the grid
busy in the background:

* **barrier** — ``parties`` cloud-side threads rendezvous for
  ``rounds`` rounds on a :class:`~repro.coordination.KeeperBarrier`;
* **semaphore** — ``sem_workers`` workers contend for ``permits``
  leases, with the high-water concurrency audited;
* **election** — a chain of candidates; the sitting leader's session
  is killed ``failovers`` times and the convergence time (lease
  expiry + one watch hop) is measured per failover;
* **fan-out** — one config znode watched by ``watchers`` sessions;
  each of ``updates`` writes is timestamped and the delivery latency
  distribution across every watcher is reported (the hundreds-of-
  watchers notification path).

A final quiescent audit replays the watch-order checker over every
watcher's delivered stream — the harness fails loudly rather than
report latencies for a broken delivery order.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.coordination.keeper import KeeperService
from repro.coordination.recipes import (
    ConfigWatcher,
    KeeperBarrier,
    KeeperSemaphore,
    LeaderElector,
)
from repro.core.runtime import CrucialEnvironment
from repro.linearizability.watches import find_watch_violations
from repro.metrics.recorder import percentile
from repro.metrics.report import render_table
from repro.simulation.thread import sleep, spawn
from repro.workload.generator import (
    OpenLoopGenerator,
    RateProfile,
    TenantSpec,
)

#: Session TTL every scenario leases under (virtual seconds).
SESSION_TTL = 2.0


@dataclass
class KeeperResult:
    """Everything one harness run measured, plus its audit verdicts."""

    # barrier
    barrier_parties: int
    barrier_rounds: int
    barrier_passes: int
    # semaphore
    sem_workers: int
    sem_permits: int
    sem_acquisitions: int
    sem_max_concurrent: int
    # election
    failovers: int
    convergences_s: list[float]
    # config fan-out
    watchers: int
    updates: int
    fanout_latencies_s: list[float] = field(default_factory=list)
    # session expiry
    expiry_ttl: float = SESSION_TTL
    expiry_detections_s: list[float] = field(default_factory=list)
    # watch-order audit over every watcher's delivered stream
    watch_violations: int = 0
    # background open-loop load
    load_requests: int = 0
    load_errors: int = 0

    @property
    def fanout_p50_ms(self) -> float:
        return percentile(self.fanout_latencies_s, 50.0) * 1000

    @property
    def fanout_p99_ms(self) -> float:
        return percentile(self.fanout_latencies_s, 99.0) * 1000

    @property
    def convergence_max_s(self) -> float:
        return max(self.convergences_s)

    @property
    def expiry_max_s(self) -> float:
        return max(self.expiry_detections_s)


def _background_tenants() -> list[TenantSpec]:
    return [TenantSpec(name="bg", share=1.0, keys=32, zipf_s=1.1,
                       read_fraction=0.8, rf=1, cost=0.0)]


def _run_barrier(keeper, parties: int, rounds: int) -> int:
    passes = []

    def party(index):
        with keeper.session(name=f"bar-{index}") as session:
            barrier = KeeperBarrier(session, "/harness/barrier",
                                    parties)
            for round_number in range(rounds):
                barrier.wait(round_number)
                passes.append((index, round_number))

    threads = [spawn(party, i, name=f"barrier-party-{i}")
               for i in range(parties)]
    for thread in threads:
        thread.join()
    return len(passes)


def _run_semaphore(keeper, workers: int, permits: int) -> tuple[int, int]:
    active = [0]
    high_water = [0]
    acquired = [0]

    def worker(index):
        with keeper.session(name=f"sem-{index}") as session:
            sem = KeeperSemaphore(session, "/harness/sem", permits)
            with sem:
                acquired[0] += 1
                active[0] += 1
                high_water[0] = max(high_water[0], active[0])
                sleep(0.3)
                active[0] -= 1

    threads = [spawn(worker, i, name=f"sem-worker-{i}")
               for i in range(workers)]
    for thread in threads:
        thread.join()
    return acquired[0], high_water[0]


def _run_election(env, keeper, failovers: int) -> list[float]:
    members = [f"cand-{i}" for i in range(failovers + 1)]
    sessions = {m: keeper.session(name=m) for m in members}
    electors = {m: LeaderElector(sessions[m], "/harness/svc", m)
                for m in members}
    for member in members:
        electors[member].volunteer()
    electors[members[0]].lead()
    convergences = []
    for round_number in range(failovers):
        fallen, heir = members[round_number], members[round_number + 1]
        fell_at = env.now
        sessions[fallen].kill()
        electors[heir].lead()
        convergences.append(env.now - fell_at)
    sessions[members[-1]].close()
    return convergences


def _run_fanout(env, keeper, watchers: int,
                updates: int) -> tuple[list[float], int]:
    with keeper.session(name="publisher", ttl=60.0) as publisher:
        publisher.create("/harness/conf", data=("v0", env.now))
        latencies: list[float] = []
        seen = [0]
        sessions = []

        def subscriber(index):
            session = keeper.session(name=f"sub-{index}", ttl=120.0)
            sessions.append(session)
            watcher = ConfigWatcher(session, "/harness/conf")
            for _ in range(updates):
                if watcher.await_change(timeout=60.0) is None:
                    break
                _, published_at = watcher.value
                latencies.append(env.now - published_at)
                seen[0] += 1

        threads = [spawn(subscriber, i, name=f"subscriber-{i}")
                   for i in range(watchers)]
        sleep(1.0)  # let every watcher finish its initial sync
        for update in range(1, updates + 1):
            target = update * watchers
            publisher.set("/harness/conf", (f"v{update}", env.now))
            while seen[0] < target:  # quiesce before the next write
                sleep(0.1)
        for thread in threads:
            thread.join()
        sleep(1.0)  # drain the delivery pump before the audit
        delivered = {s.sid: s.delivered for s in sessions}
        # Scope the assigned counts to the fan-out subscribers: the
        # earlier scenarios' sessions (barrier, election) also earned
        # watch events but are not part of this audit.
        assigned = {sid: count for sid, count
                    in keeper.assigned_counts().items()
                    if sid in delivered}
        violations = find_watch_violations(delivered, assigned)
        for session in sessions:
            session.close()
    return latencies, len(violations)


def _run_expiry(env, keeper, repetitions: int) -> list[float]:
    detections = []
    with keeper.session(name="expiry-audit", ttl=120.0) as auditor:
        auditor.create("/harness/locks")
        for rep in range(repetitions):
            path = f"/harness/locks/h{rep}"
            holder = keeper.session(name=f"holder-{rep}")
            holder.create(path, ephemeral=True)
            sleep(SESSION_TTL / 5.0)  # land the kill mid-lease
            killed_at = env.now
            holder.kill()
            while auditor.exists(path) is not None:
                sleep(0.05)
            detections.append(env.now - killed_at)
    return detections


def run(parties: int = 8, rounds: int = 3, sem_workers: int = 9,
        permits: int = 3, failovers: int = 2, watchers: int = 120,
        updates: int = 3, expiry_reps: int = 2,
        load_rate: float = 25.0, seed: int = 21) -> KeeperResult:
    """Run all four scenarios against one rf=2 keeper under load."""
    with CrucialEnvironment(seed=seed, dso_nodes=3) as env:
        def main():
            keeper = KeeperService(name="harness", rf=2,
                                   session_ttl=SESSION_TTL)
            with keeper.session(name="setup", ttl=120.0) as setup:
                setup.create("/harness")
            generator = OpenLoopGenerator(
                env, _background_tenants(),
                RateProfile([(0.0, load_rate)]), duration=30.0)
            load = spawn(generator.run, name="background-load")

            barrier_passes = _run_barrier(keeper, parties, rounds)
            acquisitions, high_water = _run_semaphore(
                keeper, sem_workers, permits)
            convergences = _run_election(env, keeper, failovers)
            latencies, violations = _run_fanout(env, keeper, watchers,
                                                updates)
            detections = _run_expiry(env, keeper, expiry_reps)

            load.join()
            keeper.stop()
            return KeeperResult(
                barrier_parties=parties, barrier_rounds=rounds,
                barrier_passes=barrier_passes,
                sem_workers=sem_workers, sem_permits=permits,
                sem_acquisitions=acquisitions,
                sem_max_concurrent=high_water,
                failovers=failovers, convergences_s=convergences,
                watchers=watchers, updates=updates,
                fanout_latencies_s=latencies,
                expiry_detections_s=detections,
                watch_violations=violations,
                load_requests=len(generator.metrics.records),
                load_errors=generator.metrics.errors)

        return env.run(main)


def report(result: KeeperResult) -> str:
    rows = [
        ("barrier",
         f"{result.barrier_parties} x {result.barrier_rounds}",
         f"{result.barrier_passes} passes",
         f"expected {result.barrier_parties * result.barrier_rounds}"),
        ("semaphore",
         f"{result.sem_workers} / {result.sem_permits} permits",
         f"{result.sem_acquisitions} acquired",
         f"high-water {result.sem_max_concurrent}"),
        ("election",
         f"{result.failovers} failovers",
         f"max {result.convergence_max_s:.2f}s",
         "TTL " + f"{SESSION_TTL:.1f}s"),
        ("fan-out",
         f"{result.watchers} watchers x {result.updates}",
         f"p50 {result.fanout_p50_ms:.0f} ms",
         f"p99 {result.fanout_p99_ms:.0f} ms"),
        ("expiry",
         f"{len(result.expiry_detections_s)} kills",
         f"max {result.expiry_max_s:.2f}s",
         f"bound {2 * result.expiry_ttl:.1f}s"),
        ("audit",
         f"{result.watchers} delivered streams",
         f"{result.watch_violations} violations",
         f"{result.load_requests} bg reqs "
         f"({result.load_errors} errors)"),
    ]
    return render_table(
        ["scenario", "scale", "measured", "bound"], rows,
        title="keeper coordination service (virtual-time measurements)")
