"""Fig. 3: k-means scale-up, FaaS + Crucial versus VM threads.

Input grows proportionally to the thread count; scale-up is
``T1 / Tn`` over the iteration phase.  The VM baselines (8- and
16-core machines) collapse once threads exceed cores; Crucial stays
within ~10% of the optimum (0.94 at 160 threads, 0.90 at 320).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import CrucialEnvironment
from repro.metrics.report import render_table
from repro.ml.dataset import MLDataset
from repro.ml.kmeans import CrucialKMeans
from repro.ml.local import LocalKMeansBaseline
from repro.simulation.kernel import Kernel

PAPER_CRUCIAL = {160: 0.94, 320: 0.90}


@dataclass
class ScaleUpResult:
    #: system -> {threads: scale_up}
    curves: dict[str, dict[int, float]]
    iterations: int
    k: int


def _crucial_time(threads: int, k: int, iterations: int,
                  seed: int) -> float:
    with CrucialEnvironment(seed=seed, dso_nodes=1) as env:
        # Input grows proportionally to the thread count: each worker
        # always holds one paper-sized partition (695k points).
        dataset = MLDataset("kmeans", partitions=threads,
                            materialized_points=max(4000, threads * 60),
                            nominal_points=695_000 * threads,
                            nominal_bytes=1_250_000_000 * threads)
        job = CrucialKMeans(dataset, k=k, iterations=iterations,
                            workers=threads, run_id=f"fig3-{threads}")

        def main():
            return job.train().iteration_phase_time

        return env.run(main)


def _vm_time(cores: int, threads: int, k: int, iterations: int,
             seed: int) -> float:
    with Kernel(seed=seed) as kernel:
        baseline = LocalKMeansBaseline(kernel, cores=cores)

        def main():
            return baseline.run(threads, k=k,
                                iterations=iterations).iteration_phase_time

        return kernel.run_main(main)


def run(thread_counts: tuple[int, ...] = (1, 8, 16, 80, 160, 320),
        k: int = 25, iterations: int = 10, seed: int = 4) -> ScaleUpResult:
    curves: dict[str, dict[int, float]] = {}
    for label, timer in (
        ("crucial", lambda n: _crucial_time(n, k, iterations, seed)),
        ("vm-8-cores", lambda n: _vm_time(8, n, k, iterations, seed)),
        ("vm-16-cores", lambda n: _vm_time(16, n, k, iterations, seed)),
    ):
        times = {n: timer(n) for n in thread_counts}
        t1 = times[thread_counts[0]]
        curves[label] = {n: t1 / tn for n, tn in times.items()}
    return ScaleUpResult(curves=curves, iterations=iterations, k=k)


def report(result: ScaleUpResult) -> str:
    threads = sorted(next(iter(result.curves.values())))
    rows = []
    for system, curve in result.curves.items():
        rows.append([system] + [f"{curve[n]:.2f}" for n in threads])
    table = render_table(
        ["system"] + [str(n) for n in threads], rows,
        title=(f"Fig. 3 - k-means scale-up (T1/Tn), k={result.k}, "
               f"{result.iterations} iterations"))
    for n, paper in PAPER_CRUCIAL.items():
        if n in result.curves["crucial"]:
            table += (f"\npaper: Crucial scale-up {paper} at {n} threads "
                      f"-> measured {result.curves['crucial'][n]:.2f}")
    return table
