"""Fig. 2a: operations/second, Crucial (rf=1, rf=2) versus Redis.

200 closed-loop cloud threads access 800 integer objects uniformly at
random on a two-node storage deployment.  The *simple* operation is
one multiplication; the *complex* one is 10k sequential
multiplications.  Paper shape: Redis ~1.5x Crucial on simple ops
(optimized C beats JVM dispatch); Crucial ~5x Redis on complex ops
(disjoint-access parallelism beats the single-threaded Lua loop); the
replicated deployment still beats Redis on complex ops.

``scale`` shrinks thread count and measurement window together.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import CrucialEnvironment
from repro.core.runtime import current_location
from repro.core.shared import dso_costs, shared
from repro.metrics.report import render_table
from repro.simulation.thread import spawn
from repro.storage.kvstore import Script

N_OBJECTS = 800
SIMPLE_OPS = 1
COMPLEX_OPS = 10_000


@dso_costs(multiply=lambda times, factor, cost: cost)
class MulInteger:
    """The Fig. 2a object: an integer with arithmetic methods."""

    def __init__(self, value: int = 1):
        self.value = value

    def multiply(self, times: int, factor: int, cost: float) -> int:
        for _ in range(min(times, 4)):  # real effect; time is modelled
            self.value = (self.value * factor) % (1 << 31)
        return self.value


def _redis_mul(data, key, times, factor, cost):
    data[key] = (data.get(key, 1) * factor) % (1 << 31)
    return data[key]


@dataclass
class ThroughputResult:
    #: (system, operation) -> operations/second
    throughput: dict[tuple[str, str], float]
    threads: int
    window: float


def _drive(env, threads: int, window: float, do_op) -> float:
    """Closed loop: each thread repeats ``do_op`` until the window
    closes; returns aggregate operations/second."""
    counts = [0] * threads
    rngs = [env.kernel.rng.stream(f"fig2a.{i}") for i in range(threads)]

    def worker(i):
        deadline = env.now + window
        while env.now < deadline:
            do_op(int(rngs[i].integers(0, N_OBJECTS)))
            counts[i] += 1

    workers = [spawn(worker, i) for i in range(threads)]
    for worker_thread in workers:
        worker_thread.join()
    return sum(counts) / window


def run(threads: int = 200, window: float = 0.1,
        seed: int = 2) -> ThroughputResult:
    throughput: dict[tuple[str, str], float] = {}
    for system, rf in (("crucial", 1), ("crucial-rf2", 2)):
        with CrucialEnvironment(seed=seed, dso_nodes=2) as env:
            def main():
                simple_cost = env.config.dso.simple_op_cost
                proxies = [
                    shared(MulInteger, f"obj-{i}",
                           persistent=rf > 1, rf=rf if rf > 1 else None)
                    for i in range(N_OBJECTS)
                ]
                for proxy in proxies:
                    proxy._ensure()
                for op_name, ops in (("simple", SIMPLE_OPS),
                                     ("complex", COMPLEX_OPS)):
                    throughput[(system, op_name)] = _drive(
                        env, threads, window,
                        lambda i, n=ops: proxies[i].multiply(
                            n, 3, n * simple_cost))

            env.run(main)
    with CrucialEnvironment(seed=seed, dso_nodes=1) as env:
        def main():
            redis = env.redis(shards=2)
            cost_per_op = env.config.redis.simple_op_cost
            redis.register_script("mul", Script(
                fn=_redis_mul,
                cost=lambda times, factor, cost: cost))
            client = current_location()
            for i in range(N_OBJECTS):
                redis.set(client, f"obj-{i}", 1)
            for op_name, ops in (("simple", SIMPLE_OPS),
                                 ("complex", COMPLEX_OPS)):
                throughput[("redis", op_name)] = _drive(
                    env, threads, window,
                    lambda i, n=ops: redis.eval_script(
                        current_location(), "mul", f"obj-{i}", n, 3,
                        n * cost_per_op))

        env.run(main)
    return ThroughputResult(throughput=throughput, threads=threads,
                            window=window)


def report(result: ThroughputResult) -> str:
    rows = []
    for (system, op), value in sorted(result.throughput.items()):
        rows.append((system, op, f"{value:,.0f} ops/s"))
    table = render_table(
        ["system", "operation", "throughput"], rows,
        title=(f"Fig. 2a - closed-loop throughput, "
               f"{result.threads} threads, 800 objects"))
    simple_ratio = (result.throughput[("redis", "simple")]
                    / result.throughput[("crucial", "simple")])
    complex_ratio = (result.throughput[("crucial", "complex")]
                     / result.throughput[("redis", "complex")])
    rf2_ratio = (result.throughput[("crucial-rf2", "complex")]
                 / result.throughput[("redis", "complex")])
    table += (
        f"\npaper: Redis ~1.5x Crucial on simple ops -> measured "
        f"{simple_ratio:.2f}x"
        f"\npaper: Crucial ~5x Redis on complex ops -> measured "
        f"{complex_ratio:.2f}x"
        f"\npaper: Crucial rf=2 ~1.7x Redis on complex ops -> measured "
        f"{rf2_ratio:.2f}x")
    return table
