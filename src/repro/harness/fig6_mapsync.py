"""Fig. 6: synchronizing a map phase — five strategies compared.

100 cloud threads each run 100 M Monte-Carlo draws; the reducer learns
completion through one of: S3 polling (PyWren), in-memory KV polling
(Infinispan), Amazon SQS, Crucial futures, or in-store auto-reduce.
Paper shape: SQS slowest; S3 slow with high variance; Infinispan
faster but still polling; futures better; auto-reduce ~2x faster than
the S3 solution.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import CrucialEnvironment
from repro.coordination.mapsync import MapSyncExperiment
from repro.metrics.report import render_table

ORDER = ("sqs", "s3-polling", "grid-polling", "future", "auto-reduce")


@dataclass
class MapSyncComparison:
    #: strategy -> list of sync times (one per repetition)
    sync_times: dict[str, list[float]]
    n_threads: int
    total_times: dict[str, float]

    def mean(self, strategy: str) -> float:
        times = self.sync_times[strategy]
        return sum(times) / len(times)


def run(n_threads: int = 100, draws: int = 100_000_000,
        repetitions: int = 3, seed: int = 8) -> MapSyncComparison:
    sync_times: dict[str, list[float]] = {name: [] for name in ORDER}
    total_times: dict[str, float] = {}
    for repetition in range(repetitions):
        for name in ORDER:
            with CrucialEnvironment(seed=seed + repetition,
                                    dso_nodes=1) as env:
                def main():
                    experiment = MapSyncExperiment(
                        name, n_threads=n_threads, draws=draws,
                        run_id=f"fig6-{name}-{repetition}")
                    return experiment.execute()

                result = env.run(main)
            sync_times[name].append(result.sync_time)
            total_times[name] = result.total_time
    return MapSyncComparison(sync_times=sync_times, n_threads=n_threads,
                             total_times=total_times)


def report(result: MapSyncComparison) -> str:
    rows = []
    for name in ORDER:
        times = result.sync_times[name]
        mean = result.mean(name)
        spread = max(times) - min(times)
        rows.append((name, f"{mean:.2f}s", f"{min(times):.2f}s",
                     f"{max(times):.2f}s", f"{spread:.2f}s"))
    table = render_table(
        ["strategy", "mean sync", "min", "max", "spread"], rows,
        title=(f"Fig. 6 - map-phase synchronization time, "
               f"{result.n_threads} threads"))
    from repro.metrics.ascii_plot import bar_chart

    table += "\n" + bar_chart(
        list(ORDER), [result.mean(name) for name in ORDER], unit="s")
    table += (
        f"\npaper: SQS slowest -> measured "
        f"{result.mean('sqs'):.2f}s (max of others: "
        f"{max(result.mean(n) for n in ORDER if n != 'sqs'):.2f}s)"
        f"\npaper: auto-reduce ~2x faster than S3 polling -> measured "
        f"{result.mean('s3-polling') / result.mean('auto-reduce'):.1f}x"
        f"\nsync share of total run, averaged over strategies "
        f"(paper: ~23%): "
        f"{sum(result.mean(n) / result.total_times[n] for n in ORDER) / len(ORDER):.0%}")
    return table
