"""Cost-versus-latency Pareto sweep across storage placements.

One Zipf-skewed read-mostly workload runs against four placements of
the same dataset:

* **all-hot** — everything in an in-memory tier (RAM prices);
* **gp3** — everything on a block volume (1–2 ms, free requests);
* **all-cold** — everything on the S3-like object store;
* **tiered** — a memory → gp3 → S3 :class:`~repro.storage.tiering.
  TieredStore` that starts fully cold and lets the heat policy place
  the working set.

Each point reports the read-latency distribution (mean / p99), the
*effective capacity price* actually accrued over the run (storage
dollars per GB-month, time-averaged — the number the placement policy
optimizes), and the per-request bill.  The claim mirrored by the
benchmark floor: the tiered point strictly dominates all-cold on
latency and all-hot on dollars — the point of Crucial-style hot data
living next to compute is exactly that you only pay RAM rent for data
that earns it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import Config, DEFAULT_CONFIG
from repro.metrics.cost import CostLedger
from repro.metrics.recorder import percentile
from repro.metrics.report import render_table
from repro.simulation.kernel import Kernel
from repro.storage.backend import (
    MONTH_SECONDS,
    BlockStore,
    MemoryStore,
    StorageBackend,
)
from repro.storage.object_store import ObjectStore
from repro.storage.tiering import TieredStore
from repro.workload.distributions import ZipfSampler

#: Placement labels, hot to cold (tiered last).
POINTS = ("all-hot", "gp3", "all-cold", "tiered")


@dataclass
class ParetoPoint:
    label: str
    mean_read: float
    p99_read: float
    #: Mean over reads that found their key already on the hottest
    #: tier (== ``mean_read`` for the single-tier points).
    hot_read: float
    #: Time-averaged capacity price actually accrued ($/GB-month).
    dollars_per_gb_month: float
    request_dollars: float
    #: Fraction of dataset bytes resting on the hottest tier at end.
    hot_fraction: float
    promotions: int = 0
    demotions: int = 0


@dataclass
class ParetoResult:
    points: dict[str, ParetoPoint]
    objects: int
    object_bytes: int
    reads: int


def _build(label: str, kernel: Kernel, config: Config,
           ledger: CostLedger) -> StorageBackend:
    if label == "all-hot":
        return MemoryStore(kernel, config, name="memory", ledger=ledger)
    if label == "gp3":
        return BlockStore(kernel, config, name="gp3", ledger=ledger)
    if label == "all-cold":
        return ObjectStore(kernel, config, name="s3", ledger=ledger)
    return TieredStore(
        kernel,
        [MemoryStore(kernel, config, name="memory", ledger=ledger),
         BlockStore(kernel, config, name="gp3", ledger=ledger),
         ObjectStore(kernel, config, name="s3", ledger=ledger)],
        config, ledger=ledger)


def _run_point(label: str, objects: int, object_bytes: int, reads: int,
               think: float, config: Config, seed: int) -> ParetoPoint:
    kernel = Kernel(seed=seed)
    ledger = CostLedger()
    store = _build(label, kernel, config, ledger)
    rng = kernel.rng.stream("tiering_pareto.workload")
    # Zipf-skewed key choice: a handful of keys carry most of the
    # traffic, the tail is touched rarely — the shape that makes
    # tiering pay.  The shared alias-table sampler replaced an earlier
    # draw that clamped numpy's unbounded zipf tail onto the last key,
    # handing one nominally-cold key tens of percent of the traffic.
    sampler = ZipfSampler(objects, s=1.2, rng=rng)
    for i in range(objects):
        store.seed(f"obj-{i:04d}", b"", nbytes=object_bytes)
    t_start = kernel.now
    latencies: list[float] = []
    hot_latencies: list[float] = []

    def main():
        from repro.simulation.kernel import current_thread

        if isinstance(store, TieredStore):
            store.start_sweeper()
        thread = current_thread()
        for _ in range(reads):
            key = f"obj-{sampler.sample():04d}"
            was_hot = (store.tier_of(key) == 0
                       if isinstance(store, TieredStore) else True)
            t0 = kernel.now
            store.get(key)
            elapsed = kernel.now - t0
            latencies.append(elapsed)
            if was_hot:
                hot_latencies.append(elapsed)
            thread.sleep(think)
        if isinstance(store, TieredStore):
            store.stop_sweeper()

    kernel.run_main(main)
    ledger.settle()
    elapsed = kernel.now - t_start
    total_gb = objects * object_bytes / 1e9
    months = elapsed / MONTH_SECONDS
    effective = (ledger.storage_dollars / (total_gb * months)
                 if total_gb > 0 and months > 0 else 0.0)
    if isinstance(store, TieredStore):
        hot_bytes = store.tiers[0].stored_bytes()
        promotions = store.tiering.promotions
        demotions = store.tiering.demotions
    else:
        hot_bytes = (store.stored_bytes()
                     if store.profile.tier == "memory" else 0)
        promotions = demotions = 0
    return ParetoPoint(
        label=label,
        mean_read=sum(latencies) / len(latencies),
        p99_read=percentile(latencies, 99.0),
        hot_read=(sum(hot_latencies) / len(hot_latencies)
                  if hot_latencies else float("nan")),
        dollars_per_gb_month=effective,
        request_dollars=ledger.request_dollars,
        hot_fraction=hot_bytes / (objects * object_bytes),
        promotions=promotions,
        demotions=demotions)


def run(objects: int = 64, object_bytes: int = 256 * 1024,
        reads: int = 600, think: float = 0.25,
        config: Config = DEFAULT_CONFIG, seed: int = 11) -> ParetoResult:
    """Run the sweep: same workload, one point per placement."""
    points = {
        label: _run_point(label, objects, object_bytes, reads, think,
                          config, seed)
        for label in POINTS
    }
    return ParetoResult(points=points, objects=objects,
                        object_bytes=object_bytes, reads=reads)


def report(result: ParetoResult) -> str:
    rows = []
    for label in POINTS:
        point = result.points[label]
        rows.append((
            label,
            f"{point.mean_read * 1000:8.3f}",
            f"{point.p99_read * 1000:8.3f}",
            f"${point.dollars_per_gb_month:.3f}",
            f"${point.request_dollars:.6f}",
            f"{point.hot_fraction * 100:5.1f}%",
            f"{point.promotions}/{point.demotions}",
        ))
    table = render_table(
        ["placement", "mean ms", "p99 ms", "$/GB-mo", "request $",
         "hot bytes", "promo/demo"],
        rows,
        title=(f"tiering Pareto sweep - {result.objects} objects x "
               f"{result.object_bytes // 1024} KiB, "
               f"{result.reads} zipf reads"))
    tiered = result.points["tiered"]
    hot = result.points["all-hot"]
    cold = result.points["all-cold"]
    table += (
        f"\ntiered vs all-cold latency: {tiered.mean_read * 1000:.3f} vs "
        f"{cold.mean_read * 1000:.3f} ms "
        f"({tiered.mean_read < cold.mean_read})"
        f"\ntiered vs all-hot capacity: ${tiered.dollars_per_gb_month:.3f}"
        f" vs ${hot.dollars_per_gb_month:.3f} /GB-month "
        f"({tiered.dollars_per_gb_month < hot.dollars_per_gb_month})")
    return table
