"""Transaction overhead and contention: the cost of read atomicity.

Not a figure from the paper — the paper's consistency model stops at
single-object linearizability, and ``repro.dso.txn`` deliberately
extends it (DESIGN.md §14).  This harness prices that extension so CI
can pin it:

* **commit overhead**: a 4-key transactional commit versus four plain
  sequential invocations of the same layer.  The transaction pays two
  pipelined rounds (prepare, commit) instead of four independent
  round trips, so the ratio is bounded — the CI floor asserts ≤ 3x.
* **read overhead**: a 4-key transactional snapshot (sequential
  validated reads) versus one ``read_bulk`` sweep (per-node groups,
  no atomicity) — the price of never observing a fractured read.
* **contention**: concurrent read-modify-write transactions over a
  Zipf-skewed keyspace.  The protocol has no write-write conflict
  detection (last-writer-wins by commit id, as in AFT), so the abort
  rate under contention is expected to be ~0 on a healthy cluster;
  it is reported — with the read-retry and forced-fetch counters that
  *do* move under contention — to keep that property pinned.

All quantities are virtual-time; wall time only bounds the harness.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.runtime import CrucialEnvironment
from repro.errors import TxnError
from repro.metrics.report import comparison_table
from repro.simulation.thread import spawn
from repro.workload.distributions import ZipfSampler

#: Keys per measured transaction (the ISSUE's "txn of size 4").
SIZE = 4


@dataclass
class TxnAtomicityResult:
    """Virtual-time latencies plus contention counters."""

    size: int
    reps: int
    txn_commit_time: float  #: seconds per SIZE-key commit
    seq_invoke_time: float  #: seconds per SIZE sequential puts
    txn_read_time: float  #: seconds per SIZE-key transactional snapshot
    bulk_read_time: float  #: seconds per SIZE-key read_bulk sweep
    contended_txns: int
    aborts: int
    read_retries: int
    forced_fetches: int

    @property
    def overhead_ratio(self) -> float:
        """Commit cost relative to the non-atomic baseline."""
        return self.txn_commit_time / self.seq_invoke_time

    @property
    def read_ratio(self) -> float:
        return self.txn_read_time / self.bulk_read_time

    @property
    def abort_rate(self) -> float:
        return self.aborts / self.contended_txns \
            if self.contended_txns else 0.0


def run(reps: int = 20, clients: int = 4, rounds: int = 8,
        keyspace: int = 8, seed: int = 5) -> TxnAtomicityResult:
    with CrucialEnvironment(seed=seed, dso_nodes=3) as env:
        layer = env.dso
        txn_keys = [f"txn-{i}" for i in range(SIZE)]
        kv_keys = [f"kv-{i}" for i in range(SIZE)]

        def workload():
            client = env.client_endpoint
            # Warm: create every object outside the measured windows.
            with env.transaction() as txn:
                for key in txn_keys:
                    txn.write(key, 0)
            for key in kv_keys:
                env.dso.put(client, key, 0)

            start = env.now
            for rep in range(reps):
                for key in kv_keys:
                    env.dso.put(client, key, rep)
            seq_invoke = (env.now - start) / reps

            start = env.now
            for rep in range(reps):
                with env.transaction() as txn:
                    for key in txn_keys:
                        txn.write(key, rep)
            txn_commit = (env.now - start) / reps

            start = env.now
            for _ in range(reps):
                with env.transaction() as txn:
                    for key in txn_keys:
                        txn.read(key)
            txn_read = (env.now - start) / reps

            refs = [layer._txn_ref(key) for key in txn_keys]
            start = env.now
            for _ in range(reps):
                layer.read_bulk(client, refs)
            bulk_read = (env.now - start) / reps

            # Contention: concurrent read-modify-write over Zipf keys.
            aborts_before = layer.stats.txns_aborted
            retries_before = layer.stats.txn_read_retries
            forced_before = layer.stats.txn_forced_fetches
            attempted = [0]

            def contender(index):
                # Shared O(1) alias-table sampler (the old inline draw
                # rescanned the weight vector on every sample).
                sampler = ZipfSampler(keyspace, s=1.2,
                                      seed=seed * 1000 + index)
                for _ in range(rounds):
                    first = sampler.sample()
                    second = sampler.sample()
                    if second == first:
                        second = (first + 1) % keyspace
                    keys = [f"hot-{first}", f"hot-{second}"]
                    attempted[0] += 1
                    try:
                        with env.transaction() as txn:
                            total = sum(txn.read(k) or 0 for k in keys)
                            for k in keys:
                                txn.write(k, total + 1)
                    except TxnError:
                        pass  # counted via stats.txns_aborted

            with env.transaction() as txn:
                for i in range(keyspace):
                    txn.write(f"hot-{i}", 0)
            threads = [spawn(contender, i, name=f"contender-{i}")
                       for i in range(clients)]
            for thread in threads:
                thread.join()

            return (seq_invoke, txn_commit, txn_read, bulk_read,
                    attempted[0],
                    layer.stats.txns_aborted - aborts_before,
                    layer.stats.txn_read_retries - retries_before,
                    layer.stats.txn_forced_fetches - forced_before)

        (seq_invoke, txn_commit, txn_read, bulk_read, attempted,
         aborts, read_retries, forced) = env.run(workload)
    return TxnAtomicityResult(
        size=SIZE, reps=reps,
        txn_commit_time=txn_commit, seq_invoke_time=seq_invoke,
        txn_read_time=txn_read, bulk_read_time=bulk_read,
        contended_txns=attempted, aborts=aborts,
        read_retries=read_retries, forced_fetches=forced)


def report(result: TxnAtomicityResult) -> str:
    table = comparison_table(
        f"read-atomic transactions, {result.size} keys x "
        f"{result.reps} reps (commit overhead "
        f"{result.overhead_ratio:.2f}x, read overhead "
        f"{result.read_ratio:.2f}x)",
        [
            (f"{result.size} sequential puts (baseline)",
             result.seq_invoke_time * 1e6,
             result.seq_invoke_time * 1e6),
            (f"txn commit of {result.size}",
             result.seq_invoke_time * 1e6,
             result.txn_commit_time * 1e6),
            (f"read_bulk of {result.size} (baseline)",
             result.bulk_read_time * 1e6,
             result.bulk_read_time * 1e6),
            (f"txn snapshot of {result.size}",
             result.bulk_read_time * 1e6,
             result.txn_read_time * 1e6),
        ], unit="us")
    lines = [
        table,
        f"contention: {result.contended_txns} txns, "
        f"{result.aborts} aborted "
        f"(rate {result.abort_rate:.3f}), "
        f"{result.read_retries} read retries, "
        f"{result.forced_fetches} forced fetches",
    ]
    return "\n".join(lines)
