"""Fig. 5: k-means completion time (10 iterations) versus k.

Three systems — Crucial, Spark MLlib, and Crucial-over-Redis — across
k in {25, 50, 100, 200}.  Paper shape: Crucial completes k=25 40%
faster than Spark (20.4 s vs 34 s); the gap narrows as k grows because
computation increasingly dominates the iteration; the Redis variant is
always slower than Crucial.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import CrucialEnvironment
from repro.metrics.report import render_table
from repro.ml.dataset import MLDataset
from repro.ml.kmeans import CrucialKMeans
from repro.ml.redis_kmeans import RedisKMeans
from repro.net import LatencyModel, Network
from repro.simulation.kernel import Kernel
from repro.sparklike import KMeansMLlib, SparkCluster
from repro.storage import ObjectStore

#: Paper values for the 10-iteration phase at k=25, seconds.
PAPER_K25 = {"crucial": 20.4, "spark": 34.0}


@dataclass
class KMeansComparison:
    #: (system, k) -> iteration-phase seconds
    iteration_times: dict[tuple[str, int], float]
    #: (system, k) -> total seconds (load + iterations)
    total_times: dict[tuple[str, int], float]
    iterations: int
    workers: int


def _run_crucial(k: int, iterations: int, workers: int,
                 seed: int) -> tuple[float, float]:
    with CrucialEnvironment(seed=seed, dso_nodes=1,
                            function_memory_mb=2048) as env:
        dataset = MLDataset("kmeans", partitions=workers, seed=seed)
        job = CrucialKMeans(dataset, k=k, iterations=iterations,
                            workers=workers, run_id=f"fig5-c-{k}")
        result = env.run(job.train)
        return result.iteration_phase_time, result.total_time


def _run_spark(k: int, iterations: int, workers: int,
               seed: int) -> tuple[float, float]:
    with Kernel(seed=seed) as kernel:
        network = Network(kernel, LatencyModel(0.0002),
                          copy_messages=False)
        cluster = SparkCluster(kernel, network)
        store = ObjectStore(kernel)
        dataset = MLDataset("kmeans", partitions=workers, seed=seed)
        algorithm = KMeansMLlib(cluster, k=k, iterations=iterations)
        result = kernel.run_main(lambda: algorithm.train(dataset, store))
        return result.iteration_phase_time, result.total_time


def _run_redis(k: int, iterations: int, workers: int,
               seed: int) -> tuple[float, float]:
    with CrucialEnvironment(seed=seed, dso_nodes=1,
                            function_memory_mb=2048) as env:
        dataset = MLDataset("kmeans", partitions=workers, seed=seed)
        job = RedisKMeans(dataset, k=k, iterations=iterations,
                          workers=workers, run_id=f"fig5-r-{k}")
        result = env.run(job.train)
        return result.iteration_phase_time, result.total_time


def run(ks: tuple[int, ...] = (25, 50, 100, 200), iterations: int = 10,
        workers: int = 80, seed: int = 6) -> KMeansComparison:
    iteration_times: dict[tuple[str, int], float] = {}
    total_times: dict[tuple[str, int], float] = {}
    for k in ks:
        for system, runner in (("crucial", _run_crucial),
                               ("spark", _run_spark),
                               ("redis", _run_redis)):
            iter_time, total_time = runner(k, iterations, workers, seed)
            iteration_times[(system, k)] = iter_time
            total_times[(system, k)] = total_time
    return KMeansComparison(iteration_times=iteration_times,
                            total_times=total_times,
                            iterations=iterations, workers=workers)


def report(result: KMeansComparison) -> str:
    ks = sorted({k for _s, k in result.iteration_times})
    rows = []
    for system in ("crucial", "spark", "redis"):
        rows.append([system] + [
            f"{result.iteration_times[(system, k)]:.1f}s" for k in ks])
    table = render_table(
        ["system"] + [f"k={k}" for k in ks], rows,
        title=(f"Fig. 5 - k-means {result.iterations}-iteration phase, "
               f"{result.workers} workers"))
    if 25 in ks:
        crucial = result.iteration_times[("crucial", 25)]
        spark = result.iteration_times[("spark", 25)]
        gain = 1.0 - crucial / spark
        table += (f"\npaper: k=25 Crucial 20.4s vs Spark 34s (40% faster)"
                  f" -> measured {crucial:.1f}s vs {spark:.1f}s "
                  f"({gain:.0%} faster)")
    gaps = [result.iteration_times[("spark", k)]
            - result.iteration_times[("crucial", k)] for k in ks]
    relative = [gap / result.iteration_times[("spark", k)]
                for gap, k in zip(gaps, ks)]
    table += ("\npaper: relative gap narrows as k grows -> measured "
              + ", ".join(f"k={k}: {r:.0%}"
                          for k, r in zip(ks, relative)))
    redis_slower = all(
        result.iteration_times[("redis", k)]
        > result.iteration_times[("crucial", k)] for k in ks)
    table += (f"\npaper: Redis variant always slower than Crucial -> "
              f"measured {redis_slower}")
    return table
