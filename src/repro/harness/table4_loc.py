"""Table 4: lines changed to move each application to FaaS.

Diffs the *actual source files* of the paired ports in
:mod:`repro.ports` (the single-machine variant versus its Crucial
twin) with difflib, counting changed/inserted lines.  The paper
reports a handful of changed lines per application (< 3% even for
complex programs); the ports reproduce that property on real, tested
code — both variants run in the test suite and produce the same
results.
"""

from __future__ import annotations

import difflib
import inspect
from dataclasses import dataclass

from repro.ports import (
    kmeans_crucial,
    kmeans_local,
    logreg_crucial,
    logreg_local,
    montecarlo_crucial,
    montecarlo_local,
    santa_crucial,
    santa_local,
)

PAIRS = {
    "Monte Carlo": (montecarlo_local, montecarlo_crucial),
    "Logistic Regression": (logreg_local, logreg_crucial),
    "k-means": (kmeans_local, kmeans_crucial),
    "Santa Claus problem": (santa_local, santa_crucial),
}

#: Table 4 reference values: (total lines, changed lines).
PAPER = {
    "Monte Carlo": (44, 2),
    "Logistic Regression": (430, 10),
    "k-means": (329, 8),
    "Santa Claus problem": (255, 15),
}


@dataclass
class LocRow:
    application: str
    total_lines: int
    changed_lines: int

    @property
    def changed_fraction(self) -> float:
        return self.changed_lines / self.total_lines


@dataclass
class LocResult:
    rows: list[LocRow]


def count_changes(local_module, crucial_module) -> tuple[int, int]:
    """(total lines of the Crucial variant, lines changed vs local)."""
    local_lines = inspect.getsource(local_module).splitlines()
    crucial_lines = inspect.getsource(crucial_module).splitlines()
    matcher = difflib.SequenceMatcher(a=local_lines, b=crucial_lines,
                                      autojunk=False)
    changed = 0
    for tag, i1, i2, j1, j2 in matcher.get_opcodes():
        if tag in ("replace", "insert"):
            changed += j2 - j1
        elif tag == "delete":
            changed += i2 - i1
    return len(crucial_lines), changed


def run() -> LocResult:
    rows = []
    for application, (local_module, crucial_module) in PAIRS.items():
        total, changed = count_changes(local_module, crucial_module)
        rows.append(LocRow(application, total, changed))
    return LocResult(rows=rows)


def report(result: LocResult) -> str:
    from repro.metrics.report import render_table

    table_rows = []
    for row in result.rows:
        paper_total, paper_changed = PAPER[row.application]
        table_rows.append((
            row.application, row.total_lines, row.changed_lines,
            f"{row.changed_fraction:.1%}",
            f"{paper_changed}/{paper_total} "
            f"({paper_changed / paper_total:.1%})"))
    table = render_table(
        ["application", "total", "changed", "fraction", "paper"],
        table_rows, title="Table 4 - lines changed to port to FaaS")
    worst = max(row.changed_lines for row in result.rows)
    table += (
        f"\npaper: a handful of changed lines per application "
        f"(2-15) -> measured 3-{worst}"
        "\nnote: fractions run higher than the paper's because these "
        "Python ports are ~5x shorter than the Java originals; the "
        "changed-line *counts* match the paper's order of magnitude")
    return table
