"""Open-loop serving under a diurnal ramp: static vs autoscaled.

Not a figure from the paper — the paper's evaluation is closed-loop —
but the ROADMAP's north star: the same DSO grid serving an open
population whose arrival rate ramps like a miniature day
(:class:`repro.workload.generator.RateProfile.diurnal`).  Three
provisioning strategies serve the identical workload:

* **static-small** — the trough-sized cluster.  Cheap, and correct at
  base load; when the ramp crests past its capacity the open-loop
  arrivals keep coming, the accept queue grows, and tail latency
  explodes (no closed-loop throttle hides it).
* **static-large** — the peak-sized cluster, pre-warmed FaaS pool.
  Great tails, but it pays peak rent for the whole day.
* **autoscaled** — starts at trough size; the
  :class:`repro.workload.autoscaler.Autoscaler` watches live p99 /
  utilisation / cost signals each epoch and grows (then shrinks) the
  grid and the warm pool with the ramp, riding membership views +
  rebalance + placement-version fencing under the live traffic.

The claim the benchmark floor pins: **autoscaled beats static-small
on p999 while staying under static-large's dollar total** — elasticity
buys the tail latency of the big cluster at a price near the small
one.

Node capacity is deliberately scaled down (2 workers per node, a
rebalance throttle tuned for elasticity) so that saturation happens
at rates a discrete-event simulation can drive in seconds; the
*shape* — open-loop overload, queueing tails, scale-out recovery —
is what the experiment preserves.  All quantities are virtual-time.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.config import DEFAULT_CONFIG, Config
from repro.core.runtime import RUNNER_FUNCTION, CrucialEnvironment
from repro.metrics.recorder import percentile
from repro.metrics.report import render_table
from repro.workload.autoscaler import (
    Autoscaler,
    AutoscalerPolicy,
    NodeRentMeter,
    ScaleEvent,
)
from repro.workload.generator import (
    OpenLoopGenerator,
    RateProfile,
    ServingMetrics,
    TenantSpec,
)

#: Provisioning strategies, cheap to expensive.
POINTS = ("static-small", "static-large", "autoscaled")

#: Trough / peak cluster sizes the three strategies interpolate.
SMALL_NODES = 1
LARGE_NODES = 4
LARGE_PREWARM = 8


def serving_config(config: Config = DEFAULT_CONFIG) -> Config:
    """The scaled-down serving hardware (see module docstring)."""
    return replace(config, dso=replace(
        config.dso,
        # Two-worker nodes saturate at a few hundred ops/s, so the
        # diurnal ramp crosses node capacity at simulatable rates.
        node_workers=2,
        # Elasticity-tuned rebalance throttle: a scale-out must settle
        # within an epoch or two, not over minutes.
        transfer_per_object=0.002))


def serving_tenants() -> list[TenantSpec]:
    """Two populations: direct-DSO web traffic + FaaS API traffic."""
    return [
        TenantSpec(name="web", share=0.88, keys=96, zipf_s=1.1,
                   read_fraction=0.9, rf=1, via="dso", cost=0.008),
        TenantSpec(name="api", share=0.12, keys=16, zipf_s=1.0,
                   read_fraction=0.5, rf=1, via="faas", cost=0.005),
    ]


def serving_policy() -> AutoscalerPolicy:
    return AutoscalerPolicy(
        epoch=1.0, slo_p99=0.100,
        high_utilization=0.75, low_utilization=0.25,
        min_nodes=SMALL_NODES, max_nodes=LARGE_NODES,
        cooldown_epochs=2,
        faas_service=0.05, warm_headroom=2.0, min_warm=2)


@dataclass
class ServingPoint:
    """One strategy's measurements over the identical workload."""

    label: str
    nodes_start: int
    nodes_end: int
    requests: int
    errors: int
    #: Completions per second over the whole run (virtual time).
    sustained_tput: float
    p50_ms: float
    p99_ms: float
    p999_ms: float
    #: CostLedger total: grid-node rent + the Lambda bill.
    dollars: float
    node_seconds: float
    cold_starts: int
    scale_events: list[ScaleEvent] = field(default_factory=list)
    acked_writes: int = 0


@dataclass
class ServingResult:
    points: dict[str, ServingPoint]
    duration: float
    base_rate: float
    peak_rate: float

    @property
    def requests(self) -> int:
        return max(p.requests for p in self.points.values())


def _run_point(label: str, base: float, peak: float, duration: float,
               seed: int, config: Config) -> ServingPoint:
    nodes = LARGE_NODES if label == "static-large" else SMALL_NODES
    profile = RateProfile.diurnal(base=base, peak=peak)
    tenants = serving_tenants()
    with CrucialEnvironment(seed=seed, dso_nodes=nodes,
                            config=config) as env:
        rent = NodeRentMeter(env, env.cost_ledger)

        def main():
            if label == "static-large":
                env.pre_warm(LARGE_PREWARM)
            generator = OpenLoopGenerator(env, tenants, profile, duration)
            scaler = None
            if label == "autoscaled":
                scaler = Autoscaler(env, generator.metrics,
                                    policy=serving_policy(),
                                    ledger=env.cost_ledger,
                                    rent=rent).start()
            t0 = env.now
            metrics = generator.run()
            if scaler is not None:
                scaler.stop()
            env.cost_ledger.settle()
            _bill_lambda(env)
            cold = sum(1 for r in env.platform.records if r.cold_start)
            events = scaler.grid_events() if scaler else []
            return t0, metrics, events, cold

        t0, metrics, events, cold = env.run(main)
        latencies = metrics.latencies()
        last = max(r.finished for r in metrics.records) \
            if metrics.records else t0 + duration
        return ServingPoint(
            label=label,
            nodes_start=nodes,
            nodes_end=len(env.dso.member_nodes()),
            requests=len(metrics.records),
            errors=metrics.errors,
            sustained_tput=metrics.completions.rate_between(t0, last),
            p50_ms=percentile(latencies, 50.0) * 1000,
            p99_ms=percentile(latencies, 99.0) * 1000,
            p999_ms=percentile(latencies, 99.9) * 1000,
            dollars=env.cost_ledger.total_dollars,
            node_seconds=rent.node_seconds,
            cold_starts=cold,
            scale_events=events,
            acked_writes=metrics.total_acked)


def _bill_lambda(env: CrucialEnvironment) -> None:
    """Fold the FaaS bill into the ledger next to the node rent."""
    prices = env.config.prices
    gb_seconds = env.platform.billed_gb_seconds(RUNNER_FUNCTION)
    invocations = env.platform.invocation_count(RUNNER_FUNCTION)
    env.cost_ledger.request(
        "lambda", "faas",
        dollars=(gb_seconds * prices.lambda_gb_second
                 + invocations * prices.lambda_per_request),
        count=invocations)


def run(base_rate: float = 50.0, peak_rate: float = 340.0,
        duration: float = 28.0, seed: int = 17,
        config: Config | None = None) -> ServingResult:
    """Serve the identical diurnal workload under each strategy."""
    cfg = serving_config(DEFAULT_CONFIG if config is None else config)
    points = {
        label: _run_point(label, base_rate, peak_rate, duration,
                          seed, cfg)
        for label in POINTS
    }
    return ServingResult(points=points, duration=duration,
                         base_rate=base_rate, peak_rate=peak_rate)


def report(result: ServingResult) -> str:
    rows = []
    for label in POINTS:
        point = result.points[label]
        rows.append((
            label,
            f"{point.nodes_start}->{point.nodes_end}",
            f"{point.sustained_tput:7.1f}",
            f"{point.p50_ms:7.1f}",
            f"{point.p99_ms:8.1f}",
            f"{point.p999_ms:8.1f}",
            f"${point.dollars:.4f}",
            f"{point.cold_starts}",
            f"{len(point.scale_events)}",
        ))
    table = render_table(
        ["strategy", "nodes", "tput/s", "p50 ms", "p99 ms", "p999 ms",
         "dollars", "cold", "scales"],
        rows,
        title=(f"open-loop serving, {result.base_rate:.0f}->"
               f"{result.peak_rate:.0f} req/s diurnal ramp x "
               f"{result.duration:.0f}s ({result.requests} requests)"))
    small = result.points["static-small"]
    large = result.points["static-large"]
    auto = result.points["autoscaled"]
    table += (
        f"\nautoscaled vs static-small p999: {auto.p999_ms:.1f} vs "
        f"{small.p999_ms:.1f} ms ({auto.p999_ms < small.p999_ms})"
        f"\nautoscaled vs static-large dollars: ${auto.dollars:.4f} vs "
        f"${large.dollars:.4f} ({auto.dollars < large.dollars})")
    return table


__all__ = [
    "POINTS",
    "ServingPoint",
    "ServingResult",
    "report",
    "run",
    "serving_config",
    "serving_policy",
    "serving_tenants",
    "ServingMetrics",
]
