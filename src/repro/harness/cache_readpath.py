"""Warm-read latency with the lease-based client cache on vs off.

Not a figure from the paper: Crucial always ships method calls to the
primary, so a repeated ``get`` pays the full network round trip every
time (Table 2's GET row).  The lease cache trades that for one grant
round trip followed by local reads, so this harness measures three
latencies on the same 1 KB payload:

* ``uncached_get`` — the Table 2 baseline (``read_cache=False``),
* ``cached_get``   — warm reads served from the client cache,
* ``cached_put``   — the write path with the cache enabled, which must
  stay on the Table 2 calibration (revocation is charged only when a
  lease is actually outstanding).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import CrucialEnvironment
from repro.harness.table2_latency import PAPER, PAYLOAD
from repro.metrics.report import cache_summary, comparison_table


@dataclass
class CacheReadpathResult:
    uncached_get: float  #: avg seconds, read_cache=False (Table 2 path)
    cached_get: float  #: avg seconds, warm lease-cache reads
    cached_put: float  #: avg seconds, writes with the cache enabled
    hits: int
    misses: int
    granted: int
    revocations: int
    ops: int

    @property
    def speedup(self) -> float:
        """Warm-read improvement over the always-ship baseline."""
        return self.uncached_get / self.cached_get


def _timed(env: CrucialEnvironment, fn, ops: int) -> float:
    start = env.now
    for _ in range(ops):
        fn()
    return (env.now - start) / ops


def run(ops: int = 300, seed: int = 1) -> CacheReadpathResult:
    with CrucialEnvironment(seed=seed, dso_nodes=2) as env:
        def baseline():
            client = env.client_endpoint
            env.dso.put(client, "rp", PAYLOAD)
            return _timed(env, lambda: env.dso.get(client, "rp"), ops)

        uncached_get = env.run(baseline)

    with CrucialEnvironment(seed=seed, dso_nodes=2,
                            read_cache=True) as env:
        def cached():
            client = env.client_endpoint
            env.dso.put(client, "rp", PAYLOAD)
            env.dso.get(client, "rp")  # grant the lease (cold miss)
            cached_get = _timed(
                env, lambda: env.dso.get(client, "rp"), ops)
            cached_put = _timed(
                env, lambda: env.dso.put(client, "rp", PAYLOAD), ops)
            return cached_get, cached_put

        cached_get, cached_put = env.run(cached)
        stats = env.dso.stats

    return CacheReadpathResult(
        uncached_get=uncached_get, cached_get=cached_get,
        cached_put=cached_put, hits=stats.cache_hits,
        misses=stats.cache_misses, granted=stats.leases_granted,
        revocations=stats.lease_revocations, ops=ops)


def report(result: CacheReadpathResult) -> str:
    paper_put, paper_get = PAPER["crucial"]
    table = comparison_table(
        f"Warm 1KB read path, {result.ops} sequential ops"
        f" (speedup {result.speedup:.0f}x)",
        [
            ("GET uncached (Table 2)", paper_get * 1e6,
             result.uncached_get * 1e6),
            ("GET warm cached", paper_get * 1e6,
             result.cached_get * 1e6),
            ("PUT with cache on", paper_put * 1e6,
             result.cached_put * 1e6),
        ], unit="us")

    class _Stats:
        cache_hits = result.hits
        cache_misses = result.misses
        leases_granted = result.granted
        lease_revocations = result.revocations

    return table + "\n" + cache_summary(_Stats())
