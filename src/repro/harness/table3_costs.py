"""Table 3: monetary costs of the Spark/Crucial experiments.

Applies the 2019 AWS pricing model to the measured Fig. 4/5 run times:
Lambda GB-seconds + requests + one r5.2xlarge storage node for
Crucial; the 11-node EMR cluster for Spark.  Paper shape: costs are
comparable where Crucial is much faster (k=25); Crucial costs more
where computation dominates (k=200), because its per-second rate is
higher (0.28 vs 0.15 cents/s).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.harness import fig4_logreg, fig5_kmeans
from repro.metrics.cost import CostModel, ExperimentCost
from repro.metrics.report import render_table

#: Table 3 reference values: (total $, iterations $).
PAPER = {
    ("k-means k=25", "spark"): (0.246, 0.050),
    ("k-means k=25", "crucial"): (0.244, 0.057),
    ("k-means k=200", "spark"): (0.484, 0.288),
    ("k-means k=200", "crucial"): (0.657, 0.492),
    ("logistic regression", "spark"): (0.282, 0.111),
    ("logistic regression", "crucial"): (0.302, 0.154),
}


@dataclass
class CostsResult:
    #: (experiment, system) -> ExperimentCost
    costs: dict[tuple[str, str], ExperimentCost]


def run(iterations_logreg: int = 100, iterations_kmeans: int = 10,
        workers: int = 80, seed: int = 6) -> CostsResult:
    model = CostModel()
    costs: dict[tuple[str, str], ExperimentCost] = {}

    kmeans = fig5_kmeans.run(ks=(25, 200), iterations=iterations_kmeans,
                             workers=workers, seed=seed)
    for k in (25, 200):
        label = f"k-means k={k}"
        costs[(label, "crucial")] = model.crucial_experiment(
            label,
            total_seconds=kmeans.total_times[("crucial", k)],
            iteration_seconds=kmeans.iteration_times[("crucial", k)],
            functions=workers, memory_mb=2048)
        costs[(label, "spark")] = model.spark_experiment(
            label,
            total_seconds=kmeans.total_times[("spark", k)],
            iteration_seconds=kmeans.iteration_times[("spark", k)])

    logreg = fig4_logreg.run(iterations=iterations_logreg,
                             workers=workers, seed=seed)
    label = "logistic regression"
    costs[(label, "crucial")] = model.crucial_experiment(
        label, total_seconds=logreg.crucial_total,
        iteration_seconds=logreg.crucial_iter,
        functions=workers, memory_mb=1792)
    costs[(label, "spark")] = model.spark_experiment(
        label, total_seconds=logreg.spark_total,
        iteration_seconds=logreg.spark_iter)
    return CostsResult(costs=costs)


def report(result: CostsResult) -> str:
    rows = []
    for (experiment, system), cost in sorted(result.costs.items()):
        paper_total, paper_iter = PAPER[(experiment, system)]
        rows.append((experiment, system,
                     f"{cost.total_seconds:.0f}s",
                     f"${cost.total_dollars:.3f}",
                     f"${paper_total:.3f}",
                     f"${cost.iteration_dollars:.3f}",
                     f"${paper_iter:.3f}"))
    table = render_table(
        ["experiment", "system", "time", "total $", "paper $",
         "iter $", "paper iter $"],
        rows, title="Table 3 - monetary costs")
    k25_cru = result.costs[("k-means k=25", "crucial")].total_dollars
    k25_spk = result.costs[("k-means k=25", "spark")].total_dollars
    k200_cru = result.costs[("k-means k=200", "crucial")].total_dollars
    k200_spk = result.costs[("k-means k=200", "spark")].total_dollars
    table += (f"\npaper: comparable cost at k=25 -> measured "
              f"${k25_cru:.3f} vs ${k25_spk:.3f}"
              f"\npaper: Crucial costlier at k=200 (compute-bound) -> "
              f"measured ${k200_cru:.3f} vs ${k200_spk:.3f} "
              f"({k200_cru > k200_spk})")
    return table
