"""Workload distributions: one correct, shared Zipf sampler.

Two harnesses used to hand-roll their own Zipf draws, each wrong in
its own way: ``tiering_pareto`` clamped numpy's *unbounded* zipf
variate onto the last key (``min(int(rng.zipf(s)) - 1, n - 1)``),
silently dumping the entire tail mass — easily tens of percent for
s close to 1 — onto one arbitrary "cold" key; ``txn_atomicity``
rebuilt the weight vector and linearly scanned it on every draw,
O(n) per sample.  Both now share :class:`ZipfSampler`: an exact
bounded Zipf over ``{0, ..., n-1}`` via Walker's alias method —
O(n) to build, O(1) per draw, deterministic for a fixed seed.
"""

from __future__ import annotations

import numpy as np


class ZipfSampler:
    """Bounded Zipf(s) over ranks ``{0, ..., n-1}``.

    ``P(i) = (i + 1)^-s / H(n, s)`` with ``H(n, s)`` the generalised
    harmonic number — rank 0 is the hottest key.  ``s = 0`` degrades
    to uniform.  Draws come from Walker's alias table, so sampling
    cost is independent of the keyspace size.

    Pass either an existing numpy ``Generator`` (e.g. a kernel RNG
    stream, keeping the draw deterministic per seed) or a plain
    ``seed``.
    """

    def __init__(self, n: int, s: float = 1.2,
                 rng: np.random.Generator | None = None,
                 seed: int | None = None):
        if n < 1:
            raise ValueError(f"need at least one rank, got n={n}")
        if s < 0:
            raise ValueError(f"negative skew s={s}")
        if rng is None:
            rng = np.random.Generator(
                np.random.PCG64(0 if seed is None else seed))
        self.n = n
        self.s = s
        self.rng = rng
        weights = np.arange(1, n + 1, dtype=float) ** -s
        self._pmf = weights / weights.sum()
        self._accept, self._alias = self._build_alias(self._pmf)

    @staticmethod
    def _build_alias(pmf: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Vose's stable construction of the alias table."""
        n = len(pmf)
        accept = np.ones(n)
        alias = np.arange(n, dtype=np.int64)
        scaled = pmf * n
        small = [i for i in range(n) if scaled[i] < 1.0]
        large = [i for i in range(n) if scaled[i] >= 1.0]
        while small and large:
            lo = small.pop()
            hi = large.pop()
            accept[lo] = scaled[lo]
            alias[lo] = hi
            scaled[hi] -= 1.0 - scaled[lo]
            (small if scaled[hi] < 1.0 else large).append(hi)
        # Leftovers are 1.0 up to float error; both lists self-alias.
        return accept, alias

    def pmf(self, rank: int | None = None):
        """Analytic probability of ``rank`` (or the full vector)."""
        if rank is None:
            return self._pmf.copy()
        return float(self._pmf[rank])

    def sample(self) -> int:
        """One rank in ``{0, ..., n-1}``, O(1)."""
        column = int(self.rng.integers(self.n))
        if self.rng.random() < self._accept[column]:
            return column
        return int(self._alias[column])

    def sample_many(self, k: int) -> np.ndarray:
        """``k`` i.i.d. ranks in one vectorised draw."""
        columns = self.rng.integers(0, self.n, size=k)
        uniforms = self.rng.random(k)
        return np.where(uniforms < self._accept[columns],
                        columns, self._alias[columns])
