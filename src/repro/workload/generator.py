"""Open-loop serving traffic for the DSO grid (ROADMAP item 1).

Every harness so far is closed-loop: a fixed population of fork/join
workers re-issues a request only after the previous one returns, so a
saturated grid silently throttles its own offered load and the
measured latency stays flattering.  Serving traffic from an open
population does not wait — arrivals keep coming while the grid is
slow, queues grow, and *latency* absorbs the overload.  That is the
regime an autoscaler exists for, and the regime this generator
creates.

Shape (the Lithops invoker/monitor split, Cloudburst's workload
front-end): this module only generates arrivals and records what
happened to them; capacity decisions live in
:mod:`repro.workload.autoscaler`, reading the live
:class:`ServingMetrics` this module populates.

* **Poisson arrivals** with an optional diurnal :class:`RateProfile`,
  sampled exactly by thinning a homogeneous process at the peak rate.
* **Multi-tenant populations**: each :class:`TenantSpec` carries its
  own traffic share, keyspace, Zipf skew (one correct shared
  :class:`~repro.workload.distributions.ZipfSampler` per tenant),
  read mix, replication factor and entry path (direct DSO calls or
  FaaS invocations of the generic runner).
* **No back-pressure**: every arrival gets its own simulated thread;
  in-flight requests pile up behind a slow grid exactly like a load
  balancer's accept queue.

Writes are ``incr`` calls on :class:`TenantCounter` cells, so the run
is auditable: the sum of final counter values must equal the
generator's acknowledged-write count exactly (the chaos suite's
``final == acked`` check rides on this).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.runtime import (
    RUNNER_FUNCTION,
    CrucialEnvironment,
    current_environment,
    current_location,
)
from repro.dso.reference import DsoReference
from repro.errors import CloudError
from repro.metrics.recorder import ThroughputTracker, percentile
from repro.simulation.kernel import current_thread
from repro.simulation.thread import spawn
from repro.workload.distributions import ZipfSampler


class RateProfile:
    """Piecewise-linear arrivals-per-second profile ``lambda(t)``.

    ``t`` is seconds since the generator started; the rate is clamped
    to the first/last point outside the profile's span.
    """

    def __init__(self, points: list[tuple[float, float]]):
        if not points:
            raise ValueError("empty rate profile")
        last_t = None
        for t, rate in points:
            if rate < 0:
                raise ValueError(f"negative rate {rate} at t={t}")
            if last_t is not None and t < last_t:
                raise ValueError("profile times must be non-decreasing")
            last_t = t
        self.points = list(points)

    @classmethod
    def constant(cls, rate: float) -> "RateProfile":
        return cls([(0.0, rate)])

    @classmethod
    def diurnal(cls, base: float, peak: float, warmup: float = 4.0,
                ramp: float = 6.0, plateau: float = 8.0) -> "RateProfile":
        """A day in miniature: base load, ramp to peak, plateau, ramp
        back down — the shape an elastic cluster should track."""
        return cls([
            (0.0, base),
            (warmup, base),
            (warmup + ramp, peak),
            (warmup + ramp + plateau, peak),
            (warmup + 2 * ramp + plateau, base),
        ])

    @property
    def peak(self) -> float:
        return max(rate for _t, rate in self.points)

    def at(self, t: float) -> float:
        points = self.points
        if t <= points[0][0]:
            return points[0][1]
        for (t0, r0), (t1, r1) in zip(points, points[1:]):
            if t <= t1:
                if t1 == t0:
                    return r1
                frac = (t - t0) / (t1 - t0)
                return r0 + frac * (r1 - r0)
        return points[-1][1]


@dataclass(frozen=True)
class TenantSpec:
    """One client population sharing the open-loop arrival process."""

    name: str
    #: Relative traffic weight among tenants (normalised internally).
    share: float = 1.0
    #: Keyspace size; keys are ``{name}-{rank:04d}``.
    keys: int = 64
    #: Zipf skew over the keyspace (0 = uniform).
    zipf_s: float = 1.1
    read_fraction: float = 0.9
    #: Replication factor of the tenant's counter cells (rf >= 2
    #: survives storage-node crashes — the chaos tests rely on it).
    rf: int = 1
    #: Entry path: "dso" calls the grid directly from the client,
    #: "faas" ships each request through the generic FaaS runner.
    via: str = "dso"
    #: Modelled server-side CPU seconds per operation (beyond fixed
    #: dispatch overhead) — the knob that gives nodes finite capacity.
    cost: float = 0.0

    def key(self, rank: int) -> str:
        return f"{self.name}-{rank:04d}"


class TenantCounter:
    """Server-side shared object: one auditable counter per key."""

    def __init__(self):
        self.value = 0

    def get(self) -> int:
        return self.value

    def incr(self) -> int:
        self.value += 1
        return self.value


@dataclass
class RequestRecord:
    """One completed request, in virtual time."""

    tenant: str
    key: str
    kind: str  #: "read" | "write"
    arrived: float
    finished: float
    ok: bool
    error: str = ""

    @property
    def latency(self) -> float:
        return self.finished - self.arrived


@dataclass
class ServingMetrics:
    """Live measurements the generator writes and the autoscaler reads."""

    arrivals: ThroughputTracker = field(
        default_factory=lambda: ThroughputTracker(bucket_width=1.0))
    completions: ThroughputTracker = field(
        default_factory=lambda: ThroughputTracker(bucket_width=1.0))
    #: Arrivals routed through the FaaS runner (drives pre-warming).
    faas_arrivals: ThroughputTracker = field(
        default_factory=lambda: ThroughputTracker(bucket_width=1.0))
    records: list[RequestRecord] = field(default_factory=list)
    #: key -> acknowledged increments (only successful writes count).
    acked_writes: dict[str, int] = field(default_factory=dict)
    errors: int = 0

    def latencies(self) -> list[float]:
        return [r.latency for r in self.records]

    def window_latencies(self, start: float, end: float) -> list[float]:
        """Latencies of requests that *completed* in ``[start, end)``.

        ``records`` is appended at completion time, so it is sorted by
        ``finished`` and the scan can stop early; the autoscaler calls
        this every epoch.
        """
        out = []
        for record in reversed(self.records):
            if record.finished < start:
                break
            if record.finished < end:
                out.append(record.latency)
        return out

    def tail(self, q: float) -> float:
        """Interpolated percentile over all completed requests."""
        values = self.latencies()
        return percentile(values, q) if values else 0.0

    @property
    def total_acked(self) -> int:
        return sum(self.acked_writes.values())


@dataclass(frozen=True)
class _CounterOp:
    """A single counter op, runnable inside a FaaS container.

    Module-level and frozen so it survives the marshalling the
    platform applies to shipped payloads; it resolves the environment
    and its own network location at execution time, inside the
    container.
    """

    key: str
    read: bool
    rf: int
    cost: float

    def __call__(self):
        env = current_environment()
        return _counter_call(env, current_location(), self.key,
                             self.read, self.rf, self.cost)


def _counter_call(env: CrucialEnvironment, caller: str, key: str,
                  read: bool, rf: int, cost: float):
    ref = DsoReference("TenantCounter", key, persistent=rf > 1, rf=rf)
    method = "get" if read else "incr"
    return env.dso.invoke(caller, ref, method,
                          ctor=(TenantCounter, (), {}), cost=cost)


class OpenLoopGenerator:
    """Drive the grid with open-loop multi-tenant traffic.

    Call :meth:`run` from inside ``env.run(...)``; it blocks the
    calling simulated thread for ``duration`` virtual seconds of
    arrivals, then joins every in-flight request and returns the
    populated :class:`ServingMetrics`.  The metrics object is live
    from the first arrival, so an :class:`~repro.workload.autoscaler.
    Autoscaler` started alongside sees rates and tails as they
    happen.
    """

    def __init__(self, env: CrucialEnvironment,
                 tenants: list[TenantSpec],
                 profile: RateProfile,
                 duration: float,
                 metrics: ServingMetrics | None = None,
                 name: str = "workload"):
        if not tenants:
            raise ValueError("need at least one tenant")
        if profile.peak <= 0:
            raise ValueError("rate profile never exceeds zero")
        self.env = env
        self.tenants = list(tenants)
        self.profile = profile
        self.duration = duration
        self.name = name
        self.metrics = metrics if metrics is not None else ServingMetrics()
        kernel = env.kernel
        self._arrival_rng = kernel.rng.stream(f"{name}.arrivals")
        self._op_rng = kernel.rng.stream(f"{name}.ops")
        self._samplers = {
            t.name: ZipfSampler(t.keys, t.zipf_s,
                                rng=kernel.rng.stream(f"{name}.{t.name}.keys"))
            for t in self.tenants
        }
        total_share = sum(t.share for t in self.tenants)
        self._weights = [t.share / total_share for t in self.tenants]
        self._seq = 0

    # -- arrival process ---------------------------------------------------

    def run(self) -> ServingMetrics:
        kernel = self.env.kernel
        thread = current_thread()
        t0 = kernel.now
        peak = self.profile.peak
        pending = []
        while True:
            # Homogeneous Poisson at the peak rate, thinned to the
            # instantaneous profile rate — exact for inhomogeneous
            # Poisson arrivals, and open-loop: nothing below ever
            # delays this draw.
            thread.sleep(float(self._arrival_rng.exponential(1.0 / peak)))
            elapsed = kernel.now - t0
            if elapsed >= self.duration:
                break
            if self._arrival_rng.random() * peak > self.profile.at(elapsed):
                continue
            tenant = self._pick_tenant()
            key = tenant.key(self._samplers[tenant.name].sample())
            read = bool(self._op_rng.random() < tenant.read_fraction)
            self.metrics.arrivals.record(kernel.now)
            if tenant.via == "faas":
                self.metrics.faas_arrivals.record(kernel.now)
            self._seq += 1
            pending.append(spawn(
                self._request, tenant, key, read,
                name=f"{self.name}-req-{self._seq}"))
        for request in pending:
            request.join()
        return self.metrics

    def _pick_tenant(self) -> TenantSpec:
        point = float(self._arrival_rng.random())
        acc = 0.0
        for tenant, weight in zip(self.tenants, self._weights):
            acc += weight
            if point < acc:
                return tenant
        return self.tenants[-1]

    # -- one request -------------------------------------------------------

    def _request(self, tenant: TenantSpec, key: str, read: bool) -> None:
        kernel = self.env.kernel
        arrived = kernel.now
        ok, error = True, ""
        try:
            if tenant.via == "faas":
                self.env.platform.invoke(
                    self.env.client_endpoint, RUNNER_FUNCTION,
                    payload=_CounterOp(key, read, tenant.rf, tenant.cost))
            else:
                _counter_call(self.env, self.env.client_endpoint, key,
                              read, tenant.rf, tenant.cost)
        except CloudError as exc:
            ok, error = False, type(exc).__name__
            self.metrics.errors += 1
        finished = kernel.now
        self.metrics.completions.record(finished)
        if ok and not read:
            self.metrics.acked_writes[key] = \
                self.metrics.acked_writes.get(key, 0) + 1
        self.metrics.records.append(RequestRecord(
            tenant=tenant.name, key=key,
            kind="read" if read else "write",
            arrived=arrived, finished=finished, ok=ok, error=error))

    # -- audit -------------------------------------------------------------

    def final_counts(self) -> dict[str, int]:
        """Read back every written key's final counter value.

        Run inside the environment after traffic has drained; with
        exactly-once sessions the sum must equal ``total_acked``.
        """
        out = {}
        for tenant in self.tenants:
            for rank in range(tenant.keys):
                key = tenant.key(rank)
                if key not in self.metrics.acked_writes:
                    continue
                out[key] = _counter_call(
                    self.env, self.env.client_endpoint, key,
                    read=True, rf=tenant.rf, cost=0.0)
        return out
