"""Elastic capacity control over live serving signals.

The Cloudburst-style monitor half of the invoker/monitor split: a
daemon control loop that wakes every ``epoch`` virtual seconds,
samples *live* signals —

* arrival and completion rates from the generator's
  :class:`~repro.metrics.recorder.ThroughputTracker` (exact
  ``rate_between`` over non-aligned epoch windows),
* interpolated tail latency over the requests that completed in the
  last epoch,
* worker-pool utilisation of every live grid node (busy-seconds
  deltas from the node's bounded worker :class:`~repro.simulation.
  resources.Resource`),
* dollars accrued so far in the shared
  :class:`~repro.metrics.cost.CostLedger` (grid-node rent is metered
  here, by :class:`NodeRentMeter`)

— and then adds or removes DSO grid nodes and FaaS warm capacity.

Scale events ride the machinery that already exists for failures:
``add_node``/``remove_node`` install a new membership view, the
rebalancer migrates objects under per-key write locks, and every
placement bumps its version so in-flight requests that raced the move
get fenced at the old primary and retry against the new placement
(DESIGN.md §15).  The autoscaler never pauses traffic: safety under
in-flight load is the fencing's job, not the control loop's.

Guard rails: ``min_nodes``/``max_nodes`` bounds, one node per
decision, and a cooldown so the loop cannot flap faster than a
rebalance settles.  Keep ``min_nodes`` at or above the largest
replication factor in use, or scale-in could leave replica sets
under-provisioned.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.runtime import RUNNER_FUNCTION, CrucialEnvironment
from repro.metrics.cost import CostLedger
from repro.metrics.recorder import percentile
from repro.simulation.kernel import current_thread
from repro.simulation.thread import SimThread, spawn
from repro.workload.generator import ServingMetrics


class NodeRentMeter:
    """Accrues grid-node rent into a :class:`CostLedger`.

    Each live DSO node bills like the paper's r5.2xlarge storage
    instance: ``rate_per_hour / 3600`` dollars per node-second,
    integrated over virtual time (``byte_seconds`` carries
    node-seconds for this bill).  Attach it to the ledger so
    ``ledger.settle()`` sweeps it with the storage backends; the
    autoscaler also settles right before changing the node count, so
    the integral is exact across scale events.
    """

    def __init__(self, env: CrucialEnvironment, ledger: CostLedger,
                 rate_per_hour: float | None = None,
                 name: str = "grid-nodes"):
        self.env = env
        self.ledger = ledger
        if rate_per_hour is None:
            rate_per_hour = env.config.prices.ec2_r5_2xlarge_hour
        self.rate_per_hour = rate_per_hour
        self.name = name
        self.node_seconds = 0.0
        self._last = env.kernel.now
        ledger.attach(self)

    def settle(self) -> None:
        now = self.env.kernel.now
        elapsed = now - self._last
        self._last = now
        if elapsed <= 0:
            return
        nodes = len(self.env.dso.member_nodes())
        node_seconds = nodes * elapsed
        self.node_seconds += node_seconds
        self.ledger.occupancy(
            self.name, "compute", byte_seconds=node_seconds,
            dollars=node_seconds * self.rate_per_hour / 3600.0)


@dataclass(frozen=True)
class AutoscalerPolicy:
    """Thresholds and bounds for one :class:`Autoscaler`."""

    #: Control-loop period, virtual seconds.
    epoch: float = 1.0
    #: Scale out when the epoch's p99 latency exceeds this.
    slo_p99: float = 0.200
    #: ... or when mean worker utilisation exceeds this.
    high_utilization: float = 0.75
    #: Scale in only below this utilisation *and* half the SLO.
    low_utilization: float = 0.25
    min_nodes: int = 1
    max_nodes: int = 8
    #: Epochs to hold still after any grid scale event.
    cooldown_epochs: int = 2
    #: Consecutive idle epochs required before scaling in (debounce:
    #: one quiet epoch during a ramp must not shed capacity).
    idle_epochs: int = 2
    #: FaaS pre-warm target: arrival rate x service estimate x headroom.
    faas_service: float = 0.05
    warm_headroom: float = 2.0
    #: Warm containers kept even at zero FaaS traffic.
    min_warm: int = 0


@dataclass(frozen=True)
class ScaleEvent:
    """One capacity decision, for reports and the chaos hooks."""

    time: float
    action: str  #: "add-node" | "remove-node" | "pre-warm" | "reclaim"
    nodes_before: int
    nodes_after: int
    reason: str
    #: Membership view installed by the event (grid actions only) —
    #: the fence in-flight requests retry against.
    view_id: int | None = None


@dataclass
class _Signals:
    """What one epoch observed (kept for reports/tests)."""

    time: float
    arrival_rate: float
    completion_rate: float
    p99: float
    utilization: float
    nodes: int
    dollars: float


class Autoscaler:
    """The control loop.  ``start()`` spawns it as a daemon thread."""

    def __init__(self, env: CrucialEnvironment, metrics: ServingMetrics,
                 policy: AutoscalerPolicy | None = None,
                 ledger: CostLedger | None = None,
                 rent: NodeRentMeter | None = None,
                 function_name: str = RUNNER_FUNCTION,
                 name: str = "autoscaler"):
        self.env = env
        self.metrics = metrics
        self.policy = policy if policy is not None else AutoscalerPolicy()
        self.ledger = ledger
        self.rent = rent
        if rent is None and ledger is not None:
            self.rent = NodeRentMeter(env, ledger)
        self.function_name = function_name
        self.name = name
        self.events: list[ScaleEvent] = []
        self.signals: list[_Signals] = []
        self._busy: dict[str, float] = {}
        self._hold = 0
        self._idle_streak = 0
        self._stop = False
        self._thread: SimThread | None = None

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "Autoscaler":
        if self.policy.min_warm > 0:
            # The provisioned-concurrency floor exists from t=0, not
            # from the first epoch — early arrivals hit warm capacity.
            self.env.platform.pre_warm(self.function_name,
                                       self.policy.min_warm)
        self._thread = spawn(self._loop, name=self.name, daemon=True)
        return self

    def stop(self) -> None:
        self._stop = True

    def _loop(self) -> None:
        thread = current_thread()
        while not self._stop:
            thread.sleep(self.policy.epoch)
            if self._stop:
                break
            self.tick()

    # -- one epoch ---------------------------------------------------------

    def tick(self) -> _Signals:
        """Sample the epoch's signals and act on them."""
        policy = self.policy
        now = self.env.kernel.now
        start = now - policy.epoch
        arrival = self.metrics.arrivals.rate_between(start, now)
        completion = self.metrics.completions.rate_between(start, now)
        window = self.metrics.window_latencies(start, now)
        p99 = percentile(window, 99.0) if window else 0.0
        utilization = self._utilization(policy.epoch)
        if self.rent is not None:
            self.rent.settle()
        dollars = self.ledger.total_dollars if self.ledger else 0.0
        nodes = len(self.env.dso.member_nodes())
        signals = _Signals(time=now, arrival_rate=arrival,
                           completion_rate=completion, p99=p99,
                           utilization=utilization, nodes=nodes,
                           dollars=dollars)
        self.signals.append(signals)

        overloaded = ((window and p99 > policy.slo_p99)
                      or utilization > policy.high_utilization)
        idle = (utilization < policy.low_utilization
                and p99 < 0.5 * policy.slo_p99
                and arrival <= completion)
        self._idle_streak = self._idle_streak + 1 if idle else 0
        if self._hold > 0:
            self._hold -= 1
        elif overloaded and nodes < policy.max_nodes:
            self._scale_out(signals)
        elif (self._idle_streak >= policy.idle_epochs
              and nodes > policy.min_nodes):
            self._scale_in(signals)
        self._adjust_warm_pool()
        return signals

    def _utilization(self, elapsed: float) -> float:
        """Mean busy fraction of live nodes' worker pools this epoch."""
        total, seen = 0.0, 0
        for node in self.env.dso.member_nodes():
            workers = node.node.workers
            busy = workers.busy_seconds()
            previous = self._busy.get(node.name)
            self._busy[node.name] = busy
            if previous is None:
                continue  # joined mid-epoch: no baseline yet
            total += (busy - previous) / (workers.capacity * elapsed)
            seen += 1
        return total / seen if seen else 0.0

    # -- actions -----------------------------------------------------------

    def _scale_out(self, signals: _Signals) -> None:
        if self.rent is not None:
            self.rent.settle()
        dso = self.env.dso
        before = len(dso.member_nodes())
        dso.add_node()
        self.events.append(ScaleEvent(
            time=self.env.kernel.now, action="add-node",
            nodes_before=before, nodes_after=before + 1,
            reason=(f"p99={signals.p99 * 1000:.0f}ms "
                    f"util={signals.utilization:.2f}"),
            view_id=dso.membership.view.view_id))
        self._hold = self.policy.cooldown_epochs
        self._idle_streak = 0

    def _scale_in(self, signals: _Signals) -> None:
        dso = self.env.dso
        view = dso.membership.view
        candidates = dso.member_nodes()
        if len(candidates) <= self.policy.min_nodes:
            return
        if self.rent is not None:
            self.rent.settle()
        # Drain the lightest member: fewest resident objects means the
        # cheapest rebalance.  Graceful leave — data migrates off.
        counts = dso.object_counts()
        victim = min(reversed(candidates),
                     key=lambda n: counts.get(n.name, 0))
        before = len(candidates)
        dso.remove_node(victim.name)
        self.events.append(ScaleEvent(
            time=self.env.kernel.now, action="remove-node",
            nodes_before=before, nodes_after=before - 1,
            reason=(f"util={signals.utilization:.2f} "
                    f"p99={signals.p99 * 1000:.0f}ms"),
            view_id=dso.membership.view.view_id))
        self._hold = self.policy.cooldown_epochs
        self._idle_streak = 0

    def _adjust_warm_pool(self) -> None:
        """Track the observed FaaS arrival rate with warm containers."""
        policy = self.policy
        now = self.env.kernel.now
        rate = self.metrics.faas_arrivals.rate_between(
            now - policy.epoch, now)
        target = max(policy.min_warm,
                     math.ceil(rate * policy.faas_service
                               * policy.warm_headroom))
        platform = self.env.platform
        warm = platform.warm_container_count(self.function_name)
        if warm < target:
            # pre_warm targets the *total* pool; in-flight invocations
            # hold containers, so grow past them to keep ``target``
            # containers actually idle.
            busy = len(platform.busy_containers(self.function_name))
            platform.pre_warm(self.function_name, busy + target)
            self.events.append(ScaleEvent(
                time=now, action="pre-warm",
                nodes_before=warm, nodes_after=target,
                reason=f"faas_rate={rate:.1f}/s"))
        elif warm > target and warm > policy.min_warm:
            keep = max(target, policy.min_warm)
            reclaimed = platform.reclaim_idle(self.function_name, keep=keep)
            if reclaimed:
                self.events.append(ScaleEvent(
                    time=now, action="reclaim",
                    nodes_before=warm, nodes_after=warm - reclaimed,
                    reason=f"faas_rate={rate:.1f}/s"))

    # -- reporting ---------------------------------------------------------

    def grid_events(self) -> list[ScaleEvent]:
        return [e for e in self.events
                if e.action in ("add-node", "remove-node")]
