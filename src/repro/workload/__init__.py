"""Open-loop serving workloads and elastic capacity control.

The million-user half of the reproduction (ROADMAP item 1): a traffic
*generator* that offers load without closed-loop back-pressure
(:mod:`repro.workload.generator`), the shared key-popularity
distributions behind it (:mod:`repro.workload.distributions`), and
the *autoscaler* that watches the live metrics and resizes the grid
and the FaaS warm pool (:mod:`repro.workload.autoscaler`).  The
generator/controller split follows Lithops' invoker/monitor shape;
the reactive scaling story follows Cloudburst.
"""

from repro.workload.autoscaler import (
    Autoscaler,
    AutoscalerPolicy,
    NodeRentMeter,
    ScaleEvent,
)
from repro.workload.distributions import ZipfSampler
from repro.workload.generator import (
    OpenLoopGenerator,
    RateProfile,
    RequestRecord,
    ServingMetrics,
    TenantCounter,
    TenantSpec,
)

__all__ = [
    "Autoscaler",
    "AutoscalerPolicy",
    "NodeRentMeter",
    "OpenLoopGenerator",
    "RateProfile",
    "RequestRecord",
    "ScaleEvent",
    "ServingMetrics",
    "TenantCounter",
    "TenantSpec",
    "ZipfSampler",
]
