"""Request/response RPC between simulated endpoints."""

from repro.rpc.server import RpcServer, ServerCall

__all__ = ["RpcServer", "ServerCall"]
