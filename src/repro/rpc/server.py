"""Synchronous RPC with server-side worker pools.

A remote call is modelled in the *caller's* simulated thread:

1. request transfer (link latency; fails if the server is down),
2. admission to one of the server's worker threads (FIFO),
3. the handler body, which charges service time and may block on
   server-side conditions (parking releases the worker),
4. a liveness check — if the server crashed while serving, the caller
   sees :class:`NodeCrashedError`,
5. response transfer back.

Because the kernel runs one simulated thread at a time and ordering is
governed solely by virtual time, executing the handler in the caller's
thread is observationally equivalent to a dedicated server thread, and
avoids per-request thread churn.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.errors import NetworkError, NodeCrashedError, ServiceUnavailableError
from repro.cluster.node import Node
from repro.simulation.kernel import current_thread


class ServerCall:
    """Context handed to RPC handlers.

    Exposes the serving node and *parking*: a handler that must wait
    for another request (e.g. a barrier) parks, releasing its worker
    thread so the node can keep serving — the wait()/notify() pattern
    Section 5 describes for synchronization objects.
    """

    def __init__(self, server: "RpcServer", client: str, op: str):
        self.server = server
        self.node = server.node
        self.client = client
        self.op = op
        self._parked = False
        self._admitted = False

    # Admission control ------------------------------------------------------

    def _admit(self) -> None:
        self.node.workers.acquire()
        self._admitted = True

    def _leave(self) -> None:
        if self._admitted:
            self.node.workers.release()
            self._admitted = False

    def park(self) -> None:
        """Release the worker thread while blocked on a condition."""
        if self._parked:
            return
        self._parked = True
        self._leave()

    def unpark(self) -> None:
        """Re-acquire a worker thread after waking."""
        if not self._parked:
            return
        self.node.workers.acquire()
        self._admitted = True
        self._parked = False

    def service(self, duration: float) -> None:
        """Charge ``duration`` seconds of server CPU to this call."""
        if duration > 0:
            current_thread().sleep(duration)


class RpcServer:
    """Dispatch table of operations exposed by one node."""

    def __init__(self, node: Node):
        self.node = node
        self._handlers: dict[str, Callable[..., Any]] = {}
        self.calls_served = 0

    def register(self, op: str, handler: Callable[..., Any]) -> None:
        """Expose ``handler(call: ServerCall, *args) -> result``."""
        if op in self._handlers:
            raise ValueError(f"operation {op!r} already registered")
        self._handlers[op] = handler

    def call(self, client: str, op: str, *args: Any) -> Any:
        """Invoke ``op`` from endpoint ``client``; returns the result.

        Raises :class:`NetworkError` if the node is unreachable,
        :class:`NodeCrashedError` if it fails mid-call, and re-raises
        handler exceptions at the caller (after the response transfer),
        mirroring how storage servers report application errors.
        """
        network = self.node.network
        handler = self._handlers.get(op)
        if handler is None:
            raise ServiceUnavailableError(
                f"{self.node.name} has no operation {op!r}")
        shipped_args = network.transfer(client, self.node.name, args)
        epoch = self.node.epoch
        call = ServerCall(self, client, op)
        call._admit()
        try:
            result: Any = None
            error: BaseException | None = None
            try:
                result = handler(call, *shipped_args)
            except NodeCrashedError:
                raise
            except NetworkError:
                raise
            except Exception as exc:  # application-level error
                error = exc
            if not self.node.alive or self.node.epoch != epoch:
                raise NodeCrashedError(
                    f"{self.node.name} crashed while serving {op!r}")
        finally:
            call._leave()
        self.calls_served += 1
        response = network.transfer(self.node.name, client,
                                    result if error is None else error)
        if error is not None:
            raise response
        return response
