"""Measurement and reporting: time series, AWS costs, result tables."""

from repro.metrics.recorder import ThroughputTracker, TimeSeries, percentile
from repro.metrics.cost import BackendBill, CostLedger, CostModel, ExperimentCost
from repro.metrics.report import (
    cache_summary,
    comparison_table,
    cost_summary,
    fault_summary,
    render_table,
)

__all__ = [
    "TimeSeries",
    "ThroughputTracker",
    "percentile",
    "BackendBill",
    "CostLedger",
    "CostModel",
    "ExperimentCost",
    "render_table",
    "comparison_table",
    "cost_summary",
    "fault_summary",
    "cache_summary",
]
