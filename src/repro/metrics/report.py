"""Plain-text result tables, with paper-vs-measured comparisons.

Every benchmark prints one of these so EXPERIMENTS.md can be assembled
directly from bench output.
"""

from __future__ import annotations

from typing import Any, Sequence


def render_table(headers: Sequence[str],
                 rows: Sequence[Sequence[Any]],
                 title: str | None = None) -> str:
    """A fixed-width text table."""
    table = [list(map(_fmt, headers))] + \
        [list(map(_fmt, row)) for row in rows]
    widths = [max(len(row[col]) for row in table)
              for col in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    separator = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(table[0], widths)))
    lines.append(separator)
    for row in table[1:]:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def comparison_table(title: str,
                     entries: Sequence[tuple[str, float, float]],
                     unit: str = "") -> str:
    """Paper-vs-measured rows with the measured/paper ratio.

    ``entries`` are ``(label, paper_value, measured_value)``.
    """
    rows = []
    for label, paper, measured in entries:
        ratio = measured / paper if paper else float("nan")
        rows.append((label, _quantity(paper, unit),
                     _quantity(measured, unit), f"{ratio:.2f}x"))
    return render_table(
        ["experiment", "paper", "measured", "ratio"], rows, title=title)


def fault_summary(log, retries: dict[str, int] | None = None,
                  title: str = "fault injection") -> str:
    """Render a chaos run: injected/reverted faults per kind, plus any
    per-layer retry counters.

    ``log`` is a :class:`repro.chaos.injector.FaultLog` (anything with
    ``counts(phase)``); ``retries`` maps a layer label to its retry
    counter (e.g. ``{"dso": layer.stats.retries}``) so a report shows
    the injected faults next to the recoveries they forced.
    """
    injected = log.counts("inject")
    reverted = log.counts("revert")
    skipped = log.counts("noop")
    rows: list[tuple[str, Any, Any, Any]] = []
    for kind in sorted(set(injected) | set(reverted) | set(skipped)):
        rows.append((kind, injected.get(kind, 0), reverted.get(kind, 0),
                     skipped.get(kind, 0)))
    for layer, count in sorted((retries or {}).items()):
        rows.append((f"{layer} retries", count, "-", "-"))
    return render_table(["fault", "injected", "reverted", "noop"],
                        rows, title=title)


def cache_summary(stats, title: str = "dso read cache") -> str:
    """Render the DSO layer's lease-cache counters.

    ``stats`` is a :class:`repro.dso.layer.LayerStats`; the table shows
    the hit rate next to the coherence traffic it cost (leases granted
    by read replies, revocations forced by writes), so benchmarks can
    report read-path cache behaviour in one block.
    """
    lookups = stats.cache_hits + stats.cache_misses
    rate = stats.cache_hits / lookups if lookups else 0.0
    rows = [
        ("cache hits", stats.cache_hits),
        ("cache misses", stats.cache_misses),
        ("hit rate", f"{rate:.1%}"),
        ("leases granted", stats.leases_granted),
        ("lease revocations", stats.lease_revocations),
    ]
    return render_table(["counter", "value"], rows, title=title)


def cost_summary(ledger, title: str = "storage cost ledger") -> str:
    """Render a :class:`repro.metrics.cost.CostLedger` per backend.

    Settles pending capacity rent first, then shows each backend's
    request count, request dollars, GB-hours of occupancy, capacity
    rent, and total — followed by an account-wide total row — so a
    harness can print what a placement policy actually cost.
    """
    ledger.settle()
    rows = []
    for name in sorted(ledger.bills):
        bill = ledger.bills[name]
        rows.append((name, bill.tier, bill.requests,
                     f"${bill.request_dollars:.6f}",
                     f"{bill.byte_seconds / 1e9 / 3600.0:.4g}",
                     f"${bill.storage_dollars:.6f}",
                     f"${bill.total_dollars:.6f}"))
    rows.append(("total", "-",
                 sum(b.requests for b in ledger.bills.values()),
                 f"${ledger.request_dollars:.6f}", "-",
                 f"${ledger.storage_dollars:.6f}",
                 f"${ledger.total_dollars:.6f}"))
    return render_table(
        ["backend", "tier", "requests", "request $", "GB-hours",
         "storage $", "total $"],
        rows, title=title)


def trace_summary(tracer, max_depth: int = 6,
                  min_duration: float = 0.0,
                  title: str = "trace summary") -> str:
    """Render a traced run: span tree plus critical path.

    ``tracer`` is the kernel's :class:`repro.trace.Tracer` (or any
    span iterable).  Returns a note instead when tracing was disabled,
    so harnesses can append this to their report unconditionally.
    """
    from repro.trace.export import critical_path_summary, span_tree

    if not getattr(tracer, "enabled", True) or not list(tracer.spans):
        return f"{title}: tracing disabled (no spans recorded)"
    tree = span_tree(tracer, max_depth=max_depth,
                     min_duration=min_duration)
    return f"{title}:\n{tree}\n\n{critical_path_summary(tracer)}"


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def _quantity(value: float, unit: str) -> str:
    return f"{value:.4g}{unit}" if unit else f"{value:.4g}"
