"""Time-series collection in virtual time."""

from __future__ import annotations

import math
from dataclasses import dataclass, field


@dataclass
class TimeSeries:
    """Scalar samples stamped with virtual time."""

    name: str
    points: list[tuple[float, float]] = field(default_factory=list)

    def add(self, time: float, value: float) -> None:
        self.points.append((time, value))

    def values(self) -> list[float]:
        return [value for _t, value in self.points]

    def mean(self) -> float:
        values = self.values()
        return sum(values) / len(values) if values else 0.0

    def maximum(self) -> float:
        values = self.values()
        return max(values) if values else 0.0


@dataclass
class ThroughputTracker:
    """Counts events into fixed-width virtual-time buckets."""

    bucket_width: float = 1.0
    counts: dict[int, int] = field(default_factory=dict)

    def record(self, time: float) -> None:
        bucket = int(time // self.bucket_width)
        self.counts[bucket] = self.counts.get(bucket, 0) + 1

    def series(self, start: float, end: float) -> list[float]:
        """Events/second for each bucket in ``[start, end)``."""
        first = int(start // self.bucket_width)
        last = int(end // self.bucket_width)
        return [self.counts.get(b, 0) / self.bucket_width
                for b in range(first, last)]

    def rate_between(self, start: float, end: float) -> float:
        window = self.series(start, end)
        return sum(window) / len(window) if window else 0.0


def percentile(values: list[float], q: float) -> float:
    """Nearest-rank percentile (``q`` in [0, 100])."""
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0 <= q <= 100:
        raise ValueError(f"q out of range: {q}")
    ordered = sorted(values)
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return ordered[rank - 1]
