"""Time-series collection in virtual time."""

from __future__ import annotations

import math
from bisect import bisect_left, insort
from dataclasses import dataclass, field


@dataclass
class TimeSeries:
    """Scalar samples stamped with virtual time."""

    name: str
    points: list[tuple[float, float]] = field(default_factory=list)

    def add(self, time: float, value: float) -> None:
        self.points.append((time, value))

    def values(self) -> list[float]:
        return [value for _t, value in self.points]

    def mean(self) -> float:
        values = self.values()
        return sum(values) / len(values) if values else 0.0

    def maximum(self) -> float:
        values = self.values()
        return max(values) if values else 0.0


@dataclass
class ThroughputTracker:
    """Counts events into fixed-width virtual-time buckets.

    ``counts`` is the bucketed view used for plotting.  The exact
    event times are kept as well (sorted — virtual time is monotone
    for simulation callers, and out-of-order stamps are insorted), so
    window queries are exact rather than quantised to bucket
    boundaries.
    """

    bucket_width: float = 1.0
    counts: dict[int, int] = field(default_factory=dict)
    events: list[float] = field(default_factory=list, repr=False)

    def record(self, time: float) -> None:
        bucket = int(time // self.bucket_width)
        self.counts[bucket] = self.counts.get(bucket, 0) + 1
        if self.events and time < self.events[-1]:
            insort(self.events, time)
        else:
            self.events.append(time)

    def count_between(self, start: float, end: float) -> int:
        """Events recorded in ``[start, end)``."""
        return (bisect_left(self.events, end)
                - bisect_left(self.events, start))

    def series(self, start: float, end: float) -> list[float]:
        """Events/second for each bucket overlapping ``[start, end)``.

        Edge buckets only partially covered by the window are
        normalised by the overlapped width, so a non-aligned ``end``
        no longer drops the trailing partial bucket (nor dilutes its
        rate), and a non-aligned ``start`` no longer counts events
        from before the window.
        """
        if end <= start:
            return []
        first = int(start // self.bucket_width)
        last = math.ceil(end / self.bucket_width)
        out = []
        for bucket in range(first, last):
            lo = max(start, bucket * self.bucket_width)
            hi = min(end, (bucket + 1) * self.bucket_width)
            if hi > lo:
                out.append(self.count_between(lo, hi) / (hi - lo))
        return out

    def rate_between(self, start: float, end: float) -> float:
        """Mean events/second over ``[start, end)``: events / elapsed.

        Exact for any window, aligned or not — the old implementation
        averaged whole-bucket rates, which both dropped the trailing
        partial bucket and divided by bucket count instead of elapsed
        time.
        """
        if end <= start:
            return 0.0
        return self.count_between(start, end) / (end - start)


def percentile(values: list[float], q: float,
               method: str = "linear") -> float:
    """Percentile of ``values`` (``q`` in [0, 100]).

    ``method="linear"`` (the default) interpolates linearly between
    the two closest order statistics — the sample at fractional rank
    ``(n - 1) * q / 100`` — matching ``numpy.percentile``.  The old
    nearest-rank rule pinned p999 to the sample *maximum* for any
    n < 1000, overstating tail latency in every benchmark; it remains
    available as ``method="nearest"`` for callers asserting exact
    historical values.
    """
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0 <= q <= 100:
        raise ValueError(f"q out of range: {q}")
    ordered = sorted(values)
    if method == "nearest":
        rank = max(1, math.ceil(q / 100.0 * len(ordered)))
        return ordered[rank - 1]
    if method != "linear":
        raise ValueError(f"unknown percentile method: {method!r}")
    position = (len(ordered) - 1) * q / 100.0
    lower = math.floor(position)
    upper = math.ceil(position)
    fraction = position - lower
    return ordered[lower] * (1.0 - fraction) + ordered[upper] * fraction
