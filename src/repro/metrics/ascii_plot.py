"""Tiny ASCII plotting, so figure benchmarks can show *figures*.

Terminal-friendly sparklines and bar charts used by the Fig. 2b and
Fig. 8 reports (a reproduction of a figure should look like one).
"""

from __future__ import annotations

from typing import Sequence

_BARS = " ▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], width: int | None = None) -> str:
    """One-line plot of a series (resampled to ``width`` columns)."""
    if not values:
        return ""
    series = list(values)
    if width is not None and len(series) > width:
        step = len(series) / width
        series = [series[int(i * step)] for i in range(width)]
    low = min(series)
    high = max(series)
    span = high - low or 1.0
    return "".join(
        _BARS[1 + int((value - low) / span * (len(_BARS) - 2))]
        for value in series)


def bar_chart(labels: Sequence[str], values: Sequence[float],
              width: int = 40, unit: str = "") -> str:
    """Horizontal bar chart with aligned labels and values."""
    if len(labels) != len(values):
        raise ValueError("labels and values must have equal length")
    if not labels:
        return ""
    top = max(values) or 1.0
    label_width = max(len(label) for label in labels)
    lines = []
    for label, value in zip(labels, values):
        bar = "#" * max(1, int(value / top * width)) if value > 0 else ""
        lines.append(f"{label.ljust(label_width)} |{bar.ljust(width)}| "
                     f"{value:.3g}{unit}")
    return "\n".join(lines)
