"""The Table 3 monetary-cost model (2019 on-demand AWS prices).

Crucial's bill: Lambda GB-seconds + requests, plus the DSO storage
instance(s) for the experiment duration.  Spark's bill: the EMR
cluster (EC2 + EMR surcharge) for the experiment duration.  As in the
paper, provisioning time is not billed and the free tier is ignored.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import Config, DEFAULT_CONFIG


@dataclass(frozen=True)
class ExperimentCost:
    label: str
    total_seconds: float
    total_dollars: float
    iteration_seconds: float
    iteration_dollars: float

    def row(self) -> tuple:
        return (self.label, round(self.total_seconds),
                round(self.total_dollars, 3),
                round(self.iteration_dollars, 3))


class CostModel:
    def __init__(self, config: Config = DEFAULT_CONFIG):
        self.prices = config.prices

    # -- Crucial -------------------------------------------------------------------

    def crucial_rate_per_second(self, functions: int, memory_mb: int,
                                storage_nodes: int = 1) -> float:
        """$/s while all functions and the DSO node(s) are running.

        With 80 x 1792 MB this is ~0.25 cents/s, with 80 x 2048 MB
        ~0.28 cents/s — Section 6.2.3's quoted rates.
        """
        lambda_rate = (functions * (memory_mb / 1024.0)
                       * self.prices.lambda_gb_second)
        storage_rate = (storage_nodes
                        * self.prices.ec2_r5_2xlarge_hour / 3600.0)
        return lambda_rate + storage_rate

    def crucial_experiment(self, label: str, total_seconds: float,
                           iteration_seconds: float, functions: int,
                           memory_mb: int, storage_nodes: int = 1,
                           invocations: int | None = None) -> ExperimentCost:
        rate = self.crucial_rate_per_second(functions, memory_mb,
                                            storage_nodes)
        requests = (invocations if invocations is not None
                    else functions) * self.prices.lambda_per_request
        return ExperimentCost(
            label=label,
            total_seconds=total_seconds,
            total_dollars=rate * total_seconds + requests,
            iteration_seconds=iteration_seconds,
            iteration_dollars=rate * iteration_seconds)

    # -- Spark on EMR -----------------------------------------------------------------

    def spark_rate_per_second(self, worker_nodes: int = 10,
                              master_nodes: int = 1) -> float:
        """$/s of the EMR cluster: EC2 + EMR surcharge per node.

        11 m5.2xlarge nodes cost ~0.15 cents/s (Section 6.2.3).
        """
        nodes = worker_nodes + master_nodes
        per_node_hour = (self.prices.ec2_m5_2xlarge_hour
                         + self.prices.emr_m5_2xlarge_hour)
        return nodes * per_node_hour / 3600.0

    def spark_experiment(self, label: str, total_seconds: float,
                         iteration_seconds: float,
                         worker_nodes: int = 10) -> ExperimentCost:
        rate = self.spark_rate_per_second(worker_nodes)
        return ExperimentCost(
            label=label,
            total_seconds=total_seconds,
            total_dollars=rate * total_seconds,
            iteration_seconds=iteration_seconds,
            iteration_dollars=rate * iteration_seconds)
