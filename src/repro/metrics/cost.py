"""Monetary-cost models: the Table 3 experiment bill and the
per-backend storage ledger.

:class:`CostModel` prices whole experiments (2019 on-demand AWS
rates): Lambda GB-seconds + requests, plus the DSO storage instance(s)
for Crucial; the EMR cluster for Spark.  As in the paper, provisioning
time is not billed and the free tier is ignored.

:class:`CostLedger` is the storage-tier ledger behind the pluggable
backend API (:mod:`repro.storage.backend`): every request accrues its
per-request fee, and capacity rent accrues as a byte-seconds integral
over virtual time, per backend — so tiered-placement policies can be
compared in dollars, not just microseconds
(:func:`repro.metrics.report.cost_summary` renders it).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config import Config, DEFAULT_CONFIG


@dataclass
class BackendBill:
    """Accumulated dollars for one storage backend."""

    backend: str
    tier: str
    requests: int = 0
    request_dollars: float = 0.0
    byte_seconds: float = 0.0
    storage_dollars: float = 0.0

    @property
    def total_dollars(self) -> float:
        return self.request_dollars + self.storage_dollars


@dataclass
class CostLedger:
    """Per-backend request fees + capacity rent, in one account.

    Backends report into the ledger as they serve traffic
    (:meth:`request`) and as data rests on them (:meth:`occupancy`);
    :meth:`settle` asks every attached backend to accrue rent up to
    the current virtual time, so totals read mid-run are exact.  One
    ledger may serve many backends (a :class:`~repro.storage.tiering.
    TieredStore` shares one across its tiers), keyed by backend name.
    """

    bills: dict[str, BackendBill] = field(default_factory=dict)
    _backends: list = field(default_factory=list, repr=False)

    def attach(self, backend) -> None:
        """Register ``backend`` for :meth:`settle` sweeps."""
        if backend not in self._backends:
            self._backends.append(backend)

    def bill_for(self, name: str, tier: str = "object") -> BackendBill:
        bill = self.bills.get(name)
        if bill is None:
            bill = self.bills[name] = BackendBill(backend=name, tier=tier)
        return bill

    def request(self, name: str, tier: str, dollars: float,
                count: int = 1) -> None:
        """Accrue ``count`` requests costing ``dollars`` in total."""
        bill = self.bill_for(name, tier)
        bill.requests += count
        bill.request_dollars += dollars

    def occupancy(self, name: str, tier: str, byte_seconds: float,
                  dollars: float) -> None:
        """Accrue capacity rent for ``byte_seconds`` of occupancy."""
        bill = self.bill_for(name, tier)
        bill.byte_seconds += byte_seconds
        bill.storage_dollars += dollars

    def settle(self) -> None:
        """Flush every attached backend's pending rent accrual."""
        for backend in self._backends:
            backend.settle()

    @property
    def request_dollars(self) -> float:
        return sum(b.request_dollars for b in self.bills.values())

    @property
    def storage_dollars(self) -> float:
        return sum(b.storage_dollars for b in self.bills.values())

    @property
    def total_dollars(self) -> float:
        return sum(b.total_dollars for b in self.bills.values())


@dataclass(frozen=True)
class ExperimentCost:
    label: str
    total_seconds: float
    total_dollars: float
    iteration_seconds: float
    iteration_dollars: float

    def row(self) -> tuple:
        return (self.label, round(self.total_seconds),
                round(self.total_dollars, 3),
                round(self.iteration_dollars, 3))


class CostModel:
    def __init__(self, config: Config = DEFAULT_CONFIG):
        self.prices = config.prices

    # -- Crucial -------------------------------------------------------------------

    def crucial_rate_per_second(self, functions: int, memory_mb: int,
                                storage_nodes: int = 1) -> float:
        """$/s while all functions and the DSO node(s) are running.

        With 80 x 1792 MB this is ~0.25 cents/s, with 80 x 2048 MB
        ~0.28 cents/s — Section 6.2.3's quoted rates.
        """
        lambda_rate = (functions * (memory_mb / 1024.0)
                       * self.prices.lambda_gb_second)
        storage_rate = (storage_nodes
                        * self.prices.ec2_r5_2xlarge_hour / 3600.0)
        return lambda_rate + storage_rate

    def crucial_experiment(self, label: str, total_seconds: float,
                           iteration_seconds: float, functions: int,
                           memory_mb: int, storage_nodes: int = 1,
                           invocations: int | None = None) -> ExperimentCost:
        rate = self.crucial_rate_per_second(functions, memory_mb,
                                            storage_nodes)
        requests = (invocations if invocations is not None
                    else functions) * self.prices.lambda_per_request
        return ExperimentCost(
            label=label,
            total_seconds=total_seconds,
            total_dollars=rate * total_seconds + requests,
            iteration_seconds=iteration_seconds,
            iteration_dollars=rate * iteration_seconds)

    # -- Spark on EMR -----------------------------------------------------------------

    def spark_rate_per_second(self, worker_nodes: int = 10,
                              master_nodes: int = 1) -> float:
        """$/s of the EMR cluster: EC2 + EMR surcharge per node.

        11 m5.2xlarge nodes cost ~0.15 cents/s (Section 6.2.3).
        """
        nodes = worker_nodes + master_nodes
        per_node_hour = (self.prices.ec2_m5_2xlarge_hour
                         + self.prices.emr_m5_2xlarge_hour)
        return nodes * per_node_hour / 3600.0

    def spark_experiment(self, label: str, total_seconds: float,
                         iteration_seconds: float,
                         worker_nodes: int = 10) -> ExperimentCost:
        rate = self.spark_rate_per_second(worker_nodes)
        return ExperimentCost(
            label=label,
            total_seconds=total_seconds,
            total_dollars=rate * total_seconds,
            iteration_seconds=iteration_seconds,
            iteration_dollars=rate * iteration_seconds)
