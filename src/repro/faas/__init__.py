"""The simulated Function-as-a-Service platform (AWS Lambda stand-in)."""

from repro.faas.platform import FaasPlatform, FunctionContext

__all__ = ["FaasPlatform", "FunctionContext"]
