"""An AWS-Lambda-like FaaS platform.

Models the properties Section 2.1 calls out:

* **containers** — invocations run in per-function containers; a warm
  (recently used) container starts in milliseconds, a cold one takes
  1-2 seconds to provision (Section 6.3.3);
* **resource limits** — memory cap, 15-minute duration limit, and an
  account-wide concurrency limit;
* **CPU scaling** — CPU share is proportional to configured memory;
  1792 MB buys one full vCPU (footnote 7), so ``ctx.compute(x)`` takes
  ``x / cpu_share`` wall seconds;
* **failure semantics** — a function can fail for injected reasons
  (including the chaos layer killing its container mid-handler); the
  platform reports the error to the synchronous invoker, which may
  retry with the exact same input (Section 4.4);
* **billing** — per-invocation duration is metered and rounded up to
  100 ms blocks (the paper-era Lambda billing granularity; AWS moved
  to 1 ms rounding only in 2020) for the Table 3 cost model.

Handlers execute in the invoking simulated thread (one per
CloudThread), which is exactly Crucial's synchronous
``RequestResponse`` invocation mode.
"""

from __future__ import annotations

import itertools
import math
import sys
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.config import Config, DEFAULT_CONFIG
from repro.errors import (
    ContainerKilledError,
    FaasError,
    FunctionTimeoutError,
    InvocationError,
    ServiceUnavailableError,
    ThrottlingError,
)
from repro.net.network import Network, ship
from repro.simulation.kernel import Kernel, current_thread


@dataclass
class _Container:
    name: str
    function: str
    created_at: float
    last_used: float
    in_use: bool = False
    invocations: int = 0
    #: Set when the platform reclaims the container (chaos kill).
    dead: bool = False


@dataclass
class _Function:
    name: str
    handler: Callable[["FunctionContext", Any], Any]
    memory_mb: int
    timeout: float
    containers: list[_Container] = field(default_factory=list)
    #: injected failure probability for the next invocations
    failure_rate: float = 0.0
    failure_kind: str = "before"  # "before" | "after" the handler runs


class FunctionContext:
    """Execution context handed to a function handler."""

    def __init__(self, platform: "FaasPlatform", function: _Function,
                 container: _Container, deadline: float):
        self.platform = platform
        self.function_name = function.name
        self.memory_mb = function.memory_mb
        self.container = container
        self.deadline = deadline
        #: 1792 MB buys a full vCPU; 3008 MB ~ 1.68 vCPUs.
        self.cpu_share = function.memory_mb / \
            platform.config.faas_limits.full_vcpu_memory_mb

    @property
    def endpoint(self) -> str:
        """Network identity of the executing container."""
        return self.container.name

    def remaining_time(self) -> float:
        return max(0.0, self.deadline - self.platform.kernel.now)

    def compute(self, cpu_seconds: float) -> None:
        """Burn ``cpu_seconds`` of single-vCPU work at this memory's
        CPU share."""
        if cpu_seconds > 0:
            current_thread().sleep(cpu_seconds / self.cpu_share)
        if self.container.dead:
            raise ContainerKilledError(
                f"{self.function_name}: container {self.container.name} "
                "was killed while executing")


@dataclass
class InvocationRecord:
    """Billing/telemetry record of one invocation."""

    function: str
    container: str
    start: float
    end: float
    memory_mb: int
    cold_start: bool
    error: str | None

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def billed_duration(self) -> float:
        """AWS bills at 1 ms granularity (100 ms before 2020; we use
        the paper-era 100 ms rounding)."""
        return math.ceil(self.duration / 0.1) * 0.1 if self.duration > 0 else 0.1


class FaasPlatform:
    """Deploy and synchronously invoke cloud functions."""

    def __init__(self, kernel: Kernel, network: Network,
                 config: Config = DEFAULT_CONFIG, name: str = "lambda"):
        self.kernel = kernel
        self.network = network
        self.config = config
        self.name = name
        self._functions: dict[str, _Function] = {}
        self._rng = kernel.rng.stream(f"faas.{name}")
        self._container_ids = itertools.count()
        self._active = 0
        self.records: list[InvocationRecord] = []
        self._reclaim_hooks: list[Callable[[str], None]] = []

    def on_container_reclaim(self, hook: Callable[[str], None]) -> None:
        """Call ``hook(container_name)`` whenever a container leaves
        the warm pool (keep-alive expiry or a chaos kill).

        Per-container state elsewhere in the system — notably the DSO
        layer's leased read caches — subscribes here so its lifetime
        equals the container's: a warm container keeps its working
        set, a reclaimed one is forgotten everywhere.
        """
        self._reclaim_hooks.append(hook)

    def _reclaimed(self, container: _Container) -> None:
        for hook in self._reclaim_hooks:
            hook(container.name)

    # -- management ---------------------------------------------------------------

    def deploy(self, function_name: str,
               handler: Callable[[FunctionContext, Any], Any],
               memory_mb: int = 1792, timeout: float | None = None) -> None:
        """Register a function (name, code, memory, time limit)."""
        limits = self.config.faas_limits
        if function_name in self._functions:
            raise ValueError(f"function {function_name!r} already deployed")
        if memory_mb <= 0 or memory_mb > limits.max_memory_mb:
            raise ValueError(
                f"memory {memory_mb} MB outside (0, {limits.max_memory_mb}]")
        if timeout is None:
            timeout = limits.max_duration
        if timeout <= 0 or timeout > limits.max_duration:
            raise ValueError(
                f"timeout {timeout}s outside (0, {limits.max_duration}]")
        self._functions[function_name] = _Function(
            function_name, handler, memory_mb, timeout)

    def inject_failures(self, function_name: str, rate: float,
                        kind: str = "before") -> None:
        """Make invocations fail with probability ``rate``.

        ``kind="before"`` fails before the handler runs (clean retry);
        ``kind="after"`` fails after side effects happened, which is
        the case that requires idempotent application code.
        """
        function = self._function(function_name)
        if kind not in ("before", "after"):
            raise ValueError(f"unknown failure kind {kind!r}")
        function.failure_rate = rate
        function.failure_kind = kind

    def pre_warm(self, function_name: str, count: int) -> None:
        """Provision ``count`` warm containers (the global barrier the
        paper uses to exclude cold starts from measurements)."""
        function = self._function(function_name)
        while len(function.containers) < count:
            self._new_container(function)

    def _function(self, name: str) -> _Function:
        function = self._functions.get(name)
        if function is None:
            raise ServiceUnavailableError(f"no function {name!r} deployed")
        return function

    # -- invocation ------------------------------------------------------------------

    def invoke(self, invoker: str, function_name: str, payload: Any = None) -> Any:
        """Synchronous (RequestResponse) invocation.

        Blocks the calling simulated thread until the function returns.
        Application errors surface as :class:`InvocationError`; the
        platform does NOT retry synchronous invocations (retry policy
        lives in the client, Section 4.4).
        """
        function = self._function(function_name)
        limits = self.config.faas_limits
        timings = self.config.faas_timings
        tracer = self.kernel.tracer
        with tracer.span(f"faas.invoke:{function_name}", kind="client",
                         endpoint=invoker,
                         attributes={"memory_mb": function.memory_mb}
                         ) as ispan:
            if self._active >= limits.max_concurrency:
                raise ThrottlingError(
                    f"concurrency limit {limits.max_concurrency} reached")
            self._active += 1
            try:
                payload = ship(payload)
                container, cold = self._acquire_container(function)
                ispan.set("container", container.name)
                ispan.set("cold_start", cold)
                start = self.kernel.now
                error: BaseException | None = None
                result: Any = None
                completed = False
                hspan = None
                try:
                    with tracer.span("faas.startup", kind="server",
                                     endpoint=container.name,
                                     attributes={"cold_start": cold}):
                        startup = (timings.cold_start if cold
                                   else timings.warm_start).sample(self._rng)
                        current_thread().sleep(startup)
                    start = self.kernel.now
                    deadline = start + function.timeout
                    ctx = FunctionContext(self, function, container, deadline)
                    fail_roll = (self._rng.random() < function.failure_rate
                                 if function.failure_rate > 0 else False)
                    hspan = tracer.start_span(
                        "faas.handler", kind="server",
                        endpoint=container.name,
                        attributes={"function": function_name})
                    if fail_roll and function.failure_kind == "before":
                        error = InvocationError(
                            f"{function_name}: container {container.name} "
                            "failed before execution")
                    else:
                        try:
                            result = function.handler(ctx, payload)
                        except ContainerKilledError as exc:
                            error = exc
                        except Exception as exc:  # noqa: BLE001 - reported to invoker
                            error = InvocationError(
                                f"{function_name}: handler raised {exc!r}",
                                cause=exc)
                        if error is None and fail_roll \
                                and function.failure_kind == "after":
                            error = InvocationError(
                                f"{function_name}: container {container.name} "
                                "failed after execution")
                    if error is None and container.dead:
                        error = ContainerKilledError(
                            f"{function_name}: container {container.name} "
                            "was killed mid-invocation")
                    if error is None and self.kernel.now - start > function.timeout:
                        error = FunctionTimeoutError(
                            f"{function_name}: exceeded {function.timeout}s limit")
                    tracer.end_span(
                        hspan, error=type(error).__name__ if error else None)
                    completed = True
                finally:
                    # The container is released and the invocation recorded
                    # even when a BaseException (kernel shutdown, a
                    # simulated crash unwinding through a DSO call)
                    # escapes; otherwise the container would be stranded
                    # ``in_use`` forever and billing would silently drop
                    # the aborted run.
                    if hspan is not None and hspan.open:
                        exc_type = sys.exc_info()[0]
                        tracer.end_span(
                            hspan, error=(exc_type.__name__ if exc_type
                                          else "Aborted"))
                    self._release_container(container)
                    if completed:
                        error_name = type(error).__name__ if error else None
                    else:
                        exc_type = sys.exc_info()[0]
                        error_name = exc_type.__name__ if exc_type else "Aborted"
                    record = InvocationRecord(
                        function=function_name, container=container.name,
                        start=start, end=self.kernel.now,
                        memory_mb=function.memory_mb, cold_start=cold,
                        error=error_name)
                    self.records.append(record)
                    ispan.set("billed_duration", record.billed_duration)
                with tracer.span("faas.response", kind="client",
                                 endpoint=invoker):
                    current_thread().sleep(timings.response.sample(self._rng))
                if error is not None:
                    raise error
                return ship(result)
            finally:
                self._active -= 1

    def invoke_async(self, invoker: str, function_name: str,
                     payload: Any = None, max_retries: int = 2,
                     dead_letter_queue: tuple | None = None):
        """Asynchronous (Event) invocation.

        Returns immediately with a handle; the platform executes the
        function in the background and — unlike the synchronous path —
        *automatically retries* failed events up to ``max_retries``
        times (AWS retries async invocations twice), exactly the
        behaviour Section 2.1 warns designers to account for.  Events
        that still fail are delivered to the dead-letter queue, a
        ``(QueueService, queue_name)`` pair, if one is configured.
        """
        function = self._function(function_name)  # validate up front
        payload = ship(payload)

        def attempt_loop():
            last_error: BaseException | None = None
            attempts = 0
            for attempt in range(max_retries + 1):
                attempts = attempt + 1
                try:
                    return self.invoke(invoker, function.name, payload)
                except FaasError as exc:
                    last_error = exc
                    if attempt < max_retries:
                        # AWS waits 1 min / 2 min between async retries;
                        # scaled down to keep simulations brisk.
                        current_thread().sleep(2.0 * (attempt + 1))
            if dead_letter_queue is not None:
                queue_service, queue_name = dead_letter_queue
                queue_service.deliver(queue_name, {
                    "function": function.name,
                    "payload": payload,
                    "error": str(last_error),
                    "attempts": attempts,
                })
                return None
            raise last_error

        return self.kernel.spawn(
            attempt_loop, name=f"async-{function.name}")

    # -- containers --------------------------------------------------------------------

    def _acquire_container(self, function: _Function) -> tuple[_Container, bool]:
        keep_alive = self.config.faas_timings.keep_alive
        now = self.kernel.now
        # Expire stale containers lazily, notifying reclaim subscribers
        # for each one that leaves the pool.
        kept: list[_Container] = []
        for c in function.containers:
            if c.in_use or now - c.last_used <= keep_alive:
                kept.append(c)
            else:
                self._reclaimed(c)
        function.containers = kept
        for container in function.containers:
            if not container.in_use:
                container.in_use = True
                container.invocations += 1
                return container, False
        container = self._new_container(function)
        container.in_use = True
        container.invocations += 1
        return container, True

    def _new_container(self, function: _Function) -> _Container:
        cid = next(self._container_ids)
        container = _Container(
            name=f"{self.name}.{function.name}.{cid}",
            function=function.name,
            created_at=self.kernel.now,
            last_used=self.kernel.now)
        self.network.ensure_endpoint(container.name)
        function.containers.append(container)
        return container

    def _release_container(self, container: _Container) -> None:
        container.in_use = False
        container.last_used = self.kernel.now

    def kill_container(self, container_name: str) -> bool:
        """Reclaim a container, idle or mid-invocation (chaos hook).

        The container leaves the warm pool immediately; an in-flight
        invocation on it fails with :class:`ContainerKilledError` (at
        its next ``ctx.compute`` at the latest).  Returns ``False`` if
        no live container has that name.
        """
        for function in self._functions.values():
            for container in function.containers:
                if container.name == container_name:
                    container.dead = True
                    function.containers.remove(container)
                    self._reclaimed(container)
                    return True
        return False

    def reclaim_idle(self, function_name: str, keep: int = 0) -> int:
        """Reclaim idle warm containers down to ``keep`` of them.

        The scale-*in* counterpart of :meth:`pre_warm`: an elastic
        controller that stops paying for warm capacity it no longer
        needs.  Only idle containers are touched — in-flight
        invocations always finish — and each reclaimed container fires
        the same :meth:`on_container_reclaim` hooks as a keep-alive
        expiry, so dependent state (leased read caches) is dropped
        consistently.  Returns the number reclaimed.
        """
        function = self._function(function_name)
        idle = [c for c in function.containers
                if not c.in_use and not c.dead]
        reclaimed = 0
        # Newest first: the oldest warm containers keep their working
        # sets (mirrors provider behaviour of trimming fresh capacity).
        for container in reversed(idle):
            if len(idle) - reclaimed <= keep:
                break
            container.dead = True
            function.containers.remove(container)
            self._reclaimed(container)
            reclaimed += 1
        return reclaimed

    def busy_containers(self, function_name: str) -> list[str]:
        """Names of containers currently executing an invocation."""
        function = self._function(function_name)
        return [c.name for c in function.containers if c.in_use]

    def warm_container_count(self, function_name: str) -> int:
        """Provisioned containers ready to serve (idle, not dead)."""
        function = self._function(function_name)
        return sum(1 for c in function.containers
                   if not c.in_use and not c.dead)

    # -- telemetry ----------------------------------------------------------------------

    def billed_gb_seconds(self, function_name: str | None = None) -> float:
        """Total GB-seconds billed (for the Table 3 cost model)."""
        total = 0.0
        for record in self.records:
            if function_name is not None and record.function != function_name:
                continue
            total += record.billed_duration * (record.memory_mb / 1024.0)
        return total

    def invocation_count(self, function_name: str | None = None) -> int:
        return sum(1 for r in self.records
                   if function_name is None or r.function == function_name)
