"""repro — a reproduction of Crucial (Middleware '19).

"On the FaaS Track: Building Stateful Distributed Applications with
Serverless Architectures": a system for programming highly-concurrent
stateful applications on FaaS, built on a distributed shared object
(DSO) layer over a low-latency in-memory store.

This package re-implements the complete system — and every substrate
it depends on (FaaS platform, in-memory data grid, object store,
queues, total-order multicast, a mini-Spark baseline) — on top of a
deterministic discrete-event simulation, so the paper's experiments
run on a laptop in seconds.  See DESIGN.md for the experiment index.

Quickstart::

    from repro import CrucialEnvironment, CloudThread, AtomicLong

    class Work:
        def __init__(self):
            self.counter = AtomicLong("counter")
        def run(self):
            self.counter.add_and_get(1)

    with CrucialEnvironment(dso_nodes=1) as env:
        def main():
            threads = [CloudThread(Work()) for _ in range(4)]
            for t in threads: t.start()
            for t in threads: t.join()
            return AtomicLong("counter").get()
        print(env.run(main))  # -> 4

**This module is the public API.**  Everything in Table 1 of the paper
— plus the observability entry points (``Tracer``, ``trace_enabled``
and the exporters in :mod:`repro.trace`) and the correctness tooling
(``ExplorationRunner`` and the schedulers of :mod:`repro.explore`,
``LinearizabilityChecker``/``HistoryRecorder``) and the storage layer
(the ``StorageBackend`` protocol, the priced tiers, ``TieredStore``
and the ``CostLedger``/``cost_summary`` accounting) and the serving
stack (the open-loop ``OpenLoopGenerator``/``TenantSpec``/
``RateProfile`` workloads, the shared ``ZipfSampler``, and the
elastic ``Autoscaler``) and the coordination service (the
ZooKeeper-like ``KeeperService`` with its sessions, recipes and the
znode/watch-order checkers) — is re-exported
here, and
only names listed in ``__all__`` are covered by compatibility
guarantees.  The ``repro.core.*``, ``repro.simulation.*``,
``repro.faas.*``, ``repro.dso.*`` ... submodules are internal:
import from ``repro`` (or ``repro.trace`` for the exporters), not
from the implementation packages.
"""

from repro.config import Config, DEFAULT_CONFIG
from repro.coordination import (
    ConfigWatcher,
    KeeperBarrier,
    KeeperSemaphore,
    KeeperService,
    KeeperSession,
    LeaderElector,
    WatchEvent,
)
from repro.core import (
    AtomicBoolean,
    AtomicByteArray,
    AtomicInt,
    AtomicLong,
    AtomicReference,
    CloudThread,
    CountDownLatch,
    CrucialEnvironment,
    CyclicBarrier,
    Future,
    IdempotentStep,
    RetryPolicy,
    Semaphore,
    SharedField,
    SharedList,
    SharedMap,
    current_environment,
    dso_costs,
    once,
    run_all,
    shared,
)
from repro.core.runtime import RUNNER_FUNCTION, compute, current_location
from repro.dso.cache import readonly
from repro.dso.pipeline import DsoFuture
from repro.dso.txn import Txn, TxnCell, unreplicated
from repro.errors import (
    BadVersionError,
    KeeperError,
    NoNodeError,
    NodeExistsError,
    NotEmptyError,
    SessionExpiredError,
    TxnAbortedError,
    TxnError,
    TxnFracturedReadError,
    TxnPrepareLostError,
)
from repro.explore import (
    ExplorationReport,
    ExplorationRunner,
    FifoScheduler,
    PctScheduler,
    RandomScheduler,
    ScheduleTrace,
)
from repro.linearizability import (
    AtomicityViolation,
    HistoryRecorder,
    LinearizabilityChecker,
    Operation,
    TxnCommitRecord,
    TxnReadRecord,
    WatchViolation,
    ZnodeModel,
    final_state_violations,
    find_fractured_reads,
    find_watch_violations,
    watch_order_invariant,
)
from repro.metrics import BackendBill, CostLedger, cost_summary
from repro.storage import (
    BackendProfile,
    BlockStore,
    DataGrid,
    MemoryStore,
    ObjectStore,
    RedisCluster,
    StorageBackend,
    TieredStore,
)
from repro.trace import (
    Span,
    TraceContext,
    Tracer,
    chrome_trace_json,
    critical_path_summary,
    span_tree,
    trace_enabled,
    write_chrome_trace,
)
from repro.workload import (
    Autoscaler,
    AutoscalerPolicy,
    NodeRentMeter,
    OpenLoopGenerator,
    RateProfile,
    ScaleEvent,
    ServingMetrics,
    TenantSpec,
    ZipfSampler,
)

__version__ = "1.6.0"

__all__ = [
    "Config",
    "DEFAULT_CONFIG",
    "CrucialEnvironment",
    "current_environment",
    "current_location",
    "compute",
    "RUNNER_FUNCTION",
    "CloudThread",
    "RetryPolicy",
    "run_all",
    "IdempotentStep",
    "once",
    "shared",
    "SharedField",
    "dso_costs",
    "readonly",
    "DsoFuture",
    "Txn",
    "TxnCell",
    "unreplicated",
    "TxnError",
    "TxnAbortedError",
    "TxnFracturedReadError",
    "TxnPrepareLostError",
    "AtomicInt",
    "AtomicLong",
    "AtomicBoolean",
    "AtomicByteArray",
    "AtomicReference",
    "SharedList",
    "SharedMap",
    "CyclicBarrier",
    "Semaphore",
    "Future",
    "CountDownLatch",
    "ExplorationRunner",
    "ExplorationReport",
    "RandomScheduler",
    "PctScheduler",
    "FifoScheduler",
    "ScheduleTrace",
    "HistoryRecorder",
    "LinearizabilityChecker",
    "Operation",
    "AtomicityViolation",
    "TxnCommitRecord",
    "TxnReadRecord",
    "find_fractured_reads",
    "final_state_violations",
    "KeeperService",
    "KeeperSession",
    "WatchEvent",
    "KeeperBarrier",
    "KeeperSemaphore",
    "LeaderElector",
    "ConfigWatcher",
    "KeeperError",
    "NoNodeError",
    "NodeExistsError",
    "BadVersionError",
    "NotEmptyError",
    "SessionExpiredError",
    "ZnodeModel",
    "WatchViolation",
    "find_watch_violations",
    "watch_order_invariant",
    "StorageBackend",
    "BackendProfile",
    "ObjectStore",
    "BlockStore",
    "MemoryStore",
    "TieredStore",
    "DataGrid",
    "RedisCluster",
    "CostLedger",
    "BackendBill",
    "cost_summary",
    "Tracer",
    "Span",
    "TraceContext",
    "trace_enabled",
    "span_tree",
    "critical_path_summary",
    "chrome_trace_json",
    "write_chrome_trace",
    "ZipfSampler",
    "RateProfile",
    "TenantSpec",
    "ServingMetrics",
    "OpenLoopGenerator",
    "Autoscaler",
    "AutoscalerPolicy",
    "NodeRentMeter",
    "ScaleEvent",
    "__version__",
]
