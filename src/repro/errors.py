"""Exception hierarchy for the repro library.

Exceptions are grouped by layer.  ``SimulationError`` and its
subclasses concern the discrete-event substrate itself; ``CloudError``
and its subclasses model failures of the simulated cloud services
(network, storage, FaaS, DSO), which application code may legitimately
catch and handle — exactly as the paper's applications handle AWS
errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


# ---------------------------------------------------------------------------
# Simulation substrate
# ---------------------------------------------------------------------------


class SimulationError(ReproError):
    """Base class for errors of the discrete-event kernel."""


class DeadlockError(SimulationError):
    """The event queue drained while simulated threads remain blocked."""

    def __init__(self, blocked_names: list[str]):
        self.blocked_names = list(blocked_names)
        super().__init__(
            "simulation deadlock: no pending events but %d thread(s) "
            "blocked: %s" % (len(blocked_names), ", ".join(blocked_names))
        )


class SimShutdown(BaseException):
    """Raised inside a simulated thread when the kernel tears it down.

    Derives from ``BaseException`` so that application-level
    ``except Exception`` blocks cannot swallow it.
    """


class NotInSimThread(SimulationError):
    """A blocking simulation primitive was used outside a SimThread."""


class SimTimeoutError(SimulationError, TimeoutError):
    """A wait with a timeout elapsed before the condition was met.

    Also a :class:`TimeoutError`, so callers can catch the built-in.
    """


# ---------------------------------------------------------------------------
# Simulated cloud
# ---------------------------------------------------------------------------


class CloudError(ReproError):
    """Base class for simulated cloud-service failures."""


class NetworkError(CloudError):
    """The destination endpoint is unreachable (crash or partition)."""


class RequestTimeout(CloudError):
    """An RPC did not complete within its timeout."""


class NodeCrashedError(CloudError):
    """The server node crashed while serving (or before serving) a call."""


class ServiceUnavailableError(CloudError):
    """A cloud service refused a request (throttling, shutdown...)."""


class NoSuchKeyError(CloudError):
    """An object-store or KV key does not exist."""


class NoSuchObjectError(CloudError):
    """A DSO reference does not resolve to a live object."""


class ObjectLostError(CloudError):
    """An ephemeral shared object was lost in a storage-node failure."""


class SessionReplayError(CloudError):
    """A session retransmitted a sequence number the server already
    truncated (or saw out of order).

    Correct clients never trigger this: a session issues invocations
    sequentially and only retransmits its newest, unacknowledged one.
    Surfacing the condition loudly (instead of silently re-executing)
    is what keeps the exactly-once contract auditable.
    """


class SerializationError(CloudError):
    """A value shipped between nodes is not serializable."""


class TxnError(CloudError):
    """Base class for multi-object transaction failures
    (:mod:`repro.dso.txn`)."""


class TxnAbortedError(TxnError):
    """The transaction was aborted (explicitly, or by the commit
    machinery after an unrecoverable failure); none of its buffered
    writes are visible."""


class TxnFracturedReadError(TxnError):
    """No atomic-visibility snapshot could be assembled for a read.

    Raised after the read-set validation loop exhausts its retry
    budget without finding a version of the key that is consistent
    with every version already observed by this transaction.  The
    transaction must abort; surfacing the condition (instead of
    returning fractured data) is the read-atomic contract.
    """


class TxnPrepareLostError(TxnError):
    """A commit arrived at a primary that holds no prepared entry for
    the transaction.

    Prepared (pre-commit) versions live only at the primary that
    accepted them; a crash-failover promotes a backup that never saw
    the prepare.  The commit fence detects this *before* installing
    anything, so the client can re-prepare at the new primary and
    retry — without the fence the write would be silently dropped,
    leaving a fractured (half-committed) transaction.
    """


# ---------------------------------------------------------------------------
# FaaS layer
# ---------------------------------------------------------------------------


class FaasError(CloudError):
    """Base class for simulated FaaS-platform errors."""


class FunctionTimeoutError(FaasError):
    """The function exceeded the platform's execution time limit."""


class OutOfMemoryError(FaasError):
    """The function exceeded its configured memory."""


class InvocationError(FaasError):
    """The function raised an application exception.

    The original exception is re-raised at the invoker wrapped in this
    type, mirroring how AWS Lambda reports handled errors in the
    response payload.
    """

    def __init__(self, message: str, cause: BaseException | None = None):
        super().__init__(message)
        self.cause = cause


class ThrottlingError(FaasError):
    """The platform's concurrency limit was exceeded."""


class ContainerKilledError(FaasError):
    """The container was reclaimed by the platform mid-invocation.

    Real FaaS providers kill workers at will (host maintenance, spot
    reclamation); the invoker sees the invocation fail and may retry
    with the identical payload — the Section 4.4 failure model the
    chaos layer injects on demand.
    """


class RetriesExhaustedError(FaasError):
    """A cloud thread failed more times than its retry policy allows."""


# ---------------------------------------------------------------------------
# Concurrency objects
# ---------------------------------------------------------------------------


class BrokenBarrierError(ReproError):
    """The barrier was reset or a party failed while others waited."""


class FutureCancelledError(ReproError):
    """The future's value was awaited after cancellation."""


# ---------------------------------------------------------------------------
# Coordination service (repro.coordination.keeper)
# ---------------------------------------------------------------------------


class KeeperError(ReproError):
    """Base class for znode-tree failures of the coordination service."""


class NoNodeError(KeeperError):
    """The znode (or its parent) does not exist."""


class NodeExistsError(KeeperError):
    """A znode already exists at the requested path."""


class BadVersionError(KeeperError):
    """The expected-version guard on a write did not match."""


class NotEmptyError(KeeperError):
    """A znode with children cannot be deleted."""


class SessionExpiredError(KeeperError):
    """The keeper session backing this call is gone (lease lapsed or
    the session was closed); its ephemeral nodes have been removed."""
