"""Command-line entry point: run any experiment by name.

Usage::

    python -m repro list
    python -m repro table2
    python -m repro fig5 --full
    python -m repro all

``--full`` runs the paper-scale configuration where a reduced default
exists.  Reports print to stdout (the same text the benchmarks
archive under ``benchmarks/out/``).
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.harness import (
    ablation_shipping,
    cache_readpath,
    fig2a_throughput,
    fig2b_montecarlo,
    fig3_scaleup,
    fig4_logreg,
    fig5_kmeans,
    fig6_mapsync,
    fig7a_barrier,
    fig7b_breakdown,
    fig7c_santa,
    fig8_persistence,
    keeper,
    kernel_speed,
    serving,
    table2_latency,
    table3_costs,
    table4_loc,
    tiering_pareto,
    txn_atomicity,
)

EXPERIMENTS = {
    "table2": (table2_latency,
               {"default": {"ops": 300}, "full": {"ops": 2000}}),
    "fig2a": (fig2a_throughput,
              {"default": {"window": 0.1}, "full": {"window": 0.2}}),
    "fig2b": (fig2b_montecarlo,
              {"default": {"thread_counts": (1, 50, 200, 800)},
               "full": {"thread_counts": (1, 50, 100, 200, 400, 800)}}),
    "fig3": (fig3_scaleup,
             {"default": {"thread_counts": (1, 16, 160, 320)},
              "full": {"thread_counts": (1, 8, 16, 80, 160, 320)}}),
    "fig4": (fig4_logreg, {"default": {}, "full": {}}),
    "fig5": (fig5_kmeans,
             {"default": {"ks": (25, 100, 200)},
              "full": {"ks": (25, 50, 100, 200)}}),
    "table3": (table3_costs, {"default": {}, "full": {}}),
    "fig6": (fig6_mapsync,
             {"default": {"repetitions": 2}, "full": {"repetitions": 3}}),
    "fig7a": (fig7a_barrier,
              {"default": {"thread_counts": (4, 80, 320)},
               "full": {"thread_counts": (4, 20, 80, 320),
                        "crucial_only": (1800,)}}),
    "fig7b": (fig7b_breakdown, {"default": {}, "full": {}}),
    "fig7c": (fig7c_santa, {"default": {}, "full": {}}),
    "fig8": (fig8_persistence,
             {"default": {"duration": 120.0}, "full": {"duration": 360.0}}),
    "table4": (table4_loc, {"default": {}, "full": {}}),
    "ablation": (ablation_shipping,
                 {"default": {"worker_counts": (8, 20, 40)},
                  "full": {"worker_counts": (8, 20, 40, 80)}}),
    "cache": (cache_readpath,
              {"default": {"ops": 300}, "full": {"ops": 2000}}),
    "kernel": (kernel_speed,
               {"default": {"events": 40_000, "ops": 400},
                "full": {"events": 200_000, "ops": 2_000}}),
    "tiering": (tiering_pareto,
                {"default": {"reads": 600}, "full": {"reads": 2400}}),
    "txn": (txn_atomicity,
            {"default": {"reps": 20, "clients": 4},
             "full": {"reps": 50, "clients": 8}}),
    "serving": (serving,
                {"default": {},
                 "full": {"duration": 56.0, "peak_rate": 400.0}}),
    "keeper": (keeper,
               {"default": {},
                "full": {"watchers": 300, "failovers": 3,
                         "updates": 4}}),
}


def run_experiment(name: str, full: bool) -> None:
    module, scales = EXPERIMENTS[name]
    kwargs = scales["full" if full else "default"]
    started = time.time()
    result = module.run(**kwargs)
    elapsed = time.time() - started
    print(module.report(result))
    print(f"[{name}: completed in {elapsed:.1f}s of real time]\n")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduce the Crucial paper's experiments.")
    parser.add_argument("experiment",
                        choices=sorted(EXPERIMENTS) + ["list", "all"],
                        help="experiment to run ('list' to enumerate, "
                             "'all' for everything)")
    parser.add_argument("--full", action="store_true",
                        help="paper-scale configuration")
    args = parser.parse_args(argv)
    if args.experiment == "list":
        for name, (module, _scales) in sorted(EXPERIMENTS.items()):
            summary = (module.__doc__ or "").strip().splitlines()[0]
            print(f"{name:10s} {summary}")
        return 0
    names = (sorted(EXPERIMENTS) if args.experiment == "all"
             else [args.experiment])
    for name in names:
        run_experiment(name, args.full)
    return 0


if __name__ == "__main__":
    sys.exit(main())
