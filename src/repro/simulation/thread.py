"""Simulated threads: real Python threads driven by the kernel.

A :class:`SimThread` executes ordinary blocking Python code.  Whenever
it calls a simulation primitive (sleep, event wait, lock acquire...),
it hands control back to the kernel and parks on a real
``threading.Event`` until the kernel wakes it at the right virtual
time.  Exactly one simulated thread runs at any instant.
"""

from __future__ import annotations

import threading
from typing import Any, Callable

from repro.errors import SimShutdown, SimulationError
from repro.simulation import kernel as _kernel_mod

# Sentinel wake values used by primitives.
TIMEOUT = object()
INTERRUPT = object()


class SimThread:
    """A simulated thread of execution.

    Mirrors the essentials of ``threading.Thread``: ``start``, ``join``,
    ``name``, ``daemon`` — plus ``result()`` to retrieve the target's
    return value (re-raising its exception, if any).
    """

    _ids = iter(range(1, 1 << 62))

    def __init__(self, kernel, target: Callable[..., Any], args=(),
                 kwargs=None, name: str | None = None, daemon: bool = False):
        self.kernel = kernel
        self.target = target
        self.args = args
        self.kwargs = kwargs or {}
        self.tid = next(SimThread._ids)
        self.name = name or f"simthread-{self.tid}"
        self.daemon = daemon
        self.done = False
        self.started = False
        self.exception: BaseException | None = None
        self._result: Any = None
        self._observed = False  # result()/join() was called
        self._resume = threading.Event()
        self._pending: set = set()  # outstanding Wakeups
        self._wake_value: Any = None
        self._shutdown = False
        self._joiners: list[SimThread] = []
        self._real: threading.Thread | None = None

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> "SimThread":
        if self.started:
            raise SimulationError(f"{self.name} already started")
        self.started = True
        self.kernel._register(self)
        self._real = threading.Thread(
            target=self._bootstrap, name=f"sim:{self.name}", daemon=True)
        self._real.start()
        self.kernel.schedule_wakeup(self, 0.0, recycle=True)
        return self

    def _bootstrap(self) -> None:
        _kernel_mod.set_context(self.kernel, self)
        self._resume.wait()
        self._resume.clear()
        try:
            if not self._shutdown:
                self._result = self.target(*self.args, **self.kwargs)
        except SimShutdown:
            pass
        except BaseException as exc:  # noqa: BLE001 - reported via result()
            self.exception = exc
        finally:
            self.done = True
            self._cancel_pending()
            if not self._shutdown:
                for joiner in self._joiners:
                    self.kernel.schedule_wakeup(joiner, 0.0, self,
                                                recycle=True)
                self._joiners.clear()
            self.kernel._unregister(self)
            if self.kernel.tracer.enabled:
                self.kernel.tracer.on_thread_exit(self)
            # Hand control back to the kernel for the last time.
            self.kernel._control.set()

    # -- suspension protocol -------------------------------------------------

    def _suspend(self) -> Any:
        """Park until the kernel delivers the next wakeup.

        Must be called by the thread itself, after having scheduled (or
        registered for) at least one wakeup.  Returns the wakeup value.
        """
        if self._shutdown:
            raise SimShutdown()
        self.kernel._control.set()
        self._resume.wait()
        self._resume.clear()
        if self._shutdown:
            raise SimShutdown()
        value = self._wake_value
        self._wake_value = None
        return value

    def _cancel_pending(self) -> None:
        pending = self._pending
        if not pending:
            return
        for wakeup in pending:
            wakeup.cancelled = True
        self.kernel._cancelled += len(pending)
        pending.clear()

    # -- blocking API ----------------------------------------------------------

    def sleep(self, duration: float) -> None:
        """Advance this thread's virtual time by ``duration`` seconds."""
        self.kernel.schedule_wakeup(self, duration, recycle=True)
        self._suspend()
        self._cancel_pending()

    def join(self, timeout: float | None = None) -> None:
        """Block until this thread finishes.

        Re-raises the target's exception in the joiner — the behaviour
        of Crucial's CloudThread, where remote failures propagate to
        the caller — unlike ``threading.Thread.join``.
        """
        caller = _kernel_mod.current_thread()
        if caller is self:
            raise SimulationError("a thread cannot join itself")
        if not self.done:
            self._joiners.append(caller)
            handle = None
            if timeout is not None:
                handle = self.kernel.schedule_wakeup(caller, timeout, TIMEOUT)
            value = caller._suspend()
            caller._cancel_pending()
            if value is TIMEOUT:
                if caller in self._joiners:
                    self._joiners.remove(caller)
                from repro.errors import SimTimeoutError
                raise SimTimeoutError(f"join({self.name}) timed out")
            if handle is not None:
                handle.cancel()
        self._observed = True
        if self.exception is not None:
            raise self.exception

    def result(self) -> Any:
        """Return the target's return value; re-raise its exception."""
        if not self.done:
            raise SimulationError(f"{self.name} has not finished")
        self._observed = True
        if self.exception is not None:
            raise self.exception
        return self._result


def sleep(duration: float) -> None:
    """Suspend the calling simulated thread for ``duration`` seconds."""
    _kernel_mod.current_thread().sleep(duration)


def now() -> float:
    """Virtual time seen by the calling simulated thread."""
    return _kernel_mod.current_kernel().now


def spawn(target: Callable[..., Any], *args, name: str | None = None,
          daemon: bool = False, **kwargs) -> SimThread:
    """Spawn a sibling simulated thread from inside simulated code."""
    return _kernel_mod.current_kernel().spawn(
        target, *args, name=name, daemon=daemon, **kwargs)
