"""Capacity-limited resources (CPU cores, network interfaces...).

A :class:`Resource` models a server with ``capacity`` identical units.
Simulated threads ``use`` it for a virtual duration; when all units are
busy, requests queue FIFO.  This is how we model the core count of a
VM, the single event-loop thread of the Redis-like store, and the
worker pool of a DSO node.
"""

from __future__ import annotations

from contextlib import contextmanager

from repro.simulation.kernel import Kernel
from repro.simulation.primitives import Semaphore


class Resource:
    """A pool of ``capacity`` units with FIFO queuing."""

    def __init__(self, kernel: Kernel, capacity: int, name: str = "resource"):
        self.kernel = kernel
        self.capacity = capacity
        self.name = name
        self._sem = Semaphore(kernel, capacity)
        self._busy = 0
        self._busy_time = 0.0
        self._last_change = kernel.now

    @property
    def in_use(self) -> int:
        return self._busy

    def acquire(self) -> None:
        """Claim one unit, queueing FIFO until one is free.

        Prefer :meth:`request` where the hold is lexically scoped; the
        explicit pair exists for callers whose acquire and release live
        in different stack frames (e.g. a DSO call that parks).
        """
        self._sem.acquire()
        self._account()
        self._busy += 1

    def release(self) -> None:
        """Return a unit previously claimed with :meth:`acquire`."""
        self._account()
        self._busy -= 1
        self._sem.release()

    @contextmanager
    def request(self):
        """Hold one unit for the duration of the ``with`` block."""
        self.acquire()
        try:
            yield self
        finally:
            self.release()

    def use(self, duration: float) -> None:
        """Occupy one unit for ``duration`` virtual seconds."""
        from repro.simulation.kernel import current_thread

        with self.request():
            current_thread().sleep(duration)

    def _account(self) -> None:
        now = self.kernel.now
        self._busy_time += self._busy * (now - self._last_change)
        self._last_change = now

    def utilization(self) -> float:
        """Average fraction of capacity used since creation."""
        self._account()
        elapsed = self.kernel.now
        if elapsed <= 0:
            return 0.0
        return self._busy_time / (self.capacity * elapsed)

    def busy_seconds(self) -> float:
        """Cumulative busy unit-seconds since creation.

        Monotone, so a controller can difference two snapshots for a
        *windowed* busy fraction — :meth:`utilization` only gives the
        since-creation average, which goes stale as soon as load
        changes (exactly when an autoscaler needs a fresh signal).
        """
        self._account()
        return self._busy_time


class ProcessorSharing:
    """An egalitarian processor-sharing CPU model.

    Unlike :class:`Resource`, jobs are not queued: ``n`` concurrent
    jobs on ``cores`` cores each progress at rate ``min(1, cores / n)``.
    This matches how an oversubscribed multi-threaded JVM process
    behaves, and drives the single-machine baseline of Figure 3
    (scale-up collapses once threads exceed cores).

    The implementation recomputes every active job's remaining work at
    each arrival/departure, which is exact for piecewise-constant rates.
    """

    def __init__(self, kernel: Kernel, cores: int, name: str = "cpu"):
        self.kernel = kernel
        self.cores = cores
        self.name = name
        # job id -> [remaining_work_seconds, last_update_time, reschedule Event]
        self._jobs: dict[int, list] = {}
        self._next_id = 0

    @property
    def active_jobs(self) -> int:
        return len(self._jobs)

    def _rate(self) -> float:
        n = len(self._jobs)
        if n == 0:
            return 1.0
        return min(1.0, self.cores / n)

    def _advance_all(self) -> None:
        now = self.kernel.now
        rate = self._rate()
        for job in self._jobs.values():
            job[0] -= (now - job[1]) * rate
            job[1] = now

    def _rate_changed(self) -> None:
        """Wake every active job so it re-computes its finish time."""
        for job in self._jobs.values():
            job[2].set()

    def execute(self, work_seconds: float) -> None:
        """Run a job of ``work_seconds`` CPU-seconds to completion.

        With ``n`` concurrent jobs the job progresses at rate
        ``min(1, cores / n)``; arrivals and departures re-time every
        in-flight job exactly (piecewise-constant rates).
        """
        from repro.simulation.primitives import Event

        self._advance_all()
        job_id = self._next_id
        self._next_id += 1
        job = [work_seconds, self.kernel.now, Event(self.kernel)]
        self._jobs[job_id] = job
        self._rate_changed()
        try:
            while job[0] > 1e-12:
                job[2] = Event(self.kernel)
                job[2].wait(timeout=job[0] / self._rate())
                self._advance_all()
        finally:
            del self._jobs[job_id]
            self._advance_all()
            self._rate_changed()
