"""Deterministic discrete-event simulation substrate.

The kernel advances a virtual clock and wakes *simulated threads*
(real Python threads, exactly one runnable at a time) in
``(time, sequence)`` order.  All blocking synchronization used by the
upper layers — sleeps, events, locks, semaphores, queues, conditions,
capacity resources — is implemented here in terms of kernel wakeups, so
simulated minutes execute in real milliseconds and runs are
reproducible given seeded RNG streams.
"""

from repro.simulation.kernel import Kernel, current_kernel, current_thread
from repro.simulation.thread import SimThread
from repro.simulation.primitives import (
    Condition,
    Event,
    Lock,
    Queue,
    Semaphore,
)
from repro.simulation.resources import Resource
from repro.simulation.rng import RngRegistry

__all__ = [
    "Kernel",
    "SimThread",
    "Event",
    "Lock",
    "Semaphore",
    "Condition",
    "Queue",
    "Resource",
    "RngRegistry",
    "current_kernel",
    "current_thread",
]
