"""Blocking synchronization primitives for simulated threads.

These mirror the ``threading`` module's API (events, locks, semaphores,
conditions) plus a ``queue.Queue`` equivalent, but block in *virtual*
time.  All of them are FIFO-fair: waiters are served in arrival order,
which keeps simulations deterministic.
"""

from __future__ import annotations

from collections import deque
from typing import Any

from repro.errors import SimTimeoutError, SimulationError
from repro.simulation.kernel import Kernel, current_thread
from repro.simulation.thread import TIMEOUT

_NOTIFY = object()
_GRANT = object()


class Event:
    """A latch that simulated threads can wait on."""

    def __init__(self, kernel: Kernel):
        self.kernel = kernel
        self._flag = False
        self._waiters: deque = deque()

    def is_set(self) -> bool:
        return self._flag

    def set(self) -> None:
        self._flag = True
        while self._waiters:
            waiter = self._waiters.popleft()
            self.kernel.schedule_wakeup(waiter, 0.0, _NOTIFY, recycle=True)

    def clear(self) -> None:
        self._flag = False

    def wait(self, timeout: float | None = None) -> bool:
        """Block until set; return ``False`` on timeout."""
        if self._flag:
            return True
        thread = current_thread()
        self._waiters.append(thread)
        if timeout is not None:
            self.kernel.schedule_wakeup(thread, timeout, TIMEOUT, recycle=True)
        value = thread._suspend()
        if value is TIMEOUT:
            try:
                self._waiters.remove(thread)
            except ValueError:
                pass  # set() raced with the timeout at the same instant
            thread._cancel_pending()
            return self._flag
        thread._cancel_pending()
        return True


class Lock:
    """A FIFO mutual-exclusion lock."""

    def __init__(self, kernel: Kernel):
        self.kernel = kernel
        self._owner = None
        self._waiters: deque = deque()

    @property
    def locked(self) -> bool:
        return self._owner is not None

    def held(self) -> bool:
        """Whether the *calling* thread currently owns this lock.

        Unlike :attr:`locked` (owned by anyone), this is safe to guard
        a cleanup-path ``release()``: after a crash handler re-created
        the lock's object, ``locked`` may be true because some *other*
        thread owns the successor — releasing then would blow up.
        """
        return self._owner is current_thread()

    def acquire(self, timeout: float | None = None) -> bool:
        thread = current_thread()
        if self._owner is None:
            self._owner = thread
            return True
        if self._owner is thread:
            raise SimulationError(f"{thread.name} re-acquired a non-reentrant lock")
        self._waiters.append(thread)
        if timeout is not None:
            self.kernel.schedule_wakeup(thread, timeout, TIMEOUT, recycle=True)
        value = thread._suspend()
        if value is TIMEOUT:
            if self._owner is thread:
                # Granted at the very instant the timeout fired: keep it.
                thread._cancel_pending()
                return True
            try:
                self._waiters.remove(thread)
            except ValueError:
                pass
            thread._cancel_pending()
            return False
        thread._cancel_pending()
        return True

    def release(self) -> None:
        thread = current_thread()
        if self._owner is not thread:
            raise SimulationError(
                f"{thread.name} released a lock owned by "
                f"{self._owner.name if self._owner else 'nobody'}")
        if self._waiters:
            successor = self._waiters.popleft()
            self._owner = successor
            self.kernel.schedule_wakeup(successor, 0.0, _GRANT, recycle=True)
        else:
            self._owner = None

    def __enter__(self) -> "Lock":
        self.acquire()
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()


class Semaphore:
    """A FIFO counting semaphore."""

    def __init__(self, kernel: Kernel, permits: int = 1):
        if permits < 0:
            raise SimulationError(f"negative permits: {permits}")
        self.kernel = kernel
        self._permits = permits
        self._waiters: deque = deque()

    @property
    def permits(self) -> int:
        return self._permits

    def acquire(self, timeout: float | None = None) -> bool:
        thread = current_thread()
        if self._permits > 0 and not self._waiters:
            self._permits -= 1
            return True
        entry = [thread, False]  # [thread, granted]
        self._waiters.append(entry)
        if timeout is not None:
            self.kernel.schedule_wakeup(thread, timeout, TIMEOUT, recycle=True)
        value = thread._suspend()
        if value is TIMEOUT and not entry[1]:
            try:
                self._waiters.remove(entry)
            except ValueError:
                pass
            thread._cancel_pending()
            return False
        thread._cancel_pending()
        return True

    def release(self, count: int = 1) -> None:
        self._permits += count
        while self._waiters and self._permits > 0:
            entry = self._waiters.popleft()
            entry[1] = True
            self._permits -= 1
            self.kernel.schedule_wakeup(entry[0], 0.0, _GRANT, recycle=True)

    def __enter__(self) -> "Semaphore":
        self.acquire()
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()


class Condition:
    """A condition variable bound to a :class:`Lock`."""

    def __init__(self, kernel: Kernel, lock: Lock | None = None):
        self.kernel = kernel
        self.lock = lock or Lock(kernel)
        self._waiters: deque = deque()

    def acquire(self, timeout: float | None = None) -> bool:
        return self.lock.acquire(timeout)

    def release(self) -> None:
        self.lock.release()

    def __enter__(self) -> "Condition":
        self.lock.acquire()
        return self

    def __exit__(self, *exc_info) -> None:
        self.lock.release()

    def wait(self, timeout: float | None = None) -> bool:
        """Release the lock, block until notified, re-acquire.

        Returns ``False`` if the wait timed out before a notification.
        """
        thread = current_thread()
        if self.lock._owner is not thread:
            raise SimulationError("Condition.wait() without holding the lock")
        self._waiters.append(thread)
        self.lock.release()
        if timeout is not None:
            self.kernel.schedule_wakeup(thread, timeout, TIMEOUT, recycle=True)
        value = thread._suspend()
        notified = value is not TIMEOUT
        if not notified:
            try:
                self._waiters.remove(thread)
            except ValueError:
                notified = True  # notified at the same instant
        thread._cancel_pending()
        self.lock.acquire()
        return notified

    def wait_for(self, predicate, timeout: float | None = None) -> bool:
        deadline = None if timeout is None else self.kernel.now + timeout
        while not predicate():
            remaining = None
            if deadline is not None:
                remaining = deadline - self.kernel.now
                if remaining <= 0:
                    return bool(predicate())
            self.wait(remaining)
        return True

    def notify(self, count: int = 1) -> None:
        thread = current_thread()
        if self.lock._owner is not thread:
            raise SimulationError("Condition.notify() without holding the lock")
        for _ in range(min(count, len(self._waiters))):
            waiter = self._waiters.popleft()
            self.kernel.schedule_wakeup(waiter, 0.0, _NOTIFY, recycle=True)

    def notify_all(self) -> None:
        self.notify(len(self._waiters))


class Queue:
    """A FIFO queue with optional capacity, in virtual time."""

    def __init__(self, kernel: Kernel, capacity: int | None = None):
        if capacity is not None and capacity <= 0:
            raise SimulationError(f"non-positive capacity: {capacity}")
        self.kernel = kernel
        self.capacity = capacity
        self._items: deque = deque()
        self._getters: deque = deque()  # [thread, cell, filled]
        self._putters: deque = deque()  # [thread, item, taken]

    def __len__(self) -> int:
        return len(self._items)

    def empty(self) -> bool:
        return not self._items

    def put(self, item: Any, timeout: float | None = None) -> None:
        thread = current_thread()
        if self._getters:
            entry = self._getters.popleft()
            entry[1] = item
            entry[2] = True
            self.kernel.schedule_wakeup(entry[0], 0.0, _NOTIFY, recycle=True)
            return
        if self.capacity is None or len(self._items) < self.capacity:
            self._items.append(item)
            return
        entry = [thread, item, False]
        self._putters.append(entry)
        if timeout is not None:
            self.kernel.schedule_wakeup(thread, timeout, TIMEOUT, recycle=True)
        value = thread._suspend()
        if value is TIMEOUT and not entry[2]:
            try:
                self._putters.remove(entry)
            except ValueError:
                pass
            thread._cancel_pending()
            raise SimTimeoutError("Queue.put timed out")
        thread._cancel_pending()

    def get(self, timeout: float | None = None) -> Any:
        thread = current_thread()
        if self._items:
            item = self._items.popleft()
            if self._putters:
                entry = self._putters.popleft()
                entry[2] = True
                self._items.append(entry[1])
                self.kernel.schedule_wakeup(entry[0], 0.0, _NOTIFY, recycle=True)
            return item
        entry = [thread, None, False]
        self._getters.append(entry)
        if timeout is not None:
            self.kernel.schedule_wakeup(thread, timeout, TIMEOUT, recycle=True)
        value = thread._suspend()
        if value is TIMEOUT and not entry[2]:
            try:
                self._getters.remove(entry)
            except ValueError:
                pass
            thread._cancel_pending()
            raise SimTimeoutError("Queue.get timed out")
        thread._cancel_pending()
        return entry[1]
