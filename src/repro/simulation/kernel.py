"""The discrete-event kernel: a virtual clock plus a wakeup heap.

The kernel runs in the host thread (e.g. the pytest process).  Simulated
threads are real Python threads, but the kernel wakes exactly one at a
time and waits for it to block on a simulation primitive before
advancing the clock, so execution is effectively single-threaded and —
given seeded RNGs — fully deterministic.
"""

from __future__ import annotations

import heapq
import itertools
import threading
from typing import Any, Callable, Iterable

from repro.errors import DeadlockError, NotInSimThread, SimulationError
from repro.simulation.rng import RngRegistry

_context = threading.local()

#: Cap on the Wakeup free list; beyond this, surplus events are left to
#: the garbage collector (a pool larger than the live heap is pure waste).
_POOL_MAX = 1024

#: Compaction trigger: once at least this many cancelled events sit in
#: the heap *and* they make up half of it, the dispatch loop rebuilds.
_COMPACT_MIN = 512


def current_kernel() -> "Kernel":
    """Return the kernel driving the calling simulated thread."""
    kernel = getattr(_context, "kernel", None)
    if kernel is None:
        raise NotInSimThread("no simulation kernel in this context")
    return kernel


def current_thread() -> "SimThread":
    """Return the simulated thread executing the caller."""
    thread = getattr(_context, "thread", None)
    if thread is None:
        raise NotInSimThread("not running inside a simulated thread")
    return thread


def in_sim_thread() -> bool:
    """True when the caller runs inside a simulated thread."""
    return getattr(_context, "thread", None) is not None


class Wakeup:
    """A scheduled resumption of a simulated thread.

    ``value`` is handed to the thread as the result of its suspension,
    letting primitives distinguish e.g. a timeout from a notification.

    ``recycle`` marks wakeups whose handle never escapes the scheduling
    call site (sleeps, primitive notifications): the kernel returns
    those to a free pool once they leave the heap, so the dominant
    event type allocates ~once instead of once per dispatch.
    """

    __slots__ = ("thread", "value", "cancelled", "time", "recycle")

    #: Dispatch discriminator, cheaper than ``isinstance`` per pop.
    is_timer = False

    def __init__(self, thread: "SimThread", value: Any, time: float,
                 recycle: bool = False):
        self.thread = thread
        self.value = value
        self.time = time
        self.cancelled = False
        self.recycle = recycle

    def cancel(self) -> None:
        self.cancelled = True


class Timer:
    """A scheduled callback executed in kernel context (non-blocking).

    Timer handles are returned to callers (who may hold them across
    suspension points and cancel them much later), so timers are never
    pooled — recycling one under a live handle would let a stale
    ``cancel()`` kill an unrelated event.
    """

    __slots__ = ("callback", "cancelled", "time")

    is_timer = True
    recycle = False

    def __init__(self, callback: Callable[[], None], time: float):
        self.callback = callback
        self.time = time
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True


class Kernel:
    """Virtual-time scheduler for simulated threads and timers.

    ``scheduler`` — an object implementing the
    :class:`repro.explore.Scheduler` protocol — turns every dispatch
    into an explicit *scheduling point*: all events ready at the
    minimum virtual time are offered to it, and it picks which one runs
    (and may delay it by a bounded amount).  ``None`` (the default)
    keeps the historical FIFO ``(time, seq)`` order with zero overhead;
    :class:`repro.explore.FifoScheduler` reproduces it decision-by-
    decision, which is what makes schedule exploration a strict
    generalisation of the deterministic kernel rather than a fork.
    """

    def __init__(self, seed: int = 0, name: str = "sim", scheduler=None):
        self.name = name
        self.rng = RngRegistry(seed)
        #: Optional schedule-exploration hook (repro.explore).
        self.scheduler = scheduler
        # Deferred import: repro.trace imports this module at its top.
        from repro.trace.tracer import NULL_TRACER

        #: The active tracer; a shared no-op :class:`NullTracer` until
        #: :meth:`enable_tracing` installs a real one.  Tracing only
        #: *observes* the clock — enabling it never changes timestamps.
        self.tracer = NULL_TRACER
        self._now = 0.0
        self._seq = itertools.count()
        self._heap: list[tuple[float, int, object]] = []
        self._threads: set = set()  # live SimThreads
        self._running = None  # SimThread currently executing
        self._control = threading.Event()  # thread -> kernel handshake
        self._closed = False
        self._failed: list = []  # threads that died with an exception
        #: Free list of recyclable Wakeups (see :class:`Wakeup`).
        self._wakeup_pool: list = []
        #: Cancelled events still sitting in the heap (approximate:
        #: counted where cancellation is cheap to observe).  When the
        #: count dominates the heap the dispatch loop compacts, so a
        #: workload cancelling far-future timeouts cannot degrade every
        #: subsequent push/pop to O(log garbage).
        self._cancelled = 0

    # -- clock ------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    # -- tracing ----------------------------------------------------------

    def enable_tracing(self, service: str = "repro"):
        """Attach a :class:`repro.trace.Tracer` and return it.

        Idempotent: a second call returns the already-installed tracer.
        """
        from repro.trace.tracer import Tracer

        if not self.tracer.enabled:
            self.tracer = Tracer(self, service=service)
        return self.tracer

    # -- scheduling -------------------------------------------------------

    def schedule_wakeup(self, thread, delay: float, value: Any = None,
                        recycle: bool = False) -> Wakeup:
        """Schedule ``thread`` to resume after ``delay`` virtual seconds.

        ``recycle=True`` is an optimisation contract offered by the
        call site: it promises the returned handle is never retained
        across a suspension point, letting the kernel pool the Wakeup
        once it has been dispatched (or popped cancelled).
        """
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        pool = self._wakeup_pool
        if pool:
            wakeup = pool.pop()
            wakeup.thread = thread
            wakeup.value = value
            wakeup.time = self._now + delay
            wakeup.cancelled = False
            wakeup.recycle = recycle
        else:
            wakeup = Wakeup(thread, value, self._now + delay, recycle)
        heapq.heappush(self._heap, (wakeup.time, next(self._seq), wakeup))
        thread._pending.add(wakeup)
        return wakeup

    def _reclaim(self, item) -> None:
        """Return a recyclable event to the pool once it left the heap."""
        if item.recycle and len(self._wakeup_pool) < _POOL_MAX:
            item.thread = None
            item.value = None
            self._wakeup_pool.append(item)

    def _compact(self) -> None:
        """Drop cancelled events from the heap in one O(n) pass.

        Rebuilds in place (run loops hold a reference to the list), so
        the ``(time, seq)`` dispatch order of live events is unchanged.
        """
        live = []
        for entry in self._heap:
            item = entry[2]
            if item.cancelled:
                self._reclaim(item)
            else:
                live.append(entry)
        self._heap[:] = live
        heapq.heapify(self._heap)
        self._cancelled = 0

    def call_later(self, delay: float, callback: Callable[[], None]) -> Timer:
        """Run ``callback`` in kernel context after ``delay`` seconds.

        The callback must not block on simulation primitives; spawn a
        thread for blocking work.
        """
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        timer = Timer(callback, self._now + delay)
        heapq.heappush(self._heap, (timer.time, next(self._seq), timer))
        return timer

    def call_at(self, when: float, callback: Callable[[], None]) -> Timer:
        return self.call_later(max(0.0, when - self._now), callback)

    def spawn(self, target: Callable[..., Any], *args, name: str | None = None,
              daemon: bool = False, **kwargs):
        """Create and start a simulated thread running ``target``."""
        from repro.simulation.thread import SimThread

        thread = SimThread(self, target, args=args, kwargs=kwargs,
                           name=name, daemon=daemon)
        if self.tracer.enabled:
            # Trace-context propagation: the child inherits the
            # spawner's active span as its initial parent.
            self.tracer.on_spawn(thread)
        thread.start()
        return thread

    def spawn_at(self, when: float, target: Callable[..., Any], *args,
                 name: str | None = None, daemon: bool = False,
                 **kwargs) -> Timer:
        """Start a simulated thread once the clock reaches ``when``.

        The fault-injection layer uses this to fire scheduled faults:
        unlike :meth:`call_later` callbacks, the spawned thread may
        block on simulation primitives (e.g. to release parked waiters
        of a crashed node, or to sleep until a fault's end time).
        Returns the :class:`Timer`; cancelling it before ``when``
        prevents the spawn.
        """
        return self.call_at(when, lambda: self.spawn(
            target, *args, name=name, daemon=daemon, **kwargs))

    # -- main loop --------------------------------------------------------

    def run(self, until: float | None = None) -> None:
        """Dispatch events until the heap drains or ``until`` is reached.

        Raises :class:`DeadlockError` if the heap drains while
        non-daemon threads remain blocked.
        """
        self._check_host_context()
        heap = self._heap
        pop = heapq.heappop
        fast = self.scheduler is None
        while heap:
            head = heap[0]
            item = head[2]
            if item.cancelled:
                pop(heap)
                self._reclaim(item)
                if self._cancelled:
                    self._cancelled -= 1
                continue
            time = head[0]
            if until is not None and time > until:
                self._now = until
                return
            if fast:
                pop(heap)
            else:
                item = self._next_event()
                if item is None:
                    continue
            self._now = time
            if item.is_timer:
                item.callback()
            else:
                self._dispatch(item)
                self._reclaim(item)
            if self._cancelled >= _COMPACT_MIN \
                    and self._cancelled * 2 >= len(heap):
                self._compact()
        self._detect_deadlock()

    def run_until(self, predicate: Callable[[], bool],
                  limit: float | None = None) -> None:
        """Dispatch events until ``predicate()`` holds.

        With ``limit``, the head event's time is checked *before* it is
        popped, so hitting the limit raises with the event still queued
        — a later ``run``/``run_until`` call on the same kernel will
        dispatch it.
        """
        self._check_host_context()
        heap = self._heap
        pop = heapq.heappop
        fast = self.scheduler is None
        while not predicate():
            head = heap[0] if heap else None
            if head is not None and head[2].cancelled:
                pop(heap)
                self._reclaim(head[2])
                if self._cancelled:
                    self._cancelled -= 1
                continue
            if head is None:
                self._detect_deadlock()
                if not predicate():
                    raise SimulationError(
                        "event queue drained before condition was met")
                return
            time = head[0]
            if limit is not None and time > limit:
                self._now = limit
                raise SimulationError(
                    f"condition not met by virtual time limit {limit}")
            if fast:
                item = head[2]
                pop(heap)
            else:
                item = self._next_event()
                if item is None:
                    continue
            self._now = time
            if item.is_timer:
                item.callback()
            else:
                self._dispatch(item)
                self._reclaim(item)
            if self._cancelled >= _COMPACT_MIN \
                    and self._cancelled * 2 >= len(heap):
                self._compact()

    def _next_event(self):
        """Pop the event to dispatch next, or ``None`` to re-examine.

        Without a scheduler this is a plain heap pop (cancelled events
        yield ``None``): the historical, byte-stable ``(time, seq)``
        order.  With one, every pop becomes a *scheduling point*: all
        live events ready at the minimum virtual time are offered to
        ``scheduler.decide(time, entries)`` — ``entries`` being
        ``(seq, item)`` pairs in FIFO order — which returns the chosen
        index plus a bounded extra delay.  A positive delay re-enqueues
        the chosen event at ``time + delay`` (a preemption: events due
        within the delay window overtake it) and reports ``None`` so
        the caller re-peeks the heap.
        """
        time, seq, item = heapq.heappop(self._heap)
        if item.cancelled:
            self._reclaim(item)
            if self._cancelled:
                self._cancelled -= 1
            return None
        if self.scheduler is None:
            return item
        batch = [(seq, item)]
        while self._heap and self._heap[0][0] == time:
            _, other_seq, other = heapq.heappop(self._heap)
            if other.cancelled:
                self._reclaim(other)
                if self._cancelled:
                    self._cancelled -= 1
            else:
                batch.append((other_seq, other))
        index, delay = self.scheduler.decide(time, batch)
        chosen_seq, chosen = batch.pop(index)
        for entry_seq, entry in batch:
            heapq.heappush(self._heap, (time, entry_seq, entry))
        if delay > 0:
            chosen.time = time + delay
            heapq.heappush(self._heap,
                           (chosen.time, next(self._seq), chosen))
            return None
        return chosen

    def run_main(self, target: Callable[..., Any], *args, **kwargs) -> Any:
        """Run ``target`` as the client application to completion.

        Returns the target's return value; re-raises its exception.
        Other (background) threads keep their state and may be resumed
        by further ``run`` calls.
        """
        thread = self.spawn(target, *args, name="main", **kwargs)
        self.run_until(lambda: thread.done)
        return thread.result()

    def _dispatch(self, wakeup: Wakeup) -> None:
        thread = wakeup.thread
        thread._pending.discard(wakeup)
        if thread.done:
            return
        self._running = thread
        thread._wake_value = wakeup.value
        thread._resume.set()
        self._control.wait()
        self._control.clear()
        self._running = None

    def _detect_deadlock(self) -> None:
        blocked = [t.name for t in self._threads if not t.daemon and not t.done]
        if blocked:
            raise DeadlockError(blocked)

    def _check_host_context(self) -> None:
        if in_sim_thread():
            raise SimulationError(
                "Kernel.run() must be called from the host thread, "
                "not from inside a simulated thread")
        if self._closed:
            raise SimulationError("kernel is closed")

    # -- teardown ---------------------------------------------------------

    def close(self) -> None:
        """Tear down every live simulated thread and seal the kernel."""
        if self._closed:
            return
        self._closed = True
        for thread in list(self._threads):
            thread._shutdown = True
        # Wake blocked threads one at a time so each can unwind.
        for thread in list(self._threads):
            if thread.done:
                continue
            self._running = thread
            thread._resume.set()
            self._control.wait()
            self._control.clear()
            self._running = None
        self._heap.clear()
        self._threads.clear()

    def __enter__(self) -> "Kernel":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- bookkeeping used by SimThread -------------------------------------

    def _register(self, thread) -> None:
        self._threads.add(thread)

    def _unregister(self, thread) -> None:
        self._threads.discard(thread)
        if thread.exception is not None and not thread._observed:
            self._failed.append(thread)

    @property
    def failed_threads(self) -> Iterable:
        """Threads that died with an unobserved exception."""
        return tuple(self._failed)


def set_context(kernel: Kernel | None, thread) -> None:
    """Install the (kernel, thread) pair for the calling real thread."""
    _context.kernel = kernel
    _context.thread = thread
