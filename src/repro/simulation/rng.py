"""Deterministic random-number streams.

Every stochastic component (each network link, each storage service,
each workload generator) draws from its *own* named stream derived from
the kernel seed, so adding a component or reordering draws in one
component never perturbs another — the property that makes whole-system
simulations reproducible and comparable across configurations.
"""

from __future__ import annotations

import zlib

import numpy as np


class RngRegistry:
    """A factory of independent, named ``numpy`` generators."""

    def __init__(self, seed: int = 0):
        self.seed = seed
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return (creating on first use) the generator for ``name``."""
        generator = self._streams.get(name)
        if generator is None:
            derived = np.random.SeedSequence(
                [self.seed, zlib.crc32(name.encode("utf-8"))])
            generator = np.random.Generator(np.random.PCG64(derived))
            self._streams[name] = generator
        return generator

    def spawn(self, name: str) -> "RngRegistry":
        """A child registry whose streams are independent of this one."""
        return RngRegistry(zlib.crc32(name.encode("utf-8")) ^ self.seed)
