"""Watch-ordering invariants for the keeper's notification path.

ZooKeeper's watch contract, restated for the audit:

* **order** — a session observes watch events in the global order of
  the writes that fired them.  The tree assigns per-session delivery
  sequence numbers under its object lock (sequence order == zxid
  order), so the delivered stream must be strictly increasing in
  ``seq`` *and* non-decreasing in ``zxid`` (two watches fired by one
  write share its zxid).
* **exactly-once** — a one-shot watch set before a write yields one
  event: no sequence number is delivered twice.
* **no loss** — after quiescence, every event the tree assigned was
  released to the application: the delivered count per session
  matches the tree's ``assigned_counts()``.

:func:`find_watch_violations` checks all three over the per-session
delivered logs; :func:`watch_order_invariant` adapts it to the
:class:`~repro.explore.runner.ExplorationRunner` invariant signature
for workloads that return ``(assigned, delivered)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterable, Mapping

if TYPE_CHECKING:  # the keeper imports this package: no runtime cycle
    from repro.coordination.keeper import WatchEvent


@dataclass(frozen=True)
class WatchViolation:
    """One broken delivery guarantee at one session."""

    session: str
    kind: str  # "order" | "duplicate" | "lost"
    detail: str

    def describe(self) -> str:
        return f"[{self.kind}] session {self.session}: {self.detail}"


def find_watch_violations(
        delivered: Mapping[str, Iterable[WatchEvent]],
        assigned: Mapping[str, int] | None = None) -> list[WatchViolation]:
    """Audit per-session delivered watch streams.

    ``delivered`` maps session id to the events in the order the
    application observed them; ``assigned`` (optional — only
    meaningful after quiescence) maps session id to the total events
    the tree ever assigned it.
    """
    violations: list[WatchViolation] = []
    for sid, events in sorted(delivered.items()):
        stream = list(events)
        seen: set[int] = set()
        last_seq, last_zxid = 0, 0
        for position, event in enumerate(stream):
            if event.seq in seen:
                violations.append(WatchViolation(
                    sid, "duplicate",
                    f"seq {event.seq} delivered twice "
                    f"({event.kind} {event.path})"))
            seen.add(event.seq)
            if event.seq <= last_seq:
                violations.append(WatchViolation(
                    sid, "order",
                    f"seq {event.seq} after seq {last_seq} "
                    f"at position {position}"))
            if event.zxid < last_zxid:
                violations.append(WatchViolation(
                    sid, "order",
                    f"zxid went backwards {last_zxid} -> {event.zxid} "
                    f"({event.kind} {event.path} at position "
                    f"{position})"))
            last_seq = max(last_seq, event.seq)
            last_zxid = max(last_zxid, event.zxid)
        if assigned is not None:
            expected = assigned.get(sid, 0)
            unique = len({event.seq for event in stream})
            if unique < expected:
                violations.append(WatchViolation(
                    sid, "lost",
                    f"{unique} of {expected} assigned events "
                    "delivered"))
    if assigned is not None:
        for sid, expected in sorted(assigned.items()):
            if expected and sid not in delivered:
                violations.append(WatchViolation(
                    sid, "lost",
                    f"0 of {expected} assigned events delivered"))
    return violations


def watch_order_invariant(trial: Any, value: Any) -> bool:
    """`ExplorationRunner` invariant for workloads returning
    ``(delivered, assigned)`` (the second element may be ``None``
    when the run does not quiesce)."""
    delivered, assigned = value
    violations = find_watch_violations(delivered, assigned)
    assert not violations, "; ".join(v.describe() for v in violations)
    return True
