"""Sequential specification of the keeper's znode tree.

:class:`ZnodeModel` is the Wing & Gong model for histories recorded
by :class:`repro.coordination.keeper.KeeperService` (pass a
``recorder``): method names and positional arguments match the tree's
wire methods exactly, and results — including zxids — must replay
bit-for-bit.  Because every write result carries its zxid, a history
has at most one admissible linearization order, which both sharpens
the property (the DSO layer must agree with the zxid log it handed
out) and keeps the checker's search nearly linear.

Errors are *values* here: where the live tree raises
``NodeExistsError`` etc., the recorded result is the sentinel
``("err", <class name>)`` and the model returns the same sentinel —
the checker compares results with ``!=``, so a failed op constrains
the linearization exactly like a successful one.  Error precedence
mirrors the tree's validation order (session liveness before path
resolution before guards).
"""

from __future__ import annotations

from typing import Any

#: Width of the zero-padded counter appended to sequential znodes
#: (ZooKeeper uses 10 digits; sorted() order == creation order).
#: Defined here — the sequential *spec* — and imported by the live
#: tree, so the two can never disagree.
SEQUENTIAL_WIDTH = 10


class _MNode:
    __slots__ = ("data", "version", "owner", "children", "cseq")

    def __init__(self, data: Any, owner: str | None):
        self.data = data
        self.version = 0
        self.owner = owner
        self.children: dict[str, None] = {}
        self.cseq = 0

    def __getstate__(self):
        return (self.data, self.version, self.owner, self.children,
                self.cseq)

    def __setstate__(self, state):
        (self.data, self.version, self.owner, self.children,
         self.cseq) = state


class _MSession:
    __slots__ = ("ttl", "expires_at", "ephemerals")

    def __init__(self, ttl: float, expires_at: float):
        self.ttl = ttl
        self.expires_at = expires_at
        self.ephemerals: dict[str, None] = {}

    def __getstate__(self):
        return (self.ttl, self.expires_at, self.ephemerals)

    def __setstate__(self, state):
        self.ttl, self.expires_at, self.ephemerals = state


def _err(kind: str) -> tuple[str, str]:
    return ("err", kind)


class ZnodeModel:
    """Pure in-memory mirror of ``_KeeperTree`` (no watches, no
    outbox — watch *ordering* has its own checker,
    :mod:`repro.linearizability.watches`)."""

    def __init__(self):
        self.nodes: dict[str, _MNode] = {"/": _MNode(None, None)}
        self.zxid = 0
        self.sessions: dict[str, _MSession] = {}

    # -- helpers -----------------------------------------------------------------

    def _session_gone(self, sid: str | None) -> bool:
        return sid is not None and sid not in self.sessions

    # -- znode ops (signatures mirror _KeeperTree) -----------------------------------

    def create(self, path: str, data: Any = None, sid: str | None = None,
               ephemeral: bool = False, sequential: bool = False) -> Any:
        if self._session_gone(sid):
            return _err("SessionExpiredError")
        if ephemeral and sid is None:
            return _err("KeeperError")
        parent_path, _, name = path.rpartition("/")
        parent_path = parent_path or "/"
        if not name:
            return _err("KeeperError")
        parent = self.nodes.get(parent_path)
        if parent is None:
            return _err("NoNodeError")
        if parent.owner is not None:
            return _err("KeeperError")
        if sequential:
            name = f"{name}{parent.cseq:0{SEQUENTIAL_WIDTH}d}"
            path = parent_path.rstrip("/") + "/" + name
        if path in self.nodes:
            return _err("NodeExistsError")
        self.zxid += 1
        if sequential:
            parent.cseq += 1
        self.nodes[path] = _MNode(data, sid if ephemeral else None)
        parent.children[name] = None
        if ephemeral:
            self.sessions[sid].ephemerals[path] = None
        return path, self.zxid

    def get(self, path: str, sid: str | None = None,
            watch: bool = False) -> Any:
        if self._session_gone(sid):
            return _err("SessionExpiredError")
        node = self.nodes.get(path)
        if node is None:
            return _err("NoNodeError")
        return node.data, node.version

    def set(self, path: str, data: Any, version: int = -1,
            sid: str | None = None) -> Any:
        if self._session_gone(sid):
            return _err("SessionExpiredError")
        node = self.nodes.get(path)
        if node is None:
            return _err("NoNodeError")
        if version >= 0 and version != node.version:
            return _err("BadVersionError")
        self.zxid += 1
        node.data = data
        node.version += 1
        return node.version, self.zxid

    def delete(self, path: str, version: int = -1,
               sid: str | None = None) -> Any:
        if self._session_gone(sid):
            return _err("SessionExpiredError")
        node = self.nodes.get(path)
        if node is None:
            return _err("NoNodeError")
        if node.children:
            return _err("NotEmptyError")
        if version >= 0 and version != node.version:
            return _err("BadVersionError")
        return self._delete_now(path, node)

    def _delete_now(self, path: str, node: _MNode) -> int:
        parent_path, _, name = path.rpartition("/")
        parent_path = parent_path or "/"
        self.zxid += 1
        del self.nodes[path]
        self.nodes[parent_path].children.pop(name, None)
        if node.owner is not None:
            owner = self.sessions.get(node.owner)
            if owner is not None:
                owner.ephemerals.pop(path, None)
        return self.zxid

    def exists(self, path: str, sid: str | None = None,
               watch: bool = False) -> Any:
        if self._session_gone(sid):
            return _err("SessionExpiredError")
        node = self.nodes.get(path)
        return None if node is None else node.version

    def children(self, path: str, sid: str | None = None,
                 watch: bool = False) -> Any:
        if self._session_gone(sid):
            return _err("SessionExpiredError")
        node = self.nodes.get(path)
        if node is None:
            return _err("NoNodeError")
        return tuple(sorted(node.children))

    # -- sessions ----------------------------------------------------------------

    def create_session(self, sid: str, ttl: float, now: float) -> Any:
        if sid in self.sessions:
            return _err("KeeperError")
        self.sessions[sid] = _MSession(ttl, now + ttl)
        return True

    def touch(self, sid: str, now: float) -> Any:
        if self._session_gone(sid) or sid is None:
            return _err("SessionExpiredError")
        session = self.sessions[sid]
        session.expires_at = now + session.ttl
        return session.expires_at

    def close_session(self, sid: str) -> Any:
        if sid not in self.sessions:
            return ()
        return self._end_session(sid)

    def expire_sessions(self, now: float) -> Any:
        lapsed = sorted(sid for sid, session in self.sessions.items()
                        if session.expires_at <= now)
        return tuple((sid, self._end_session(sid)) for sid in lapsed)

    def _end_session(self, sid: str) -> tuple[tuple[str, int], ...]:
        session = self.sessions.pop(sid)
        return tuple(
            (path, self._delete_now(path, self.nodes[path]))
            for path in sorted(session.ephemerals)
            if path in self.nodes)
