"""Cross-partition read-atomicity checking (the fractured-read pass).

The base checker (:mod:`repro.linearizability.checker`) is
P-compositional: it verifies each object's history in isolation,
which by definition cannot see a *fractured read* — a reader that
observed one of a transaction's writes together with a pre-transaction
version of another key the same transaction wrote.  This module adds
the cross-partition pass: given the commit log and the per-transaction
read observations that :class:`repro.dso.txn.Txn` records
(``DsoLayer.txn_log`` / ``DsoLayer.txn_reads``), it checks the two
properties AFT/RAMP guarantee:

* **Atomic visibility** (:func:`find_fractured_reads`): for every
  pair of observations ``(k -> cid_k)``, ``(j -> cid_j)`` by one
  reader, if the transaction that wrote ``k``'s version also wrote
  ``j``, then ``cid_j >= cid_k`` — the reader never saw a sibling
  key older than an observed write.

* **All-or-nothing installation**
  (:func:`final_state_violations`): after quiescence, every key's
  latest committed version is the highest-cid acknowledged
  transaction that wrote it.  A half-applied transaction (one write
  installed, a sibling silently dropped — exactly what disabling the
  commit fence produces) shows up as a key stuck below its expected
  winner.

Both functions are pure on plain data, so the exploration fuzzer and
the chaos suites can run them as invariants over recorded trials.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class TxnCommitRecord:
    """One acknowledged transaction commit (client-side log entry)."""

    #: Session-derived transaction identity.
    txn_id: str
    #: The commit id its versions were installed under.
    cid: int
    #: Keys the transaction wrote (sorted).
    writes: tuple[str, ...]


@dataclass(frozen=True)
class TxnReadRecord:
    """The versions one transaction observed, keyed for the pass."""

    #: Reader identity (txn id, or a label for read-only txns).
    reader: str
    #: Sorted ``(key, cid)`` observations.
    reads: tuple[tuple[str, int], ...]


@dataclass(frozen=True)
class AtomicityViolation:
    """One detected read-atomicity breach, with enough context to
    reproduce: who read what, and which transaction was fractured."""

    reader: str
    txn_id: str
    key_seen: str
    cid_seen: int
    key_stale: str
    cid_stale: int

    def describe(self) -> str:
        return (f"reader {self.reader!r} saw {self.key_seen!r}@cid"
                f"{self.cid_seen} from txn {self.txn_id!r} but "
                f"{self.key_stale!r}@cid{self.cid_stale} — the txn "
                f"also wrote {self.key_stale!r}, so the reader "
                f"observed a fractured (pre-txn) sibling")


def find_fractured_reads(
        commits: list[TxnCommitRecord] | tuple[TxnCommitRecord, ...],
        reads: list[TxnReadRecord] | tuple[TxnReadRecord, ...],
) -> list[AtomicityViolation]:
    """Every fractured read in ``reads`` relative to ``commits``.

    A reader fractures transaction *T* when it observed some key at
    *T*'s cid while observing another key *T* wrote at a *lower* cid.
    cid 0 (the initial version, empty writeset) never fractures.
    Returns an empty list on a read-atomic history.
    """
    by_cid: dict[int, TxnCommitRecord] = {c.cid: c for c in commits}
    violations: list[AtomicityViolation] = []
    for record in reads:
        observed = dict(record.reads)
        for key, cid in record.reads:
            writer = by_cid.get(cid)
            if writer is None:
                continue  # initial version or unlogged writer
            for sibling in writer.writes:
                sibling_cid = observed.get(sibling)
                if sibling_cid is not None and sibling_cid < cid:
                    violations.append(AtomicityViolation(
                        reader=record.reader, txn_id=writer.txn_id,
                        key_seen=key, cid_seen=cid,
                        key_stale=sibling, cid_stale=sibling_cid))
    return violations


def final_state_violations(
        commits: list[TxnCommitRecord] | tuple[TxnCommitRecord, ...],
        final_cids: dict[str, int],
) -> list[str]:
    """Keys whose quiescent state contradicts the acknowledged log.

    ``final_cids`` maps each key to the cid of its latest committed
    version after the system quiesced.  For every key any logged
    transaction wrote, the expected winner is the highest-cid
    acknowledged writer; a mismatch means an acknowledged write was
    dropped (fence disabled / buggy recovery) or a phantom version
    appeared.  Returns human-readable findings, empty when clean.
    """
    expected: dict[str, tuple[int, str]] = {}
    for commit in commits:
        for key in commit.writes:
            best = expected.get(key)
            if best is None or commit.cid > best[0]:
                expected[key] = (commit.cid, commit.txn_id)
    findings: list[str] = []
    for key, (cid, txn_id) in sorted(expected.items()):
        have = final_cids.get(key)
        if have is None:
            findings.append(
                f"{key!r}: acknowledged txn {txn_id!r} (cid {cid}) "
                f"but the key has no committed state at all")
        elif have != cid:
            fate = ("dropped" if have < cid
                    else "superseded by a phantom version")
            findings.append(
                f"{key!r}: expected cid {cid} (acked txn {txn_id!r}) "
                f"but final committed version is cid {have} — an "
                f"acknowledged write was {fate}")
    return findings
