"""The Wing & Gong linearizability checker.

Searches for a legal linearization: a total order of the history's
operations that (1) respects real-time precedence and (2) produces the
recorded results when replayed against a *sequential specification* of
the object.  Exponential in the worst case — suitable for the small,
highly-concurrent histories the tests generate.

The sequential specification is any factory of fresh objects whose
methods are called as ``getattr(obj, op.method)(*op.args)``; the
replayed return value must equal ``op.result``.
"""

from __future__ import annotations

import pickle
from typing import Callable, Sequence

from repro.linearizability.history import Operation


class LinearizabilityChecker:
    """Checks histories against a sequential model."""

    def __init__(self, model_factory: Callable[[], object],
                 max_states: int = 2_000_000):
        self.model_factory = model_factory
        #: Safety valve against exponential blow-up.
        self.max_states = max_states
        self._explored = 0

    def check(self, history: Sequence[Operation]) -> bool:
        """True iff ``history`` is linearizable w.r.t. the model."""
        operations = sorted(history, key=lambda op: (op.invoke, op.op_id))
        self._explored = 0
        seen: set[tuple[frozenset[int], bytes]] = set()
        return self._search(self.model_factory(), list(operations), seen)

    def explain(self, history: Sequence[Operation]) -> str:
        """Human-readable verdict, for assertion messages."""
        verdict = self.check(history)
        lines = [f"linearizable: {verdict} "
                 f"({self._explored} states explored)"]
        lines += [f"  {op}" for op in
                  sorted(history, key=lambda op: op.invoke)]
        return "\n".join(lines)

    # -- search -------------------------------------------------------------------

    def _search(self, model: object, pending: list[Operation],
                seen: set) -> bool:
        if not pending:
            return True
        self._explored += 1
        if self._explored > self.max_states:
            raise RuntimeError(
                f"state budget exceeded ({self.max_states}); "
                "history too large for exhaustive checking")
        key = (frozenset(op.op_id for op in pending), _fingerprint(model))
        if key in seen:
            return False
        # Minimal operations: those not preceded by another pending op.
        horizon = min(op.response for op in pending)
        for index, candidate in enumerate(pending):
            if candidate.invoke > horizon:
                break  # sorted by invoke: nothing later can be minimal
            replica = _clone(model)
            try:
                outcome = getattr(replica, candidate.method)(*candidate.args)
            except Exception:  # the model rejects this op here
                continue
            if outcome != candidate.result:
                continue
            rest = pending[:index] + pending[index + 1:]
            if self._search(replica, rest, seen):
                return True
        seen.add(key)
        return False


def _clone(model: object) -> object:
    return pickle.loads(pickle.dumps(model))


def _fingerprint(model: object) -> bytes:
    return pickle.dumps(model)
