"""The Wing & Gong linearizability checker, P-compositional.

Searches for a legal linearization: a total order of the history's
operations that (1) respects real-time precedence and (2) produces the
recorded results when replayed against a *sequential specification* of
the object.  Exponential in the worst case — suitable for the small,
highly-concurrent histories the tests generate.

Two scaling levers:

* **P-compositionality** (Herlihy & Wing, Theorem: a history is
  linearizable iff every per-object sub-history is): operations carry
  an optional ``key``, and keyed histories are partitioned and checked
  per object against a fresh model each.  A multi-object history whose
  joint interleaving space exceeds ``max_states`` typically checks in
  a few hundred states per partition — and a violation on any one
  object still fails the whole history.  The budget applies per
  partition.
* **Counterexamples**: :meth:`explain` does not dump the whole sorted
  history on failure; it shrinks the failing partition to a minimal
  unlinearizable *window* (drop any operation and the rest
  linearizes), which is the set of operations a human needs to look
  at.

The sequential specification is any factory of fresh objects whose
methods are called as ``getattr(obj, op.method)(*op.args)``; the
replayed return value must equal ``op.result``.
"""

from __future__ import annotations

import pickle
from typing import Callable, Sequence

from repro.linearizability.history import Operation

#: Above this partition size explain() skips window minimisation (each
#: probe is itself a worst-case-exponential check).
_WINDOW_SEARCH_CAP = 48


class LinearizabilityChecker:
    """Checks histories against a sequential model.

    ``partition=True`` (default) splits keyed histories by
    ``Operation.key`` and checks each object independently —
    linearizability is compositional, so the verdict is unchanged
    while the search space collapses from the product of the
    per-object spaces to their sum.  Unkeyed operations
    (``key=None``) form their own partition.
    """

    def __init__(self, model_factory: Callable[[], object],
                 max_states: int = 2_000_000, partition: bool = True):
        self.model_factory = model_factory
        #: Safety valve against exponential blow-up (per partition).
        self.max_states = max_states
        self.partition = partition
        self._explored = 0

    @property
    def states_explored(self) -> int:
        """States visited by the last :meth:`check` (all partitions)."""
        return self._explored

    def check(self, history: Sequence[Operation]) -> bool:
        """True iff ``history`` is linearizable w.r.t. the model."""
        self._explored = 0
        for _key, operations in self._partitions(history):
            if not self._check_one(operations):
                return False
        return True

    def explain(self, history: Sequence[Operation]) -> str:
        """Human-readable verdict, for assertion messages.

        On failure, pinpoints the failing object (keyed histories) and
        a minimal unlinearizable window: removing any single operation
        from the window makes it linearizable, so these are exactly
        the operations whose recorded results conflict.
        """
        self._explored = 0
        for key, operations in self._partitions(history):
            if self._check_one(operations):
                continue
            where = f" for object {key!r}" if key is not None else ""
            lines = [f"linearizable: False{where} "
                     f"({self._explored} states explored)"]
            window = self._minimal_window(operations)
            lines.append(f"minimal unlinearizable window "
                         f"({len(window)} of {len(operations)} ops):")
            lines += [f"  {op}" for op in window]
            if len(window) < len(operations):
                lines.append("full sub-history:")
                lines += [f"  {op}" for op in operations]
            return "\n".join(lines)
        return (f"linearizable: True "
                f"({self._explored} states explored)")

    # -- partitioning -----------------------------------------------------

    def _partitions(self, history: Sequence[Operation]):
        """Per-object sub-histories, each sorted by ``(invoke, id)``.

        Partitions are visited in first-appearance order, so verdicts
        and counterexamples are stable for a fixed history.
        """
        ordered = sorted(history, key=lambda op: (op.invoke, op.op_id))
        if not self.partition:
            yield None, ordered
            return
        groups: dict[str | None, list[Operation]] = {}
        for op in ordered:
            groups.setdefault(op.key, []).append(op)
        yield from groups.items()

    # -- search -------------------------------------------------------------------

    def _check_one(self, operations: list[Operation]) -> bool:
        """Wing & Gong over one (already sorted) sub-history."""
        self._budget = self._explored + self.max_states
        seen: set[tuple[frozenset[int], bytes]] = set()
        return self._search(self.model_factory(), list(operations), seen)

    def _search(self, model: object, pending: list[Operation],
                seen: set) -> bool:
        if not pending:
            return True
        self._explored += 1
        if self._explored > self._budget:
            raise RuntimeError(
                f"state budget exceeded ({self.max_states}); "
                "history too large for exhaustive checking")
        key = (frozenset(op.op_id for op in pending), _fingerprint(model))
        if key in seen:
            return False
        # Minimal operations: those not preceded by another pending op.
        horizon = min(op.response for op in pending)
        for index, candidate in enumerate(pending):
            if candidate.invoke > horizon:
                break  # sorted by invoke: nothing later can be minimal
            replica = _clone(model)
            try:
                outcome = getattr(replica, candidate.method)(*candidate.args)
            except Exception:  # the model rejects this op here
                continue
            if outcome != candidate.result:
                continue
            rest = pending[:index] + pending[index + 1:]
            if self._search(replica, rest, seen):
                return True
        seen.add(key)
        return False

    # -- counterexample minimisation ---------------------------------------

    def _linearizable(self, operations: list[Operation]) -> bool:
        """Budgeted probe used by window shrinking; a blown budget
        counts as 'linearizable' so shrinking stays conservative."""
        try:
            return self._check_one(operations)
        except RuntimeError:
            return True

    def _minimal_window(self,
                        operations: list[Operation]) -> list[Operation]:
        """Shrink a failing sub-history to a minimal failing window.

        First the shortest failing prefix (by invoke order), then a
        greedy elimination pass: drop each operation if the remainder
        still fails.  The result is locally minimal — every operation
        in it is necessary for the violation.
        """
        if len(operations) > _WINDOW_SEARCH_CAP:
            return list(operations)
        window = list(operations)
        for length in range(1, len(operations) + 1):
            if not self._linearizable(operations[:length]):
                window = list(operations[:length])
                break
        index = 0
        while index < len(window) and len(window) > 1:
            candidate = window[:index] + window[index + 1:]
            if not self._linearizable(candidate):
                window = candidate
            else:
                index += 1
        return window


def _clone(model: object) -> object:
    return pickle.loads(pickle.dumps(model))


def _fingerprint(model: object) -> bytes:
    return pickle.dumps(model)
