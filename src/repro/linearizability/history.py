"""Concurrent-history recording.

An :class:`Operation` is one method invocation with its real-time
interval ``[invoke, response]`` (virtual time).  Two operations are
concurrent iff their intervals overlap; linearizability requires a
total order consistent with interval precedence whose sequential
execution matches the recorded results.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable


@dataclass(frozen=True)
class Operation:
    """One completed method invocation."""

    op_id: int
    thread: str
    method: str
    args: tuple
    result: Any
    invoke: float
    response: float
    #: Object identity the operation acted on (``None`` = unkeyed).
    #: Linearizability is compositional (Herlihy & Wing): the checker
    #: partitions a history by key and checks each object's
    #: sub-history independently, which turns an exponential joint
    #: search into per-object searches.
    key: str | None = None

    def precedes(self, other: "Operation") -> bool:
        """Real-time order: self finished before other started."""
        return self.response < other.invoke

    def __str__(self) -> str:
        arguments = ", ".join(repr(a) for a in self.args)
        where = f" @{self.key}" if self.key is not None else ""
        return (f"[{self.invoke:.6f},{self.response:.6f}] {self.thread}: "
                f"{self.method}({arguments}) -> {self.result!r}{where}")


@dataclass
class HistoryRecorder:
    """Collects operations; wrap proxy calls with :meth:`record`."""

    clock: Callable[[], float]
    operations: list[Operation] = field(default_factory=list)
    _ids: itertools.count = field(default_factory=itertools.count)

    def record(self, thread: str, method: str, args: tuple,
               call: Callable[[], Any], key: str | None = None) -> Any:
        """Execute ``call`` and log it as an operation.

        ``key`` names the object acted on; keyed histories let the
        checker exploit P-compositionality (one search per object).
        """
        invoke = self.clock()
        result = call()
        response = self.clock()
        self.operations.append(Operation(
            op_id=next(self._ids), thread=thread, method=method,
            args=args, result=result, invoke=invoke, response=response,
            key=key))
        return result

    def add(self, thread: str, method: str, args: tuple, result: Any,
            invoke: float, response: float,
            key: str | None = None) -> None:
        """Log an operation measured externally."""
        self.operations.append(Operation(
            op_id=next(self._ids), thread=thread, method=method,
            args=args, result=result, invoke=invoke, response=response,
            key=key))

    def clear(self) -> None:
        self.operations.clear()
