"""Linearizability checking (Wing & Gong) for shared-object histories.

The paper claims its shared objects are linearizable: "concurrent
method invocations behave as if they were executed by a single thread"
(Section 3.1).  This package records concurrent histories of proxy
calls and verifies them against a sequential specification — the test
suite uses it as a property check on the DSO layer.
"""

from repro.linearizability.history import HistoryRecorder, Operation
from repro.linearizability.checker import LinearizabilityChecker
from repro.linearizability.atomicity import (
    AtomicityViolation,
    TxnCommitRecord,
    TxnReadRecord,
    final_state_violations,
    find_fractured_reads,
)
from repro.linearizability.znode import ZnodeModel
from repro.linearizability.watches import (
    WatchViolation,
    find_watch_violations,
    watch_order_invariant,
)

__all__ = ["HistoryRecorder", "Operation", "LinearizabilityChecker",
           "AtomicityViolation", "TxnCommitRecord", "TxnReadRecord",
           "find_fractured_reads", "final_state_violations",
           "ZnodeModel", "WatchViolation", "find_watch_violations",
           "watch_order_invariant"]
