"""Linearizability checking (Wing & Gong) for shared-object histories.

The paper claims its shared objects are linearizable: "concurrent
method invocations behave as if they were executed by a single thread"
(Section 3.1).  This package records concurrent histories of proxy
calls and verifies them against a sequential specification — the test
suite uses it as a property check on the DSO layer.
"""

from repro.linearizability.history import HistoryRecorder, Operation
from repro.linearizability.checker import LinearizabilityChecker

__all__ = ["HistoryRecorder", "Operation", "LinearizabilityChecker"]
