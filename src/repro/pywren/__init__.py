"""A minimal PyWren: the paper's baseline serverless framework.

PyWren (Jonas et al., SoCC '17 — the paper's reference [25]) maps a
Python function over inputs by launching one cloud function per input
and passing results through object storage: each invocation pickles
its return value into S3, and the client *polls* storage for the
result keys.  This storage-mediated, poll-based pattern is exactly
what Sections 1 and 6.3.1 contrast Crucial's fine-grained state and
synchronization against.
"""

from repro.pywren.executor import ALL_COMPLETED, ANY_COMPLETED, PyWrenExecutor

__all__ = ["PyWrenExecutor", "ALL_COMPLETED", "ANY_COMPLETED"]
