"""The PyWren execution model over the simulated cloud.

``map(fn, args)`` fires one asynchronous function invocation per
argument; every invocation writes its (pickled) result to storage
under a run-scoped key; ``wait``/``get_result`` poll the store's
*listing* until results appear.  The store is any
:class:`~repro.storage.backend.StorageBackend`; over the default
S3-like backend this inherits S3's latency and eventually-consistent
visibility, which is why PyWren-style synchronization is slow and
variable (Fig. 6) — running the same executor over a
:class:`~repro.storage.tiering.TieredStore` trades that latency
against the hot tier's RAM rent.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.errors import NoSuchKeyError
from repro.faas.platform import FaasPlatform, FunctionContext
from repro.storage.backend import StorageBackend

ALL_COMPLETED = "ALL_COMPLETED"
ANY_COMPLETED = "ANY_COMPLETED"

#: PyWren's storage layout: one object per invocation result.
_RESULT_PREFIX = "pywren.jobs"


@dataclass
class ResponseFuture:
    """A handle to one invocation's storage-mediated result."""

    key: str
    store: StorageBackend
    _value: Any = field(default=None, repr=False)
    _fetched: bool = False

    def done(self) -> bool:
        """One polling round trip (listing-consistent, like S3)."""
        return self._fetched or self.store.exists(self.key)

    def result(self) -> Any:
        """Fetch the result, polling until it is visible."""
        from repro.simulation.thread import sleep

        if self._fetched:
            return self._value
        while True:
            try:
                value = self.store.get(self.key)
                break
            except NoSuchKeyError:
                sleep(1.0)  # PyWren's poll interval
        self._value = value
        self._fetched = True
        return value


class _PyWrenRunner:
    """The generic function: run ``fn(arg)``, store the result."""

    def __init__(self, executor: "PyWrenExecutor"):
        self.executor = executor

    def __call__(self, ctx: FunctionContext, payload: Any) -> None:
        fn, arg, key = payload
        result = fn(arg)
        self.executor.store.put(key, result)


class PyWrenExecutor:
    """``pywren.default_executor()``, simulated."""

    _runner_ids = itertools.count()

    def __init__(self, platform: FaasPlatform, store: StorageBackend,
                 invoker: str = "client", memory_mb: int = 1792,
                 run_id: str | None = None):
        self.platform = platform
        self.store = store
        self.invoker = invoker
        self.run_id = run_id or f"run-{next(self._runner_ids)}"
        self.function_name = f"pywren-runner-{self.run_id}"
        platform.deploy(self.function_name, _PyWrenRunner(self),
                        memory_mb=memory_mb)
        self._calls = itertools.count()

    # -- API (mirrors pywren's) ------------------------------------------------

    def call_async(self, fn: Callable[[Any], Any],
                   arg: Any) -> ResponseFuture:
        """Invoke ``fn(arg)`` in one cloud function."""
        call_id = next(self._calls)
        key = f"{_RESULT_PREFIX}/{self.run_id}/{call_id:05d}/result"
        self.platform.invoke_async(self.invoker, self.function_name,
                                   (fn, arg, key))
        return ResponseFuture(key=key, store=self.store)

    def map(self, fn: Callable[[Any], Any],
            args: Sequence[Any]) -> list[ResponseFuture]:
        """One invocation per argument (the embarrassingly parallel
        pattern PyWren is built for)."""
        return [self.call_async(fn, arg) for arg in args]

    def wait(self, futures: Sequence[ResponseFuture],
             return_when: str = ALL_COMPLETED,
             poll_interval: float = 1.0,
             ) -> tuple[list[ResponseFuture], list[ResponseFuture]]:
        """Poll storage until futures complete (S3 listing semantics).

        Returns ``(done, pending)``.
        """
        from repro.simulation.thread import sleep

        if return_when not in (ALL_COMPLETED, ANY_COMPLETED):
            raise ValueError(f"unknown return_when {return_when!r}")
        pending = list(futures)
        done: list[ResponseFuture] = []
        while pending:
            still_pending = []
            for future in pending:
                if future.done():
                    done.append(future)
                else:
                    still_pending.append(future)
            pending = still_pending
            if not pending or (return_when == ANY_COMPLETED and done):
                break
            sleep(poll_interval)
        return done, pending

    def get_result(self,
                   futures: Sequence[ResponseFuture]) -> list[Any]:
        """Block for and collect every future's value, in order."""
        return [future.result() for future in futures]
