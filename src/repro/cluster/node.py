"""Server nodes: a network endpoint plus bounded CPU workers.

A :class:`Node` models one storage/compute server (e.g. the
r5.2xlarge instances hosting the DSO layer).  Its ``workers`` resource
bounds how many requests are serviced concurrently, which is what
gives the DSO layer disjoint-access parallelism in Fig. 2a — and what
denies it to the single-threaded Redis baseline (``workers=1``).
"""

from __future__ import annotations

from repro.net.network import Endpoint, Network
from repro.simulation.kernel import Kernel
from repro.simulation.resources import Resource


class Node:
    """A simulated server machine attached to the network."""

    def __init__(self, kernel: Kernel, network: Network, name: str,
                 workers: int = 8):
        self.kernel = kernel
        self.network = network
        self.name = name
        self.endpoint: Endpoint = network.register(name)
        self.workers = Resource(kernel, capacity=workers,
                                name=f"{name}.workers")

    @property
    def alive(self) -> bool:
        return self.endpoint.alive

    @property
    def epoch(self) -> int:
        return self.endpoint.epoch

    def crash(self) -> None:
        """Fail-stop the node; volatile state epochs are invalidated."""
        self.endpoint.crash()

    def restart(self) -> None:
        self.endpoint.restart()

    def __repr__(self) -> str:
        return f"<Node {self.name} {'up' if self.alive else 'down'}>"
