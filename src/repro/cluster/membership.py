"""Membership views for the DSO layer.

A variation of view synchrony (Section 4.1): the membership service
emits a *totally-ordered* sequence of views.  Crashes are noticed after
a failure-detection delay; joins are announced explicitly.  Listeners
(the DSO servers) install views in order and re-balance data between
consecutive views.

This service is the "coordinator" role JGroups plays for Infinispan.
It is modelled as reliable (the paper's prototype likewise does not
tolerate coordinator failure).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.cluster.node import Node
from repro.simulation.kernel import Kernel


@dataclass(frozen=True)
class View:
    """One totally-ordered group-membership view."""

    view_id: int
    members: tuple[str, ...]

    def __contains__(self, name: str) -> bool:
        return name in self.members


class MembershipService:
    """Emits totally-ordered views over a set of nodes."""

    def __init__(self, kernel: Kernel, failure_detection_delay: float = 4.0):
        self.kernel = kernel
        self.failure_detection_delay = failure_detection_delay
        self._members: list[str] = []
        self._view_id = 0
        self._listeners: list[Callable[[View], None]] = []
        self._history: list[View] = []
        self._install(())

    # -- observation ---------------------------------------------------------

    @property
    def view(self) -> View:
        return self._history[-1]

    @property
    def history(self) -> tuple[View, ...]:
        return tuple(self._history)

    def subscribe(self, listener: Callable[[View], None]) -> None:
        """Register a view listener; it is NOT called for past views."""
        self._listeners.append(listener)

    # -- membership events -----------------------------------------------------

    def join(self, node: Node) -> View:
        """Add a node; a new view is installed immediately."""
        if node.name in self._members:
            raise ValueError(f"{node.name} already a member")
        self._members.append(node.name)
        return self._install(tuple(self._members))

    def leave(self, name: str) -> View:
        """Graceful departure; a new view is installed immediately.

        Idempotent: leaving a name that is not (or no longer) a member
        returns the current view unchanged.  A capacity controller can
        race the failure detector — it decides to drain a node in the
        same epoch the detector expels it — and the second removal
        must be a no-op, not a crash of the control loop.
        """
        if name not in self._members:
            return self.view
        self._members.remove(name)
        return self._install(tuple(self._members))

    def expel(self, name: str) -> None:
        """Remove a member immediately (a failure detector decided).

        Unlike :meth:`report_crash`, no extra delay is added: the
        caller (e.g. a heartbeat detector) has already accounted for
        detection time.
        """
        if name in self._members:
            self._members.remove(name)
            self._install(tuple(self._members))

    def report_crash(self, name: str) -> None:
        """Notice a fail-stop crash after the failure-detection delay."""
        def detect():
            if name in self._members:
                self._members.remove(name)
                self._install(tuple(self._members))

        self.kernel.call_later(self.failure_detection_delay, detect)

    def _install(self, members: tuple[str, ...]) -> View:
        view = View(self._view_id, members)
        self._view_id += 1
        self._history.append(view)
        for listener in self._listeners:
            listener(view)
        return view
