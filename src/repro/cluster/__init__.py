"""Cluster substrate: nodes, consistent hashing, membership views."""

from repro.cluster.hashring import ConsistentHashRing
from repro.cluster.membership import MembershipService, View
from repro.cluster.node import Node

__all__ = ["Node", "ConsistentHashRing", "MembershipService", "View"]
