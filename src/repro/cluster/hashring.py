"""Consistent hashing with virtual nodes (Karger et al., STOC '97).

The DSO layer places a shared object by hashing its reference
``(type, key)`` onto the ring, exactly as Section 4.1 describes
(Cassandra-style).  Virtual nodes smooth the load distribution; the
``preference_list`` of the first ``rf`` *distinct* owners clockwise
from the hash point is the object's replica set.

Properties verified by the test suite:

* balance — with enough virtual nodes, keys spread near-uniformly;
* monotonicity — adding/removing one member only moves keys to/from
  that member (minimal service interruption, the property Section 4.1
  calls out for persistent objects);
* disjoint replica sets — ``preference_list`` returns distinct nodes.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Hashable, Iterable, Sequence


def _hash64(data: str) -> int:
    digest = hashlib.blake2b(data.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class ConsistentHashRing:
    """Maps hashable keys to member names."""

    def __init__(self, members: Iterable[str] = (), virtual_nodes: int = 128):
        if virtual_nodes <= 0:
            raise ValueError(f"virtual_nodes must be positive: {virtual_nodes}")
        self.virtual_nodes = virtual_nodes
        self._members: set[str] = set()
        self._points: list[int] = []
        self._owners: dict[int, str] = {}
        for member in members:
            self.add(member)

    # -- membership ---------------------------------------------------------

    @property
    def members(self) -> frozenset[str]:
        return frozenset(self._members)

    def __len__(self) -> int:
        return len(self._members)

    def add(self, member: str) -> None:
        if member in self._members:
            raise ValueError(f"member {member!r} already on the ring")
        self._members.add(member)
        for replica in range(self.virtual_nodes):
            point = _hash64(f"{member}#{replica}")
            # blake2b collisions across distinct labels are negligible,
            # but stay deterministic if one ever occurs.
            while point in self._owners:
                point = (point + 1) % (1 << 64)
            self._owners[point] = member
            bisect.insort(self._points, point)

    def remove(self, member: str) -> None:
        if member not in self._members:
            raise ValueError(f"member {member!r} not on the ring")
        self._members.discard(member)
        points = [p for p, owner in self._owners.items() if owner == member]
        for point in points:
            del self._owners[point]
            index = bisect.bisect_left(self._points, point)
            del self._points[index]

    # -- lookup -------------------------------------------------------------

    def key_point(self, key: Hashable) -> int:
        return _hash64(repr(key))

    def lookup(self, key: Hashable) -> str:
        """The primary owner of ``key``."""
        return self.preference_list(key, 1)[0]

    def preference_list(self, key: Hashable, count: int) -> Sequence[str]:
        """The first ``count`` distinct owners clockwise from the key.

        This is the replica set for a persistent object with
        ``rf == count``.
        """
        if not self._members:
            raise LookupError("hash ring is empty")
        count = min(count, len(self._members))
        start = bisect.bisect_right(self._points, self.key_point(key))
        owners: list[str] = []
        seen: set[str] = set()
        n = len(self._points)
        for step in range(n):
            owner = self._owners[self._points[(start + step) % n]]
            if owner not in seen:
                seen.add(owner)
                owners.append(owner)
                if len(owners) == count:
                    break
        return tuple(owners)
