"""A heartbeat failure detector.

The membership service's ``report_crash`` models detection as a fixed
delay.  This module provides the mechanism behind that abstraction: a
detector samples member heartbeats every ``period`` seconds and expels
a member once it has been silent for ``timeout`` — the eventually-
perfect detector JGroups' FD_ALL implements for Infinispan clusters.

Enable it on a DSO layer with
:meth:`repro.dso.layer.DsoLayer.enable_failure_detector`; crashes are
then noticed without any explicit report.
"""

from __future__ import annotations

from repro.cluster.membership import MembershipService
from repro.net.network import Network
from repro.simulation.kernel import Kernel
from repro.simulation.thread import SimThread


class HeartbeatFailureDetector:
    """Expels silent members from the membership view."""

    def __init__(self, kernel: Kernel, network: Network,
                 membership: MembershipService, period: float = 1.0,
                 timeout: float = 3.0, name: str = "fd"):
        if timeout < period:
            raise ValueError("timeout must be >= heartbeat period")
        self.kernel = kernel
        self.network = network
        self.membership = membership
        self.period = period
        self.timeout = timeout
        self.name = name
        #: The detector is itself a network participant: heartbeats it
        #: cannot reach (crash OR partition) count as silence, so
        #: injected partitions trigger expulsion like real crashes do.
        self.endpoint = network.ensure_endpoint(name)
        self.last_heartbeat: dict[str, float] = {}
        self.suspected: set[str] = set()
        self._thread: SimThread | None = None

    def start(self) -> "HeartbeatFailureDetector":
        if self._thread is not None:
            raise RuntimeError("failure detector already started")
        self._thread = self.kernel.spawn(self._monitor, daemon=True,
                                         name=f"{self.name}-monitor")
        return self

    def _monitor(self) -> None:
        from repro.simulation.thread import sleep

        while True:
            now = self.kernel.now
            for member in self.membership.view.members:
                if self.network.reachable(self.name, member):
                    # Heartbeat received this round.
                    self.last_heartbeat[member] = now
                    self.suspected.discard(member)
                    continue
                last = self.last_heartbeat.get(member, now)
                if member not in self.last_heartbeat:
                    self.last_heartbeat[member] = now
                if now - last >= self.timeout and \
                        member not in self.suspected:
                    self.suspected.add(member)
                    self.membership.expel(member)
            sleep(self.period)

    def detection_bound(self) -> float:
        """Worst-case time from crash to view change."""
        return self.timeout + self.period
