"""Pluggable storage backends: one protocol, priced tiers.

Every storage substrate the simulation offers — the S3-like
:class:`~repro.storage.object_store.ObjectStore`, the gp3-like
:class:`BlockStore`, the in-memory :class:`MemoryStore`, the
grid/Redis adapters, and the tier-routing
:class:`~repro.storage.tiering.TieredStore` — satisfies the same
:class:`StorageBackend` protocol: ``put``/``get``/``delete``/
``list_prefix``/``exists`` plus a zero-cost ``seed`` for pre-existing
data, and a :class:`BackendProfile` that carries the tier's latency
distributions, $/GB-month capacity rent, per-request fees, and
throughput cap.

The profile numbers are seeded from the ``HW_PARAMETERS`` table used
in serverless cost modelling (S3: 100-200 ms, $0.023/GB-month,
$0.005/1k PUT + $0.0004/1k GET; gp3: 1-2 ms, $0.081/GB-month, free
requests, 125 MB/s) — see :class:`repro.config.TieringSettings`.
Every request accrues dollars into a
:class:`repro.metrics.cost.CostLedger`, and capacity rent is accrued
as a byte-seconds integral over virtual time, so a harness can report
exactly what a placement policy costs, not just how fast it is.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Protocol, runtime_checkable

from repro.config import Config, DEFAULT_CONFIG
from repro.errors import NoSuchKeyError
from repro.metrics.cost import CostLedger
from repro.net.latency import LatencyModel
from repro.net.network import payload_size, ship
from repro.simulation.kernel import Kernel, current_thread

#: Billing month (AWS convention: 730 hours).
MONTH_SECONDS = 730.0 * 3600.0

#: The tier classes a profile may declare.
TIERS = ("memory", "block", "object", "tiered")


@dataclass(frozen=True)
class BackendProfile:
    """The cost/latency identity of one storage tier.

    Latency models cover a zero-byte request; payload transfer time
    comes from their ``bandwidth`` term (which is how the gp3 125 MB/s
    throughput cap is charged).  Request prices are dollars *per
    request*; capacity rent is dollars per GB-month, accrued
    continuously over virtual time.
    """

    name: str
    tier: str
    get_latency: LatencyModel
    put_latency: LatencyModel
    dollars_per_gb_month: float
    get_request_dollars: float = 0.0
    put_request_dollars: float = 0.0
    #: Advertised sequential throughput (bytes/s); ``None`` when the
    #: tier scales horizontally (S3) and per-request bandwidth is
    #: already folded into the latency models.
    throughput_bytes_per_sec: float | None = None
    #: Lag before a fresh PUT is visible to LIST/HEAD polling
    #: (eventually consistent listings, the Fig. 6 failure mode).
    visibility_lag: float = 0.0

    def validate(self) -> None:
        """Raise ``ValueError`` unless the profile is self-consistent."""
        if self.tier not in TIERS:
            raise ValueError(f"unknown tier {self.tier!r}")
        if self.get_latency.base < 0 or self.put_latency.base < 0:
            raise ValueError(f"{self.name}: negative latency")
        if self.dollars_per_gb_month < 0:
            raise ValueError(f"{self.name}: negative capacity price")
        if self.get_request_dollars < 0 or self.put_request_dollars < 0:
            raise ValueError(f"{self.name}: negative request price")
        if (self.throughput_bytes_per_sec is not None
                and self.throughput_bytes_per_sec <= 0):
            raise ValueError(f"{self.name}: non-positive throughput")
        if self.visibility_lag < 0:
            raise ValueError(f"{self.name}: negative visibility lag")

    def storage_dollars(self, byte_seconds: float) -> float:
        """Capacity rent for ``byte_seconds`` of occupancy."""
        return (byte_seconds / 1e9) * self.dollars_per_gb_month \
            / MONTH_SECONDS


@dataclass
class BackendStats:
    """Per-backend request counters (every request class counted the
    same way, so listing-heavy workloads cannot undercount)."""

    puts: int = 0
    gets: int = 0
    deletes: int = 0
    lists: int = 0
    heads: int = 0
    bytes_written: int = 0
    bytes_read: int = 0
    request_dollars: float = 0.0

    @property
    def requests(self) -> int:
        return (self.puts + self.gets + self.deletes
                + self.lists + self.heads)


@runtime_checkable
class StorageBackend(Protocol):
    """What every storage tier offers.

    Data-path methods must run inside a simulated thread (they charge
    the tier's latency and accrue request dollars); ``seed`` and the
    introspection methods are free and host-callable.
    """

    profile: BackendProfile
    stats: BackendStats
    ledger: CostLedger

    def put(self, key: str, value: Any, nbytes: int | None = None) -> None:
        """Store ``value`` under ``key`` (charges PUT latency + fee)."""
        ...

    def get(self, key: str) -> Any:
        """Fetch ``key`` (charges GET latency + fee) or raise
        :class:`~repro.errors.NoSuchKeyError`."""
        ...

    def delete(self, key: str) -> None:
        """Remove ``key`` if present (charges PUT-class latency)."""
        ...

    def list_prefix(self, prefix: str) -> list[str]:
        """Sorted visible keys under ``prefix`` (charges a LIST)."""
        ...

    def exists(self, key: str) -> bool:
        """HEAD request with the tier's listing visibility."""
        ...

    def seed(self, key: str, value: Any, nbytes: int | None = None) -> None:
        """Install pre-existing data without charging the data path
        (datasets that predate the experiment); rent still accrues."""
        ...

    def size(self) -> int:
        """Number of stored objects (free introspection)."""
        ...

    def stored_bytes(self) -> int:
        """Total nominal bytes at rest (free introspection)."""
        ...


# ---------------------------------------------------------------------------
# Profile builders (HW_PARAMETERS numbers via repro.config)
# ---------------------------------------------------------------------------


def s3_profile(config: Config = DEFAULT_CONFIG,
               name: str = "s3") -> BackendProfile:
    """S3: Table 2 latencies, $0.023/GB-month, per-request fees."""
    return BackendProfile(
        name=name, tier="object",
        get_latency=config.storage.s3_get,
        put_latency=config.storage.s3_put,
        dollars_per_gb_month=config.tiering.s3_dollars_per_gb_month,
        get_request_dollars=config.prices.s3_get_per_1000 / 1000.0,
        put_request_dollars=config.prices.s3_put_per_1000 / 1000.0,
        visibility_lag=config.storage.s3_visibility_lag)


def gp3_profile(config: Config = DEFAULT_CONFIG,
                name: str = "gp3") -> BackendProfile:
    """gp3 block volume: 1-2 ms, free requests, 125 MB/s cap."""
    return BackendProfile(
        name=name, tier="block",
        get_latency=config.tiering.gp3_get,
        put_latency=config.tiering.gp3_put,
        dollars_per_gb_month=config.tiering.gp3_dollars_per_gb_month,
        throughput_bytes_per_sec=config.tiering.gp3_get.bandwidth)


def memory_profile(config: Config = DEFAULT_CONFIG,
                   name: str = "memory") -> BackendProfile:
    """In-memory tier next to compute: grid latency, RAM rent."""
    return BackendProfile(
        name=name, tier="memory",
        get_latency=config.tiering.memory_get,
        put_latency=config.tiering.memory_put,
        dollars_per_gb_month=config.tiering.memory_dollars_per_gb_month)


# ---------------------------------------------------------------------------
# ProfiledStore: a flat store driven entirely by its profile
# ---------------------------------------------------------------------------


@dataclass
class _Blob:
    value: Any
    nbytes: int


class ProfiledStore:
    """A flat, strongly consistent KV store priced by its profile.

    The base class behind :class:`BlockStore` and :class:`MemoryStore`
    — the two tiers that differ only in their numbers.  Reads are
    read-after-write; listings are immediate (``visibility_lag`` in
    the profile is honoured, but both shipped profiles set it to 0).
    """

    def __init__(self, kernel: Kernel, profile: BackendProfile,
                 ledger: CostLedger | None = None):
        profile.validate()
        self.kernel = kernel
        self.profile = profile
        self.name = profile.name
        self.ledger = ledger if ledger is not None else CostLedger()
        self.ledger.attach(self)
        self.stats = BackendStats()
        self._blobs: dict[str, _Blob] = {}
        self._visible_at: dict[str, float] = {}
        self._rng = kernel.rng.stream(f"storage.{profile.name}")
        self._resting_bytes = 0
        self._last_settle = kernel.now

    # -- billing ------------------------------------------------------------

    def settle(self) -> None:
        """Accrue capacity rent up to the current virtual time."""
        now = self.kernel.now
        elapsed = now - self._last_settle
        if elapsed > 0 and self._resting_bytes > 0:
            byte_seconds = self._resting_bytes * elapsed
            self.ledger.occupancy(
                self.name, self.profile.tier, byte_seconds,
                self.profile.storage_dollars(byte_seconds))
        self._last_settle = now

    def _charge(self, kind: str, dollars: float, count_attr: str) -> None:
        setattr(self.stats, count_attr, getattr(self.stats, count_attr) + 1)
        self.stats.request_dollars += dollars
        self.ledger.request(self.name, self.profile.tier, dollars)

    def _install(self, key: str, value: Any, nbytes: int,
                 visible_at: float) -> None:
        self.settle()
        old = self._blobs.get(key)
        if old is not None:
            self._resting_bytes -= old.nbytes
        self._blobs[key] = _Blob(value=value, nbytes=nbytes)
        self._visible_at[key] = visible_at
        self._resting_bytes += nbytes

    # -- data path ----------------------------------------------------------

    def put(self, key: str, value: Any, nbytes: int | None = None) -> None:
        if nbytes is None:
            nbytes = payload_size(value)
        with self.kernel.tracer.span(
                f"{self.name}.put", kind="client", endpoint=self.name,
                attributes={"key": key, "bytes": nbytes}):
            delay = self.profile.put_latency.sample(self._rng, nbytes)
            current_thread().sleep(delay)
            self._install(key, ship(value), nbytes,
                          self.kernel.now + self.profile.visibility_lag)
            self._charge("put", self.profile.put_request_dollars, "puts")
            self.stats.bytes_written += nbytes

    def get(self, key: str) -> Any:
        blob = self._blobs.get(key)
        nbytes = blob.nbytes if blob is not None else 0
        with self.kernel.tracer.span(
                f"{self.name}.get", kind="client", endpoint=self.name,
                attributes={"key": key, "bytes": nbytes}):
            delay = self.profile.get_latency.sample(self._rng, nbytes)
            current_thread().sleep(delay)
            self._charge("get", self.profile.get_request_dollars, "gets")
            blob = self._blobs.get(key)  # re-check after the delay
            if blob is None:
                raise NoSuchKeyError(f"{self.name}: no such key {key!r}")
            self.stats.bytes_read += blob.nbytes
            return ship(blob.value)

    def delete(self, key: str) -> None:
        with self.kernel.tracer.span(
                f"{self.name}.delete", kind="client", endpoint=self.name,
                attributes={"key": key}):
            delay = self.profile.put_latency.sample(self._rng, 0)
            current_thread().sleep(delay)
            self._charge("delete", self.profile.put_request_dollars,
                         "deletes")
            blob = self._blobs.pop(key, None)
            self._visible_at.pop(key, None)
            if blob is not None:
                self.settle()
                self._resting_bytes -= blob.nbytes

    def list_prefix(self, prefix: str) -> list[str]:
        with self.kernel.tracer.span(
                f"{self.name}.list", kind="client", endpoint=self.name,
                attributes={"prefix": prefix}):
            delay = self.profile.get_latency.sample(self._rng, 0)
            current_thread().sleep(delay)
            self._charge("list", self.profile.get_request_dollars, "lists")
            now = self.kernel.now
            return sorted(
                key for key in self._blobs
                if key.startswith(prefix)
                and self._visible_at.get(key, 0.0) <= now)

    def exists(self, key: str) -> bool:
        with self.kernel.tracer.span(
                f"{self.name}.head", kind="client", endpoint=self.name,
                attributes={"key": key}):
            delay = self.profile.get_latency.sample(self._rng, 0)
            current_thread().sleep(delay)
            self._charge("head", self.profile.get_request_dollars, "heads")
            return (key in self._blobs
                    and self._visible_at.get(key, 0.0) <= self.kernel.now)

    # -- free paths ---------------------------------------------------------

    def seed(self, key: str, value: Any, nbytes: int | None = None) -> None:
        if nbytes is None:
            nbytes = payload_size(value)
        self._install(key, value, nbytes, 0.0)

    def size(self) -> int:
        return len(self._blobs)

    def stored_bytes(self) -> int:
        return self._resting_bytes


class BlockStore(ProfiledStore):
    """A gp3-like block tier: 1-2 ms requests, free fees, cheap-ish
    capacity, throughput capped at 125 MB/s."""

    def __init__(self, kernel: Kernel, config: Config = DEFAULT_CONFIG,
                 name: str = "gp3", ledger: CostLedger | None = None):
        super().__init__(kernel, gp3_profile(config, name), ledger)
        self.config = config


class MemoryStore(ProfiledStore):
    """An in-memory tier next to compute: grid-grade latency, RAM
    rent at the r5.2xlarge rate."""

    def __init__(self, kernel: Kernel, config: Config = DEFAULT_CONFIG,
                 name: str = "memory", ledger: CostLedger | None = None):
        super().__init__(kernel, memory_profile(config, name), ledger)
        self.config = config
