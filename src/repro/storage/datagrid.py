"""An Infinispan-like in-memory data grid (plain key-value mode).

This is the *raw* Infinispan row of Table 2 and the "in-memory
key-value store" polling baseline of Fig. 6: a partitioned,
multi-threaded KV grid with sub-millisecond operations.  The DSO layer
(:mod:`repro.dso`) is built as an object layer **on top of** this kind
of grid, with extra dispatch cost; keeping the plain-KV path separate
lets the benchmarks compare both, as the paper does.
"""

from __future__ import annotations

from typing import Any

from repro.cluster.hashring import ConsistentHashRing
from repro.cluster.node import Node
from repro.config import Config, DEFAULT_CONFIG
from repro.errors import NoSuchKeyError
from repro.net.network import Network
from repro.rpc.server import RpcServer
from repro.simulation.kernel import Kernel


class _GridNode:
    def __init__(self, kernel: Kernel, network: Network, name: str,
                 config: Config):
        self.config = config
        self.node = Node(kernel, network, name,
                         workers=config.grid.node_workers)
        self.data: dict[str, Any] = {}
        self.server = RpcServer(self.node)
        self.server.register("get", self._get)
        self.server.register("put", self._put)
        self.server.register("remove", self._remove)
        self.server.register("contains", self._contains)

    def _get(self, call, key):
        call.service(self.config.grid.get_service)
        if key not in self.data:
            raise NoSuchKeyError(f"grid: no such key {key!r}")
        return self.data[key]

    def _put(self, call, key, value):
        call.service(self.config.grid.put_service)
        self.data[key] = value

    def _remove(self, call, key):
        call.service(self.config.grid.put_service)
        self.data.pop(key, None)

    def _contains(self, call, key):
        call.service(self.config.grid.get_service)
        return key in self.data


class DataGrid:
    """A partitioned in-memory KV store with consistent hashing."""

    def __init__(self, kernel: Kernel, network: Network, nodes: int = 1,
                 config: Config = DEFAULT_CONFIG, name: str = "grid"):
        if nodes <= 0:
            raise ValueError(f"nodes must be positive: {nodes}")
        self.kernel = kernel
        self.network = network
        self.config = config
        self.name = name
        self.grid_nodes = [
            _GridNode(kernel, network, f"{name}-{i}", config)
            for i in range(nodes)
        ]
        self.ring = ConsistentHashRing(
            [gn.node.name for gn in self.grid_nodes])
        self._by_name = {gn.node.name: gn for gn in self.grid_nodes}

    def _owner(self, key: str) -> _GridNode:
        return self._by_name[self.ring.lookup(key)]

    def _connect(self, client: str, grid_node: _GridNode) -> None:
        self.network.ensure_endpoint(client)
        latency = self.config.grid.client_server
        if self.network.link(client, grid_node.node.name) is not latency:
            self.network.set_link(client, grid_node.node.name, latency)

    # -- client API ----------------------------------------------------------------

    def get(self, client: str, key: str) -> Any:
        owner = self._owner(key)
        self._connect(client, owner)
        return owner.server.call(client, "get", key)

    def put(self, client: str, key: str, value: Any) -> None:
        owner = self._owner(key)
        self._connect(client, owner)
        owner.server.call(client, "put", key, value)

    def remove(self, client: str, key: str) -> None:
        owner = self._owner(key)
        self._connect(client, owner)
        owner.server.call(client, "remove", key)

    def contains(self, client: str, key: str) -> bool:
        owner = self._owner(key)
        self._connect(client, owner)
        return owner.server.call(client, "contains", key)
