"""An Infinispan-like in-memory data grid (plain key-value mode).

This is the *raw* Infinispan row of Table 2 and the "in-memory
key-value store" polling baseline of Fig. 6: a partitioned,
multi-threaded KV grid with sub-millisecond operations.  The DSO layer
(:mod:`repro.dso`) is built as an object layer **on top of** this kind
of grid, with extra dispatch cost; keeping the plain-KV path separate
lets the benchmarks compare both, as the paper does.
"""

from __future__ import annotations

from typing import Any

from repro.cluster.hashring import ConsistentHashRing
from repro.cluster.node import Node
from repro.config import Config, DEFAULT_CONFIG
from repro.errors import NoSuchKeyError
from repro.metrics.cost import CostLedger
from repro.net.network import Network, payload_size
from repro.rpc.server import RpcServer
from repro.simulation.kernel import Kernel
from repro.storage.backend import BackendStats, memory_profile


class _GridNode:
    def __init__(self, kernel: Kernel, network: Network, name: str,
                 config: Config):
        self.config = config
        self.node = Node(kernel, network, name,
                         workers=config.grid.node_workers)
        self.data: dict[str, Any] = {}
        self.server = RpcServer(self.node)
        self.server.register("get", self._get)
        self.server.register("put", self._put)
        self.server.register("remove", self._remove)
        self.server.register("contains", self._contains)
        self.server.register("keys", self._keys)

    def _get(self, call, key):
        call.service(self.config.grid.get_service)
        if key not in self.data:
            raise NoSuchKeyError(f"grid: no such key {key!r}")
        return self.data[key]

    def _put(self, call, key, value):
        call.service(self.config.grid.put_service)
        self.data[key] = value

    def _remove(self, call, key):
        call.service(self.config.grid.put_service)
        self.data.pop(key, None)

    def _contains(self, call, key):
        call.service(self.config.grid.get_service)
        return key in self.data

    def _keys(self, call, prefix):
        call.service(self.config.grid.get_service)
        return [key for key in self.data if key.startswith(prefix)]


class DataGrid:
    """A partitioned in-memory KV store with consistent hashing."""

    def __init__(self, kernel: Kernel, network: Network, nodes: int = 1,
                 config: Config = DEFAULT_CONFIG, name: str = "grid"):
        if nodes <= 0:
            raise ValueError(f"nodes must be positive: {nodes}")
        self.kernel = kernel
        self.network = network
        self.config = config
        self.name = name
        self.grid_nodes = [
            _GridNode(kernel, network, f"{name}-{i}", config)
            for i in range(nodes)
        ]
        self.ring = ConsistentHashRing(
            [gn.node.name for gn in self.grid_nodes])
        self._by_name = {gn.node.name: gn for gn in self.grid_nodes}

    def _owner(self, key: str) -> _GridNode:
        return self._by_name[self.ring.lookup(key)]

    def _connect(self, client: str, grid_node: _GridNode) -> None:
        self.network.ensure_endpoint(client)
        latency = self.config.grid.client_server
        if self.network.link(client, grid_node.node.name) is not latency:
            self.network.set_link(client, grid_node.node.name, latency)

    # -- client API ----------------------------------------------------------------

    def get(self, client: str, key: str) -> Any:
        owner = self._owner(key)
        self._connect(client, owner)
        return owner.server.call(client, "get", key)

    def put(self, client: str, key: str, value: Any) -> None:
        owner = self._owner(key)
        self._connect(client, owner)
        owner.server.call(client, "put", key, value)

    def remove(self, client: str, key: str) -> None:
        owner = self._owner(key)
        self._connect(client, owner)
        owner.server.call(client, "remove", key)

    def contains(self, client: str, key: str) -> bool:
        owner = self._owner(key)
        self._connect(client, owner)
        return owner.server.call(client, "contains", key)

    def keys(self, client: str, prefix: str = "") -> list[str]:
        """Scan every node for keys under ``prefix`` (one RPC each)."""
        found: list[str] = []
        for grid_node in self.grid_nodes:
            self._connect(client, grid_node)
            found.extend(grid_node.server.call(client, "keys", prefix))
        return sorted(found)

    def seed(self, key: str, value: Any) -> None:
        """Place ``key`` on its owner without charging the data path
        (pre-existing data; host-callable)."""
        self._owner(key).data[key] = value

    def backend(self, client: str = "client",
                ledger: CostLedger | None = None) -> "GridBackend":
        """A :class:`repro.storage.backend.StorageBackend` view of this
        grid for one client endpoint (usable as a TieredStore tier)."""
        return GridBackend(self, client=client, ledger=ledger)


class GridBackend:
    """Protocol adapter: a DataGrid as a priced in-memory tier.

    Requests delegate to the grid's RPC path — latency is charged by
    the grid itself (network hops + service time), never twice — while
    this view adds the backend bookkeeping: per-request stats, RAM
    rent at the in-memory tier rate, and nominal-size tracking so 100
    GB objects bill correctly without being materialized.
    """

    def __init__(self, grid: DataGrid, client: str = "client",
                 ledger: CostLedger | None = None):
        self.grid = grid
        self.kernel = grid.kernel
        self.client = client
        self.name = grid.name
        self.profile = memory_profile(grid.config, grid.name)
        self.profile.validate()
        self.ledger = ledger if ledger is not None else CostLedger()
        self.ledger.attach(self)
        self.stats = BackendStats()
        self._nbytes: dict[str, int] = {}
        self._resting_bytes = 0
        self._last_settle = self.kernel.now

    # -- billing ------------------------------------------------------------

    def settle(self) -> None:
        now = self.kernel.now
        elapsed = now - self._last_settle
        if elapsed > 0 and self._resting_bytes > 0:
            byte_seconds = self._resting_bytes * elapsed
            self.ledger.occupancy(
                self.name, self.profile.tier, byte_seconds,
                self.profile.storage_dollars(byte_seconds))
        self._last_settle = now

    def _charge(self, dollars: float, count_attr: str) -> None:
        setattr(self.stats, count_attr, getattr(self.stats, count_attr) + 1)
        self.stats.request_dollars += dollars
        self.ledger.request(self.name, self.profile.tier, dollars)

    def _account(self, key: str, nbytes: int | None) -> None:
        self.settle()
        self._resting_bytes -= self._nbytes.pop(key, 0)
        if nbytes is not None:
            self._nbytes[key] = nbytes
            self._resting_bytes += nbytes

    # -- data path ----------------------------------------------------------

    def put(self, key: str, value: Any, nbytes: int | None = None) -> None:
        if nbytes is None:
            nbytes = payload_size(value)
        self.grid.put(self.client, key, value)
        self._account(key, nbytes)
        self._charge(self.profile.put_request_dollars, "puts")
        self.stats.bytes_written += nbytes

    def get(self, key: str) -> Any:
        value = self.grid.get(self.client, key)
        self._charge(self.profile.get_request_dollars, "gets")
        self.stats.bytes_read += self._nbytes.get(key, 0)
        return value

    def delete(self, key: str) -> None:
        self.grid.remove(self.client, key)
        self._account(key, None)
        self._charge(self.profile.put_request_dollars, "deletes")

    def list_prefix(self, prefix: str) -> list[str]:
        found = self.grid.keys(self.client, prefix)
        self._charge(self.profile.get_request_dollars, "lists")
        return found

    def exists(self, key: str) -> bool:
        found = self.grid.contains(self.client, key)
        self._charge(self.profile.get_request_dollars, "heads")
        return found

    # -- free paths ---------------------------------------------------------

    def seed(self, key: str, value: Any, nbytes: int | None = None) -> None:
        if nbytes is None:
            nbytes = payload_size(value)
        self.grid.seed(key, value)
        self._account(key, nbytes)

    def size(self) -> int:
        return len(self._nbytes)

    def stored_bytes(self) -> int:
        return self._resting_bytes
