"""An Amazon-SNS-like notification (pub/sub) service.

Topics fan messages out to subscribed SQS queues after the publish
latency plus a per-subscription delivery delay.  The SNS+SQS pair is
the "standard AWS toolkit" barrier baseline of Fig. 7a: a thread
publishes its arrival, and every thread polls its own queue for the
release message — hundreds of milliseconds end-to-end.
"""

from __future__ import annotations

from repro.config import Config, DEFAULT_CONFIG
from repro.errors import NoSuchKeyError
from repro.simulation.kernel import Kernel, current_thread
from repro.storage.queue_service import QueueService


class NotificationService:
    """Named topics delivering to SQS queues."""

    def __init__(self, kernel: Kernel, queue_service: QueueService,
                 config: Config = DEFAULT_CONFIG, name: str = "sns"):
        self.kernel = kernel
        self.queue_service = queue_service
        self.config = config
        self.name = name
        self._topics: dict[str, list[str]] = {}
        self._rng = kernel.rng.stream(f"storage.{name}")
        self.publish_count = 0

    def create_topic(self, topic: str) -> None:
        if topic in self._topics:
            raise ValueError(f"topic {topic!r} already exists")
        self._topics[topic] = []

    def subscribe(self, topic: str, queue_name: str) -> None:
        """Deliver every future publication on ``topic`` to the queue."""
        subscribers = self._topics.get(topic)
        if subscribers is None:
            raise NoSuchKeyError(f"{self.name}: no such topic {topic!r}")
        subscribers.append(queue_name)

    def publish(self, topic: str, body) -> None:
        """Publish (charges SNS latency; fan-out is asynchronous)."""
        subscribers = self._topics.get(topic)
        if subscribers is None:
            raise NoSuchKeyError(f"{self.name}: no such topic {topic!r}")
        delay = self.config.storage.sns_publish.sample(self._rng)
        current_thread().sleep(delay)
        self.publish_count += 1
        for queue_name in subscribers:
            fan_out = self.config.storage.sqs_send.sample(self._rng)
            self.kernel.call_later(
                fan_out,
                lambda q=queue_name: self.queue_service.deliver(q, body))
