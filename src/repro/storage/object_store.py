"""An Amazon-S3-like object store.

High access latency (>10 ms, Table 2), practically unlimited
throughput (each request is charged latency but there is no shared
server bottleneck — S3 scales horizontally), and *eventually
consistent listings*: a freshly PUT key only becomes visible to
``list_prefix``/``exists`` polling after ``visibility_lag``, which is
what makes the S3-synchronization bars of Fig. 6 both slow and highly
variable.

Reads of an existing key are read-after-write consistent (S3's 2019
semantics for new-object PUTs).  Values may carry a *nominal* byte
size larger than their materialized payload so that 100 GB datasets
can be modelled without allocating them.

The store satisfies the :class:`repro.storage.backend.StorageBackend`
protocol: it carries an S3 :class:`~repro.storage.backend.
BackendProfile` ($0.023/GB-month, $0.005/1k PUT, $0.0004/1k GET) and
accrues every request — including ``exists``/``list_prefix``, which
are GET-class requests in S3's pricing — into a
:class:`~repro.metrics.cost.CostLedger`, so listing-heavy workloads
(the Fig. 6 S3-sync pattern) are billed faithfully.
"""

from __future__ import annotations

from dataclasses import dataclass
from types import MappingProxyType
from typing import Any, Mapping
from warnings import warn

from repro.config import Config, DEFAULT_CONFIG
from repro.errors import NoSuchKeyError
from repro.metrics.cost import CostLedger
from repro.net.network import payload_size, ship
from repro.simulation.kernel import Kernel, current_thread
from repro.storage.backend import BackendStats, s3_profile


@dataclass
class _StoredObject:
    value: Any
    nbytes: int
    put_time: float
    visible_at: float


class ObjectStore:
    """A flat key/value blob store with S3 latencies and prices."""

    def __init__(self, kernel: Kernel, config: Config = DEFAULT_CONFIG,
                 name: str = "s3", ledger: CostLedger | None = None):
        self.kernel = kernel
        self.config = config
        self.name = name
        self.profile = s3_profile(config, name)
        self.profile.validate()
        self.ledger = ledger if ledger is not None else CostLedger()
        self.ledger.attach(self)
        self.stats = BackendStats()
        self._blobs: dict[str, _StoredObject] = {}
        self._rng = kernel.rng.stream(f"storage.{name}")
        self._resting_bytes = 0
        self._last_settle = kernel.now

    # -- legacy counters (pre-protocol API; kept for compatibility) ----------

    @property
    def put_count(self) -> int:
        return self.stats.puts

    @property
    def get_count(self) -> int:
        return self.stats.gets

    @property
    def list_count(self) -> int:
        """LIST-class requests (``list_prefix`` + ``exists``)."""
        return self.stats.lists + self.stats.heads

    @property
    def _objects(self) -> Mapping[str, _StoredObject]:
        """Deprecated: read-only view of the private blob map.

        Install pre-existing data with :meth:`seed` instead.  The view
        refuses mutation — writes through it would bypass the
        capacity-rent accounting behind :meth:`stored_bytes`.
        """
        warn("ObjectStore._objects is deprecated; use seed() to install "
             "data and the public API to read it", DeprecationWarning,
             stacklevel=2)
        return MappingProxyType(self._blobs)

    # -- billing ------------------------------------------------------------

    def settle(self) -> None:
        """Accrue capacity rent up to the current virtual time."""
        now = self.kernel.now
        elapsed = now - self._last_settle
        if elapsed > 0 and self._resting_bytes > 0:
            byte_seconds = self._resting_bytes * elapsed
            self.ledger.occupancy(
                self.name, self.profile.tier, byte_seconds,
                self.profile.storage_dollars(byte_seconds))
        self._last_settle = now

    def _charge(self, dollars: float, count_attr: str) -> None:
        setattr(self.stats, count_attr, getattr(self.stats, count_attr) + 1)
        self.stats.request_dollars += dollars
        self.ledger.request(self.name, self.profile.tier, dollars)

    def _install(self, key: str, stored: _StoredObject) -> None:
        self.settle()
        old = self._blobs.get(key)
        if old is not None:
            self._resting_bytes -= old.nbytes
        self._blobs[key] = stored
        self._resting_bytes += stored.nbytes

    # -- data path ------------------------------------------------------------

    def put(self, key: str, value: Any, nbytes: int | None = None) -> None:
        """Store ``value`` under ``key`` (charges PUT latency)."""
        if nbytes is None:
            nbytes = payload_size(value)
        with self.kernel.tracer.span(
                f"{self.name}.put", kind="client", endpoint=self.name,
                attributes={"key": key, "bytes": nbytes}):
            delay = self.config.storage.s3_put.sample(self._rng, nbytes)
            current_thread().sleep(delay)
            lag = self.config.storage.s3_visibility_lag
            self._install(key, _StoredObject(
                value=ship(value), nbytes=nbytes,
                put_time=self.kernel.now,
                visible_at=self.kernel.now + lag))
            self._charge(self.profile.put_request_dollars, "puts")
            self.stats.bytes_written += nbytes

    def get(self, key: str) -> Any:
        """Fetch ``key`` (charges GET latency, size-dependent)."""
        stored = self._blobs.get(key)
        nbytes = stored.nbytes if stored is not None else 0
        with self.kernel.tracer.span(
                f"{self.name}.get", kind="client", endpoint=self.name,
                attributes={"key": key, "bytes": nbytes}):
            delay = self.config.storage.s3_get.sample(self._rng, nbytes)
            current_thread().sleep(delay)
            stored = self._blobs.get(key)  # re-check after the delay
            self._charge(self.profile.get_request_dollars, "gets")
            if stored is None:
                raise NoSuchKeyError(f"{self.name}: no such key {key!r}")
            self.stats.bytes_read += stored.nbytes
            return ship(stored.value)

    def delete(self, key: str) -> None:
        with self.kernel.tracer.span(
                f"{self.name}.delete", kind="client", endpoint=self.name,
                attributes={"key": key}):
            delay = self.config.storage.s3_put.sample(self._rng, 0)
            current_thread().sleep(delay)
            self._charge(self.profile.put_request_dollars, "deletes")
            stored = self._blobs.pop(key, None)
            if stored is not None:
                self.settle()
                self._resting_bytes -= stored.nbytes

    # -- polling path (eventually consistent) -------------------------------------

    def list_prefix(self, prefix: str) -> list[str]:
        """List visible keys under ``prefix`` (charges one GET latency
        and one GET-class request fee, like any other request).

        Keys PUT within the last ``visibility_lag`` seconds are *not*
        returned: this is the eventual consistency that foils naive
        S3-based synchronization.
        """
        with self.kernel.tracer.span(
                f"{self.name}.list", kind="client", endpoint=self.name,
                attributes={"prefix": prefix}):
            delay = self.config.storage.s3_get.sample(self._rng, 0)
            current_thread().sleep(delay)
            self._charge(self.profile.get_request_dollars, "lists")
            now = self.kernel.now
            return sorted(
                key for key, stored in self._blobs.items()
                if key.startswith(prefix) and stored.visible_at <= now)

    def exists(self, key: str) -> bool:
        """HEAD request with listing (eventual) visibility.

        Counted and billed like a GET: polling loops built on
        ``exists`` (the Fig. 6 S3-sync pattern) pay per poll.
        """
        with self.kernel.tracer.span(
                f"{self.name}.head", kind="client", endpoint=self.name,
                attributes={"key": key}):
            delay = self.config.storage.s3_get.sample(self._rng, 0)
            current_thread().sleep(delay)
            self._charge(self.profile.get_request_dollars, "heads")
            stored = self._blobs.get(key)
            return stored is not None and stored.visible_at <= self.kernel.now

    # -- free paths (no latency; for tests, harnesses, pre-existing data) ----------

    def seed(self, key: str, value: Any, nbytes: int | None = None) -> None:
        """Install pre-existing data without charging the data path.

        The object is immediately visible (it predates the experiment,
        like the paper's S3-hosted dataset); capacity rent still
        accrues from now on.
        """
        if nbytes is None:
            nbytes = payload_size(value)
        self._install(key, _StoredObject(value=value, nbytes=nbytes,
                                         put_time=0.0, visible_at=0.0))

    def size(self) -> int:
        return len(self._blobs)

    def stored_bytes(self) -> int:
        return self._resting_bytes
